//! `hmmm` — command-line front end for the HMMM video database suite.
//!
//! ```text
//! hmmm generate --videos 8 --shots 100 --event-rate 0.1 --seed 42 --out db.bin
//! hmmm inspect db.bin
//! hmmm query db.bin "free_kick -> goal" --top 8 [--threads N] [--content-only] [--greedy]
//!                   [--metrics-json out.json] [--trace]
//! hmmm categories db.bin --k 4
//! hmmm matn "foul ->[2] yellow_card|red_card -> player_change"
//! ```
//!
//! The catalog file is the checksummed binary container of `hmmm-storage`
//! (`.json` paths use the JSON codec instead).

use hmmm_core::{
    build_hmmm, build_hmmm_observed, metrics, BuildConfig, CategoryLevel, CoarseMode,
    FeedbackConfig, FeedbackLog, FeedbackSimulator, InMemoryRecorder, OracleConfig,
    PositivePattern, RecorderHandle, RetrievalConfig, Retriever,
};
use hmmm_media::{ArchiveConfig, EventKind, RenderConfig, SyntheticArchive};
use hmmm_query::{parse_pattern, Matn, QueryTranslator};
use hmmm_storage::Catalog;
use hmmm_suite::{ingest_archive, AnnotationSource};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("inspect") => cmd_inspect(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("categories") => cmd_categories(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("loadgen") => cmd_loadgen(&args[1..]),
        Some("matn") => cmd_matn(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}; see `hmmm help`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
hmmm — Hierarchical Markov Model Mediator video database tool

USAGE:
  hmmm generate --out <file> [--videos N] [--shots N] [--event-rate F] [--seed N]
      synthesize an archive, extract features, save the catalog
  hmmm inspect <file>
      print catalog dimensions and per-event counts
  hmmm query <file> <pattern> [--top N] [--threads N] [--content-only]
             [--greedy] [--no-sim-cache] [--no-prune]
             [--coarse off|exact|approx] [--candidates C]
             [--deadline-ms N] [--deadline-check-interval M]
             [--fault-plan <json|file>]
             [--metrics-json <out>] [--trace]
      build the HMMM and run a temporal pattern query
      (--threads 0 = all cores, 1 = serial; default all cores)
      (--top-k is accepted as an alias of --top; --no-prune disables the
      exact top-k threshold pruning — rankings are identical either way)
      --coarse selects the two-stage coarse-to-fine path: `exact` routes
      candidate selection through the ingest-time index (same ranking,
      no archive-wide bound scan); `approx` additionally traverses only
      the --candidates C highest-bound videos (default 16), trading
      recall for latency; `off` (default) runs single-stage
      --deadline-ms bounds the query wall clock: on expiry the engine
      returns the best-so-far ranking marked DEGRADED (recall may drop,
      exactness of what is returned does not); --deadline-check-interval
      sets how many beam expansions pass between clock reads (default 64)
      --fault-plan injects deterministic faults (inline JSON if the
      argument starts with '{', else a file path), e.g.
      '{\"panic_on_videos\": [0,2]}' — see crates/core/src/fault.rs
      --metrics-json writes the structured observability report (per-stage
      wall times, counters, cache hit ratio, thread utilization) as JSON;
      --trace prints the span tree of the whole run to stdout
  hmmm categories <file> [--k N]
      cluster videos into categories (the d=3 extension)
  hmmm check <file> [--feedback-rounds N]
      build the HMMM and run the λ-invariant deep audit: A1/A2
      row-stochastic, Π1/Π2/P12 unit mass, L12 strictly 0/1, B1'
      centroid sanity, pruning-bound caches exactly fresh; with
      --feedback-rounds the audit is repeated after N simulated
      feedback/learning updates (exit 1 on any violation)
  hmmm serve <file> [--workers N] [--queue N] [--deadline-ms N]
             [--coarse off|exact|approx] [--candidates C]
             [--fault-plan <json|file>] [--metrics-json <out>]
             [--listen ADDR] [--max-conns N] [--frame-timeout-ms N]
             [--net-fault-plan <json|file>]
      start the in-process query server and answer patterns read from
      stdin, one per line; responses carry the snapshot epoch.
      REPL commands:  :accept <rank>  confirm a result from the last
      response as positive feedback;  :learn  run the Eqs. 1-10 relearn
      and install the new snapshot (audit-gated);  :epoch ;  :quit
      --listen additionally opens the TCP front-end (port 0 picks a free
      port; the resolved address is printed as 'listening on ADDR');
      :quit drains it gracefully, and stdin EOF keeps serving until the
      process is killed (for backgrounded use). --net-fault-plan injects
      seeded network faults (torn frames, corrupted bytes, stalls,
      forced closes) into accepted connections — see docs/SERVING.md
  hmmm loadgen <file> [--clients N] [--requests N] [--zipf F]
             [--think-us N] [--feedback-prob F] [--deadline-ms N]
             [--workers N] [--queue N] [--top N] [--seed N] [--check]
             [--coarse off|exact|approx] [--candidates C]
             [--fault-plan <json|file>] [--metrics-json <out>]
             [--connect ADDR] [--retries N]
             [--net-fault-plan <json|file>]
      run the seeded workload generator (Zipf query mix, Poisson
      arrivals, probabilistic feedback installs) against an in-process
      server and print QPS + p50/p95/p99; --check re-derives every exact
      response serially on the epoch that answered it and exits 1 on any
      mismatch or unaccounted rejection
      --connect drives the same workload over TCP against a running
      `hmmm serve --listen` process instead (no in-process server; pass
      the server's catalog path plus its --coarse/--fault-plan flags so
      --check can rebuild the reference locally); --retries caps wire
      attempts per request, --net-fault-plan injects client-side
      network faults and exercises the retry/backoff path
  hmmm matn <pattern>
      print the MATN view and Graphviz dot of a query
  hmmm help
      this text

PATTERNS:  event ( '->' ['[' gap ']'] event ('|' event)* )*
           e.g. \"free_kick -> goal ->[5] corner_kick|goal_kick\"
EVENTS:    goal corner_kick free_kick foul goal_kick yellow_card red_card player_change
";

/// Pulls `--name value` out of an argument list.
fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn flag_present(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn positional(args: &[String], index: usize) -> Option<&String> {
    let mut i = 0;
    let mut seen = 0;
    while i < args.len() {
        if args[i].starts_with("--") {
            // Boolean switches consume one slot; valued flags two.
            let is_switch = matches!(
                args[i].as_str(),
                "--content-only" | "--greedy" | "--no-sim-cache" | "--no-prune" | "--trace"
                    | "--check"
            );
            i += if is_switch { 1 } else { 2 };
            continue;
        }
        if seen == index {
            return Some(&args[i]);
        }
        seen += 1;
        i += 1;
    }
    None
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse::<T>().map_err(|_| format!("bad {what}: {s:?}"))
}

/// Applies the shared `--coarse <mode>` / `--candidates <C>` flags to a
/// retrieval config (used by `query`, `serve`, and `loadgen`).
fn apply_coarse_flags(args: &[String], config: &mut RetrievalConfig) -> Result<(), String> {
    if let Some(mode) = flag_value(args, "--coarse") {
        config.coarse = CoarseMode::parse(&mode)
            .ok_or_else(|| format!("bad --coarse: {mode:?} (expected off, exact, or approx)"))?;
    }
    if let Some(c) = flag_value(args, "--candidates") {
        let c: usize = parse_num(&c, "--candidates")?;
        if c == 0 {
            return Err("--candidates must be ≥ 1".into());
        }
        config.coarse_candidates = c;
    } else if flag_present(args, "--candidates") {
        return Err("--candidates requires a value".into());
    }
    Ok(())
}

/// Parses a `--fault-plan`-style flag: inline JSON when the argument
/// starts with `{`, else a path to a JSON file.
fn parse_fault_plan(args: &[String], name: &str) -> Result<Option<hmmm_core::FaultPlan>, String> {
    let Some(spec) = flag_value(args, name) else {
        return Ok(None);
    };
    let json = if spec.trim_start().starts_with('{') {
        spec
    } else {
        std::fs::read_to_string(&spec).map_err(|e| format!("reading fault plan {spec}: {e}"))?
    };
    let plan: hmmm_core::FaultPlan =
        serde_json::from_str(&json).map_err(|e| format!("parsing fault plan: {e}"))?;
    Ok(Some(plan))
}

fn load(path: &str) -> Result<Catalog, String> {
    load_observed(path, &RecorderHandle::noop())
}

fn load_observed(path: &str, obs: &RecorderHandle) -> Result<Catalog, String> {
    let catalog = if path.ends_with(".json") {
        hmmm_storage::load_json_observed(path, obs)
    } else {
        hmmm_storage::load_binary_observed(path, obs)
    };
    catalog.map_err(|e| format!("loading {path}: {e}"))
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let out = flag_value(args, "--out").ok_or("generate requires --out <file>")?;
    let videos: usize = parse_num(&flag_value(args, "--videos").unwrap_or("8".into()), "--videos")?;
    let shots: usize = parse_num(&flag_value(args, "--shots").unwrap_or("100".into()), "--shots")?;
    let event_rate: f64 = parse_num(
        &flag_value(args, "--event-rate").unwrap_or("0.1".into()),
        "--event-rate",
    )?;
    let seed: u64 = parse_num(&flag_value(args, "--seed").unwrap_or("42".into()), "--seed")?;

    eprintln!("synthesizing {videos} videos × {shots} shots (event rate {event_rate})…");
    let archive = SyntheticArchive::generate(ArchiveConfig {
        videos,
        shots_per_video: shots,
        event_rate,
        double_event_rate: 0.15,
        render: RenderConfig::small(),
        seed,
    });
    let catalog = ingest_archive(&archive, AnnotationSource::GroundTruth);
    if out.ends_with(".json") {
        hmmm_storage::save_json(&catalog, &out).map_err(|e| e.to_string())?;
    } else {
        hmmm_storage::save_binary(&catalog, &out).map_err(|e| e.to_string())?;
    }
    println!(
        "wrote {out}: {} videos, {} shots, {} events",
        catalog.video_count(),
        catalog.shot_count(),
        catalog.total_events()
    );
    Ok(())
}

fn cmd_inspect(args: &[String]) -> Result<(), String> {
    let path = positional(args, 0).ok_or("inspect requires a catalog path")?;
    let catalog = load(path)?;
    println!(
        "{path}: {} videos, {} shots, {} event annotations",
        catalog.video_count(),
        catalog.shot_count(),
        catalog.total_events()
    );
    println!("\nper-event annotation counts:");
    for kind in EventKind::ALL {
        let n = catalog.shots_with_event(kind).len();
        println!("  {:<14} {n}", kind.name());
    }
    println!("\nvideos:");
    for v in catalog.videos() {
        let events: usize = catalog
            .shots_of_video(v.id)
            .iter()
            .map(|s| s.event_count())
            .sum();
        println!("  {} {:<12} {} shots, {} events", v.id, v.name, v.shot_count(), events);
    }
    Ok(())
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let path = positional(args, 0).ok_or("query requires a catalog path")?;
    let text = positional(args, 1).ok_or("query requires a pattern string")?;
    let top: usize = parse_num(
        &flag_value(args, "--top")
            .or_else(|| flag_value(args, "--top-k"))
            .unwrap_or("8".into()),
        "--top",
    )?;
    let metrics_out = flag_value(args, "--metrics-json");
    let trace = flag_present(args, "--trace");

    // One recorder observes the whole command — catalog load, model build,
    // and the retrieval itself — so the report/trace covers end to end.
    let recorder = (metrics_out.is_some() || trace).then(InMemoryRecorder::shared);
    let obs = recorder
        .as_ref()
        .map(InMemoryRecorder::handle)
        .unwrap_or_default();

    let catalog = load_observed(path, &obs)?;
    let model =
        build_hmmm_observed(&catalog, &BuildConfig::default(), &obs).map_err(|e| e.to_string())?;
    let translator = QueryTranslator::new(EventKind::ALL.iter().map(|k| k.name()));
    let pattern = translator.compile(text).map_err(|e| e.to_string())?;

    let mut config = if flag_present(args, "--content-only") {
        RetrievalConfig::content_only()
    } else {
        RetrievalConfig::default()
    };
    if flag_present(args, "--greedy") {
        config.beam_width = 1;
    }
    if let Some(t) = flag_value(args, "--threads") {
        let t: usize = parse_num(&t, "--threads")?;
        // 0 = auto (all cores), n = exactly n workers (1 = serial).
        config.threads = if t == 0 { None } else { Some(t) };
    }
    if flag_present(args, "--no-sim-cache") {
        config.use_sim_cache = false;
    }
    if flag_present(args, "--no-prune") {
        config.prune = false;
    }
    apply_coarse_flags(args, &mut config)?;
    if let Some(ms) = flag_value(args, "--deadline-ms") {
        let ms: u64 = parse_num(&ms, "--deadline-ms")?;
        let mut deadline = hmmm_core::DeadlineConfig::new(std::time::Duration::from_millis(ms));
        if let Some(interval) = flag_value(args, "--deadline-check-interval") {
            let interval: u32 = parse_num(&interval, "--deadline-check-interval")?;
            if interval == 0 {
                return Err("--deadline-check-interval must be ≥ 1".into());
            }
            deadline.check_interval = interval;
        }
        config.deadline = Some(deadline);
    } else if flag_present(args, "--deadline-check-interval") {
        return Err("--deadline-check-interval requires --deadline-ms".into());
    }
    if let Some(plan) = parse_fault_plan(args, "--fault-plan")? {
        if !plan.is_empty() {
            eprintln!("fault injection active: degraded output is expected");
        }
        config = config.with_fault_plan(plan);
    }
    config.recorder = obs;
    let config_coarse = config.coarse;
    let retriever = Retriever::new(&model, &catalog, config).map_err(|e| e.to_string())?;
    let start = std::time::Instant::now();
    let (results, stats) = retriever.retrieve(&pattern, top).map_err(|e| e.to_string())?;
    let elapsed = start.elapsed();

    println!("query: {text}");
    println!(
        "{} candidates in {elapsed:.2?} ({} sim evals, {}/{} videos visited, \
         {} bound-skipped, {} entries pruned)",
        results.len(),
        stats.total_sim_evaluations(),
        stats.videos_visited,
        catalog.video_count(),
        stats.videos_skipped_by_bound,
        stats.entries_pruned,
    );
    if config_coarse != CoarseMode::Off {
        println!(
            "coarse [{}]: {} candidates ({} cut, {} zero-bound skips), \
             {} index bound lookups",
            config_coarse.as_str(),
            stats.coarse_candidates,
            stats.coarse_cut,
            stats.coarse_skipped_zero_ub,
            stats.coarse_bound_lookups,
        );
    }
    if let Some(d) = &stats.degraded {
        let reason = d.reason.as_str();
        println!(
            "DEGRADED ({reason}): {} videos never admitted, {} videos failed — \
             the ranking below covers only the work that completed",
            d.videos_unvisited, d.videos_failed
        );
        for payload in &stats.panic_payloads {
            println!("  failed {payload}");
        }
    }
    for (rank, r) in results.iter().enumerate() {
        let steps: Vec<String> = r
            .shots
            .iter()
            .zip(r.events.iter())
            .map(|(&id, &e)| {
                let shot = catalog.shot(id).expect("valid id");
                let truth: Vec<&str> = shot.events.iter().map(|k| k.name()).collect();
                let matched = EventKind::from_index(e).map(|k| k.name()).unwrap_or("?");
                format!("{id}:{matched}[{}]", truth.join("+"))
            })
            .collect();
        println!("  #{rank} v{} {:.5}  {}", r.video.index(), r.score, steps.join(" -> "));
    }

    if let Some(recorder) = recorder {
        let mut report = recorder.report();
        metrics::derive_retrieval_metrics(&mut report);
        if trace {
            println!("\ntrace:");
            print!("{}", report.render_trace());
        }
        if let Some(out) = metrics_out {
            let json = report
                .to_json_pretty()
                .map_err(|e| format!("encoding metrics: {e}"))?;
            std::fs::write(&out, json + "\n").map_err(|e| format!("writing {out}: {e}"))?;
            println!("wrote metrics report to {out}");
        }
    }
    Ok(())
}

fn cmd_categories(args: &[String]) -> Result<(), String> {
    let path = positional(args, 0).ok_or("categories requires a catalog path")?;
    let k: usize = parse_num(&flag_value(args, "--k").unwrap_or("4".into()), "--k")?;
    let catalog = load(path)?;
    let model = build_hmmm(&catalog, &BuildConfig::default()).map_err(|e| e.to_string())?;
    let cats = CategoryLevel::build(&model, k).ok_or("no videos to cluster")?;
    println!("{} categories over {} videos:", cats.len(), model.video_count());
    for c in 0..cats.len() {
        let members = cats.videos_of(c);
        let profile: Vec<String> = EventKind::ALL
            .iter()
            .filter(|kind| cats.b3[c][kind.index()] > 0)
            .map(|kind| format!("{}×{}", kind.name(), cats.b3[c][kind.index()]))
            .collect();
        println!(
            "  category {c} (medoid v{}): {} videos — {}",
            cats.medoids[c],
            members.len(),
            profile.join(", ")
        );
    }
    Ok(())
}

fn cmd_check(args: &[String]) -> Result<(), String> {
    let path = positional(args, 0).ok_or("check requires a catalog path")?;
    let rounds: usize = parse_num(
        &flag_value(args, "--feedback-rounds").unwrap_or("0".into()),
        "--feedback-rounds",
    )?;

    let catalog = load(path)?;
    let mut model = build_hmmm(&catalog, &BuildConfig::default()).map_err(|e| e.to_string())?;
    let summary = model
        .deep_audit(&catalog)
        .map_err(|e| format!("λ-invariant audit failed on the freshly built model: {e}"))?;
    println!("freshly built model audits clean: {summary}");
    if rounds == 0 {
        return Ok(());
    }

    // Re-audit under churn: run the Eqs. 1–10 learning loop with the
    // simulated user and prove Definition 1 still holds after every update.
    let translator = QueryTranslator::new(EventKind::ALL.iter().map(|k| k.name()));
    let pattern = translator
        .compile("free_kick -> goal")
        .map_err(|e| e.to_string())?;
    let fb_cfg = FeedbackConfig::default();
    let mut oracle = FeedbackSimulator::new(OracleConfig { noise: 0.05, seed: 7 });
    let mut log = FeedbackLog::new();
    for round in 1..=rounds {
        let retriever = Retriever::new(&model, &catalog, RetrievalConfig::default())
            .map_err(|e| e.to_string())?;
        let (results, _) = retriever.retrieve(&pattern, 8).map_err(|e| e.to_string())?;
        let mut confirmed = 0usize;
        for r in &results {
            if oracle.judge(&catalog, &pattern, r) {
                log.record(PositivePattern {
                    query: round as u64,
                    video: r.video,
                    shots: r.shots.clone(),
                    events: r.events.clone(),
                    access: 1.0,
                })
                .map_err(|e| e.to_string())?;
                confirmed += 1;
            }
        }
        let report = log
            .apply(&mut model, &catalog, &fb_cfg)
            .map_err(|e| e.to_string())?;
        let summary = model
            .deep_audit(&catalog)
            .map_err(|e| format!("λ-invariant audit failed after feedback round {round}: {e}"))?;
        println!(
            "round {round}: {confirmed} confirmed, A1 drift {:.4}, P12 drift {:.4} — audits clean: {summary}",
            report.a1_drift, report.p12_drift
        );
    }
    Ok(())
}

/// Shared by `serve`/`loadgen`: build the epoch-0 snapshot from a catalog
/// file and assemble the server configuration from the common flags.
fn serve_setup(
    args: &[String],
    obs: &RecorderHandle,
    retain_history: bool,
) -> Result<(hmmm_serve::ModelSnapshot, hmmm_serve::ServerConfig), String> {
    let path = positional(args, 0).ok_or("a catalog path is required")?;
    let workers: usize =
        parse_num(&flag_value(args, "--workers").unwrap_or("2".into()), "--workers")?;
    let queue: usize = parse_num(&flag_value(args, "--queue").unwrap_or("64".into()), "--queue")?;
    let default_deadline = match flag_value(args, "--deadline-ms") {
        Some(ms) => Some(std::time::Duration::from_millis(parse_num(&ms, "--deadline-ms")?)),
        None => None,
    };
    let catalog = load_observed(path, obs)?;
    let snapshot = hmmm_serve::ModelSnapshot::build(catalog, &BuildConfig::default())
        .map_err(|e| e.to_string())?;
    let mut retrieval = RetrievalConfig::content_only();
    apply_coarse_flags(args, &mut retrieval)?;
    if let Some(plan) = parse_fault_plan(args, "--fault-plan")? {
        if !plan.is_empty() {
            eprintln!("fault injection active: degraded output is expected");
        }
        retrieval = retrieval.with_fault_plan(plan);
    }
    let config = hmmm_serve::ServerConfig {
        workers,
        queue_capacity: queue,
        default_deadline,
        retrieval,
        recorder: obs.clone(),
        retain_snapshot_history: retain_history,
    };
    Ok((snapshot, config))
}

fn write_serve_metrics(recorder: &std::sync::Arc<InMemoryRecorder>, out: &str) -> Result<(), String> {
    let mut report = recorder.report();
    metrics::derive_retrieval_metrics(&mut report);
    metrics::derive_serve_metrics(&mut report);
    metrics::derive_net_metrics(&mut report);
    let json = report
        .to_json_pretty()
        .map_err(|e| format!("encoding metrics: {e}"))?;
    std::fs::write(out, json.clone() + "\n").map_err(|e| format!("writing {out}: {e}"))?;
    // Round-trip gate: a metrics file that does not parse back is a bug
    // worth failing the command over (the serve-smoke CI job relies on it).
    serde_json::from_str::<serde_json::Value>(&json)
        .map_err(|e| format!("metrics report does not re-parse as JSON: {e}"))?;
    println!("wrote metrics report to {out}");
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    use std::io::BufRead;
    let top: usize = parse_num(&flag_value(args, "--top").unwrap_or("8".into()), "--top")?;
    let metrics_out = flag_value(args, "--metrics-json");
    let recorder = metrics_out.is_some().then(InMemoryRecorder::shared);
    let obs = recorder
        .as_ref()
        .map(InMemoryRecorder::handle)
        .unwrap_or_default();

    let (snapshot, config) = serve_setup(args, &obs, false)?;
    println!(
        "serving {} videos / {} shots with {} workers (queue {}, coarse {}): {}",
        snapshot.catalog.video_count(),
        snapshot.catalog.shot_count(),
        config.workers,
        config.queue_capacity,
        config.retrieval.coarse.as_str(),
        snapshot.audit,
    );
    println!("enter a pattern per line; :accept <rank>, :learn, :epoch, :quit");
    let server = std::sync::Arc::new(
        hmmm_serve::QueryServer::start(snapshot, config).map_err(|e| e.to_string())?,
    );
    let net = match flag_value(args, "--listen") {
        Some(addr) => {
            let mut net_cfg = hmmm_serve::NetConfig {
                recorder: obs.clone(),
                ..hmmm_serve::NetConfig::default()
            };
            if let Some(n) = flag_value(args, "--max-conns") {
                net_cfg.max_connections = parse_num(&n, "--max-conns")?;
            }
            if let Some(ms) = flag_value(args, "--frame-timeout-ms") {
                net_cfg.frame_timeout =
                    std::time::Duration::from_millis(parse_num(&ms, "--frame-timeout-ms")?);
            }
            if let Some(plan) = parse_fault_plan(args, "--net-fault-plan")? {
                eprintln!("network fault injection active: accepted streams may be disturbed");
                net_cfg.fault = hmmm_core::FaultHandle::from_plan(plan);
            }
            let net =
                hmmm_serve::NetServer::start(std::sync::Arc::clone(&server), &addr, net_cfg)
                    .map_err(|e| format!("binding {addr}: {e}"))?;
            // The exact line the serve-net-smoke CI job (and any script)
            // parses to learn the resolved port when --listen used port 0.
            println!("listening on {}", net.local_addr());
            Some(net)
        }
        None => None,
    };
    let translator = QueryTranslator::new(EventKind::ALL.iter().map(|k| k.name()));
    let fb_cfg = FeedbackConfig::default();
    let mut log = FeedbackLog::new();
    let mut session = 0u64;
    let mut last: Vec<hmmm_core::RankedPattern> = Vec::new();

    let mut quit = false;
    for line in std::io::stdin().lock().lines() {
        let line = line.map_err(|e| format!("reading stdin: {e}"))?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == ":quit" {
            quit = true;
            break;
        }
        if line == ":epoch" {
            println!("epoch {}", server.epoch());
            continue;
        }
        if line == ":learn" {
            match server.apply_feedback(&mut log, &fb_cfg) {
                Ok((epoch, report)) => println!(
                    "installed snapshot epoch {epoch}: {} patterns applied, \
                     A1 drift {:.4}, P12 drift {:.4}",
                    report.patterns_applied, report.a1_drift, report.p12_drift
                ),
                Err(e) => eprintln!("feedback install rejected: {e}"),
            }
            continue;
        }
        if let Some(rank) = line.strip_prefix(":accept") {
            let rank: usize = parse_num(rank.trim(), ":accept rank")?;
            let Some(r) = last.get(rank) else {
                eprintln!("no result #{rank} in the last response");
                continue;
            };
            session += 1;
            match log.record(PositivePattern {
                query: session,
                video: r.video,
                shots: r.shots.clone(),
                events: r.events.clone(),
                access: 1.0,
            }) {
                Ok(()) => println!(
                    "recorded #{rank} (v{}) as positive; {} pending",
                    r.video.index(),
                    log.pending()
                ),
                Err(e) => eprintln!("rejected feedback: {e}"),
            }
            continue;
        }
        let pattern = match translator.compile(line) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("bad pattern: {e}");
                continue;
            }
        };
        match server.query(hmmm_serve::QueryRequest::new(pattern, top)) {
            hmmm_serve::ServeOutcome::Completed(response) => {
                println!(
                    "epoch {} | queued {:.2?} served {:.2?} | {} candidates{}",
                    response.epoch,
                    std::time::Duration::from_nanos(response.queue_ns),
                    std::time::Duration::from_nanos(response.service_ns),
                    response.results.len(),
                    if response.stats.degraded.is_some() {
                        " (DEGRADED)"
                    } else {
                        ""
                    },
                );
                for (rank, r) in response.results.iter().enumerate() {
                    let shots: Vec<String> =
                        r.shots.iter().map(|s| s.to_string()).collect();
                    println!(
                        "  #{rank} v{} {:.5}  {}",
                        r.video.index(),
                        r.score,
                        shots.join(" -> ")
                    );
                }
                last = response.results;
            }
            hmmm_serve::ServeOutcome::Rejected(reason) => {
                eprintln!("rejected: {reason}");
            }
        }
    }
    match net {
        Some(net) => {
            if !quit {
                // stdin hit EOF while listening (e.g. backgrounded with
                // </dev/null under CI): keep serving until killed.
                loop {
                    std::thread::park();
                }
            }
            // :quit drains the front-end (idle connections get a final
            // Draining notice, in-flight requests finish) before the
            // admission queue closes.
            net.shutdown();
        }
        None => server.close(),
    }
    drop(server); // last Arc: joins the worker pool
    if let (Some(recorder), Some(out)) = (recorder, metrics_out) {
        write_serve_metrics(&recorder, &out)?;
    }
    Ok(())
}

fn cmd_loadgen(args: &[String]) -> Result<(), String> {
    let clients: usize =
        parse_num(&flag_value(args, "--clients").unwrap_or("4".into()), "--clients")?;
    let requests: usize =
        parse_num(&flag_value(args, "--requests").unwrap_or("64".into()), "--requests")?;
    let zipf: f64 = parse_num(&flag_value(args, "--zipf").unwrap_or("1.0".into()), "--zipf")?;
    let think_us: u64 =
        parse_num(&flag_value(args, "--think-us").unwrap_or("200".into()), "--think-us")?;
    let feedback_prob: f64 = parse_num(
        &flag_value(args, "--feedback-prob").unwrap_or("0.05".into()),
        "--feedback-prob",
    )?;
    let top: usize = parse_num(&flag_value(args, "--top").unwrap_or("10".into()), "--top")?;
    let seed: u64 = parse_num(&flag_value(args, "--seed").unwrap_or("42".into()), "--seed")?;
    let check = flag_present(args, "--check");
    let metrics_out = flag_value(args, "--metrics-json");
    let recorder = metrics_out.is_some().then(InMemoryRecorder::shared);
    let obs = recorder
        .as_ref()
        .map(InMemoryRecorder::handle)
        .unwrap_or_default();

    if let Some(addr) = flag_value(args, "--connect") {
        let report = run_loadgen_net(
            args, &addr, clients, requests, zipf, think_us, top, seed, check, &obs,
        )?;
        print_net_report(&report, check);
        if let (Some(recorder), Some(out)) = (recorder, metrics_out) {
            write_serve_metrics(&recorder, &out)?;
        }
        if !report.healthy() {
            let rejected: usize = report.rejections.values().sum();
            return Err(format!(
                "loadgen net check failed: {} mismatches, {} give-ups, {} + {} of {} \
                 requests unaccounted",
                report.check_mismatches,
                report.give_ups,
                report.completed,
                rejected,
                report.submitted
            ));
        }
        return Ok(());
    }

    let (snapshot, config) = serve_setup(args, &obs, check)?;
    eprintln!(
        "loadgen: {clients} clients × {requests} requests (zipf {zipf}, think {think_us}µs, \
         feedback p={feedback_prob}) against {} workers / queue {} / coarse {}{}",
        config.workers,
        config.queue_capacity,
        config.retrieval.coarse.as_str(),
        if check { ", exactness check on" } else { "" },
    );
    let server = hmmm_serve::QueryServer::start(snapshot, config).map_err(|e| e.to_string())?;
    let workload = hmmm_serve::WorkloadConfig {
        clients,
        requests_per_client: requests,
        zipf_exponent: zipf,
        mean_interarrival: std::time::Duration::from_micros(think_us),
        feedback_probability: feedback_prob,
        feedback: FeedbackConfig::default(),
        deadline: None, // the server default (from --deadline-ms) applies
        limit: top,
        seed,
        check,
    };
    let report = hmmm_serve::run_workload(&server, &workload).map_err(|e| e.to_string())?;
    server.join();

    let rejected: usize = report.rejections.values().sum();
    println!(
        "{} submitted: {} completed ({} degraded), {} rejected | {} feedback installs, \
         max epoch {}",
        report.submitted, report.completed, report.degraded, rejected,
        report.feedback_installs, report.max_epoch,
    );
    for (reason, n) in &report.rejections {
        println!("  rejected {n} × {reason}");
    }
    println!(
        "wall {:.2?} | {:.1} qps | p50 {:.3} ms  p95 {:.3} ms  p99 {:.3} ms",
        std::time::Duration::from_nanos(report.wall_ns),
        report.qps,
        report.p50_ms,
        report.p95_ms,
        report.p99_ms,
    );
    if check {
        println!(
            "check: {} responses re-derived serially, {} mismatches",
            report.checked, report.check_mismatches
        );
    }
    if let (Some(recorder), Some(out)) = (recorder, metrics_out) {
        write_serve_metrics(&recorder, &out)?;
    }
    if check && !report.healthy() {
        return Err(format!(
            "loadgen check failed: {} mismatches, {} + {} of {} requests unaccounted",
            report.check_mismatches, report.completed, rejected, report.submitted
        ));
    }
    Ok(())
}

/// The `loadgen --connect` path: drive the seeded workload over real
/// sockets against an already-running `hmmm serve --listen` process.
#[allow(clippy::too_many_arguments)] // a CLI argument bundle, not an API
fn run_loadgen_net(
    args: &[String],
    addr: &str,
    clients: usize,
    requests: usize,
    zipf: f64,
    think_us: u64,
    top: usize,
    seed: u64,
    check: bool,
    obs: &RecorderHandle,
) -> Result<hmmm_serve::NetLoadReport, String> {
    let addr: std::net::SocketAddr = addr
        .parse()
        .map_err(|e| format!("bad --connect address {addr:?}: {e}"))?;
    let deadline = match flag_value(args, "--deadline-ms") {
        Some(ms) => Some(std::time::Duration::from_millis(parse_num(&ms, "--deadline-ms")?)),
        None => None,
    };
    let mut policy = hmmm_serve::RetryPolicy {
        seed,
        ..hmmm_serve::RetryPolicy::default()
    };
    if let Some(n) = flag_value(args, "--retries") {
        let n: u32 = parse_num(&n, "--retries")?;
        if n == 0 {
            return Err("--retries must be ≥ 1 (it counts attempts, not re-tries)".into());
        }
        policy.max_attempts = n;
    }
    let fault = match parse_fault_plan(args, "--net-fault-plan")? {
        Some(plan) => {
            eprintln!("client-side network fault injection active: retries are expected");
            hmmm_core::FaultHandle::from_plan(plan)
        }
        None => hmmm_core::FaultHandle::noop(),
    };
    // --check re-derives responses against a locally built epoch-0
    // snapshot, so it needs the same catalog file — and the same --coarse
    // / --fault-plan flags — the server was started with.
    let net_check = if check {
        let path = positional(args, 0)
            .ok_or("loadgen --connect --check requires the server's catalog path")?;
        let catalog = load_observed(path, obs)?;
        let snapshot = hmmm_serve::ModelSnapshot::build(catalog, &BuildConfig::default())
            .map_err(|e| e.to_string())?;
        let mut retrieval = RetrievalConfig::content_only();
        apply_coarse_flags(args, &mut retrieval)?;
        if let Some(plan) = parse_fault_plan(args, "--fault-plan")? {
            retrieval = retrieval.with_fault_plan(plan);
        }
        Some(hmmm_serve::NetCheck {
            snapshot: std::sync::Arc::new(snapshot),
            retrieval,
        })
    } else {
        None
    };
    eprintln!(
        "loadgen: {clients} clients × {requests} requests (zipf {zipf}, think {think_us}µs) \
         over TCP against {addr}{}",
        if check { ", exactness check on" } else { "" },
    );
    let config = hmmm_serve::NetWorkloadConfig {
        clients,
        requests_per_client: requests,
        zipf_exponent: zipf,
        mean_interarrival: std::time::Duration::from_micros(think_us),
        deadline,
        limit: top,
        seed,
        policy,
        fault,
        recorder: obs.clone(),
        check: net_check,
    };
    hmmm_serve::run_net_workload(addr, &config).map_err(|e| e.to_string())
}

fn print_net_report(report: &hmmm_serve::NetLoadReport, check: bool) {
    let rejected: usize = report.rejections.values().sum();
    println!(
        "{} submitted: {} completed ({} degraded), {} rejected | max epoch {}",
        report.submitted, report.completed, report.degraded, rejected, report.max_epoch,
    );
    for (reason, n) in &report.rejections {
        println!("  rejected {n} × {reason}");
    }
    println!(
        "net: {} retries ({} successful), {} give-ups, {} mid-response errors \
         ({} reissued)",
        report.retries,
        report.retry_successes,
        report.give_ups,
        report.mid_response_errors,
        report.reissues,
    );
    println!(
        "wall {:.2?} | {:.1} qps | p50 {:.3} ms  p95 {:.3} ms  p99 {:.3} ms",
        std::time::Duration::from_nanos(report.wall_ns),
        report.qps,
        report.p50_ms,
        report.p95_ms,
        report.p99_ms,
    );
    if check {
        println!(
            "check: {} responses re-derived locally, {} mismatches",
            report.checked, report.check_mismatches
        );
    }
}

fn cmd_matn(args: &[String]) -> Result<(), String> {
    let text = positional(args, 0).ok_or("matn requires a pattern string")?;
    let pattern = parse_pattern(text).map_err(|e| e.to_string())?;
    let matn = Matn::from_pattern(&pattern);
    println!("canonical : {pattern}");
    println!("MATN      : {matn}");
    println!("states    : {}, arcs: {}\n", matn.state_count(), matn.arcs().len());
    print!("{}", matn.to_dot());
    Ok(())
}
