//! # hmmm-suite
//!
//! Umbrella crate for the Hierarchical Markov Model Mediator (HMMM) video
//! database suite — a from-scratch Rust reproduction of Zhao, Chen & Shyu,
//! *Video Database Modeling and Temporal Pattern Retrieval using
//! Hierarchical Markov Model Mediator* (ICDE 2006).
//!
//! This crate re-exports every component crate and hosts the runnable
//! examples (`examples/`) and the cross-crate integration tests (`tests/`).
//! See the repository README for the architecture overview, DESIGN.md for
//! the system inventory and substitutions, and EXPERIMENTS.md for the
//! paper-vs-measured record.
//!
//! ## The pipeline at a glance
//!
//! ```text
//! synthetic video ──► shot boundaries ──► Table-1 features ──► decision-tree
//!  (hmmm-media)        (hmmm-shot)        (hmmm-features)      event mining
//!                                                              (hmmm-annotate)
//!        ▼                                                          │
//!   video catalog  ◄───────────────────────────────────────────────┘
//!  (hmmm-storage)
//!        │
//!        ▼
//!   two-level HMMM  ──►  temporal pattern retrieval  ◄── query language
//!    (hmmm-core)          (hmmm-core::retrieve)           (hmmm-query)
//!        ▲                                                    ▲
//!        └── relevance feedback / offline learning ───────────┘
//! ```

#![forbid(unsafe_code)]

pub use hmmm_annotate as annotate;
pub use hmmm_baselines as baselines;
pub use hmmm_core as core;
pub use hmmm_features as features;
pub use hmmm_matrix as matrix;
pub use hmmm_media as media;
pub use hmmm_query as query;
pub use hmmm_shot as shot;
pub use hmmm_signal as signal;
pub use hmmm_storage as storage;

use hmmm_annotate::{AnnotatorConfig, EventAnnotator};
use hmmm_features::{extract_shot, ExtractorConfig, FeatureVector};
use hmmm_media::{EventKind, SyntheticArchive};
use hmmm_storage::Catalog;

/// How a catalog's event annotations are produced during ingest.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AnnotationSource {
    /// Copy the ground-truth script annotations (the paper's human
    /// annotators).
    GroundTruth,
    /// Train the decision-tree miner on a fraction of the archive and let
    /// it annotate the rest (the paper's refs \[6\]\[7\] pipeline). The held-in
    /// training shots keep their ground-truth labels.
    Mined {
        /// Fraction of videos whose ground truth trains the miner.
        train_fraction: f64,
    },
}

/// Renders every shot of an archive, extracts Table-1 features, annotates
/// events, and assembles the video-database [`Catalog`] — the "video
/// processing" half of the paper's Figure-1 pipeline in one call.
///
/// This is deliberately in the umbrella crate: it is the only place the
/// whole substrate stack composes.
pub fn ingest_archive(archive: &SyntheticArchive, source: AnnotationSource) -> Catalog {
    let extractor = ExtractorConfig::default();

    // Pass 1: features + ground-truth events for every shot.
    let mut videos: Vec<Vec<(Vec<EventKind>, FeatureVector)>> = Vec::new();
    for video in archive.videos() {
        let mut shots = Vec::with_capacity(video.shot_count());
        for i in 0..video.shot_count() {
            let rendered = video.render_shot(i).expect("index in range");
            let features = extract_shot(&rendered.frames, &rendered.audio, &extractor);
            let events = video.shot(i).expect("index in range").events.clone();
            shots.push((events, features));
        }
        videos.push(shots);
    }

    // Pass 2 (mined mode): replace annotations on the held-out videos with
    // the decision-tree miner's predictions.
    if let AnnotationSource::Mined { train_fraction } = source {
        let train_videos = ((archive.video_count() as f64 * train_fraction).ceil() as usize)
            .clamp(1, archive.video_count());
        let train: Vec<(FeatureVector, Vec<EventKind>)> = videos[..train_videos]
            .iter()
            .flatten()
            .map(|(events, features)| (*features, events.clone()))
            .collect();
        if let Some(annotator) = EventAnnotator::train(&train, AnnotatorConfig::default()) {
            for shots in videos.iter_mut().skip(train_videos) {
                for (events, features) in shots.iter_mut() {
                    *events = annotator.annotate(features);
                }
            }
        }
    }

    let mut catalog = Catalog::new();
    for (i, shots) in videos.into_iter().enumerate() {
        catalog.add_video(format!("video-{i:03}"), shots);
    }
    catalog
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmmm_media::ArchiveConfig;

    #[test]
    fn ingest_ground_truth_preserves_script() {
        let archive = SyntheticArchive::generate(ArchiveConfig {
            videos: 2,
            shots_per_video: 12,
            event_rate: 0.3,
            ..ArchiveConfig::default()
        });
        let catalog = ingest_archive(&archive, AnnotationSource::GroundTruth);
        assert_eq!(catalog.video_count(), 2);
        assert_eq!(catalog.shot_count(), 24);
        assert_eq!(catalog.total_events(), archive.total_events());
        assert!(catalog.validate().is_ok());
    }

    #[test]
    fn ingest_mined_changes_heldout_annotations_only_plausibly() {
        let archive = SyntheticArchive::generate(ArchiveConfig {
            videos: 3,
            shots_per_video: 30,
            event_rate: 0.3,
            ..ArchiveConfig::default()
        });
        let catalog = ingest_archive(
            &archive,
            AnnotationSource::Mined {
                train_fraction: 0.4,
            },
        );
        assert!(catalog.validate().is_ok());
        // Training videos (first ceil(3*0.4)=2) keep ground truth.
        let gt = ingest_archive(&archive, AnnotationSource::GroundTruth);
        for (a, b) in catalog
            .shots_of_video(hmmm_storage::VideoId(0))
            .iter()
            .zip(gt.shots_of_video(hmmm_storage::VideoId(0)))
        {
            assert_eq!(a.events, b.events);
        }
    }
}
