//! Deterministic fault-injection suite: drives every [`FaultPlan`] field
//! through the serial/parallel × cache × prune configuration matrix and
//! asserts the degraded contract from the PR-5 issue:
//!
//! * panics are isolated per video — survivors complete and rank;
//! * an empty plan is byte-invisible (rankings and stats identical to a
//!   plain config);
//! * a zero deadline degrades before any video is admitted; a generous
//!   one changes nothing;
//! * injected latency plus a small deadline abandons the stalled beam and
//!   reports the unvisited remainder;
//! * injected transient I/O errors exercise the atomic writer's
//!   retry/backoff and are counted.

use hmmm_core::{
    build_hmmm, load_model_with, save_model_with, BuildConfig, DeadlineConfig, DegradedReason,
    FaultHandle, FaultPlan, InMemoryRecorder, RetrievalConfig, Retriever,
};
use hmmm_features::{FeatureId, FeatureVector};
use hmmm_media::EventKind;
use hmmm_query::{CompiledPattern, QueryTranslator};
use hmmm_storage::{Catalog, PersistOptions, TestDir};
use std::time::Duration;

fn feat(g: f64, v: f64) -> FeatureVector {
    let mut f = FeatureVector::zeros();
    f[FeatureId::GrassRatio] = g;
    f[FeatureId::VolumeMean] = v;
    f
}

/// Four near-identical goal videos: every one is eligible for the query,
/// so the visit bookkeeping below is exact (under `content_only` no
/// Step-2 filter removes any of them).
fn catalog() -> Catalog {
    let mut c = Catalog::new();
    for i in 0..4 {
        let d = i as f64 * 0.01;
        c.add_video(
            format!("v{i}"),
            vec![
                (vec![EventKind::FreeKick], feat(0.70 + d, 0.20)),
                (vec![], feat(0.50, 0.50 + d)),
                (vec![EventKind::Goal], feat(0.80, 0.90 - d)),
                (vec![EventKind::Goal], feat(0.75 + d, 0.95)),
            ],
        );
    }
    c
}

fn pattern() -> CompiledPattern {
    QueryTranslator::new(EventKind::ALL.iter().map(|k| k.name()))
        .compile("free_kick -> goal")
        .unwrap()
}

/// The serial/parallel × cache × prune matrix every plan runs through.
fn configs() -> Vec<(String, RetrievalConfig)> {
    let mut out = Vec::new();
    for &threads in &[1usize, 4] {
        for &cache in &[false, true] {
            for &prune in &[false, true] {
                out.push((
                    format!("threads={threads} cache={cache} prune={prune}"),
                    RetrievalConfig {
                        beam_width: 2,
                        threads: Some(threads),
                        use_sim_cache: cache,
                        prune,
                        ..RetrievalConfig::content_only()
                    },
                ));
            }
        }
    }
    out
}

#[test]
fn all_but_one_video_panicking_still_ranks_the_survivor() {
    let c = catalog();
    let model = build_hmmm(&c, &BuildConfig::default()).unwrap();
    let pat = pattern();
    let survivor = 3usize;
    let plan = FaultPlan::panicking([0, 1, 2]);
    for (label, cfg) in configs() {
        let cfg = cfg.with_fault_plan(plan.clone());
        let r = Retriever::new(&model, &c, cfg).unwrap();
        let (results, stats) = r.retrieve(&pat, 10).unwrap();
        assert!(!results.is_empty(), "{label}: survivor produced no ranking");
        assert!(
            results.iter().all(|p| p.video.index() == survivor),
            "{label}: ranked pattern from a poisoned video"
        );
        // The survivor emits far fewer than `limit` candidates, so the
        // shared threshold never turns positive and no panicking video can
        // be bound-skipped before entry: all three must be recorded.
        assert_eq!(stats.videos_failed, 3, "{label}");
        assert_eq!(stats.videos_skipped_by_bound, 0, "{label}");
        assert_eq!(stats.panic_payloads.len(), 3, "{label}");
        let mut sorted = stats.panic_payloads.clone();
        sorted.sort();
        assert_eq!(stats.panic_payloads, sorted, "{label}: payloads unsorted");
        for p in &stats.panic_payloads {
            assert!(
                p.contains("injected fault: panic on video"),
                "{label}: unexpected payload {p:?}"
            );
        }
        let degraded = stats.degraded.expect("degraded marker");
        assert_eq!(degraded.reason, DegradedReason::WorkerPanic, "{label}");
        assert_eq!(degraded.videos_failed, 3, "{label}");
        assert_eq!(degraded.videos_unvisited, 0, "{label}");
        assert!(!stats.deadline_expired, "{label}");
    }
}

#[test]
fn every_video_panicking_returns_an_empty_ranking() {
    let c = catalog();
    let model = build_hmmm(&c, &BuildConfig::default()).unwrap();
    let pat = pattern();
    let plan = FaultPlan {
        panic_rate: 1.0,
        ..FaultPlan::default()
    };
    for (label, cfg) in configs() {
        let r = Retriever::new(&model, &c, cfg.with_fault_plan(plan.clone())).unwrap();
        let (results, stats) = r.retrieve(&pat, 10).unwrap();
        assert!(results.is_empty(), "{label}");
        assert_eq!(stats.videos_failed, 4, "{label}");
        assert_eq!(
            stats.degraded.expect("degraded").reason,
            DegradedReason::WorkerPanic,
            "{label}"
        );
    }
}

#[test]
fn empty_plan_is_byte_invisible() {
    let c = catalog();
    let model = build_hmmm(&c, &BuildConfig::default()).unwrap();
    let pat = pattern();
    assert!(FaultPlan::default().is_empty());
    for (label, cfg) in configs() {
        let plain = Retriever::new(&model, &c, cfg.clone()).unwrap();
        let faulted =
            Retriever::new(&model, &c, cfg.with_fault_plan(FaultPlan::default())).unwrap();
        let (a, a_stats) = plain.retrieve(&pat, 10).unwrap();
        let (b, b_stats) = faulted.retrieve(&pat, 10).unwrap();
        assert_eq!(a, b, "{label}: empty plan changed the ranking");
        // Pruning counters race across workers; everything is exact in
        // the serial configurations.
        if label.starts_with("threads=1") {
            assert_eq!(a_stats, b_stats, "{label}: empty plan changed stats");
        }
        assert!(b_stats.degraded.is_none(), "{label}");
    }
}

#[test]
fn zero_deadline_degrades_before_any_video() {
    let c = catalog();
    let model = build_hmmm(&c, &BuildConfig::default()).unwrap();
    let pat = pattern();
    for (label, cfg) in configs() {
        let cfg = cfg.with_deadline(DeadlineConfig {
            budget: Duration::ZERO,
            check_interval: 1,
        });
        let r = Retriever::new(&model, &c, cfg).unwrap();
        let (results, stats) = r.retrieve(&pat, 10).unwrap();
        assert!(results.is_empty(), "{label}");
        assert!(stats.deadline_expired, "{label}");
        assert_eq!(stats.videos_visited, 0, "{label}");
        assert_eq!(stats.videos_unvisited, 4, "{label}");
        let degraded = stats.degraded.expect("degraded marker");
        assert_eq!(degraded.reason, DegradedReason::DeadlineExpired, "{label}");
        assert_eq!(degraded.videos_unvisited, 4, "{label}");
    }
}

#[test]
fn generous_deadline_is_a_no_op() {
    let c = catalog();
    let model = build_hmmm(&c, &BuildConfig::default()).unwrap();
    let pat = pattern();
    for (label, cfg) in configs() {
        let plain = Retriever::new(&model, &c, cfg.clone()).unwrap();
        let bounded = Retriever::new(
            &model,
            &c,
            cfg.with_deadline(DeadlineConfig::new(Duration::from_secs(3600))),
        )
        .unwrap();
        let (a, a_stats) = plain.retrieve(&pat, 10).unwrap();
        let (b, b_stats) = bounded.retrieve(&pat, 10).unwrap();
        assert_eq!(a, b, "{label}: unexpired deadline changed the ranking");
        if label.starts_with("threads=1") {
            assert_eq!(a_stats, b_stats, "{label}");
        }
        assert!(!b_stats.deadline_expired, "{label}");
        assert!(b_stats.degraded.is_none(), "{label}");
    }
}

#[test]
fn pure_latency_injection_never_changes_the_ranking() {
    let c = catalog();
    let model = build_hmmm(&c, &BuildConfig::default()).unwrap();
    let pat = pattern();
    let plan = FaultPlan {
        latency_step: Some(1),
        latency_ns: 200_000, // 0.2 ms per video — a stall, not a failure
        ..FaultPlan::default()
    };
    for (label, cfg) in configs() {
        let plain = Retriever::new(&model, &c, cfg.clone()).unwrap();
        let stalled = Retriever::new(&model, &c, cfg.with_fault_plan(plan.clone())).unwrap();
        let (a, _) = plain.retrieve(&pat, 10).unwrap();
        let (b, b_stats) = stalled.retrieve(&pat, 10).unwrap();
        assert_eq!(a, b, "{label}: latency changed the ranking");
        assert!(b_stats.degraded.is_none(), "{label}");
    }
}

#[test]
fn stalled_beam_is_abandoned_at_the_deadline() {
    let c = catalog();
    let model = build_hmmm(&c, &BuildConfig::default()).unwrap();
    let pat = pattern();
    // Every traversed video stalls 200 ms before its second lattice step;
    // the budget is 20 ms. Whichever video is admitted first blows the
    // budget mid-beam — its beam is abandoned whole and nothing else is
    // admitted. The 10× margin keeps this stable on slow CI machines.
    let plan = FaultPlan {
        latency_step: Some(1),
        latency_ns: 200_000_000,
        ..FaultPlan::default()
    };
    let cfg = RetrievalConfig {
        threads: Some(1),
        ..RetrievalConfig::content_only()
    }
    .with_fault_plan(plan)
    .with_deadline(DeadlineConfig {
        budget: Duration::from_millis(20),
        check_interval: 1,
    });
    let r = Retriever::new(&model, &c, cfg).unwrap();
    let (results, stats) = r.retrieve(&pat, 10).unwrap();
    assert!(results.is_empty());
    assert!(stats.deadline_expired);
    assert!(stats.beams_abandoned >= 1, "stalled beam was not abandoned");
    assert_eq!(stats.videos_unvisited, 3);
    assert_eq!(
        stats.degraded.expect("degraded").reason,
        DegradedReason::DeadlineExpired
    );
}

#[test]
fn panic_and_deadline_combine_into_one_degraded_reason() {
    let c = catalog();
    let model = build_hmmm(&c, &BuildConfig::default()).unwrap();
    let pat = pattern();
    // Videos 0–2 panic instantly on entry; the survivor stalls 200 ms
    // against a 20 ms budget. Serial visit order over this near-uniform
    // catalog admits the panicking videos around the survivor, so by the
    // time the stalled beam blows the budget at least one panic has been
    // recorded — both degradation causes are present in one query.
    let plan = FaultPlan {
        panic_on_videos: vec![0, 1, 2],
        latency_step: Some(1),
        latency_ns: 200_000_000,
        ..FaultPlan::default()
    };
    let cfg = RetrievalConfig {
        threads: Some(1),
        ..RetrievalConfig::content_only()
    }
    .with_fault_plan(plan)
    .with_deadline(DeadlineConfig {
        budget: Duration::from_millis(20),
        check_interval: 1,
    });
    let r = Retriever::new(&model, &c, cfg).unwrap();
    let (_, stats) = r.retrieve(&pat, 10).unwrap();
    assert!(stats.deadline_expired);
    assert!(stats.videos_failed >= 1, "no panic recorded before expiry");
    assert_eq!(
        stats.degraded.expect("degraded").reason,
        DegradedReason::DeadlineAndPanic
    );
}

#[test]
fn cli_style_json_plan_round_trips_and_drives_the_engine() {
    // The terse form `hmmm query --fault-plan` accepts: absent fields
    // default, exactly like the CLI path parses it.
    let plan: FaultPlan = serde_json::from_str(r#"{"panic_on_videos": [0, 1, 2]}"#).unwrap();
    assert_eq!(plan, FaultPlan::panicking([0, 1, 2]));
    let full = serde_json::to_string(&plan).unwrap();
    let back: FaultPlan = serde_json::from_str(&full).unwrap();
    assert_eq!(back, plan);

    let c = catalog();
    let model = build_hmmm(&c, &BuildConfig::default()).unwrap();
    let cfg = RetrievalConfig::content_only().with_fault_plan(plan);
    let r = Retriever::new(&model, &c, cfg).unwrap();
    let (results, stats) = r.retrieve(&pattern(), 10).unwrap();
    assert_eq!(stats.videos_failed, 3);
    assert!(results.iter().all(|p| p.video.index() == 3));
}

#[test]
fn injected_io_errors_exercise_the_atomic_writer_retry() {
    let c = catalog();
    let model = build_hmmm(&c, &BuildConfig::default()).unwrap();
    let dir = TestDir::new("hmmm_faults_io");
    let path = dir.file("model.json");
    // Tickets 0 and 1 fail transiently: the first save attempt dies on
    // its first ops, the retry succeeds.
    let handle = FaultHandle::from_plan(FaultPlan {
        io_error_on_ops: vec![0, 1],
        ..FaultPlan::default()
    });
    let rec = InMemoryRecorder::shared();
    let opts = PersistOptions {
        recorder: rec.handle(),
        fault: Some(&handle),
        ..PersistOptions::default()
    };
    save_model_with(&model, &path, &opts).unwrap();
    let report = rec.report();
    assert!(
        report.counter(hmmm_core::metrics::CTR_ATOMIC_WRITE_RETRIES) >= 1,
        "transient injections were not counted as retries"
    );
    // The published artifact is intact despite the injected failures.
    let back = load_model_with(&path, &c, &PersistOptions::default()).unwrap();
    assert_eq!(back, model);
}
