//! Ablation-style integration tests for the build options DESIGN.md calls
//! out: content-seeded `A_2`, learned vs uniform `P_{1,2}`, and retrieval
//! determinism.

use hmmm_core::{build_hmmm, BuildConfig, RetrievalConfig, Retriever};
use hmmm_features::{FeatureId, FeatureVector, FEATURE_COUNT};
use hmmm_media::EventKind;
use hmmm_query::QueryTranslator;
use hmmm_storage::Catalog;

fn feat(g: f64, v: f64, s3: f64) -> FeatureVector {
    let mut f = FeatureVector::zeros();
    f[FeatureId::GrassRatio] = g;
    f[FeatureId::VolumeMean] = v;
    f[FeatureId::Sub3Mean] = s3;
    f
}

/// Two goal-heavy videos, one card-heavy video.
fn catalog() -> Catalog {
    let mut c = Catalog::new();
    for i in 0..2 {
        c.add_video(
            format!("goals-{i}"),
            vec![
                (vec![EventKind::FreeKick], feat(0.7, 0.2, 0.8)),
                (vec![EventKind::Goal], feat(0.8, 0.9, 0.1)),
                (vec![EventKind::Goal], feat(0.78, 0.88, 0.12)),
            ],
        );
    }
    c.add_video(
        "cards",
        vec![
            (vec![EventKind::Foul], feat(0.4, 0.5, 0.9)),
            (vec![EventKind::YellowCard], feat(0.2, 0.3, 0.4)),
        ],
    );
    c
}

#[test]
fn content_seeded_a2_binds_similar_videos() {
    let c = catalog();
    let content = build_hmmm(&c, &BuildConfig::default()).unwrap();
    let literal = build_hmmm(&c, &BuildConfig::paper_literal()).unwrap();

    // Content seeding: the two goal videos are more affine to each other
    // than to the cards video.
    assert!(
        content.a2.get(0, 1) > content.a2.get(0, 2),
        "content A2 should bind goal videos: {} vs {}",
        content.a2.get(0, 1),
        content.a2.get(0, 2)
    );
    // Paper-literal: uniform — no preference before training.
    assert!((literal.a2.get(0, 1) - literal.a2.get(0, 2)).abs() < 1e-12);
}

#[test]
fn learned_p12_differs_from_uniform_and_concentrates() {
    let c = catalog();
    let learned = build_hmmm(&c, &BuildConfig::default()).unwrap();
    let uniform = build_hmmm(
        &c,
        &BuildConfig {
            learn_p12: false,
            ..BuildConfig::default()
        },
    )
    .unwrap();

    let goal = EventKind::Goal.index();
    let u = 1.0 / FEATURE_COUNT as f64;
    // Uniform config: every weight is 1/K.
    for col in 0..FEATURE_COUNT {
        assert!((uniform.p12.get(goal, col) - u).abs() < 1e-12);
    }
    // Learned config: mass concentrates on the features goal shots share
    // (entropy strictly below uniform's).
    let learned_entropy: f64 = (0..FEATURE_COUNT)
        .map(|col| {
            let p = learned.p12.get(goal, col);
            if p > 0.0 {
                -p * p.ln()
            } else {
                0.0
            }
        })
        .sum();
    assert!(
        learned_entropy < (FEATURE_COUNT as f64).ln() - 1e-6,
        "learned P12 row should concentrate (entropy {learned_entropy})"
    );
}

#[test]
fn retrieval_is_deterministic() {
    let c = catalog();
    let model = build_hmmm(&c, &BuildConfig::default()).unwrap();
    let translator = QueryTranslator::new(EventKind::ALL.iter().map(|k| k.name()));
    let pattern = translator.compile("free_kick -> goal").unwrap();
    let retriever = Retriever::new(&model, &c, RetrievalConfig::default()).unwrap();
    let (a, _) = retriever.retrieve(&pattern, 10).unwrap();
    let (b, _) = retriever.retrieve(&pattern, 10).unwrap();
    assert_eq!(a, b);
    // And across identically built models.
    let model2 = build_hmmm(&c, &BuildConfig::default()).unwrap();
    assert_eq!(model, model2);
}

#[test]
fn unannotated_weight_extends_reachability() {
    let mut c = Catalog::new();
    // One annotated shot followed by unannotated ones.
    c.add_video(
        "m",
        vec![
            (vec![EventKind::Goal], feat(0.8, 0.9, 0.1)),
            (vec![], feat(0.5, 0.4, 0.2)),
            (vec![], feat(0.6, 0.5, 0.3)),
        ],
    );
    let literal = build_hmmm(&c, &BuildConfig::paper_literal()).unwrap();
    // Literal: no forward annotation mass → shot 0 is absorbing.
    assert_eq!(literal.a2.rows(), 1);
    assert_eq!(literal.locals[0].a1.get(0, 1), 0.0);
    assert_eq!(literal.locals[0].a1.get(0, 0), 1.0);

    let smoothed = build_hmmm(
        &c,
        &BuildConfig {
            unannotated_weight: 0.5,
            ..BuildConfig::default()
        },
    )
    .unwrap();
    assert!(
        smoothed.locals[0].a1.get(0, 1) > 0.0,
        "smoothing must make unannotated shots reachable"
    );
}
