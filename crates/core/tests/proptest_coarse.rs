//! Properties of the two-stage coarse-to-fine retrieval.
//!
//! * `CoarseMode::Exact` is invisible in the rankings: for any archive,
//!   pattern, and engine configuration (thread count × similarity cache ×
//!   prune × deadline), the ranked patterns are byte-identical to the
//!   single-stage (`CoarseMode::Off`) run.
//! * `Exact` never pays the archive-wide bound scan: `bound_evaluations`
//!   is zero — the coarse summaries answer every bound by table lookup.
//! * `CoarseMode::Approx` recall@k against the full ranking is monotone
//!   non-decreasing in the candidate cut `C` (the E13 frontier is a real
//!   frontier, not noise).

use std::time::Duration;

use hmmm_core::{
    build_hmmm, BuildConfig, CoarseMode, DeadlineConfig, RetrievalConfig, Retriever,
};
use hmmm_features::{FeatureVector, FEATURE_COUNT};
use hmmm_media::EventKind;
use hmmm_query::{CompiledPattern, CompiledStep};
use hmmm_storage::Catalog;
use proptest::prelude::*;

fn feature_vector() -> impl Strategy<Value = FeatureVector> {
    proptest::collection::vec(0.0f64..1.0, FEATURE_COUNT)
        .prop_map(|v| FeatureVector::from_slice(&v).expect("exact length"))
}

fn events() -> impl Strategy<Value = Vec<EventKind>> {
    proptest::collection::vec(0usize..EventKind::COUNT, 0..3).prop_map(|idx| {
        let mut out: Vec<EventKind> = idx.into_iter().filter_map(EventKind::from_index).collect();
        out.dedup();
        out
    })
}

fn catalog() -> impl Strategy<Value = Catalog> {
    proptest::collection::vec(
        proptest::collection::vec((events(), feature_vector()), 1..10),
        2..8,
    )
    .prop_map(|videos| {
        let mut c = Catalog::new();
        for (i, shots) in videos.into_iter().enumerate() {
            c.add_video(format!("v{i}"), shots);
        }
        c
    })
}

fn pattern() -> impl Strategy<Value = CompiledPattern> {
    proptest::collection::vec(
        (
            proptest::collection::vec(0usize..EventKind::COUNT, 1..3),
            proptest::option::of(0usize..6),
        ),
        1..4,
    )
    .prop_map(|steps| CompiledPattern {
        steps: steps
            .into_iter()
            .map(|(mut alternatives, max_gap)| {
                alternatives.dedup();
                CompiledStep {
                    alternatives,
                    max_gap,
                }
            })
            .collect(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `Exact` coarse rankings equal single-stage rankings across the
    /// whole configuration grid: thread count × similarity cache × prune
    /// × annotation regime × deadline presence (a far-future deadline, so
    /// the clock machinery runs without ever firing).
    #[test]
    fn coarse_exact_is_ranking_exact(
        cat in catalog(),
        pat in pattern(),
        limit in 1usize..20,
        threads in 1usize..5,
        use_cache in proptest::sample::select(vec![false, true]),
        prune in proptest::sample::select(vec![false, true]),
        content_only in proptest::sample::select(vec![false, true]),
        with_deadline in proptest::sample::select(vec![false, true]),
    ) {
        let model = build_hmmm(&cat, &BuildConfig { unannotated_weight: 0.2, ..BuildConfig::default() }).unwrap();
        let base = if content_only {
            RetrievalConfig::content_only()
        } else {
            RetrievalConfig::default()
        };
        let off_cfg = RetrievalConfig {
            threads: Some(threads),
            use_sim_cache: use_cache,
            prune,
            deadline: with_deadline
                .then(|| DeadlineConfig::new(Duration::from_secs(3600))),
            ..base
        };
        let exact_cfg = off_cfg.clone().with_coarse(CoarseMode::Exact);
        let (off_results, off_stats) =
            Retriever::new(&model, &cat, off_cfg).unwrap().retrieve(&pat, limit).unwrap();
        let (cx_results, cx_stats) =
            Retriever::new(&model, &cat, exact_cfg).unwrap().retrieve(&pat, limit).unwrap();
        prop_assert_eq!(off_results, cx_results);
        // The single-stage run never touches the coarse machinery...
        prop_assert_eq!(off_stats.coarse_candidates, 0);
        prop_assert_eq!(off_stats.coarse_bound_lookups, 0);
        // ...and the coarse run never pays the archive-wide bound scan.
        prop_assert_eq!(cx_stats.bound_evaluations, 0);
        // The postings union is the B_2-eligible set, so the skip counter
        // is preserved exactly.
        prop_assert_eq!(cx_stats.videos_skipped, off_stats.videos_skipped);
        // Every coarse candidate is accounted for: traversed, bound-
        // skipped, or (deadline grid only — it never fires here) unvisited.
        prop_assert_eq!(
            cx_stats.videos_visited
                + cx_stats.videos_skipped_by_bound
                + cx_stats.videos_unvisited,
            cx_stats.coarse_candidates
        );
    }

    /// Approx recall@k versus the full ranking is monotone non-decreasing
    /// in the candidate cut `C`: the coarse candidate order is total, so
    /// cuts are nested prefixes of one list.
    #[test]
    fn approx_recall_is_monotone_in_candidate_cut(
        cat in catalog(),
        pat in pattern(),
        limit in 1usize..10,
    ) {
        let model = build_hmmm(&cat, &BuildConfig::default()).unwrap();
        let full = Retriever::new(&model, &cat, RetrievalConfig::default())
            .unwrap()
            .retrieve(&pat, limit)
            .unwrap()
            .0;
        let mut prev_recall = 0.0f64;
        let mut prev_candidates = 0usize;
        for c in [1usize, 2, 4, 8, 64] {
            let cfg = RetrievalConfig {
                coarse: CoarseMode::Approx,
                coarse_candidates: c,
                ..RetrievalConfig::default()
            };
            let (results, stats) = Retriever::new(&model, &cat, cfg)
                .unwrap()
                .retrieve(&pat, limit)
                .unwrap();
            prop_assert!(stats.coarse_candidates <= c);
            // Larger cuts admit supersets of candidates.
            prop_assert!(stats.coarse_candidates >= prev_candidates);
            prev_candidates = stats.coarse_candidates;
            let recall = if full.is_empty() {
                1.0
            } else {
                full.iter().filter(|p| results.contains(p)).count() as f64
                    / full.len() as f64
            };
            prop_assert!(
                recall >= prev_recall,
                "recall dropped from {} to {} at C={}",
                prev_recall,
                recall,
                c
            );
            prev_recall = recall;
        }
        // A cut wider than the archive is no cut at all: the ranking is
        // the exact one and recall@k is 1 by construction.
        prop_assert_eq!(prev_recall, 1.0);
    }

    /// Serially the coarse stage is fully deterministic: two identical
    /// `Exact` runs agree on rankings and on every counter.
    #[test]
    fn serial_coarse_is_deterministic(cat in catalog(), pat in pattern(), limit in 1usize..20) {
        let model = build_hmmm(&cat, &BuildConfig::default()).unwrap();
        let cfg = RetrievalConfig {
            threads: Some(1),
            ..RetrievalConfig::default()
        }
        .with_coarse(CoarseMode::Exact);
        let (a_results, a_stats) =
            Retriever::new(&model, &cat, cfg.clone()).unwrap().retrieve(&pat, limit).unwrap();
        let (b_results, b_stats) =
            Retriever::new(&model, &cat, cfg).unwrap().retrieve(&pat, limit).unwrap();
        prop_assert_eq!(a_results, b_results);
        prop_assert_eq!(a_stats, b_stats);
    }
}
