//! Properties of the degraded paths (PR-5):
//!
//! * an empty fault plan is byte-invisible in every threads × cache ×
//!   prune configuration;
//! * a panic-degraded ranking is exactly the full ranking restricted to
//!   the surviving videos (injected panics fire at video entry, so a
//!   faulted run *is* a retrieval over the survivor subset);
//! * the same plan + seed degrades the same way on every run — rankings,
//!   failure counts, and payloads are deterministic.

use hmmm_core::{build_hmmm, BuildConfig, FaultPlan, RetrievalConfig, Retriever};
use hmmm_features::{FeatureVector, FEATURE_COUNT};
use hmmm_media::EventKind;
use hmmm_query::{CompiledPattern, CompiledStep};
use hmmm_storage::Catalog;
use proptest::prelude::*;

fn feature_vector() -> impl Strategy<Value = FeatureVector> {
    proptest::collection::vec(0.0f64..1.0, FEATURE_COUNT)
        .prop_map(|v| FeatureVector::from_slice(&v).expect("exact length"))
}

fn events() -> impl Strategy<Value = Vec<EventKind>> {
    proptest::collection::vec(0usize..EventKind::COUNT, 0..3).prop_map(|idx| {
        let mut out: Vec<EventKind> = idx.into_iter().filter_map(EventKind::from_index).collect();
        out.dedup();
        out
    })
}

fn catalog() -> impl Strategy<Value = Catalog> {
    proptest::collection::vec(
        proptest::collection::vec((events(), feature_vector()), 1..10),
        2..8,
    )
    .prop_map(|videos| {
        let mut c = Catalog::new();
        for (i, shots) in videos.into_iter().enumerate() {
            c.add_video(format!("v{i}"), shots);
        }
        c
    })
}

fn pattern() -> impl Strategy<Value = CompiledPattern> {
    proptest::collection::vec(
        (
            proptest::collection::vec(0usize..EventKind::COUNT, 1..3),
            proptest::option::of(0usize..6),
        ),
        1..4,
    )
    .prop_map(|steps| CompiledPattern {
        steps: steps
            .into_iter()
            .map(|(mut alternatives, max_gap)| {
                alternatives.dedup();
                CompiledStep {
                    alternatives,
                    max_gap,
                }
            })
            .collect(),
    })
}

/// Seeded Bernoulli plan — the same generator space the CLI's
/// `--fault-plan` accepts. The rate grid includes both extremes so the
/// all-survive and all-fail corners are exercised every run.
fn plan() -> impl Strategy<Value = FaultPlan> {
    (
        0u64..u64::MAX,
        proptest::sample::select(vec![0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0]),
    )
        .prop_map(|(seed, panic_rate)| FaultPlan {
            seed,
            panic_rate,
            ..FaultPlan::default()
        })
}

/// Coin flip (the vendored stub has no `any::<bool>()`).
fn coin() -> impl Strategy<Value = bool> {
    proptest::sample::select(vec![false, true])
}

fn base_config(threads: usize, cache: bool, prune: bool) -> RetrievalConfig {
    RetrievalConfig {
        threads: Some(threads),
        use_sim_cache: cache,
        prune,
        ..RetrievalConfig::content_only()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Zero faults: attaching an empty plan changes nothing, in any
    /// configuration — the rankings (and, serially, the stats) are
    /// byte-identical to a plain pre-PR config.
    #[test]
    fn empty_plan_is_invisible(
        cat in catalog(),
        pat in pattern(),
        threads in 1usize..5,
        cache in coin(),
        prune in coin(),
    ) {
        let model = build_hmmm(&cat, &BuildConfig::default()).unwrap();
        let cfg = base_config(threads, cache, prune);
        let plain = Retriever::new(&model, &cat, cfg.clone()).unwrap();
        let faulted = Retriever::new(&model, &cat, cfg.with_fault_plan(FaultPlan::default())).unwrap();
        let (a, a_stats) = plain.retrieve(&pat, 10).unwrap();
        let (b, b_stats) = faulted.retrieve(&pat, 10).unwrap();
        prop_assert_eq!(a, b);
        prop_assert!(b_stats.degraded.is_none());
        prop_assert_eq!(b_stats.videos_failed, 0);
        // Pruning work counters race across workers; serial runs are exact.
        if threads == 1 {
            prop_assert_eq!(a_stats, b_stats);
        }
    }

    /// A panic-degraded ranking is the full ranking restricted to the
    /// surviving videos: both runs sort candidates by the same total
    /// order, so the survivors' entries of the full top-k must be a
    /// prefix of the degraded top-k.
    #[test]
    fn degraded_ranking_is_the_survivor_restriction(
        cat in catalog(),
        pat in pattern(),
        fp in plan(),
        threads in 1usize..5,
        cache in coin(),
        prune in coin(),
        limit in 1usize..20,
    ) {
        let model = build_hmmm(&cat, &BuildConfig::default()).unwrap();
        let cfg = base_config(threads, cache, prune);
        let full = Retriever::new(&model, &cat, cfg.clone()).unwrap();
        let faulted = Retriever::new(&model, &cat, cfg.with_fault_plan(fp.clone())).unwrap();
        let (full_results, _) = full.retrieve(&pat, limit).unwrap();
        let (degraded_results, stats) = faulted.retrieve(&pat, limit).unwrap();
        let survives = |v: usize| !fp.panics_on(v);
        prop_assert!(degraded_results.iter().all(|p| survives(p.video.index())),
            "a poisoned video's pattern was ranked");
        let restricted: Vec<_> = full_results
            .into_iter()
            .filter(|p| survives(p.video.index()))
            .collect();
        prop_assert!(degraded_results.len() >= restricted.len());
        prop_assert_eq!(&degraded_results[..restricted.len()], &restricted[..]);
        // Without pruning every eligible video is entered, so the failure
        // count is exactly the poisoned share of the eligible set (with
        // pruning a poisoned video can be bound-skipped before entry).
        if !prune {
            let poisoned = (0..cat.video_count()).filter(|&v| fp.panics_on(v)).count();
            prop_assert_eq!(stats.videos_failed, poisoned);
        }
    }

    /// Same plan, same seed, same configuration → the same degraded
    /// outcome on every run.
    #[test]
    fn degradation_is_deterministic(
        cat in catalog(),
        pat in pattern(),
        fp in plan(),
        threads in 1usize..5,
        cache in coin(),
    ) {
        let model = build_hmmm(&cat, &BuildConfig::default()).unwrap();
        let cfg = base_config(threads, cache, false).with_fault_plan(fp);
        let r = Retriever::new(&model, &cat, cfg).unwrap();
        let (a, a_stats) = r.retrieve(&pat, 10).unwrap();
        let (b, b_stats) = r.retrieve(&pat, 10).unwrap();
        prop_assert_eq!(a, b);
        prop_assert_eq!(a_stats.videos_failed, b_stats.videos_failed);
        prop_assert_eq!(a_stats.panic_payloads, b_stats.panic_payloads);
        prop_assert_eq!(a_stats.degraded, b_stats.degraded);
    }
}
