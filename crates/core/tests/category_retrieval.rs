//! The d=3 category extension end-to-end: clustering + category-filtered
//! retrieval agrees with full-archive retrieval while visiting fewer
//! videos.

use hmmm_core::{
    build_hmmm, BuildConfig, CategoryLevel, RetrievalConfig, Retriever,
};
use hmmm_features::{FeatureId, FeatureVector};
use hmmm_media::EventKind;
use hmmm_query::QueryTranslator;
use hmmm_storage::Catalog;

fn feat(g: f64, v: f64) -> FeatureVector {
    let mut f = FeatureVector::zeros();
    f[FeatureId::GrassRatio] = g;
    f[FeatureId::VolumeMean] = v;
    f
}

/// Six videos in two clear genres: "match" videos with goals/kicks and
/// "discipline" videos with cards/fouls.
fn catalog() -> Catalog {
    let mut c = Catalog::new();
    for i in 0..3 {
        c.add_video(
            format!("match-{i}"),
            vec![
                (vec![EventKind::FreeKick], feat(0.7, 0.2 + 0.01 * i as f64)),
                (vec![EventKind::Goal], feat(0.8, 0.9)),
                (vec![], feat(0.5, 0.4)),
                (vec![EventKind::Goal], feat(0.75, 0.92)),
            ],
        );
    }
    for i in 0..3 {
        c.add_video(
            format!("discipline-{i}"),
            vec![
                (vec![EventKind::Foul], feat(0.4, 0.5 + 0.01 * i as f64)),
                (vec![EventKind::YellowCard], feat(0.2, 0.3)),
                (vec![EventKind::RedCard], feat(0.25, 0.35)),
            ],
        );
    }
    c
}

#[test]
fn category_filter_matches_full_retrieval() {
    let c = catalog();
    let model = build_hmmm(&c, &BuildConfig::default()).unwrap();
    let cats = CategoryLevel::build(&model, 2).unwrap();
    let translator = QueryTranslator::new(EventKind::ALL.iter().map(|k| k.name()));
    let pattern = translator.compile("free_kick -> goal").unwrap();
    let retriever = Retriever::new(&model, &c, RetrievalConfig::default()).unwrap();

    let (full, full_stats) = retriever.retrieve(&pattern, 10).unwrap();
    let eligible = cats.eligible_videos(&pattern.steps[0].alternatives);
    let (filtered, filtered_stats) = retriever
        .retrieve_within(&pattern, 10, Some(&eligible))
        .unwrap();

    // The goal category contains every free_kick video, so results agree…
    assert_eq!(full.len(), filtered.len());
    for (a, b) in full.iter().zip(filtered.iter()) {
        assert_eq!(a.shots, b.shots);
        assert!((a.score - b.score).abs() < 1e-12);
    }
    // …while the category pre-filter hands the retriever fewer videos to
    // even consider (B2-skips move up to the category level).
    assert!(eligible.len() < c.video_count());
    assert!(filtered_stats.videos_skipped <= full_stats.videos_skipped);
}

#[test]
fn retrieve_within_empty_subset_returns_nothing() {
    let c = catalog();
    let model = build_hmmm(&c, &BuildConfig::default()).unwrap();
    let translator = QueryTranslator::new(EventKind::ALL.iter().map(|k| k.name()));
    let pattern = translator.compile("goal").unwrap();
    let retriever = Retriever::new(&model, &c, RetrievalConfig::default()).unwrap();
    let (results, stats) = retriever.retrieve_within(&pattern, 5, Some(&[])).unwrap();
    assert!(results.is_empty());
    assert_eq!(stats.videos_visited, 0);
}

#[test]
fn retrieve_within_ignores_out_of_range_ids() {
    let c = catalog();
    let model = build_hmmm(&c, &BuildConfig::default()).unwrap();
    let translator = QueryTranslator::new(EventKind::ALL.iter().map(|k| k.name()));
    let pattern = translator.compile("goal").unwrap();
    let retriever = Retriever::new(&model, &c, RetrievalConfig::default()).unwrap();
    let bogus = vec![hmmm_storage::VideoId(999), hmmm_storage::VideoId(0)];
    let (results, _) = retriever.retrieve_within(&pattern, 5, Some(&bogus)).unwrap();
    // Only video 0 is real; it has goals.
    assert!(!results.is_empty());
    assert!(results.iter().all(|r| r.video.index() == 0));
}
