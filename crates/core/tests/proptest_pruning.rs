//! Property: exact top-k pruning is invisible in the rankings.
//!
//! The shared-threshold prune (`RetrievalConfig::prune`) may only change
//! *cost* counters — for any archive, pattern, beam width, result limit,
//! thread count and cache setting, the ranked patterns must be
//! byte-identical to the exhaustive (`prune: false`) run. The unit test at
//! the bottom pins the admissibility of the bounds themselves on the
//! paper's §4.2.1.1 worked example.

use hmmm_core::{
    build_hmmm, sim, BuildConfig, QueryBounds, RetrievalConfig, Retriever,
};
use hmmm_features::{FeatureId, FeatureVector, FEATURE_COUNT};
use hmmm_media::EventKind;
use hmmm_query::{CompiledPattern, CompiledStep};
use hmmm_storage::Catalog;
use proptest::prelude::*;

fn feature_vector() -> impl Strategy<Value = FeatureVector> {
    proptest::collection::vec(0.0f64..1.0, FEATURE_COUNT)
        .prop_map(|v| FeatureVector::from_slice(&v).expect("exact length"))
}

fn events() -> impl Strategy<Value = Vec<EventKind>> {
    proptest::collection::vec(0usize..EventKind::COUNT, 0..3).prop_map(|idx| {
        let mut out: Vec<EventKind> = idx.into_iter().filter_map(EventKind::from_index).collect();
        out.dedup();
        out
    })
}

fn catalog() -> impl Strategy<Value = Catalog> {
    proptest::collection::vec(
        proptest::collection::vec((events(), feature_vector()), 1..10),
        2..8,
    )
    .prop_map(|videos| {
        let mut c = Catalog::new();
        for (i, shots) in videos.into_iter().enumerate() {
            c.add_video(format!("v{i}"), shots);
        }
        c
    })
}

fn pattern() -> impl Strategy<Value = CompiledPattern> {
    proptest::collection::vec(
        (
            proptest::collection::vec(0usize..EventKind::COUNT, 1..3),
            proptest::option::of(0usize..6),
        ),
        1..4,
    )
    .prop_map(|steps| CompiledPattern {
        steps: steps
            .into_iter()
            .map(|(mut alternatives, max_gap)| {
                alternatives.dedup();
                CompiledStep {
                    alternatives,
                    max_gap,
                }
            })
            .collect(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pruned rankings equal exhaustive rankings across the whole config
    /// grid the engine exposes: thread count × similarity cache ×
    /// annotation regime × beam width × top-k limit.
    #[test]
    fn pruning_is_ranking_exact(
        cat in catalog(),
        pat in pattern(),
        beam in 1usize..5,
        limit in 1usize..20,
        threads in 1usize..5,
        use_cache in proptest::sample::select(vec![false, true]),
        content_only in proptest::sample::select(vec![false, true]),
    ) {
        let model = build_hmmm(&cat, &BuildConfig { unannotated_weight: 0.2, ..BuildConfig::default() }).unwrap();
        let base = if content_only {
            RetrievalConfig::content_only()
        } else {
            RetrievalConfig::default()
        };
        let pruned_cfg = RetrievalConfig {
            beam_width: beam,
            threads: Some(threads),
            use_sim_cache: use_cache,
            prune: true,
            ..base
        };
        let exhaustive_cfg = RetrievalConfig { prune: false, ..pruned_cfg.clone() };
        let (p_results, p_stats) =
            Retriever::new(&model, &cat, pruned_cfg).unwrap().retrieve(&pat, limit).unwrap();
        let (e_results, e_stats) =
            Retriever::new(&model, &cat, exhaustive_cfg).unwrap().retrieve(&pat, limit).unwrap();
        prop_assert_eq!(p_results, e_results);
        // The exhaustive run never touches the pruning machinery.
        prop_assert_eq!(e_stats.videos_skipped_by_bound, 0);
        prop_assert_eq!(e_stats.entries_pruned, 0);
        prop_assert_eq!(e_stats.threshold_raises, 0);
        prop_assert_eq!(e_stats.bound_evaluations, 0);
        // Every B_2-eligible video is either traversed or bound-skipped —
        // the prune never loses track of a video.
        prop_assert_eq!(
            p_stats.videos_visited + p_stats.videos_skipped_by_bound,
            e_stats.videos_visited
        );
        prop_assert_eq!(p_stats.videos_skipped, e_stats.videos_skipped);
        // Pruning only ever removes traversal work, never adds it.
        prop_assert!(p_stats.transitions_examined <= e_stats.transitions_examined);
    }

    /// Serially the prune is fully deterministic: two identical runs agree
    /// on every counter, threshold raises included.
    #[test]
    fn serial_pruning_is_deterministic(cat in catalog(), pat in pattern(), limit in 1usize..20) {
        let model = build_hmmm(&cat, &BuildConfig::default()).unwrap();
        let cfg = RetrievalConfig { threads: Some(1), prune: true, ..RetrievalConfig::default() };
        let (a_results, a_stats) =
            Retriever::new(&model, &cat, cfg.clone()).unwrap().retrieve(&pat, limit).unwrap();
        let (b_results, b_stats) =
            Retriever::new(&model, &cat, cfg).unwrap().retrieve(&pat, limit).unwrap();
        prop_assert_eq!(a_results, b_results);
        prop_assert_eq!(a_stats, b_stats);
    }
}

/// §4.2.1.1 worked example (three shots annotated [FreeKick],
/// [FreeKick+Goal], [CornerKick]): the video and per-entry upper bounds
/// dominate every Eq.-(15) score the traversal can actually produce, so
/// pruning against them can never discard a true top-k candidate.
#[test]
fn bounds_are_admissible_on_worked_example() {
    let feat = |g: f64, v: f64| {
        let mut f = FeatureVector::zeros();
        f[FeatureId::GrassRatio] = g;
        f[FeatureId::VolumeMean] = v;
        f
    };
    let mut c = Catalog::new();
    c.add_video(
        "m1",
        vec![
            (vec![EventKind::FreeKick], feat(0.3, 0.2)),
            (vec![EventKind::FreeKick, EventKind::Goal], feat(0.8, 0.9)),
            (vec![EventKind::CornerKick], feat(0.5, 0.4)),
        ],
    );
    let model = build_hmmm(&c, &BuildConfig::default()).unwrap();
    let pat = CompiledPattern {
        steps: vec![
            CompiledStep {
                alternatives: vec![EventKind::FreeKick.index()],
                max_gap: None,
            },
            CompiledStep {
                alternatives: vec![EventKind::Goal.index(), EventKind::CornerKick.index()],
                max_gap: None,
            },
        ],
    };
    // The bounds exactly as `retrieve_within` derives them: per-step
    // maxima over each alternative's archive-wide calibrated similarity.
    let step_max: Vec<f64> = pat
        .steps
        .iter()
        .map(|s| {
            s.alternatives
                .iter()
                .map(|&e| sim::max_calibrated_similarity(&model, e))
                .fold(0.0, f64::max)
        })
        .collect();
    let qb = QueryBounds::new(step_max);
    let vb = qb.for_video(&model.locals[0]);

    // Enumerate everything the traversal can produce (wide beam, no
    // prune) and check domination candidate by candidate.
    let cfg = RetrievalConfig {
        beam_width: 16,
        per_video_results: 16,
        threads: Some(1),
        prune: false,
        ..RetrievalConfig::default()
    };
    let (results, _) = Retriever::new(&model, &c, cfg)
        .unwrap()
        .retrieve(&pat, 16)
        .unwrap();
    assert!(!results.is_empty(), "worked example must match free_kick -> goal");
    for r in &results {
        assert!(
            vb.video_ub() >= r.score,
            "video bound {} must dominate score {}",
            vb.video_ub(),
            r.score
        );
        // Every prefix of the walk must bound its own completion: the
        // entry bound at step j (score-so-far + w_j · row_max · chain_j)
        // dominates the final Eq.-(15) score. The row maximum charged is
        // the one the traversal would use — the prefix shot's own forward
        // `A_1` maximum.
        let mut prefix = 0.0;
        for (j, (&w, &shot)) in r.weights.iter().zip(r.shots.iter()).enumerate() {
            prefix += w;
            let row_max = model.locals[0].a1_row_max[shot.0];
            assert!(
                vb.entry_ub(prefix, w, j, row_max) >= r.score,
                "entry bound at step {j} ({}) must dominate final score {}",
                vb.entry_ub(prefix, w, j, row_max),
                r.score
            );
        }
    }
}
