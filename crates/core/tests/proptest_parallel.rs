//! Property: parallel retrieval is byte-identical to serial retrieval.
//!
//! The parallel fan-out must be a pure scheduling change — same ranked
//! patterns, same order, same merged work counters — for any archive, any
//! pattern, and any worker count. Likewise the query-scoped similarity
//! cache must be a pure cost change: rankings with the cache on and off
//! are identical (only `sim_evaluations` accounting may differ).

use hmmm_core::{build_hmmm, BuildConfig, RetrievalConfig, Retriever};
use hmmm_features::{FeatureVector, FEATURE_COUNT};
use hmmm_media::EventKind;
use hmmm_query::{CompiledPattern, CompiledStep};
use hmmm_storage::Catalog;
use proptest::prelude::*;

fn feature_vector() -> impl Strategy<Value = FeatureVector> {
    proptest::collection::vec(0.0f64..1.0, FEATURE_COUNT)
        .prop_map(|v| FeatureVector::from_slice(&v).expect("exact length"))
}

fn events() -> impl Strategy<Value = Vec<EventKind>> {
    proptest::collection::vec(0usize..EventKind::COUNT, 0..3).prop_map(|idx| {
        let mut out: Vec<EventKind> = idx.into_iter().filter_map(EventKind::from_index).collect();
        out.dedup();
        out
    })
}

/// Random archive with enough videos (2–8) for the fan-out to chunk.
fn catalog() -> impl Strategy<Value = Catalog> {
    proptest::collection::vec(
        proptest::collection::vec((events(), feature_vector()), 1..10),
        2..8,
    )
    .prop_map(|videos| {
        let mut c = Catalog::new();
        for (i, shots) in videos.into_iter().enumerate() {
            c.add_video(format!("v{i}"), shots);
        }
        c
    })
}

fn pattern() -> impl Strategy<Value = CompiledPattern> {
    proptest::collection::vec(
        (
            proptest::collection::vec(0usize..EventKind::COUNT, 1..3),
            proptest::option::of(0usize..6),
        ),
        1..4,
    )
    .prop_map(|steps| CompiledPattern {
        steps: steps
            .into_iter()
            .map(|(mut alternatives, max_gap)| {
                alternatives.dedup();
                CompiledStep {
                    alternatives,
                    max_gap,
                }
            })
            .collect(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// threads=4 returns exactly the results and merged stats of threads=1.
    /// Pruning is off here because its *counters* are timing-dependent
    /// across workers (rankings are not — proptest_pruning.rs covers that);
    /// this property is about the PR-1 fan-out being a pure scheduling
    /// change, stats included.
    #[test]
    fn parallel_matches_serial(cat in catalog(), pat in pattern(), beam in 1usize..5, limit in 1usize..20) {
        let model = build_hmmm(&cat, &BuildConfig { unannotated_weight: 0.2, ..BuildConfig::default() }).unwrap();
        let serial_cfg = RetrievalConfig { beam_width: beam, threads: Some(1), prune: false, ..RetrievalConfig::default() };
        let parallel_cfg = RetrievalConfig { threads: Some(4), ..serial_cfg.clone() };
        let serial = Retriever::new(&model, &cat, serial_cfg).unwrap();
        let parallel = Retriever::new(&model, &cat, parallel_cfg).unwrap();
        let (s_results, s_stats) = serial.retrieve(&pat, limit).unwrap();
        let (p_results, p_stats) = parallel.retrieve(&pat, limit).unwrap();
        prop_assert_eq!(s_results, p_results);
        prop_assert_eq!(s_stats, p_stats);
    }

    /// Auto thread count (`None`) also matches serial, whatever the machine.
    #[test]
    fn auto_threads_match_serial(cat in catalog(), pat in pattern()) {
        let model = build_hmmm(&cat, &BuildConfig::default()).unwrap();
        let serial_cfg = RetrievalConfig { threads: Some(1), prune: false, ..RetrievalConfig::default() };
        let auto_cfg = RetrievalConfig { threads: None, prune: false, ..RetrievalConfig::default() };
        let (s_results, s_stats) = Retriever::new(&model, &cat, serial_cfg).unwrap().retrieve(&pat, 10).unwrap();
        let (a_results, a_stats) = Retriever::new(&model, &cat, auto_cfg).unwrap().retrieve(&pat, 10).unwrap();
        prop_assert_eq!(s_results, a_results);
        prop_assert_eq!(s_stats, a_stats);
    }

    /// The similarity cache changes cost accounting, never the ranking.
    /// Content-driven traversal is the similarity-bound regime where the
    /// cache is actually built (annotation-first queries skip it).
    /// Pruning is off because the cached path uses tighter per-video bounds
    /// than the uncached archive-wide fallback — rankings stay identical
    /// (proptest_pruning.rs), but the work counters compared here diverge.
    #[test]
    fn cache_is_ranking_neutral(cat in catalog(), pat in pattern(), beam in 1usize..5) {
        let model = build_hmmm(&cat, &BuildConfig::default()).unwrap();
        let cached_cfg = RetrievalConfig { beam_width: beam, threads: Some(1), use_sim_cache: true, prune: false, ..RetrievalConfig::content_only() };
        let direct_cfg = RetrievalConfig { use_sim_cache: false, ..cached_cfg.clone() };
        let (c_results, c_stats) = Retriever::new(&model, &cat, cached_cfg).unwrap().retrieve(&pat, 10).unwrap();
        let (d_results, d_stats) = Retriever::new(&model, &cat, direct_cfg).unwrap().retrieve(&pat, 10).unwrap();
        prop_assert_eq!(c_results, d_results);
        // The uncached path really did evaluate Eq. (14) on the hot path
        // whenever it visited any video with a non-empty lattice — and it
        // never charged cache counters, because there was no cache.
        if d_stats.videos_visited > 0 {
            prop_assert!(d_stats.sim_evaluations > 0);
        }
        prop_assert_eq!(d_stats.cache_build_evaluations, 0);
        prop_assert_eq!(d_stats.cache_lookups, 0);
        // The cached run charged the dense build and served every hot-path
        // lookup from the table — direct evaluations stay at zero, and the
        // two runs agree on total hot-path lookups. The build only pays for
        // *supported* events (non-zero centroid), so it can be free when the
        // pattern names only events the archive never exhibits.
        prop_assert_eq!(c_stats.sim_evaluations, 0);
        let any_supported = pat.steps.iter()
            .flat_map(|s| s.alternatives.iter().copied())
            .any(|e| hmmm_core::sim::self_similarity(&model, e) > 0.0);
        if any_supported {
            prop_assert!(c_stats.cache_build_evaluations > 0);
        } else {
            prop_assert_eq!(c_stats.cache_build_evaluations, 0);
        }
        prop_assert_eq!(c_stats.cache_lookups, d_stats.sim_evaluations);
    }

    /// Attaching a recorder is a pure observation change: rankings and
    /// work counters with metrics on are byte-identical to metrics off.
    /// Pruning is off so the stats comparison stays exact under parallel
    /// timing (pruning counters race the shared threshold across workers).
    #[test]
    fn metrics_are_ranking_neutral(cat in catalog(), pat in pattern(), beam in 1usize..5, threads in 1usize..5) {
        let model = build_hmmm(&cat, &BuildConfig::default()).unwrap();
        let quiet_cfg = RetrievalConfig { beam_width: beam, threads: Some(threads), prune: false, ..RetrievalConfig::content_only() };
        let recorder = hmmm_core::InMemoryRecorder::shared();
        let observed_cfg = quiet_cfg.clone().with_recorder(recorder.handle());
        let (q_results, q_stats) = Retriever::new(&model, &cat, quiet_cfg).unwrap().retrieve(&pat, 10).unwrap();
        let (o_results, o_stats) = Retriever::new(&model, &cat, observed_cfg).unwrap().retrieve(&pat, 10).unwrap();
        prop_assert_eq!(q_results, o_results);
        prop_assert_eq!(q_stats.clone(), o_stats);
        // And the recorder really saw the query.
        let report = recorder.report();
        prop_assert_eq!(report.counter(hmmm_core::metrics::CTR_QUERIES), 1);
        prop_assert_eq!(report.counter(hmmm_core::metrics::CTR_VIDEOS_VISITED), q_stats.videos_visited as u64);
    }
}
