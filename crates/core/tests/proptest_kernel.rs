//! Property: the blocked SoA similarity kernel is invisible.
//!
//! `sim::similarity_block` (and its calibrated variant) exist purely as a
//! memory-layout optimization — the feature-major `B_1` slab and the packed
//! per-event term lists must never change a single bit of any score the
//! scalar Eq.-14 reference produces. Likewise the sparse `A_1` view: the
//! CSR row maxima must be bitwise equal to the dense forward fold, and the
//! whole retrieval pipeline must rank identically whether a video's
//! traversal ran over the CSR rows or the dense fallback.

use hmmm_core::{build_hmmm, sim, BuildConfig, RetrievalConfig, Retriever};
use hmmm_features::{FeatureVector, FEATURE_COUNT};
use hmmm_matrix::ForwardCsr;
use hmmm_media::EventKind;
use hmmm_query::{CompiledPattern, CompiledStep};
use hmmm_storage::Catalog;
use proptest::prelude::*;

fn feature_vector() -> impl Strategy<Value = FeatureVector> {
    proptest::collection::vec(0.0f64..1.0, FEATURE_COUNT)
        .prop_map(|v| FeatureVector::from_slice(&v).expect("exact length"))
}

fn events() -> impl Strategy<Value = Vec<EventKind>> {
    proptest::collection::vec(0usize..EventKind::COUNT, 0..3).prop_map(|idx| {
        let mut out: Vec<EventKind> = idx.into_iter().filter_map(EventKind::from_index).collect();
        out.dedup();
        out
    })
}

fn catalog() -> impl Strategy<Value = Catalog> {
    proptest::collection::vec(
        proptest::collection::vec((events(), feature_vector()), 1..10),
        2..8,
    )
    .prop_map(|videos| {
        let mut c = Catalog::new();
        for (i, shots) in videos.into_iter().enumerate() {
            c.add_video(format!("v{i}"), shots);
        }
        c
    })
}

fn pattern() -> impl Strategy<Value = CompiledPattern> {
    proptest::collection::vec(
        (
            proptest::collection::vec(0usize..EventKind::COUNT, 1..3),
            proptest::option::of(0usize..6),
        ),
        1..4,
    )
    .prop_map(|steps| CompiledPattern {
        steps: steps
            .into_iter()
            .map(|(mut alternatives, max_gap)| {
                alternatives.dedup();
                CompiledStep {
                    alternatives,
                    max_gap,
                }
            })
            .collect(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every slot of every blocked evaluation — raw and calibrated, over
    /// every event and every sub-range the archive admits — is bitwise
    /// equal to the scalar reference.
    #[test]
    fn blocked_kernel_is_bitwise_invisible(
        cat in catalog(),
        lo_frac in 0.0f64..1.0,
        hi_frac in 0.0f64..1.0,
    ) {
        let model = build_hmmm(&cat, &BuildConfig::default()).unwrap();
        let n = model.shot_count();
        let lo = ((n as f64) * lo_frac.min(hi_frac)) as usize;
        let hi = (((n as f64) * lo_frac.max(hi_frac)) as usize).max(lo);
        let mut scratch = Vec::new();
        for event in 0..EventKind::COUNT {
            let raw = sim::similarity_block(&model, lo..hi, event, &mut scratch).to_vec();
            for (i, &score) in raw.iter().enumerate() {
                prop_assert_eq!(
                    score.to_bits(),
                    sim::similarity(&model, lo + i, event).to_bits(),
                    "raw slot {} of event {} diverged", i, event
                );
            }
            let cal = sim::calibrated_block(&model, lo..hi, event, &mut scratch).to_vec();
            for (i, &score) in cal.iter().enumerate() {
                prop_assert_eq!(
                    score.to_bits(),
                    sim::calibrated_similarity(&model, lo + i, event).to_bits(),
                    "calibrated slot {} of event {} diverged", i, event
                );
            }
        }
    }

    /// The CSR view agrees with the dense matrix wherever both exist: same
    /// row maxima (bitwise, same fold), `matches` accepts its own source,
    /// and the model's `a1_row_max` cache equals the dense fold regardless
    /// of which representation `refresh_bounds` derived it from.
    #[test]
    fn csr_and_dense_row_maxima_agree(cat in catalog()) {
        let model = build_hmmm(&cat, &BuildConfig::default()).unwrap();
        for local in &model.locals {
            let dense = local.a1.as_matrix();
            let by_dense: Vec<f64> = (0..dense.rows())
                .map(|s| (s..dense.cols()).map(|t| dense[(s, t)]).fold(0.0, f64::max))
                .collect();
            let csr = ForwardCsr::from_forward(dense);
            prop_assert!(csr.matches(dense));
            let mut by_csr = vec![0.0; dense.rows()];
            csr.row_maxima_into(&mut by_csr);
            for (a, b) in by_csr.iter().zip(by_dense.iter()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            for (a, b) in local.a1_row_max.iter().zip(by_dense.iter()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    /// The blocked kernel is invisible end-to-end: across the threads ×
    /// cache × prune grid (the PR-3 harness's axes), rankings are
    /// byte-identical to the single-threaded uncached exhaustive run —
    /// whether a video's scores came from the slot-major cache
    /// (`similarity_into` during `SimCache::build`) or from per-block
    /// direct evaluation, and whether its `A_1` walk took the CSR rows or
    /// the dense fallback.
    #[test]
    fn kernel_grid_ranks_identically(
        cat in catalog(),
        pat in pattern(),
        threads in 1usize..4,
        use_cache in proptest::sample::select(vec![false, true]),
        prune in proptest::sample::select(vec![false, true]),
    ) {
        let model = build_hmmm(&cat, &BuildConfig::default()).unwrap();
        let grid_cfg = RetrievalConfig {
            threads: Some(threads),
            use_sim_cache: use_cache,
            prune,
            ..RetrievalConfig::default()
        };
        let reference_cfg = RetrievalConfig {
            threads: Some(1),
            use_sim_cache: false,
            prune: false,
            ..RetrievalConfig::default()
        };
        let (a, _) = Retriever::new(&model, &cat, grid_cfg)
            .unwrap()
            .retrieve(&pat, 10)
            .unwrap();
        let (b, _) = Retriever::new(&model, &cat, reference_cfg)
            .unwrap()
            .retrieve(&pat, 10)
            .unwrap();
        prop_assert_eq!(a, b);
    }
}
