//! Property-based invariants of HMMM construction, retrieval, and feedback
//! over randomly generated catalogs.

use hmmm_core::{
    build_hmmm, BuildConfig, FeedbackConfig, FeedbackLog, PositivePattern, RetrievalConfig,
    Retriever,
};
use hmmm_features::{FeatureVector, FEATURE_COUNT};
use hmmm_media::EventKind;
use hmmm_query::{CompiledPattern, CompiledStep};
use hmmm_storage::{Catalog, ShotId, VideoId};
use proptest::prelude::*;

/// Random feature vector with entries in [0, 1].
fn feature_vector() -> impl Strategy<Value = FeatureVector> {
    proptest::collection::vec(0.0f64..1.0, FEATURE_COUNT)
        .prop_map(|v| FeatureVector::from_slice(&v).expect("exact length"))
}

/// Random event list (0–2 events per shot, like the paper's archive).
fn events() -> impl Strategy<Value = Vec<EventKind>> {
    proptest::collection::vec(0usize..EventKind::COUNT, 0..3).prop_map(|idx| {
        let mut out: Vec<EventKind> = idx
            .into_iter()
            .filter_map(EventKind::from_index)
            .collect();
        out.dedup();
        out
    })
}

/// Random catalog: 1–4 videos × 2–12 shots.
fn catalog() -> impl Strategy<Value = Catalog> {
    proptest::collection::vec(
        proptest::collection::vec((events(), feature_vector()), 2..12),
        1..4,
    )
    .prop_map(|videos| {
        let mut c = Catalog::new();
        for (i, shots) in videos.into_iter().enumerate() {
            c.add_video(format!("v{i}"), shots);
        }
        c
    })
}

/// Random single-step or two-step pattern over valid event indices.
fn pattern() -> impl Strategy<Value = CompiledPattern> {
    proptest::collection::vec(
        (
            proptest::collection::vec(0usize..EventKind::COUNT, 1..3),
            proptest::option::of(0usize..6),
        ),
        1..3,
    )
    .prop_map(|steps| CompiledPattern {
        steps: steps
            .into_iter()
            .map(|(mut alternatives, max_gap)| {
                alternatives.dedup();
                CompiledStep {
                    alternatives,
                    max_gap,
                }
            })
            .collect(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Construction always yields a model that validates against its
    /// catalog, with row-stochastic A1/A2 and unit-mass Π1/Π2.
    #[test]
    fn construction_invariants(cat in catalog(), unann in 0.0f64..0.5) {
        let cfg = BuildConfig { unannotated_weight: unann, ..BuildConfig::default() };
        let model = build_hmmm(&cat, &cfg).unwrap();
        prop_assert!(model.validate_against(&cat).is_ok());
        for local in &model.locals {
            for i in 0..local.len() {
                let s: f64 = local.a1.row(i).iter().sum();
                prop_assert!((s - 1.0).abs() < 1e-8, "A1 row {i} sums to {s}");
            }
            let mass: f64 = local.pi1.as_slice().iter().sum();
            prop_assert!((mass - 1.0).abs() < 1e-8);
        }
        for i in 0..model.video_count() {
            let s: f64 = model.a2.row(i).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-8);
        }
        for e in 0..EventKind::COUNT {
            let s: f64 = model.p12.row(e).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-8);
        }
    }

    /// A1 is always upper-triangular (temporal): no backward transitions.
    #[test]
    fn a1_is_temporal(cat in catalog()) {
        let model = build_hmmm(&cat, &BuildConfig::default()).unwrap();
        for local in &model.locals {
            for i in 0..local.len() {
                for j in 0..i {
                    prop_assert_eq!(local.a1.get(i, j), 0.0);
                }
            }
        }
    }

    /// Retrieval output is well-formed for any pattern: scores sorted
    /// descending and finite, shots within one video, temporally ordered,
    /// gap bounds respected.
    #[test]
    fn retrieval_output_well_formed(cat in catalog(), pat in pattern(), beam in 1usize..5) {
        let model = build_hmmm(&cat, &BuildConfig { unannotated_weight: 0.2, ..BuildConfig::default() }).unwrap();
        let cfg = RetrievalConfig { beam_width: beam, ..RetrievalConfig::default() };
        let retriever = Retriever::new(&model, &cat, cfg).unwrap();
        let (results, _) = retriever.retrieve(&pat, 20).unwrap();
        for pair in results.windows(2) {
            prop_assert!(pair[0].score >= pair[1].score);
        }
        for r in &results {
            prop_assert!(r.score.is_finite() && r.score >= 0.0);
            prop_assert_eq!(r.shots.len(), pat.steps.len());
            prop_assert_eq!(r.events.len(), pat.steps.len());
            prop_assert!((r.score - r.weights.iter().sum::<f64>()).abs() < 1e-9);
            let mut prev: Option<usize> = None;
            for (shot_id, step) in r.shots.iter().zip(pat.steps.iter()) {
                let shot = cat.shot(*shot_id).unwrap();
                prop_assert_eq!(shot.video, r.video);
                if let Some(p) = prev {
                    prop_assert!(shot.index_in_video >= p);
                    if let Some(gap) = step.max_gap {
                        prop_assert!(shot.index_in_video - p <= gap);
                    }
                }
                prev = Some(shot.index_in_video);
            }
        }
    }

    /// Feedback with arbitrary (valid) positive patterns preserves every
    /// stochastic invariant and never errors.
    #[test]
    fn feedback_preserves_invariants(
        cat in catalog(),
        picks in proptest::collection::vec((0usize..4, proptest::collection::vec(0usize..12, 1..4), 0.1f64..5.0), 0..10),
    ) {
        let mut model = build_hmmm(&cat, &BuildConfig::default()).unwrap();
        let mut log = FeedbackLog::new();
        for (q, (v, shots, access)) in picks.into_iter().enumerate() {
            let video = VideoId(v % cat.video_count());
            let record = cat.video(video).unwrap();
            let n = record.shot_count();
            let mut locals: Vec<usize> = shots.into_iter().map(|s| s % n).collect();
            locals.sort_unstable();
            let pattern = PositivePattern {
                query: q as u64,
                video,
                shots: locals.iter().map(|&s| ShotId(record.shot_range.start + s)).collect(),
                events: locals.iter().map(|_| 0).collect(),
                access,
            };
            log.record(pattern).unwrap();
        }
        log.apply(&mut model, &cat, &FeedbackConfig::default()).unwrap();
        prop_assert!(model.validate_against(&cat).is_ok());
        for local in &model.locals {
            for i in 0..local.len() {
                let s: f64 = local.a1.row(i).iter().sum();
                prop_assert!((s - 1.0).abs() < 1e-8);
            }
        }
        for i in 0..model.video_count() {
            let s: f64 = model.a2.row(i).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-8);
        }
    }

    /// The λ-invariant deep audit accepts every freshly built model and
    /// every feedback-updated model — the auditor must never cry wolf on
    /// states the library itself can produce.
    #[test]
    fn deep_audit_accepts_library_produced_models(
        cat in catalog(),
        picks in proptest::collection::vec((0usize..4, proptest::collection::vec(0usize..12, 1..4), 0.1f64..5.0), 0..10),
    ) {
        let mut model = build_hmmm(&cat, &BuildConfig::default()).unwrap();
        let summary = model.deep_audit(&cat).unwrap();
        prop_assert_eq!(summary.videos, cat.video_count());
        prop_assert_eq!(summary.shots, cat.shot_count());
        prop_assert_eq!(summary.a1_rows, cat.shot_count());
        prop_assert_eq!(summary.links, cat.shot_count());

        let mut log = FeedbackLog::new();
        for (q, (v, shots, access)) in picks.into_iter().enumerate() {
            let video = VideoId(v % cat.video_count());
            let record = cat.video(video).unwrap();
            let n = record.shot_count();
            let mut locals: Vec<usize> = shots.into_iter().map(|s| s % n).collect();
            locals.sort_unstable();
            log.record(PositivePattern {
                query: q as u64,
                video,
                shots: locals.iter().map(|&s| ShotId(record.shot_range.start + s)).collect(),
                events: locals.iter().map(|_| 0).collect(),
                access,
            }).unwrap();
        }
        log.apply(&mut model, &cat, &FeedbackConfig::default()).unwrap();
        prop_assert!(model.deep_audit(&cat).is_ok(), "audit rejected a feedback-updated model");
    }

    /// …and the audit is not vacuous: perturbing any single A1 row of any
    /// video past the tolerance is always caught, and the error names A1.
    #[test]
    fn deep_audit_rejects_any_perturbed_a1_row(
        cat in catalog(),
        vsel in 0usize..4,
        rsel in 0usize..12,
        bump in 0.01f64..0.75,
    ) {
        let mut model = build_hmmm(&cat, &BuildConfig::default()).unwrap();
        let v = vsel % model.locals.len();
        let row = rsel % model.locals[v].len();
        let mut dense: hmmm_matrix::Matrix = model.locals[v].a1.as_matrix().clone();
        dense[(row, row)] += bump; // row sum now 1 + bump > 1 + tolerance
        model.locals[v].a1 = hmmm_matrix::StochasticMatrix::new_unchecked(dense);
        model.locals[v].refresh_bounds(); // keep caches fresh: the row-sum
                                          // check itself must fire
        let err = model.deep_audit(&cat).unwrap_err();
        let msg = err.to_string();
        prop_assert!(msg.contains("A1"), "error did not name A1: {msg}");
    }

    /// Model serde round-trip is lossless for any catalog.
    #[test]
    fn model_serde_round_trip(cat in catalog()) {
        let model = build_hmmm(&cat, &BuildConfig::default()).unwrap();
        let json = serde_json::to_string(&model).unwrap();
        let back: hmmm_core::Hmmm = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(model, back);
    }

    /// Calibrated similarity is always within [0, 1]; literal Eq.-14 is
    /// non-negative; both agree on within-event ordering.
    #[test]
    fn similarity_bounds(cat in catalog(), shot_sel in 0usize..100, event in 0usize..EventKind::COUNT) {
        let model = build_hmmm(&cat, &BuildConfig::default()).unwrap();
        let shot = shot_sel % model.shot_count();
        let lit = hmmm_core::sim::similarity(&model, shot, event);
        let cal = hmmm_core::sim::calibrated_similarity(&model, shot, event);
        prop_assert!(lit >= 0.0);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&cal), "calibrated {cal}");
    }
}
