//! Integration: the observability layer under real (parallel) retrieval.
//!
//! Three contracts:
//!
//! 1. the in-memory recorder merges counters/histograms correctly when many
//!    threads record into one sink concurrently;
//! 2. an instrumented parallel retrieval reports exactly the work the
//!    returned `RetrievalStats` claim — the flush path loses nothing at the
//!    worker join;
//! 3. the default (noop) configuration leaves a live recorder untouched.

// hmmm-lint: allow-file(metric-literal) — contract 1 exercises recorder
// *mechanics* with deliberately ad-hoc names; everything that touches the
// retrieval pipeline below goes through `hmmm_core::metrics` constants.

use hmmm_core::metrics as m;
use hmmm_core::{build_hmmm, BuildConfig, InMemoryRecorder, RetrievalConfig, Retriever};
use hmmm_features::{FeatureVector, FEATURE_COUNT};
use hmmm_media::EventKind;
use hmmm_query::QueryTranslator;
use hmmm_storage::Catalog;

/// Deterministic multi-video archive with enough annotated shots for a
/// two-step query to traverse every video.
fn catalog(videos: usize, shots: usize) -> Catalog {
    let mut c = Catalog::new();
    let mut state = 0x2545_f491_4f6c_dd1du64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for v in 0..videos {
        let mut rows = Vec::with_capacity(shots);
        for s in 0..shots {
            let mut f = [0.0; FEATURE_COUNT];
            for x in f.iter_mut() {
                *x = next();
            }
            let events = match s % 5 {
                0 => vec![EventKind::FreeKick],
                1 => vec![EventKind::Goal],
                3 => vec![EventKind::CornerKick],
                _ => vec![],
            };
            rows.push((events, FeatureVector::from_slice(&f).unwrap()));
        }
        c.add_video(format!("v{v}"), rows);
    }
    c
}

fn pattern() -> hmmm_query::CompiledPattern {
    QueryTranslator::new(EventKind::ALL.iter().map(|k| k.name()))
        .compile("free_kick -> goal")
        .unwrap()
}

#[test]
fn in_memory_recorder_merges_across_threads() {
    let recorder = InMemoryRecorder::shared();
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 500;
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let handle = recorder.handle();
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    handle.counter("test.counter", 1);
                    handle.observe_ns("test.hist", t * PER_THREAD + i + 1);
                }
                handle.gauge("test.gauge", t as f64);
            });
        }
    });

    let report = recorder.report();
    assert_eq!(report.counter("test.counter"), THREADS * PER_THREAD);
    let hist = &report.histograms["test.hist"];
    assert_eq!(hist.count, THREADS * PER_THREAD);
    // Σ 1..=4000 — no observation lost or double-counted in the merge.
    let n = THREADS * PER_THREAD;
    assert_eq!(hist.sum_ns, n * (n + 1) / 2);
    assert_eq!(hist.min_ns, 1);
    assert_eq!(hist.max_ns, n);
    // Gauge keeps *a* thread's value (last write wins, all are valid).
    assert!(report.gauges["test.gauge"] < THREADS as f64);
}

#[test]
fn parallel_retrieval_counters_match_returned_stats() {
    let cat = catalog(6, 40);
    let model = build_hmmm(&cat, &BuildConfig::default()).unwrap();
    let recorder = InMemoryRecorder::shared();
    let config = RetrievalConfig {
        threads: Some(4),
        ..RetrievalConfig::default()
    }
    .with_recorder(recorder.handle());
    let retriever = Retriever::new(&model, &cat, config).unwrap();
    let (results, stats) = retriever.retrieve(&pattern(), 10).unwrap();

    let report = recorder.report();
    // Every counter the flush emits equals the merged stats the caller got:
    // nothing is lost (or double-flushed) across the worker join.
    assert_eq!(report.counter(m::CTR_QUERIES), 1);
    assert_eq!(report.counter(m::CTR_VIDEOS_VISITED), stats.videos_visited as u64);
    assert_eq!(report.counter(m::CTR_VIDEOS_SKIPPED), stats.videos_skipped as u64);
    assert_eq!(report.counter(m::CTR_TRANSITIONS), stats.transitions_examined);
    assert_eq!(report.counter(m::CTR_CANDIDATES), stats.candidates_scored as u64);
    assert_eq!(report.counter(m::CTR_RESULTS), results.len() as u64);
    assert_eq!(report.counter(m::CTR_SIM_DIRECT_EVALS), stats.sim_evaluations);
    assert_eq!(
        report.counter(m::CTR_CACHE_BUILD_EVALS),
        stats.cache_build_evaluations
    );
    assert_eq!(report.counter(m::CTR_CACHE_LOOKUPS), stats.cache_lookups);

    // One root span, one latency observation, and a per-video span for
    // every traversed video.
    let hist = &report.histograms[m::HIST_RETRIEVE_LATENCY];
    assert_eq!(hist.count, 1);
    assert_eq!(report.stage(m::SPAN_RETRIEVE).unwrap().count, 1);
    assert_eq!(
        report.stage(m::SPAN_VIDEO).unwrap().count,
        stats.videos_visited as u64
    );
    assert!(report.stage(m::SPAN_WORKER).unwrap().count >= 1);
    assert_eq!(report.gauges[m::GAUGE_THREADS], 4.0);
}

#[test]
fn repeated_queries_accumulate_in_one_report() {
    let cat = catalog(4, 30);
    let model = build_hmmm(&cat, &BuildConfig::default()).unwrap();
    let recorder = InMemoryRecorder::shared();
    let config = RetrievalConfig::default().with_recorder(recorder.handle());
    let retriever = Retriever::new(&model, &cat, config).unwrap();

    retriever.retrieve(&pattern(), 5).unwrap();
    retriever.retrieve(&pattern(), 5).unwrap();
    retriever.retrieve(&pattern(), 5).unwrap();

    let report = recorder.report();
    assert_eq!(report.counter(m::CTR_QUERIES), 3);
    assert_eq!(report.histograms[m::HIST_RETRIEVE_LATENCY].count, 3);
    assert_eq!(report.stage(m::SPAN_RETRIEVE).unwrap().count, 3);
}

#[test]
fn default_config_records_nothing_into_live_recorder() {
    let cat = catalog(3, 20);
    let model = build_hmmm(&cat, &BuildConfig::default()).unwrap();
    // A live recorder exists, but the config never had it attached: the
    // noop default must keep the sink empty.
    let recorder = InMemoryRecorder::shared();
    let retriever = Retriever::new(&model, &cat, RetrievalConfig::default()).unwrap();
    let (results, _) = retriever.retrieve(&pattern(), 5).unwrap();
    assert!(!results.is_empty());

    let report = recorder.report();
    assert!(report.counters.is_empty());
    assert!(report.histograms.is_empty());
    assert!(report.stages.is_empty());
}

#[test]
fn derived_ratios_appear_only_with_data() {
    let cat = catalog(4, 30);
    let model = build_hmmm(&cat, &BuildConfig::default()).unwrap();
    let recorder = InMemoryRecorder::shared();
    let config = RetrievalConfig::default().with_recorder(recorder.handle());
    let retriever = Retriever::new(&model, &cat, config).unwrap();
    retriever.retrieve(&pattern(), 5).unwrap();

    let mut report = recorder.report();
    m::derive_retrieval_metrics(&mut report);
    let hit = report.derived["cache_hit_ratio"];
    assert!((0.0..=1.0).contains(&hit));
    assert!(report.derived.contains_key("videos_visited_ratio"));

    // An empty report derives nothing (no zero-denominator entries).
    let mut empty = InMemoryRecorder::new().report();
    m::derive_retrieval_metrics(&mut empty);
    assert!(empty.derived.is_empty());
}
