//! Re-export of the blessed total-order float comparators.
//!
//! The comparators live in [`hmmm_matrix::order`] (the lowest layer that
//! sorts floats, so `annotate`/`baselines` can share them without a `core`
//! dependency); this module re-exports them so `core` call sites and
//! downstream crates can write `hmmm_core::order::cmp_f64_desc`. See the
//! `raw-float-cmp` lint in `hmmm-analyze` for why the underlying
//! `partial_cmp` pattern is forbidden everywhere else.

pub use hmmm_matrix::order::{cmp_f64, cmp_f64_desc};
