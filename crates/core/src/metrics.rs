//! Canonical metric and span names emitted by this crate's
//! instrumentation.
//!
//! Everything the retrieval engine records through a
//! [`hmmm_obs::RecorderHandle`] uses a constant from this module, so the
//! CLI's `--metrics-json` report, `bench_report`'s `BENCH_retrieval.json`,
//! and the tests all key off one registry and cannot drift apart.
//!
//! Naming scheme: span paths are `/`-separated hierarchies
//! (`retrieve/traverse/video`); counter/gauge/histogram names are
//! dot-separated `subsystem.quantity` (`simcache.lookups`).

// --- §5 retrieval (Steps 1–9, Eqs. 12–15) ---------------------------------

/// Root span of one [`crate::Retriever::retrieve_within`] call.
pub const SPAN_RETRIEVE: &str = "retrieve";
/// Dense Eq.-(14) table build ([`crate::SimCache`]).
pub const SPAN_SIM_CACHE_BUILD: &str = "retrieve/sim_cache_build";
/// Step 2/7 video ordering (`Π_2` sort + `B_2` first-event filter).
pub const SPAN_VIDEO_ORDER: &str = "retrieve/video_order";
/// Coarse candidate stage (postings union + per-video bound lookups from
/// the ingest-time [`crate::CoarseIndex`]).
pub const SPAN_COARSE: &str = "retrieve/coarse";
/// The whole per-video fan-out (serial loop or scoped worker pool).
pub const SPAN_TRAVERSE: &str = "retrieve/traverse";
/// One worker thread's share of the fan-out (label = worker index).
pub const SPAN_WORKER: &str = "retrieve/traverse/worker";
/// One video's Figure-3 lattice traversal (label = video index).
pub const SPAN_VIDEO: &str = "retrieve/traverse/video";
/// Step 8–9 final ranking (total-order sort + truncate).
pub const SPAN_RANK: &str = "retrieve/rank";

/// End-to-end latency of each retrieve call (histogram, ns).
pub const HIST_RETRIEVE_LATENCY: &str = "retrieve.latency_ns";

/// Retrieve calls served.
pub const CTR_QUERIES: &str = "retrieve.queries";
/// Videos whose lattices were traversed (`RetrievalStats::videos_visited`).
pub const CTR_VIDEOS_VISITED: &str = "retrieve.videos_visited";
/// Videos pruned by the Step-2 `B_2` check (`videos_skipped`).
pub const CTR_VIDEOS_SKIPPED: &str = "retrieve.videos_skipped";
/// `A_1` lattice transitions examined (`transitions_examined`).
pub const CTR_TRANSITIONS: &str = "retrieve.transitions_examined";
/// Candidate sequences scored before the final cut (`candidates_scored`).
pub const CTR_CANDIDATES: &str = "retrieve.candidates_scored";
/// Ranked patterns actually returned (after Step 9's `limit`).
pub const CTR_RESULTS: &str = "retrieve.results_returned";

// --- Exact top-k pruning ---------------------------------------------------

/// Videos skipped whole because their admissible upper bound fell below the
/// shared top-k threshold (`RetrievalStats::videos_skipped_by_bound`).
pub const CTR_VIDEOS_SKIPPED_BY_BOUND: &str = "retrieve.videos_skipped_by_bound";
/// Beam entries and selected candidates dropped by the threshold cut
/// (`RetrievalStats::entries_pruned`).
pub const CTR_ENTRIES_PRUNED: &str = "retrieve.entries_pruned";
/// Times an emitted candidate raised the shared k-th-best threshold
/// (`RetrievalStats::threshold_raises`).
pub const CTR_THRESHOLD_RAISES: &str = "retrieve.threshold_raises";
/// Eq.-(14) evaluations spent deriving per-event bound maxima without a
/// cache (`RetrievalStats::bound_evaluations`).
pub const CTR_BOUND_EVALS: &str = "sim.bound_evaluations";
/// Final value of the shared k-th-best threshold after the last pruned
/// retrieve (0.0 until `limit` positive-score candidates were found).
pub const GAUGE_PRUNE_THRESHOLD: &str = "retrieve.prune_threshold";

// --- Degraded paths (deadline, panic isolation, crash-safe persistence) ---

/// Videos whose traversal panicked and was isolated
/// (`RetrievalStats::videos_failed`).
pub const CTR_VIDEOS_FAILED: &str = "retrieve.videos_failed";
/// Eligible videos never admitted because the deadline expired
/// (`RetrievalStats::videos_unvisited`).
pub const CTR_VIDEOS_UNVISITED: &str = "retrieve.videos_unvisited";
/// In-flight beams abandoned whole at deadline expiry
/// (`RetrievalStats::beams_abandoned`).
pub const CTR_BEAMS_ABANDONED: &str = "retrieve.beams_abandoned";
/// Queries whose deadline budget elapsed (one per degraded query).
pub const CTR_DEADLINE_EXPIRED: &str = "retrieve.deadline_expired";
/// Candidate videos the coarse stage admitted to the fine stage
/// (`RetrievalStats::coarse_candidates`; emitted only when a coarse mode
/// is on).
pub const CTR_COARSE_CANDIDATES: &str = "coarse.candidates";
/// Candidates dropped by the approx top-`C` cut
/// (`RetrievalStats::coarse_cut`).
pub const CTR_COARSE_CUT: &str = "coarse.candidates_cut";
/// Candidates skipped exactly on a zero coarse upper bound
/// (`RetrievalStats::coarse_skipped_zero_ub`).
pub const CTR_COARSE_ZERO_UB: &str = "coarse.zero_ub_skips";
/// Precomputed-summary table reads spent deriving coarse bounds
/// (`RetrievalStats::coarse_bound_lookups`) — the lookup cost that
/// replaces the archive-wide scan behind [`CTR_BOUND_EVALS`].
pub const CTR_COARSE_LOOKUPS: &str = "coarse.bound_lookups";
pub use hmmm_storage::{CTR_ATOMIC_WRITE_RETRIES, CTR_BAK_FALLBACKS};

/// Worker threads used by the last retrieve call.
pub const GAUGE_THREADS: &str = "retrieve.threads";
/// Busy-time / (fan-out wall × workers) of the last parallel retrieve:
/// 1.0 = perfectly balanced chunks, lower = stragglers.
pub const GAUGE_THREAD_UTILIZATION: &str = "retrieve.thread_utilization";

// --- Eq.-(14) similarity & the query-scoped cache -------------------------

/// Hot-path Eq.-(14) evaluations (cache off or bypassed) —
/// `RetrievalStats::sim_evaluations`.
pub const CTR_SIM_DIRECT_EVALS: &str = "sim.direct_evaluations";
/// Eq.-(14) evaluations spent building [`crate::SimCache`] tables —
/// `RetrievalStats::cache_build_evaluations`.
pub const CTR_CACHE_BUILD_EVALS: &str = "simcache.build_evaluations";
/// Hot-path lookups served from the cache (every one is a hit: the table
/// is dense over the query's events) — `RetrievalStats::cache_lookups`.
pub const CTR_CACHE_LOOKUPS: &str = "simcache.lookups";
/// Queries that built a cache.
pub const CTR_CACHE_BUILDS: &str = "simcache.builds";
/// Similarity-bound queries that ran with the cache explicitly disabled
/// (`use_sim_cache == false`).
pub const CTR_CACHE_BYPASSED_QUERIES: &str = "simcache.bypassed_queries";
/// Annotation-bound queries where the regime gate skipped the cache
/// (building it would cost more than it saves — see `RetrievalConfig`).
pub const CTR_CACHE_REGIME_SKIPPED_QUERIES: &str = "simcache.annotation_bound_queries";

// --- QueryServer (crates/serve) --------------------------------------------
//
// The in-process serving layer records through the same registry as the
// engine it wraps, so a served query's span tree nests `retrieve` under
// `serve/request/execute` and the load generator's report keys match the
// live server's.

/// One admitted request, queue wait through response delivery.
pub const SPAN_SERVE_REQUEST: &str = "serve/request";
/// The retrieval execution inside one request (label = request id).
pub const SPAN_SERVE_EXECUTE: &str = "serve/request/execute";
/// End-to-end served latency per completed request (queue + execute), ns.
pub const HIST_SERVE_LATENCY: &str = "serve.latency_ns";
/// Time a request sat in the admission queue before a worker picked it
/// up, ns.
pub const HIST_SERVE_QUEUE_WAIT: &str = "serve.queue_wait_ns";
/// Requests accepted into the admission queue.
pub const CTR_SERVE_SUBMITTED: &str = "serve.requests_submitted";
/// Requests that completed with a ranking (exact or degraded).
pub const CTR_SERVE_COMPLETED: &str = "serve.requests_completed";
/// Completed requests whose ranking was degraded (deadline/panic — see
/// [`crate::retrieve::DegradedReason`]).
pub const CTR_SERVE_DEGRADED: &str = "serve.requests_degraded";
/// Requests rejected at admission: the bounded queue was full.
pub const CTR_SERVE_REJECTED_QUEUE_FULL: &str = "serve.rejected_queue_full";
/// Requests rejected at dequeue: the whole deadline budget was consumed
/// by queueing before any retrieval work could start.
pub const CTR_SERVE_REJECTED_DEADLINE: &str = "serve.rejected_deadline";
/// Requests rejected because the server had stopped admitting.
pub const CTR_SERVE_REJECTED_SHUTDOWN: &str = "serve.rejected_shutdown";
/// Model snapshots installed (RCU pointer swaps), including the initial one.
pub const CTR_SERVE_SNAPSHOT_INSTALLS: &str = "serve.snapshot_installs";
/// Candidate snapshots refused by the pre-install `deep_audit` gate.
pub const CTR_SERVE_AUDIT_REJECTIONS: &str = "serve.snapshot_audit_rejections";
/// Admission-queue depth after the most recent submit/dequeue.
pub const GAUGE_SERVE_QUEUE_DEPTH: &str = "serve.queue_depth";
/// Worker threads the server was started with.
pub const GAUGE_SERVE_WORKERS: &str = "serve.workers";

// --- TCP front-end (crates/serve net + client) ------------------------------
//
// The network layer records through the same registry: server-side
// connection QoS counters (`net.accepted` …), fault-injection tallies
// surfaced from the core `FaultPlan` network plane, and the built-in
// client's retry/backoff accounting — so loadgen's network report rows and
// `bench_report`'s net sweep key off one vocabulary.

/// One served connection, accept through close (label = connection id).
pub const SPAN_NET_CONN: &str = "net/conn";
/// Connections accepted by the TCP front-end.
pub const CTR_NET_ACCEPTED: &str = "net.accepted";
/// Connections refused at accept because the per-server cap was reached.
pub const CTR_NET_REJECTED_CONN_LIMIT: &str = "net.rejected_conn_limit";
/// Connections shed because a started frame did not complete within the
/// per-connection read deadline (slow-loris defense).
pub const CTR_NET_SHED_SLOW_CLIENT: &str = "net.shed_slow_client";
/// Request frames fully parsed off the wire.
pub const CTR_NET_REQUESTS: &str = "net.requests";
/// Response frames fully written back (success or degraded).
pub const CTR_NET_RESPONSES: &str = "net.responses";
/// Frames refused before admission: bad version byte, over-cap length,
/// unparseable payload.
pub const CTR_NET_BAD_FRAMES: &str = "net.bad_frames";
/// Response/status writes that failed (peer gone, torn stream).
pub const CTR_NET_WRITE_FAILURES: &str = "net.write_failures";
/// `Draining` statuses sent to idle connections during graceful shutdown.
pub const CTR_NET_DRAINING_NOTICES: &str = "net.draining_notices";
/// Writes torn by the injected network fault plane
/// ([`crate::NetFaultStats::torn_writes`]).
pub const CTR_NET_TORN_FRAMES_INJECTED: &str = "net.torn_frames_injected";
/// Client-side: attempts beyond the first, across all requests.
pub const CTR_NET_RETRIES: &str = "net.retries";
/// Client-side: requests that succeeded on a retry attempt (> 0).
pub const CTR_NET_RETRY_SUCCESSES: &str = "net.retry_successes";
/// Client-side: requests that exhausted every attempt without a terminal
/// response.
pub const CTR_NET_GIVE_UPS: &str = "net.give_ups";
/// Client-side backoff sleeps between attempts, ns (histogram).
pub const HIST_NET_BACKOFF: &str = "net.backoff_ns";
/// Open connections after the most recent accept/close.
pub const GAUGE_NET_OPEN_CONNS: &str = "net.open_connections";

// --- §4.2 model construction ----------------------------------------------

/// Root span of one [`crate::build_hmmm`] call.
pub const SPAN_CONSTRUCT: &str = "construct";
/// Eq.-(3) normalization of all shot features into `B_1`.
pub const SPAN_CONSTRUCT_B1: &str = "construct/normalize_b1";
/// Per-video local MMMs: closed-form `A_1` (§4.2.1.1) + uniform `Π_1`.
pub const SPAN_CONSTRUCT_LOCALS: &str = "construct/locals";
/// Level-2 matrices: `B_2`, `A_2`, `Π_2`.
pub const SPAN_CONSTRUCT_LEVEL2: &str = "construct/level2";
/// Cross-level glue: `B_1'` centroids (Eq. 11) + `P_{1,2}` (Eqs. 7–10).
pub const SPAN_CONSTRUCT_CROSS: &str = "construct/cross_level";
/// Videos in the constructed model.
pub const CTR_CONSTRUCT_VIDEOS: &str = "construct.videos";
/// Shots in the constructed model.
pub const CTR_CONSTRUCT_SHOTS: &str = "construct.shots";

// --- Feedback learning (Eqs. 1–11) ----------------------------------------

/// Root span of one offline [`crate::FeedbackLog::apply`] update.
pub const SPAN_FEEDBACK: &str = "feedback/apply";
/// Per-video `A_1` (Eqs. 1–2) and `Π_1` (Eq. 4) updates.
pub const SPAN_FEEDBACK_LOCAL: &str = "feedback/apply/a1_pi1";
/// `A_2` (Eq. 5) and `Π_2` (Eq. 6) co-access updates.
pub const SPAN_FEEDBACK_LEVEL2: &str = "feedback/apply/a2_pi2";
/// `P_{1,2}`/`B_1'` re-learning (Eqs. 8–11).
pub const SPAN_FEEDBACK_CROSS: &str = "feedback/apply/p12";
/// Positive patterns consumed by offline updates.
pub const CTR_FEEDBACK_PATTERNS: &str = "feedback.patterns_applied";
/// Videos whose `A_1` changed in offline updates.
pub const CTR_FEEDBACK_VIDEOS: &str = "feedback.videos_updated";

/// Adds the standard retrieval-derived quantities to a report:
///
/// * `cache_hit_ratio` — cache-served lookups over all hot-path scoring
///   lookups (`simcache.lookups / (simcache.lookups +
///   sim.direct_evaluations)`);
/// * `videos_visited_ratio` — traversed over eligible-plus-pruned videos
///   (how much work the Step-2 `B_2` check saved);
/// * `bound_skip_ratio` — bound-skipped over bound-skipped-plus-traversed
///   videos (how much traversal the exact top-k threshold cut saved).
pub fn derive_retrieval_metrics(report: &mut hmmm_obs::MetricsReport) {
    report.derive_ratio("cache_hit_ratio", &[CTR_CACHE_LOOKUPS], &[CTR_SIM_DIRECT_EVALS]);
    report.derive_ratio(
        "videos_visited_ratio",
        &[CTR_VIDEOS_VISITED],
        &[CTR_VIDEOS_SKIPPED],
    );
    report.derive_ratio(
        "bound_skip_ratio",
        &[CTR_VIDEOS_SKIPPED_BY_BOUND],
        &[CTR_VIDEOS_VISITED],
    );
}

/// Adds the standard serving-derived quantities to a report:
///
/// * `serve_rejection_ratio` — rejected requests (queue-full + queued-out
///   deadline + shutdown) over all admission decisions;
/// * `serve_degraded_ratio` — degraded completions over all completions.
pub fn derive_serve_metrics(report: &mut hmmm_obs::MetricsReport) {
    report.derive_ratio(
        "serve_rejection_ratio",
        &[
            CTR_SERVE_REJECTED_QUEUE_FULL,
            CTR_SERVE_REJECTED_DEADLINE,
            CTR_SERVE_REJECTED_SHUTDOWN,
        ],
        &[CTR_SERVE_COMPLETED],
    );
    report.derive_ratio(
        "serve_degraded_ratio",
        &[CTR_SERVE_DEGRADED],
        &[CTR_SERVE_COMPLETED],
    );
}

/// Adds the standard network-derived quantities to a report:
///
/// * `net_shed_ratio` — connections shed or refused over connections
///   accepted (QoS pressure at the front door);
/// * `net_retry_ratio` — client retries over responses delivered (how hard
///   the fault plane made the client work).
pub fn derive_net_metrics(report: &mut hmmm_obs::MetricsReport) {
    report.derive_ratio(
        "net_shed_ratio",
        &[CTR_NET_SHED_SLOW_CLIENT, CTR_NET_REJECTED_CONN_LIMIT],
        &[CTR_NET_ACCEPTED],
    );
    report.derive_ratio("net_retry_ratio", &[CTR_NET_RETRIES], &[CTR_NET_RESPONSES]);
}
