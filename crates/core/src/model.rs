//! The two-level HMMM container.

use crate::error::CoreError;
use hmmm_features::{FeatureSlab, FeatureVector, Normalizer, FEATURE_COUNT};
use hmmm_matrix::{ForwardCsr, ProbVector, StochasticMatrix};
use hmmm_media::EventKind;
use hmmm_storage::Catalog;
use serde::{Deserialize, Serialize};

/// Forward-density ceiling for keeping the sparse `A_1` view. Above this
/// fraction of non-zero forward slots a CSR walk touches almost every cell a
/// dense scan would — plus an index load per cell — so the dense row scan
/// wins and [`LocalMmm::a1_sparse`] is dropped to `None`. The §4.2
/// construction links each shot to a handful of successors, so real archives
/// sit far below this.
pub const A1_CSR_DENSITY_THRESHOLD: f64 = 0.5;

/// The *local* MMM of one video (§4.2.1): its shots' temporal affinity
/// matrix and initial-state distribution. Shot indices here are positions
/// **within the video**; the catalog's `shot_range` maps them to global ids.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalMmm {
    /// `A_1` — temporal relative-affinity matrix over the video's shots.
    pub a1: StochasticMatrix,
    /// `Π_1` — initial-state distribution over the video's shots.
    pub pi1: ProbVector,
    /// Per-shot forward transition maxima: `a1_row_max[s] = max_{t ≥ s}
    /// A_1(s, t)`. The Eq.-13 walk only ever moves forward through the
    /// lattice (`t ≥ s`, with `t = s` allowed for double-annotated shots),
    /// so this is the admissible one-step factor for an entry *sitting on*
    /// shot `s` — much tighter than the whole-matrix maximum, which is
    /// routinely poisoned to ≈1 by a trailing self-loop row. Maintained by
    /// [`LocalMmm::new`]/[`LocalMmm::refresh_bounds`]; construction and
    /// every feedback update keep it in sync with `a1`.
    pub a1_row_max: Vec<f64>,
    /// Largest forward transition factor anywhere in the video
    /// (`max` of [`LocalMmm::a1_row_max`]) — the admissible per-hop factor
    /// when the source shot of a future hop is not yet known (the deeper
    /// steps of the completion-bound chain).
    pub a1_max: f64,
    /// Largest entry of `Π_1` — the admissible Eq.-12 start factor.
    pub pi1_max: f64,
    /// CSR view of `a1`'s non-zero forward entries, so the Eq.-13 expansion
    /// loop and the bound refresh stop scanning structural zeros. `None`
    /// when the forward density exceeds [`A1_CSR_DENSITY_THRESHOLD`] (dense
    /// scan fallback). Derived cache maintained by
    /// [`LocalMmm::refresh_bounds`], like `a1_row_max`.
    pub a1_sparse: Option<ForwardCsr>,
}

impl LocalMmm {
    /// Builds a local MMM, deriving the pruning bound factors
    /// (`a1_row_max`, `a1_max`, `pi1_max`) from the matrices.
    pub fn new(a1: StochasticMatrix, pi1: ProbVector) -> Self {
        let mut local = LocalMmm {
            a1,
            pi1,
            a1_row_max: Vec::new(),
            a1_max: 0.0,
            pi1_max: 0.0,
            a1_sparse: None,
        };
        local.refresh_bounds();
        local
    }

    /// Recomputes `a1_row_max`/`a1_max`/`pi1_max` — and the sparse `A_1`
    /// view — from the current matrices. Must be called after any in-place
    /// mutation of `a1`/`pi1` (the feedback updates do), otherwise the
    /// retrieval pruning bounds go stale and the exactness guarantee is
    /// void.
    ///
    /// When the CSR view is kept, the row maxima are folded over its stored
    /// entries; a CSR omits exactly the zero entries, and the dense fold
    /// starts at `0.0`, so the results are bitwise identical either way
    /// (`validate_against` re-proves this against the dense fold).
    pub fn refresh_bounds(&mut self) {
        let csr = ForwardCsr::from_forward(self.a1.as_matrix());
        if csr.forward_density() <= crate::model::A1_CSR_DENSITY_THRESHOLD {
            let mut maxima = vec![0.0; self.a1.rows()];
            csr.row_maxima_into(&mut maxima);
            self.a1_row_max = maxima;
            self.a1_sparse = Some(csr);
        } else {
            self.a1_row_max = forward_row_maxima(&self.a1);
            self.a1_sparse = None;
        }
        self.a1_max = max_of(&self.a1_row_max);
        self.pi1_max = max_of(self.pi1.as_slice());
    }

    /// Number of shot states.
    pub fn len(&self) -> usize {
        self.pi1.len()
    }

    /// `true` if the video has no shots (never produced by the builder).
    pub fn is_empty(&self) -> bool {
        self.pi1.is_empty()
    }
}

/// Max of a non-negative slice (`0.0` when empty). Probability entries are
/// never NaN, so plain `f64::max` folding is total here.
fn max_of(values: &[f64]) -> f64 {
    values.iter().copied().fold(0.0, f64::max)
}

/// `max_{t ≥ s} A_1(s, t)` per row — only the forward (upper-triangle,
/// diagonal included) entries matter, because the lattice walk never moves
/// backwards through a video's shots.
fn forward_row_maxima(a1: &StochasticMatrix) -> Vec<f64> {
    let m = a1.as_matrix();
    (0..m.rows())
        .map(|s| (s..m.cols()).map(|t| m[(s, t)]).fold(0.0, f64::max))
        .collect()
}

/// Packed Eq.-14 terms of one query event: the features whose `B_1'`
/// centroid clears `CENTROID_EPSILON`, as parallel SoA arrays in ascending
/// feature order, plus the memoized Eq.-14 self-similarity denominator.
///
/// This is what lets the blocked similarity kernel run with *no* epsilon
/// branch in its inner loop: the filtering happened once, here, at
/// build/feedback time. The arrays deliberately store the raw
/// `(weight, centroid)` pairs rather than a pre-divided `weight / centroid`
/// — the kernel must perform the exact operation sequence of the scalar
/// reference loop (`w * (1 - |b - c|) / c`) to stay bitwise identical.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventTerms {
    /// Feature indices `y` with `B_1'(e, y) > CENTROID_EPSILON`, ascending.
    pub features: Vec<u32>,
    /// `B_1'(e, y)` for each packed feature.
    pub centroids: Vec<f64>,
    /// `P_{1,2}(e, y)` for each packed feature.
    pub weights: Vec<f64>,
    /// Memoized [`crate::sim::self_similarity`] — the Eq.-14 score of a shot
    /// sitting exactly on the centroid, used as the calibration denominator.
    pub self_sim: f64,
}

impl EventTerms {
    /// Packs the usable Eq.-14 terms of `event` from the cross-level
    /// matrices. The self-similarity fold walks the packed terms in the
    /// same ascending-feature order as [`crate::sim::self_similarity`]'s
    /// dense loop (which merely *skips* sub-epsilon centroids), so the
    /// memoized denominator is bitwise equal to the reference.
    pub fn build(p12: &StochasticMatrix, centroid: &FeatureVector, event: usize) -> Self {
        let mut terms = EventTerms {
            features: Vec::new(),
            centroids: Vec::new(),
            weights: Vec::new(),
            self_sim: 0.0,
        };
        for y in 0..FEATURE_COUNT {
            let c = centroid[y];
            if c <= crate::sim::CENTROID_EPSILON {
                continue;
            }
            let w = p12.get(event, y);
            terms.features.push(y as u32);
            terms.centroids.push(c);
            terms.weights.push(w);
            terms.self_sim += w / c;
        }
        terms
    }

    /// Verifies — without allocating — that these terms still mirror the
    /// cross-level matrices bitwise (NaN-safe: compares bit patterns).
    pub fn matches(&self, p12: &StochasticMatrix, centroid: &FeatureVector, event: usize) -> bool {
        let mut k = 0usize;
        let mut self_sim = 0.0;
        for y in 0..FEATURE_COUNT {
            let c = centroid[y];
            if c <= crate::sim::CENTROID_EPSILON {
                continue;
            }
            let w = p12.get(event, y);
            if k >= self.features.len()
                || self.features[k] as usize != y
                || self.centroids[k].to_bits() != c.to_bits()
                || self.weights[k].to_bits() != w.to_bits()
            {
                return false;
            }
            self_sim += w / c;
            k += 1;
        }
        k == self.features.len() && self.self_sim.to_bits() == self_sim.to_bits()
    }
}

/// A fully constructed two-level HMMM (Definition 1 with `d = 2`).
///
/// | Tuple element | Representation |
/// |---|---|
/// | `d` | 2 (see [`Hmmm::DEPTH`]) |
/// | `S_1`, `S_2` | catalog shot ids / video ids |
/// | `F_1`, `F_2` | Table-1 features / [`EventKind`] concepts |
/// | `A_1` | per-video [`LocalMmm::a1`] (temporal) |
/// | `A_2` | [`Hmmm::a2`] (co-access, non-temporal) |
/// | `B_1` | [`Hmmm::b1`] (normalized features per shot) |
/// | `B_2` | [`Hmmm::b2`] (event counts per video) |
/// | `Π_1`, `Π_2` | [`LocalMmm::pi1`], [`Hmmm::pi2`] |
/// | `P_{1,2}` | [`Hmmm::p12`] (event × feature importance) |
/// | `B_1'` | [`Hmmm::b1_prime`] (per-event feature centroids, Eq. 11) |
/// | `L_{1,2}` | the catalog's shot→video ranges (dense, implicit) |
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hmmm {
    /// One local MMM per video, indexed by `VideoId`.
    pub locals: Vec<LocalMmm>,
    /// `B_1`: normalized Table-1 features, indexed by global `ShotId`.
    pub b1: Vec<FeatureVector>,
    /// `A_2`: video-to-video relative affinity.
    pub a2: StochasticMatrix,
    /// `B_2`: per-video event counts (`B_2[video][event]`).
    pub b2: Vec<[usize; EventKind::COUNT]>,
    /// `Π_2`: initial video distribution.
    pub pi2: ProbVector,
    /// `P_{1,2}`: feature-importance weights, one stochastic row per event.
    pub p12: StochasticMatrix,
    /// `B_1'`: per-event feature centroids over normalized features.
    pub b1_prime: Vec<FeatureVector>,
    /// The Eq.-(3) normalizer fitted on the raw catalog features.
    pub normalizer: Normalizer,
    /// Feature-major (SoA) transpose of [`Hmmm::b1`], so the blocked Eq.-14
    /// kernel reads each feature's values for a shot block at unit stride.
    /// Derived cache: rebuilt by [`Hmmm::refresh_derived`] whenever `b1`
    /// changes, cross-checked bitwise against `b1` by the auditor.
    pub b1_slab: FeatureSlab,
    /// Per-event packed Eq.-14 terms (one entry per [`EventKind`]), with
    /// the memoized self-similarity denominator. Derived cache: rebuilt by
    /// [`Hmmm::refresh_event_terms`] whenever `p12`/`b1_prime` change (the
    /// feedback relearning step does).
    pub event_terms: Vec<EventTerms>,
    /// The ingest-time coarse index: inverted `B_2` event → video postings
    /// plus precomputed per-video bound summaries, feeding the two-stage
    /// coarse-to-fine retrieval ([`crate::coarse::CoarseIndex`]). Derived
    /// cache: rebuilt by [`Hmmm::refresh_coarse`] whenever any source
    /// matrix it folds (`Π_1`/`A_1` row maxima, `B_2`, `P_{1,2}`/`B_1'`
    /// through Eq. 14) changes — construction and every feedback round do.
    pub coarse: crate::coarse::CoarseIndex,
}

/// Human-readable summary of a model's dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelSummary {
    /// Hierarchy depth (`d`).
    pub depth: usize,
    /// Videos (`M`, level-2 states).
    pub videos: usize,
    /// Shots (`N`, level-1 states).
    pub shots: usize,
    /// Level-1 features (`K`).
    pub features: usize,
    /// Level-2 feature concepts (`C`, the events).
    pub events: usize,
}

impl Hmmm {
    /// The hierarchy depth of this deployment (`d` in Definition 1).
    pub const DEPTH: usize = 2;

    /// Dimension summary.
    pub fn summary(&self) -> ModelSummary {
        ModelSummary {
            depth: Self::DEPTH,
            videos: self.locals.len(),
            shots: self.b1.len(),
            features: FEATURE_COUNT,
            events: EventKind::COUNT,
        }
    }

    /// Number of videos (`M`).
    pub fn video_count(&self) -> usize {
        self.locals.len()
    }

    /// Number of shots (`N`).
    pub fn shot_count(&self) -> usize {
        self.b1.len()
    }

    /// Rebuilds every model-level derived cache (the `B_1` SoA slab and the
    /// packed event terms) from the source-of-truth matrices. Construction
    /// calls this once; mutate `b1` and you must call it again.
    pub fn refresh_derived(&mut self) {
        self.b1_slab = FeatureSlab::from_rows(&self.b1);
        self.refresh_event_terms();
        // Last: the coarse index folds calibrated Eq.-14 scores, which read
        // the packed event terms rebuilt just above.
        self.refresh_coarse();
    }

    /// Rebuilds only the packed event terms (and their memoized
    /// self-similarity denominators) from `p12`/`b1_prime`. The feedback
    /// relearning step calls this after replacing the cross-level matrices;
    /// `b1` is untouched there, so the slab needs no rebuild.
    pub fn refresh_event_terms(&mut self) {
        self.event_terms = (0..EventKind::COUNT)
            .map(|e| EventTerms::build(&self.p12, &self.b1_prime[e], e))
            .collect();
    }

    /// Rebuilds only the coarse retrieval index
    /// ([`crate::coarse::CoarseIndex`]) from the current matrices. Feedback
    /// calls this unconditionally at the end of every apply — `Π_1`/`A_1`
    /// always move there, and the stored Eq.-12/14 bound summaries fold
    /// them — while construction gets it through
    /// [`Hmmm::refresh_derived`]. Must run *after*
    /// [`Hmmm::refresh_event_terms`] when both fire: the calibrated
    /// similarity folds read the packed terms.
    pub fn refresh_coarse(&mut self) {
        let fresh = crate::coarse::CoarseIndex::build(self);
        self.coarse = fresh;
    }

    /// Validates the model against the catalog it was built from: per-video
    /// state counts, global feature rows, matrix dimensions, link ranges.
    ///
    /// # Errors
    ///
    /// [`CoreError::Inconsistent`] naming the first mismatch.
    pub fn validate_against(&self, catalog: &Catalog) -> Result<(), CoreError> {
        if self.locals.len() != catalog.video_count() {
            return Err(CoreError::Inconsistent(format!(
                "{} local MMMs vs {} videos",
                self.locals.len(),
                catalog.video_count()
            )));
        }
        if self.b1.len() != catalog.shot_count() {
            return Err(CoreError::Inconsistent(format!(
                "B1 has {} rows vs {} shots",
                self.b1.len(),
                catalog.shot_count()
            )));
        }
        for (v, local) in catalog.videos().iter().zip(self.locals.iter()) {
            if local.len() != v.shot_count() {
                return Err(CoreError::Inconsistent(format!(
                    "local MMM of {} has {} states vs {} shots",
                    v.id,
                    local.len(),
                    v.shot_count()
                )));
            }
            if local.a1.rows() != v.shot_count() || local.a1.cols() != v.shot_count() {
                return Err(CoreError::Inconsistent(format!(
                    "A1 of {} is {}x{}",
                    v.id,
                    local.a1.rows(),
                    local.a1.cols()
                )));
            }
            // Stale bound factors would make the top-k pruning bounds
            // inadmissible (silently wrong rankings), so they are checked
            // here rather than trusted. They are derived by the exact same
            // fold `refresh_bounds` uses, so fresh values compare equal.
            if local.a1_row_max != forward_row_maxima(&local.a1)
                || local.a1_max != max_of(&local.a1_row_max)
                || local.pi1_max != max_of(local.pi1.as_slice())
            {
                return Err(CoreError::Inconsistent(format!(
                    "stale A1/Π1 bound factors on {} (refresh_bounds not \
                     called after mutation?)",
                    v.id
                )));
            }
            // The sparse A1 view is derived the same way: either it mirrors
            // the dense matrix bitwise, or its absence is justified by the
            // density threshold. A stale CSR would silently change which
            // transitions the traversal even considers.
            let csr_fresh = match &local.a1_sparse {
                Some(csr) => {
                    csr.matches(local.a1.as_matrix())
                        && csr.forward_density() <= A1_CSR_DENSITY_THRESHOLD
                }
                None => {
                    ForwardCsr::from_forward(local.a1.as_matrix()).forward_density()
                        > A1_CSR_DENSITY_THRESHOLD
                }
            };
            if !csr_fresh {
                return Err(CoreError::Inconsistent(format!(
                    "stale sparse A1 view on {} (refresh_bounds not called \
                     after mutation?)",
                    v.id
                )));
            }
        }
        let m = catalog.video_count();
        if self.a2.rows() != m || self.a2.cols() != m || self.pi2.len() != m {
            return Err(CoreError::Inconsistent("A2/Π2 dimensions".into()));
        }
        if self.b2.len() != m {
            return Err(CoreError::Inconsistent("B2 row count".into()));
        }
        if self.p12.rows() != EventKind::COUNT || self.p12.cols() != FEATURE_COUNT {
            return Err(CoreError::Inconsistent("P12 dimensions".into()));
        }
        if self.b1_prime.len() != EventKind::COUNT {
            return Err(CoreError::Inconsistent("B1' row count".into()));
        }
        // Model-level derived caches: the SoA slab must be a bitwise
        // transpose of B1 and the packed event terms must mirror
        // P12/B1'. Both checks are NaN-safe bit comparisons, so a poisoned
        // model still gets its real diagnosis from the numeric audit below.
        if !self.b1_slab.matches(&self.b1) {
            return Err(CoreError::Inconsistent(
                "stale B1 SoA slab (refresh_derived not called after \
                 mutation?)"
                    .into(),
            ));
        }
        if self.event_terms.len() != EventKind::COUNT
            || self
                .event_terms
                .iter()
                .enumerate()
                .any(|(e, t)| !t.matches(&self.p12, &self.b1_prime[e], e))
        {
            return Err(CoreError::Inconsistent(
                "stale packed event terms (refresh_event_terms not called \
                 after mutation?)"
                    .into(),
            ));
        }
        // Coarse-index freshness, cheap half: shapes plus the postings ↔
        // B_2 signature predicate (O(videos × events), no Eq.-14 work).
        // The full bitwise re-fold of the stored bound summaries is
        // `deep_audit`'s job — a stale summary would make the coarse
        // stage's admission bounds inadmissible (silently wrong rankings).
        if !self.coarse.matches(self) {
            return Err(CoreError::Inconsistent(
                "stale coarse index (refresh_coarse not called after \
                 mutation?)"
                    .into(),
            ));
        }
        for (i, f) in self.b1.iter().enumerate() {
            if !f.is_finite() {
                return Err(CoreError::Inconsistent(format!(
                    "B1 row {i} is non-finite"
                )));
            }
        }
        // Debug builds escalate every shape validation into the full
        // numeric λ-audit (row-stochastic A_n, unit-mass Π/P_{1,2}, B_1'
        // ranges) — `Retriever::new` calls through here, so the invariants
        // get re-proven constantly while tests run. Release builds keep
        // validation O(shapes); run `hmmm check` / `deep_audit` explicitly.
        #[cfg(debug_assertions)]
        crate::audit::audit_numeric(self)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{build_hmmm, BuildConfig};
    use hmmm_features::FeatureId;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let feat = |x: f64| {
            let mut v = FeatureVector::zeros();
            v[FeatureId::GrassRatio] = x;
            v[FeatureId::VolumeMean] = 1.0 - x;
            v
        };
        c.add_video(
            "m1",
            vec![
                (vec![EventKind::FreeKick], feat(0.2)),
                (vec![EventKind::FreeKick, EventKind::Goal], feat(0.8)),
                (vec![EventKind::CornerKick], feat(0.5)),
            ],
        );
        c.add_video(
            "m2",
            vec![
                (vec![EventKind::Goal], feat(0.9)),
                (vec![], feat(0.1)),
            ],
        );
        c
    }

    #[test]
    fn summary_reports_dimensions() {
        let c = catalog();
        let m = build_hmmm(&c, &BuildConfig::default()).unwrap();
        let s = m.summary();
        assert_eq!(s.depth, 2);
        assert_eq!(s.videos, 2);
        assert_eq!(s.shots, 5);
        assert_eq!(s.features, 20);
        assert_eq!(s.events, 8);
    }

    #[test]
    fn validate_against_accepts_own_catalog() {
        let c = catalog();
        let m = build_hmmm(&c, &BuildConfig::default()).unwrap();
        assert!(m.validate_against(&c).is_ok());
    }

    #[test]
    fn validate_against_detects_drift() {
        let c = catalog();
        let m = build_hmmm(&c, &BuildConfig::default()).unwrap();
        let mut c2 = c.clone();
        c2.add_video("extra", vec![(vec![], FeatureVector::zeros())]);
        assert!(matches!(
            m.validate_against(&c2),
            Err(CoreError::Inconsistent(_))
        ));
    }

    #[test]
    fn serde_round_trip() {
        let c = catalog();
        let m = build_hmmm(&c, &BuildConfig::default()).unwrap();
        let json = serde_json::to_string(&m).unwrap();
        let back: Hmmm = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
