//! The two-level HMMM container.

use crate::error::CoreError;
use hmmm_features::{FeatureVector, Normalizer, FEATURE_COUNT};
use hmmm_matrix::{ProbVector, StochasticMatrix};
use hmmm_media::EventKind;
use hmmm_storage::Catalog;
use serde::{Deserialize, Serialize};

/// The *local* MMM of one video (§4.2.1): its shots' temporal affinity
/// matrix and initial-state distribution. Shot indices here are positions
/// **within the video**; the catalog's `shot_range` maps them to global ids.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalMmm {
    /// `A_1` — temporal relative-affinity matrix over the video's shots.
    pub a1: StochasticMatrix,
    /// `Π_1` — initial-state distribution over the video's shots.
    pub pi1: ProbVector,
    /// Per-shot forward transition maxima: `a1_row_max[s] = max_{t ≥ s}
    /// A_1(s, t)`. The Eq.-13 walk only ever moves forward through the
    /// lattice (`t ≥ s`, with `t = s` allowed for double-annotated shots),
    /// so this is the admissible one-step factor for an entry *sitting on*
    /// shot `s` — much tighter than the whole-matrix maximum, which is
    /// routinely poisoned to ≈1 by a trailing self-loop row. Maintained by
    /// [`LocalMmm::new`]/[`LocalMmm::refresh_bounds`]; construction and
    /// every feedback update keep it in sync with `a1`.
    pub a1_row_max: Vec<f64>,
    /// Largest forward transition factor anywhere in the video
    /// (`max` of [`LocalMmm::a1_row_max`]) — the admissible per-hop factor
    /// when the source shot of a future hop is not yet known (the deeper
    /// steps of the completion-bound chain).
    pub a1_max: f64,
    /// Largest entry of `Π_1` — the admissible Eq.-12 start factor.
    pub pi1_max: f64,
}

impl LocalMmm {
    /// Builds a local MMM, deriving the pruning bound factors
    /// (`a1_row_max`, `a1_max`, `pi1_max`) from the matrices.
    pub fn new(a1: StochasticMatrix, pi1: ProbVector) -> Self {
        let mut local = LocalMmm {
            a1,
            pi1,
            a1_row_max: Vec::new(),
            a1_max: 0.0,
            pi1_max: 0.0,
        };
        local.refresh_bounds();
        local
    }

    /// Recomputes `a1_row_max`/`a1_max`/`pi1_max` from the current
    /// matrices. Must be called after any in-place mutation of `a1`/`pi1`
    /// (the feedback updates do), otherwise the retrieval pruning bounds
    /// go stale and the exactness guarantee is void.
    pub fn refresh_bounds(&mut self) {
        self.a1_row_max = forward_row_maxima(&self.a1);
        self.a1_max = max_of(&self.a1_row_max);
        self.pi1_max = max_of(self.pi1.as_slice());
    }

    /// Number of shot states.
    pub fn len(&self) -> usize {
        self.pi1.len()
    }

    /// `true` if the video has no shots (never produced by the builder).
    pub fn is_empty(&self) -> bool {
        self.pi1.is_empty()
    }
}

/// Max of a non-negative slice (`0.0` when empty). Probability entries are
/// never NaN, so plain `f64::max` folding is total here.
fn max_of(values: &[f64]) -> f64 {
    values.iter().copied().fold(0.0, f64::max)
}

/// `max_{t ≥ s} A_1(s, t)` per row — only the forward (upper-triangle,
/// diagonal included) entries matter, because the lattice walk never moves
/// backwards through a video's shots.
fn forward_row_maxima(a1: &StochasticMatrix) -> Vec<f64> {
    let m = a1.as_matrix();
    (0..m.rows())
        .map(|s| (s..m.cols()).map(|t| m[(s, t)]).fold(0.0, f64::max))
        .collect()
}

/// A fully constructed two-level HMMM (Definition 1 with `d = 2`).
///
/// | Tuple element | Representation |
/// |---|---|
/// | `d` | 2 (see [`Hmmm::DEPTH`]) |
/// | `S_1`, `S_2` | catalog shot ids / video ids |
/// | `F_1`, `F_2` | Table-1 features / [`EventKind`] concepts |
/// | `A_1` | per-video [`LocalMmm::a1`] (temporal) |
/// | `A_2` | [`Hmmm::a2`] (co-access, non-temporal) |
/// | `B_1` | [`Hmmm::b1`] (normalized features per shot) |
/// | `B_2` | [`Hmmm::b2`] (event counts per video) |
/// | `Π_1`, `Π_2` | [`LocalMmm::pi1`], [`Hmmm::pi2`] |
/// | `P_{1,2}` | [`Hmmm::p12`] (event × feature importance) |
/// | `B_1'` | [`Hmmm::b1_prime`] (per-event feature centroids, Eq. 11) |
/// | `L_{1,2}` | the catalog's shot→video ranges (dense, implicit) |
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hmmm {
    /// One local MMM per video, indexed by `VideoId`.
    pub locals: Vec<LocalMmm>,
    /// `B_1`: normalized Table-1 features, indexed by global `ShotId`.
    pub b1: Vec<FeatureVector>,
    /// `A_2`: video-to-video relative affinity.
    pub a2: StochasticMatrix,
    /// `B_2`: per-video event counts (`B_2[video][event]`).
    pub b2: Vec<[usize; EventKind::COUNT]>,
    /// `Π_2`: initial video distribution.
    pub pi2: ProbVector,
    /// `P_{1,2}`: feature-importance weights, one stochastic row per event.
    pub p12: StochasticMatrix,
    /// `B_1'`: per-event feature centroids over normalized features.
    pub b1_prime: Vec<FeatureVector>,
    /// The Eq.-(3) normalizer fitted on the raw catalog features.
    pub normalizer: Normalizer,
}

/// Human-readable summary of a model's dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelSummary {
    /// Hierarchy depth (`d`).
    pub depth: usize,
    /// Videos (`M`, level-2 states).
    pub videos: usize,
    /// Shots (`N`, level-1 states).
    pub shots: usize,
    /// Level-1 features (`K`).
    pub features: usize,
    /// Level-2 feature concepts (`C`, the events).
    pub events: usize,
}

impl Hmmm {
    /// The hierarchy depth of this deployment (`d` in Definition 1).
    pub const DEPTH: usize = 2;

    /// Dimension summary.
    pub fn summary(&self) -> ModelSummary {
        ModelSummary {
            depth: Self::DEPTH,
            videos: self.locals.len(),
            shots: self.b1.len(),
            features: FEATURE_COUNT,
            events: EventKind::COUNT,
        }
    }

    /// Number of videos (`M`).
    pub fn video_count(&self) -> usize {
        self.locals.len()
    }

    /// Number of shots (`N`).
    pub fn shot_count(&self) -> usize {
        self.b1.len()
    }

    /// Validates the model against the catalog it was built from: per-video
    /// state counts, global feature rows, matrix dimensions, link ranges.
    ///
    /// # Errors
    ///
    /// [`CoreError::Inconsistent`] naming the first mismatch.
    pub fn validate_against(&self, catalog: &Catalog) -> Result<(), CoreError> {
        if self.locals.len() != catalog.video_count() {
            return Err(CoreError::Inconsistent(format!(
                "{} local MMMs vs {} videos",
                self.locals.len(),
                catalog.video_count()
            )));
        }
        if self.b1.len() != catalog.shot_count() {
            return Err(CoreError::Inconsistent(format!(
                "B1 has {} rows vs {} shots",
                self.b1.len(),
                catalog.shot_count()
            )));
        }
        for (v, local) in catalog.videos().iter().zip(self.locals.iter()) {
            if local.len() != v.shot_count() {
                return Err(CoreError::Inconsistent(format!(
                    "local MMM of {} has {} states vs {} shots",
                    v.id,
                    local.len(),
                    v.shot_count()
                )));
            }
            if local.a1.rows() != v.shot_count() || local.a1.cols() != v.shot_count() {
                return Err(CoreError::Inconsistent(format!(
                    "A1 of {} is {}x{}",
                    v.id,
                    local.a1.rows(),
                    local.a1.cols()
                )));
            }
            // Stale bound factors would make the top-k pruning bounds
            // inadmissible (silently wrong rankings), so they are checked
            // here rather than trusted. They are derived by the exact same
            // fold `refresh_bounds` uses, so fresh values compare equal.
            if local.a1_row_max != forward_row_maxima(&local.a1)
                || local.a1_max != max_of(&local.a1_row_max)
                || local.pi1_max != max_of(local.pi1.as_slice())
            {
                return Err(CoreError::Inconsistent(format!(
                    "stale A1/Π1 bound factors on {} (refresh_bounds not \
                     called after mutation?)",
                    v.id
                )));
            }
        }
        let m = catalog.video_count();
        if self.a2.rows() != m || self.a2.cols() != m || self.pi2.len() != m {
            return Err(CoreError::Inconsistent("A2/Π2 dimensions".into()));
        }
        if self.b2.len() != m {
            return Err(CoreError::Inconsistent("B2 row count".into()));
        }
        if self.p12.rows() != EventKind::COUNT || self.p12.cols() != FEATURE_COUNT {
            return Err(CoreError::Inconsistent("P12 dimensions".into()));
        }
        if self.b1_prime.len() != EventKind::COUNT {
            return Err(CoreError::Inconsistent("B1' row count".into()));
        }
        for (i, f) in self.b1.iter().enumerate() {
            if !f.is_finite() {
                return Err(CoreError::Inconsistent(format!(
                    "B1 row {i} is non-finite"
                )));
            }
        }
        // Debug builds escalate every shape validation into the full
        // numeric λ-audit (row-stochastic A_n, unit-mass Π/P_{1,2}, B_1'
        // ranges) — `Retriever::new` calls through here, so the invariants
        // get re-proven constantly while tests run. Release builds keep
        // validation O(shapes); run `hmmm check` / `deep_audit` explicitly.
        #[cfg(debug_assertions)]
        crate::audit::audit_numeric(self)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{build_hmmm, BuildConfig};
    use hmmm_features::FeatureId;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let feat = |x: f64| {
            let mut v = FeatureVector::zeros();
            v[FeatureId::GrassRatio] = x;
            v[FeatureId::VolumeMean] = 1.0 - x;
            v
        };
        c.add_video(
            "m1",
            vec![
                (vec![EventKind::FreeKick], feat(0.2)),
                (vec![EventKind::FreeKick, EventKind::Goal], feat(0.8)),
                (vec![EventKind::CornerKick], feat(0.5)),
            ],
        );
        c.add_video(
            "m2",
            vec![
                (vec![EventKind::Goal], feat(0.9)),
                (vec![], feat(0.1)),
            ],
        );
        c
    }

    #[test]
    fn summary_reports_dimensions() {
        let c = catalog();
        let m = build_hmmm(&c, &BuildConfig::default()).unwrap();
        let s = m.summary();
        assert_eq!(s.depth, 2);
        assert_eq!(s.videos, 2);
        assert_eq!(s.shots, 5);
        assert_eq!(s.features, 20);
        assert_eq!(s.events, 8);
    }

    #[test]
    fn validate_against_accepts_own_catalog() {
        let c = catalog();
        let m = build_hmmm(&c, &BuildConfig::default()).unwrap();
        assert!(m.validate_against(&c).is_ok());
    }

    #[test]
    fn validate_against_detects_drift() {
        let c = catalog();
        let m = build_hmmm(&c, &BuildConfig::default()).unwrap();
        let mut c2 = c.clone();
        c2.add_video("extra", vec![(vec![], FeatureVector::zeros())]);
        assert!(matches!(
            m.validate_against(&c2),
            Err(CoreError::Inconsistent(_))
        ));
    }

    #[test]
    fn serde_round_trip() {
        let c = catalog();
        let m = build_hmmm(&c, &BuildConfig::default()).unwrap();
        let json = serde_json::to_string(&m).unwrap();
        let back: Hmmm = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
