//! §4.2 model construction.

use crate::error::CoreError;
use crate::metrics as m;
use crate::model::{Hmmm, LocalMmm};
use hmmm_features::{FeatureVector, FEATURE_COUNT};
use hmmm_obs::RecorderHandle;
use hmmm_matrix::dense::ZeroRowPolicy;
use hmmm_matrix::{Matrix, ProbVector, StochasticMatrix};
use hmmm_media::EventKind;
use hmmm_storage::Catalog;
use serde::{Deserialize, Serialize};

/// Construction options.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BuildConfig {
    /// Annotation-count mass given to *unannotated* shots in the `A_1`
    /// initialization. The paper's closed form (§4.2.1.1) is defined over
    /// annotated shots (`NE ≥ 1`); a small positive weight here keeps
    /// unannotated shots reachable for feature-similarity traversal, `0.0`
    /// reproduces the paper exactly.
    pub unannotated_weight: f64,
    /// Initialize `A_2` from `B_2` content similarity (cosine over event
    /// counts) instead of the uniform matrix. The paper builds `A_2` purely
    /// from access patterns (Eq. 5), which do not exist before training;
    /// content-seeded affinity is the documented cold-start alternative and
    /// is ablated in the benches.
    pub a2_from_content: bool,
    /// Learn `P_{1,2}` from per-event feature dispersion (Eqs. 8–10) at
    /// build time when annotations exist; `false` keeps the uniform Eq.-(7)
    /// initialization (the ablation baseline).
    pub learn_p12: bool,
    /// Dispersion floor for Eq. (8) (`1/Std` with `Std < floor` clamps), so
    /// zero-variance features do not absorb all weight.
    pub std_floor: f64,
}

impl Default for BuildConfig {
    fn default() -> Self {
        BuildConfig {
            unannotated_weight: 0.0,
            a2_from_content: true,
            learn_p12: true,
            std_floor: 1e-3,
        }
    }
}

impl BuildConfig {
    /// The strictly paper-literal configuration: `A_1` over annotated mass
    /// only, uniform `A_2`, uniform `P_{1,2}` (everything that Eqs. 1–10
    /// would later learn from feedback starts flat).
    pub fn paper_literal() -> Self {
        BuildConfig {
            unannotated_weight: 0.0,
            a2_from_content: false,
            learn_p12: false,
            std_floor: 1e-3,
        }
    }
}

/// Builds the §4.2.1.1 initial `A_1` from per-shot annotation counts.
///
/// `A_1(i,j) = NE(s_j) / (Σ_{k=i}^N NE(s_k) − 1)` for `i < j`,
/// `A_1(i,i) = (NE(s_i) − 1) / (Σ_{k=i}^N NE(s_k) − 1)`, `A_1(N,N) = 1`,
/// zeros below the diagonal. Rows whose forward annotation mass is
/// exhausted become absorbing (self-loop), matching the `A_1(N,N) = 1`
/// convention; rows are re-normalized to absorb the `NE = 0` edge cases the
/// paper's formula leaves undefined.
///
/// # Examples
///
/// The paper's §4.2.1.1 worked example: a video of three shots annotated
/// `{free_kick}`, `{free_kick, goal}`, `{corner_kick}`, so `NE = [1, 2, 1]`
/// and the closed form gives exactly 2/3, 1/3, 1/2, 1/2, 1:
///
/// ```
/// use hmmm_core::construct::a1_initial_from_counts;
///
/// let a1 = a1_initial_from_counts(&[1.0, 2.0, 1.0]).unwrap();
/// assert!((a1.get(0, 1) - 2.0 / 3.0).abs() < 1e-12); // A1(1,2) = NE(s2)/(4−1)
/// assert!((a1.get(0, 2) - 1.0 / 3.0).abs() < 1e-12); // A1(1,3) = NE(s3)/(4−1)
/// assert!((a1.get(1, 1) - 1.0 / 2.0).abs() < 1e-12); // A1(2,2) = (NE(s2)−1)/(3−1)
/// assert!((a1.get(1, 2) - 1.0 / 2.0).abs() < 1e-12); // A1(2,3) = NE(s3)/(3−1)
/// assert_eq!(a1.get(2, 2), 1.0);                     // A1(3,3) = 1 (absorbing)
/// assert_eq!(a1.get(2, 0), 0.0);                     // temporal: no backward mass
/// ```
///
/// # Errors
///
/// [`CoreError::Matrix`] if `ne` is empty.
pub fn a1_initial_from_counts(ne: &[f64]) -> Result<StochasticMatrix, CoreError> {
    let n = ne.len();
    if n == 0 {
        return Err(CoreError::Matrix(hmmm_matrix::MatrixError::Empty));
    }
    let mut m = Matrix::zeros(n, n);
    // Suffix sums: suffix[i] = Σ_{k=i}^{N-1} ne[k].
    let mut suffix = vec![0.0; n + 1];
    for i in (0..n).rev() {
        suffix[i] = suffix[i + 1] + ne[i];
    }
    for i in 0..n {
        let denom = suffix[i] - 1.0;
        if i == n - 1 || denom <= 0.0 {
            m[(i, i)] = 1.0;
            continue;
        }
        m[(i, i)] = ((ne[i] - 1.0) / denom).max(0.0);
        for j in (i + 1)..n {
            m[(i, j)] = (ne[j] / denom).max(0.0);
        }
    }
    StochasticMatrix::normalize(m, ZeroRowPolicy::SelfLoop).map_err(CoreError::from)
}

/// Builds the complete two-level HMMM from a catalog.
///
/// # Examples
///
/// Constructing the model over the §4.2.1.1 three-shot video reproduces the
/// worked example's `A_1` inside [`Hmmm::locals`] and fills the rest of the
/// Definition-1 tuple (`B_1` from Eq.-3 normalization, `B_1'` centroids per
/// Eq. 11, `P_{1,2}` per Eqs. 7–10):
///
/// ```
/// use hmmm_core::{build_hmmm, BuildConfig};
/// use hmmm_features::{FeatureId, FeatureVector};
/// use hmmm_media::EventKind;
/// use hmmm_storage::Catalog;
///
/// # fn feat(grass: f64, volume: f64) -> FeatureVector {
/// #     let mut f = FeatureVector::zeros();
/// #     f[FeatureId::GrassRatio] = grass;
/// #     f[FeatureId::VolumeMean] = volume;
/// #     f
/// # }
/// // §4.2.1.1: shots annotated {free_kick}, {free_kick, goal}, {corner_kick}.
/// let mut catalog = Catalog::new();
/// catalog.add_video("v1", vec![
///     (vec![EventKind::FreeKick], feat(0.3, 0.2)),
///     (vec![EventKind::FreeKick, EventKind::Goal], feat(0.8, 0.9)),
///     (vec![EventKind::CornerKick], feat(0.5, 0.4)),
/// ]);
///
/// let model = build_hmmm(&catalog, &BuildConfig::default()).unwrap();
/// assert_eq!(model.summary().videos, 1);
/// assert_eq!(model.summary().shots, 3);
///
/// // NE = [1, 2, 1] → the worked example's first row: (0, 2/3, 1/3).
/// let a1 = &model.locals[0].a1;
/// assert!((a1.get(0, 1) - 2.0 / 3.0).abs() < 1e-12);
/// assert!((a1.get(0, 2) - 1.0 / 3.0).abs() < 1e-12);
///
/// // B_2 counts the annotations per video; goal appears once.
/// assert_eq!(model.b2[0][EventKind::Goal.index()], 1);
/// ```
///
/// # Errors
///
/// [`CoreError::Catalog`] for an empty catalog, [`CoreError::Matrix`] for
/// degenerate matrix construction.
pub fn build_hmmm(catalog: &Catalog, config: &BuildConfig) -> Result<Hmmm, CoreError> {
    build_hmmm_observed(catalog, config, &RecorderHandle::noop())
}

/// [`build_hmmm`] with per-stage observability: wraps each construction
/// stage (`B_1` normalization, local MMMs, level-2 matrices, cross-level
/// glue) in a span and counts model size — see [`crate::metrics`] for the
/// names. With a noop handle this is exactly `build_hmmm` (the §4.2
/// construction, Eqs. 1–3, 7, 11).
///
/// # Errors
///
/// Same as [`build_hmmm`].
pub fn build_hmmm_observed(
    catalog: &Catalog,
    config: &BuildConfig,
    obs: &RecorderHandle,
) -> Result<Hmmm, CoreError> {
    let _root = obs.span(m::SPAN_CONSTRUCT);
    if catalog.video_count() == 0 || catalog.shot_count() == 0 {
        return Err(CoreError::Catalog(hmmm_storage::CatalogError::Empty));
    }

    // B_1: Eq. (3) normalization over the whole archive.
    let (normalizer, b1) = {
        let _span = obs.span(m::SPAN_CONSTRUCT_B1);
        let normalizer = catalog.fit_normalizer()?;
        let b1: Vec<FeatureVector> = catalog
            .shots()
            .iter()
            .map(|s| normalizer.normalize(&s.features))
            .collect();
        (normalizer, b1)
    };

    // Local MMMs: per-video A_1 (closed form) and Π_1 (uniform until
    // feedback provides Eq.-4 usage data).
    let locals = {
        let _span = obs.span(m::SPAN_CONSTRUCT_LOCALS);
        catalog
            .videos()
            .iter()
            .map(|v| {
                let ne: Vec<f64> = catalog
                    .shots_of_video(v.id)
                    .iter()
                    .map(|s| {
                        let ne = s.event_count() as f64;
                        if ne > 0.0 {
                            ne
                        } else {
                            config.unannotated_weight
                        }
                    })
                    .collect();
                let a1 = a1_initial_from_counts(&ne)?;
                let pi1 = ProbVector::uniform(ne.len())?;
                Ok(LocalMmm::new(a1, pi1))
            })
            .collect::<Result<Vec<_>, CoreError>>()?
    };

    // Level 2: B_2 straight from the catalog, then A_2 (uniform
    // paper-literal or content-seeded cosine affinity) and Π_2.
    let (b2, a2, pi2) = {
        let _span = obs.span(m::SPAN_CONSTRUCT_LEVEL2);
        let b2 = catalog.event_count_matrix();
        let videos = catalog.video_count();
        let a2 = if config.a2_from_content {
            a2_from_event_counts(&b2)?
        } else {
            StochasticMatrix::uniform(videos, videos)?
        };
        let pi2 = ProbVector::uniform(videos)?;
        (b2, a2, pi2)
    };

    // B_1' (Eq. 11) and P_{1,2} (Eq. 7 / Eqs. 8–10).
    let (b1_prime, p12) = {
        let _span = obs.span(m::SPAN_CONSTRUCT_CROSS);
        let b1_prime = event_centroids(catalog, &b1);
        let p12 = if config.learn_p12 {
            learn_p12(catalog, &b1, config.std_floor)?
        } else {
            StochasticMatrix::uniform(EventKind::COUNT, FEATURE_COUNT)?
        };
        (b1_prime, p12)
    };

    if obs.is_enabled() {
        obs.counter(m::CTR_CONSTRUCT_VIDEOS, catalog.video_count() as u64);
        obs.counter(m::CTR_CONSTRUCT_SHOTS, catalog.shot_count() as u64);
    }

    let mut model = Hmmm {
        locals,
        b1,
        a2,
        b2,
        pi2,
        p12,
        b1_prime,
        normalizer,
        b1_slab: hmmm_features::FeatureSlab::empty(),
        event_terms: Vec::new(),
        coarse: crate::coarse::CoarseIndex::empty(),
    };
    // Derive the SoA hot-path caches (feature-major B1 slab, packed Eq.-14
    // event terms with memoized self-similarity denominators, the coarse
    // retrieval index).
    model.refresh_derived();
    Ok(model)
}

/// `B_1'` per Eq. (11): the mean normalized feature vector over the shots
/// annotated with each event (zero vector for events with no examples).
pub fn event_centroids(catalog: &Catalog, b1: &[FeatureVector]) -> Vec<FeatureVector> {
    EventKind::ALL
        .iter()
        .map(|&kind| {
            let members: Vec<FeatureVector> = catalog
                .shots_with_event(kind)
                .into_iter()
                .map(|id| b1[id.index()])
                .collect();
            FeatureVector::mean_of(&members)
        })
        .collect()
}

/// `P_{1,2}` per Eqs. (8)–(10): row `i` is the normalized inverse standard
/// deviation of each feature over the shots annotated with event `i`.
/// Events with fewer than two examples fall back to the uniform Eq.-(7) row.
///
/// Columns whose member values are all (near) zero are *excluded* rather
/// than given `1/Std → ∞` weight: a feature that never fires for the event
/// carries no evidence, and Eq. (14) skips zero-centroid features anyway
/// (the paper's "K non-zero features" restriction, applied to learning).
///
/// # Errors
///
/// [`CoreError::Matrix`] only on internal dimension bugs.
pub fn learn_p12(
    catalog: &Catalog,
    b1: &[FeatureVector],
    std_floor: f64,
) -> Result<StochasticMatrix, CoreError> {
    let mut m = Matrix::zeros(EventKind::COUNT, FEATURE_COUNT);
    for (row, &kind) in EventKind::ALL.iter().enumerate() {
        let members: Vec<FeatureVector> = catalog
            .shots_with_event(kind)
            .into_iter()
            .map(|id| b1[id.index()])
            .collect();
        dispersion_weights_into(&members, std_floor, row, &mut m);
    }
    // Eq. (9)/(10): row normalization.
    StochasticMatrix::normalize(m, ZeroRowPolicy::Uniform).map_err(CoreError::from)
}

/// Fills `m[row]` with Eq.-(8) inverse-dispersion weights for one event's
/// member shots (uniform when fewer than two members; zero-support columns
/// excluded). Shared by build-time learning and feedback re-learning.
pub(crate) fn dispersion_weights_into(
    members: &[FeatureVector],
    std_floor: f64,
    row: usize,
    m: &mut Matrix,
) {
    if members.len() < 2 {
        for col in 0..FEATURE_COUNT {
            m[(row, col)] = 1.0 / FEATURE_COUNT as f64;
        }
        return;
    }
    let centroid = FeatureVector::mean_of(members);
    let std = FeatureVector::std_of(members);
    for col in 0..FEATURE_COUNT {
        m[(row, col)] = if centroid[col] <= crate::sim::CENTROID_EPSILON {
            0.0
        } else {
            // Eq. (8): P'(i,j) = 1 / Std_{i,j}, floored.
            1.0 / std[col].max(std_floor)
        };
    }
}

/// Content-seeded `A_2`: cosine similarity of `B_2` rows, row-normalized.
/// Videos with no events fall back to the uniform row.
fn a2_from_event_counts(b2: &[[usize; EventKind::COUNT]]) -> Result<StochasticMatrix, CoreError> {
    let m = b2.len();
    let mut mat = Matrix::zeros(m, m);
    for i in 0..m {
        for j in 0..m {
            mat[(i, j)] = cosine(&b2[i], &b2[j]);
        }
    }
    StochasticMatrix::normalize(mat, ZeroRowPolicy::Uniform).map_err(CoreError::from)
}

fn cosine(a: &[usize; EventKind::COUNT], b: &[usize; EventKind::COUNT]) -> f64 {
    let dot: f64 = a.iter().zip(b.iter()).map(|(&x, &y)| (x * y) as f64).sum();
    let na: f64 = a.iter().map(|&x| (x * x) as f64).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|&x| (x * x) as f64).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmmm_features::FeatureId;

    /// §4.2.1.1 worked example: shots annotated [FreeKick], [FreeKick+Goal],
    /// [CornerKick] → NE = [1, 2, 1] and the exact closed-form values.
    #[test]
    fn a1_initialization_reproduces_the_papers_example() {
        let a1 = a1_initial_from_counts(&[1.0, 2.0, 1.0]).unwrap();
        let close = |x: f64, y: f64| (x - y).abs() < 1e-12;
        assert!(close(a1.get(0, 1), 2.0 / 3.0), "A1(1,2) = {}", a1.get(0, 1));
        assert!(close(a1.get(0, 2), 1.0 / 3.0), "A1(1,3) = {}", a1.get(0, 2));
        assert!(close(a1.get(0, 0), 0.0));
        assert!(close(a1.get(1, 1), 0.5), "A1(2,2) = {}", a1.get(1, 1));
        assert!(close(a1.get(1, 2), 0.5), "A1(2,3) = {}", a1.get(1, 2));
        assert!(close(a1.get(2, 2), 1.0), "A1(3,3) = {}", a1.get(2, 2));
        // Temporal: nothing below the diagonal.
        assert!(close(a1.get(1, 0), 0.0));
        assert!(close(a1.get(2, 0), 0.0));
        assert!(close(a1.get(2, 1), 0.0));
    }

    #[test]
    fn a1_single_shot_is_absorbing() {
        let a1 = a1_initial_from_counts(&[3.0]).unwrap();
        assert_eq!(a1.get(0, 0), 1.0);
    }

    #[test]
    fn a1_handles_unannotated_tails() {
        // Trailing zero-mass shots: their rows become absorbing, earlier
        // rows simply never reach them.
        let a1 = a1_initial_from_counts(&[2.0, 0.0, 0.0]).unwrap();
        assert_eq!(a1.get(1, 1), 1.0);
        assert_eq!(a1.get(2, 2), 1.0);
        assert_eq!(a1.get(0, 1), 0.0);
        let sum: f64 = a1.row(0).iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn a1_empty_rejected() {
        assert!(a1_initial_from_counts(&[]).is_err());
    }

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let feat = |g: f64, v: f64| {
            let mut f = FeatureVector::zeros();
            f[FeatureId::GrassRatio] = g;
            f[FeatureId::VolumeMean] = v;
            f
        };
        c.add_video(
            "m1",
            vec![
                (vec![EventKind::FreeKick], feat(0.7, 0.2)),
                (vec![EventKind::FreeKick, EventKind::Goal], feat(0.8, 0.9)),
                (vec![], feat(0.4, 0.1)),
                (vec![EventKind::Goal], feat(0.75, 0.95)),
            ],
        );
        c.add_video(
            "m2",
            vec![
                (vec![EventKind::CornerKick], feat(0.6, 0.3)),
                (vec![EventKind::Goal], feat(0.7, 0.85)),
            ],
        );
        c
    }

    #[test]
    fn build_produces_consistent_model() {
        let c = catalog();
        let model = build_hmmm(&c, &BuildConfig::default()).unwrap();
        assert!(model.validate_against(&c).is_ok());
        assert_eq!(model.locals[0].len(), 4);
        assert_eq!(model.locals[1].len(), 2);
    }

    #[test]
    fn empty_catalog_rejected() {
        assert!(matches!(
            build_hmmm(&Catalog::new(), &BuildConfig::default()),
            Err(CoreError::Catalog(_))
        ));
    }

    #[test]
    fn b2_counts_match_catalog() {
        let c = catalog();
        let model = build_hmmm(&c, &BuildConfig::default()).unwrap();
        assert_eq!(model.b2[0][EventKind::FreeKick.index()], 2);
        assert_eq!(model.b2[0][EventKind::Goal.index()], 2);
        assert_eq!(model.b2[1][EventKind::CornerKick.index()], 1);
    }

    #[test]
    fn centroids_average_member_shots() {
        let c = catalog();
        let model = build_hmmm(&c, &BuildConfig::default()).unwrap();
        // Goal shots are the loud ones; its centroid volume must exceed the
        // free-kick centroid's.
        let goal = &model.b1_prime[EventKind::Goal.index()];
        let fk = &model.b1_prime[EventKind::FreeKick.index()];
        assert!(goal[FeatureId::VolumeMean] > fk[FeatureId::VolumeMean]);
        // Unseen events have the zero centroid.
        let red = &model.b1_prime[EventKind::RedCard.index()];
        assert_eq!(*red, FeatureVector::zeros());
    }

    #[test]
    fn learned_p12_upweights_stable_features() {
        let c = catalog();
        let model = build_hmmm(&c, &BuildConfig::default()).unwrap();
        // Goal shots share high volume (std small) but catalog-wide grass
        // varies more; volume weight must beat the uniform baseline.
        let goal_row = EventKind::Goal.index();
        let w_volume = model.p12.get(goal_row, FeatureId::VolumeMean.index());
        assert!(
            w_volume > 1.0 / FEATURE_COUNT as f64,
            "volume weight {w_volume}"
        );
        // Rows with < 2 examples are uniform.
        let red_row = EventKind::RedCard.index();
        let w = model.p12.get(red_row, 0);
        assert!((w - 1.0 / FEATURE_COUNT as f64).abs() < 1e-12);
    }

    #[test]
    fn paper_literal_config_is_uniform() {
        let c = catalog();
        let model = build_hmmm(&c, &BuildConfig::paper_literal()).unwrap();
        let u = 1.0 / FEATURE_COUNT as f64;
        for row in 0..EventKind::COUNT {
            for col in 0..FEATURE_COUNT {
                assert!((model.p12.get(row, col) - u).abs() < 1e-12);
            }
        }
        let m = c.video_count();
        for i in 0..m {
            for j in 0..m {
                assert!((model.a2.get(i, j) - 1.0 / m as f64).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn content_a2_links_similar_videos() {
        let c = catalog();
        let model = build_hmmm(&c, &BuildConfig::default()).unwrap();
        // Both videos contain goals → off-diagonal affinity is non-zero.
        assert!(model.a2.get(0, 1) > 0.0);
    }
}
