//! The λ-invariant deep auditor.
//!
//! [`crate::model::Hmmm::validate_against`] checks *shapes* (state counts,
//! matrix dimensions, fresh pruning-bound caches). This module extends it
//! into a numeric well-formedness audit of the whole Definition-1 tuple
//! `λ = (d, S, F, A, B, Π, P, L)`:
//!
//! * `A_1` (per video) and `A_2` are row-stochastic within tolerance, with
//!   every entry a finite probability — the Eq. 12–13 walk weights and the
//!   admissible completion bounds both assume this.
//! * `Π_1`, `Π_2` and every row of `P_{1,2}` carry unit mass (Eqs. 4, 6, 7
//!   and the Eqs. 8–10 learning updates all renormalize; drift here means a
//!   broken update path).
//! * `L_{1,2}` is strictly 0/1: in this deployment the link matrix is
//!   stored implicitly as the catalog's contiguous `shot_range`s, so the
//!   0/1 property is equivalent to the ranges partitioning `[0, N)` —
//!   every shot linked to exactly one video.
//! * `B_1` rows and `B_1'` centroids are finite and inside the normalized
//!   `[0, 1]` feature range, so the Eq. 14 denominators that exceed
//!   [`crate::sim::CENTROID_EPSILON`] are genuinely usable.
//! * `B_2` matches the catalog's annotation counts (feedback never touches
//!   `B_2`; a mismatch means the model was built from a different archive).
//! * The `refresh_bounds` caches compare exactly equal to recomputed
//!   maxima (delegated to `validate_against` — same fold, bitwise equality).
//! * The hot-path SoA caches mirror their AoS sources bitwise (also via
//!   `validate_against`): the feature-major `B_1` slab against the row-major
//!   `b1`, every packed [`crate::model::EventTerms`] list (including its
//!   memoized Eq. 14 self-similarity denominator) against `P_{1,2}` and
//!   `B_1'`, and each video's sparse `A_1` view against its dense matrix —
//!   including that the sparse/dense choice still agrees with
//!   [`crate::model::A1_CSR_DENSITY_THRESHOLD`].
//!
//! The audit runs through [`crate::model::Hmmm::deep_audit`], is surfaced on
//! the CLI as `hmmm check`, and in debug builds is wired into
//! `validate_against` itself so every `Retriever::new` re-proves the
//! invariants while tests run.

use crate::error::CoreError;
use crate::model::Hmmm;
use hmmm_features::FEATURE_COUNT;
use hmmm_matrix::{ProbVector, StochasticMatrix, STOCHASTIC_TOLERANCE};
use hmmm_media::EventKind;
use hmmm_storage::Catalog;
use std::fmt;

/// Numeric tolerance for the row-sum / unit-mass checks. Re-uses the matrix
/// layer's construction tolerance so a model that validated on build cannot
/// fail the audit merely by round-tripping.
pub const AUDIT_TOLERANCE: f64 = STOCHASTIC_TOLERANCE;

/// What a successful [`Hmmm::deep_audit`] proved, with enough counts to be
/// a meaningful CLI receipt (`hmmm check`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditSummary {
    /// Videos (`M`, level-2 states).
    pub videos: usize,
    /// Shots (`N`, level-1 states).
    pub shots: usize,
    /// Stochastic rows proven unit-mass across all `A_1` matrices.
    pub a1_rows: usize,
    /// Stochastic rows proven unit-mass in `A_2`.
    pub a2_rows: usize,
    /// `P_{1,2}` rows proven unit-mass.
    pub p12_rows: usize,
    /// `Π` vectors proven unit-mass (`Π_2` plus one `Π_1` per video).
    pub pi_vectors: usize,
    /// Shot→video links proven exactly-one (the `L_{1,2}` 0/1 property).
    pub links: usize,
    /// Events whose `B_1'` centroid has at least one Eq.-14-usable
    /// denominator (an entry above [`crate::sim::CENTROID_EPSILON`]).
    pub events_with_usable_centroid: usize,
    /// Videos whose `A_1` traversal runs over the proven-fresh sparse CSR
    /// view (the rest fall back to the dense row scan because their forward
    /// density exceeds [`crate::model::A1_CSR_DENSITY_THRESHOLD`]).
    pub a1_sparse_videos: usize,
    /// Total event → video postings proven to mirror the `B_2` signature
    /// bitwise, with every stored coarse bound summary re-folded equal
    /// (the [`crate::coarse::CoarseIndex`] consistency check).
    pub coarse_postings: usize,
}

impl fmt::Display for AuditSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} videos / {} shots; rows unit-mass: A1={} A2={} P12={} Π={}; \
             L12 links 0/1: {}; events with usable B1' denominators: {}/{}; \
             A1 sparse views: {}/{}; coarse postings: {}",
            self.videos,
            self.shots,
            self.a1_rows,
            self.a2_rows,
            self.p12_rows,
            self.pi_vectors,
            self.links,
            self.events_with_usable_centroid,
            EventKind::COUNT,
            self.a1_sparse_videos,
            self.videos,
            self.coarse_postings
        )
    }
}

/// Checks that every row of `what` is a finite probability distribution
/// within [`AUDIT_TOLERANCE`]. Returns the number of rows proven.
fn audit_stochastic_rows(m: &StochasticMatrix, what: &str) -> Result<usize, CoreError> {
    let dense = m.as_matrix();
    for r in 0..dense.rows() {
        let mut sum = 0.0;
        for c in 0..dense.cols() {
            let p = dense[(r, c)];
            if !p.is_finite() || !(0.0..=1.0 + AUDIT_TOLERANCE).contains(&p) {
                return Err(CoreError::Inconsistent(format!(
                    "{what} row {r} col {c}: entry {p} is not a probability"
                )));
            }
            sum += p;
        }
        if (sum - 1.0).abs() > AUDIT_TOLERANCE {
            return Err(CoreError::Inconsistent(format!(
                "{what} row {r} sums to {sum}, expected 1 ± {AUDIT_TOLERANCE}"
            )));
        }
    }
    Ok(dense.rows())
}

/// Checks that a `Π` vector carries unit mass of finite probabilities.
fn audit_prob_vector(v: &ProbVector, what: &str) -> Result<(), CoreError> {
    let mut sum = 0.0;
    for (i, &p) in v.as_slice().iter().enumerate() {
        if !p.is_finite() || !(0.0..=1.0 + AUDIT_TOLERANCE).contains(&p) {
            return Err(CoreError::Inconsistent(format!(
                "{what} entry {i}: {p} is not a probability"
            )));
        }
        sum += p;
    }
    if (sum - 1.0).abs() > AUDIT_TOLERANCE {
        return Err(CoreError::Inconsistent(format!(
            "{what} sums to {sum}, expected 1 ± {AUDIT_TOLERANCE}"
        )));
    }
    Ok(())
}

/// Numeric audit of the model-internal Definition-1 invariants (no catalog
/// needed): stochastic rows, unit-mass `Π`s, finite in-range `B_1`/`B_1'`
/// (the Eq. 11 centroids).
///
/// # Errors
///
/// [`CoreError::Inconsistent`] naming the first violated invariant.
pub fn audit_numeric(model: &Hmmm) -> Result<(), CoreError> {
    for (v, local) in model.locals.iter().enumerate() {
        audit_stochastic_rows(&local.a1, &format!("A1 of video {v}"))?;
        audit_prob_vector(&local.pi1, &format!("Π1 of video {v}"))?;
    }
    audit_stochastic_rows(&model.a2, "A2")?;
    audit_prob_vector(&model.pi2, "Π2")?;
    audit_stochastic_rows(&model.p12, "P12")?;
    for (s, row) in model.b1.iter().enumerate() {
        audit_unit_interval(row.as_slice(), &format!("B1 shot {s}"))?;
    }
    for (e, row) in model.b1_prime.iter().enumerate() {
        audit_unit_interval(row.as_slice(), &format!("B1' event {e}"))?;
    }
    Ok(())
}

/// Normalized feature rows live in `[0, 1]` (Eq. 3 min–max scaling); the
/// Eq. 11 centroids are means of such rows and inherit the range.
fn audit_unit_interval(row: &[f64], what: &str) -> Result<(), CoreError> {
    for (y, &x) in row.iter().enumerate() {
        if !x.is_finite() || !(0.0..=1.0 + AUDIT_TOLERANCE).contains(&x) {
            return Err(CoreError::Inconsistent(format!(
                "{what} feature {y}: {x} outside the normalized [0, 1] range"
            )));
        }
    }
    Ok(())
}

/// Audits the implicit `L_{1,2}` link matrix (Definition 1's 0/1 link
/// condition) and the `B_2` counts against the catalog: the per-video
/// `shot_range`s must partition `[0, N)` exactly
/// (each shot linked to **one** video — the strict 0/1 property), and
/// `B_2[v][e]` must equal the number of shots of video `v` annotated `e`.
pub fn audit_links(model: &Hmmm, catalog: &Catalog) -> Result<usize, CoreError> {
    let mut next = 0usize;
    for v in catalog.videos() {
        if v.shot_range.start != next {
            return Err(CoreError::Inconsistent(format!(
                "L12 gap/overlap: {} starts at shot {} but previous video \
                 ended at {next}",
                v.id, v.shot_range.start
            )));
        }
        if v.shot_range.end < v.shot_range.start {
            return Err(CoreError::Inconsistent(format!(
                "L12: {} has inverted shot range",
                v.id
            )));
        }
        next = v.shot_range.end;
    }
    if next != catalog.shot_count() {
        return Err(CoreError::Inconsistent(format!(
            "L12: ranges cover {next} shots, catalog has {}",
            catalog.shot_count()
        )));
    }
    let expected = catalog.event_count_matrix();
    if model.b2 != expected {
        for (v, (got, want)) in model.b2.iter().zip(expected.iter()).enumerate() {
            if got != want {
                return Err(CoreError::Inconsistent(format!(
                    "B2 row {v} disagrees with catalog annotations \
                     ({got:?} vs {want:?})"
                )));
            }
        }
    }
    Ok(next)
}

impl Hmmm {
    /// Full λ-invariant audit: [`Hmmm::validate_against`] (shapes + fresh
    /// pruning-bound caches) plus the numeric Definition-1 checks in
    /// [`crate::audit`]. This is what `hmmm check` runs.
    ///
    /// # Errors
    ///
    /// [`CoreError::Inconsistent`] naming the first violated invariant.
    pub fn deep_audit(&self, catalog: &Catalog) -> Result<AuditSummary, CoreError> {
        self.validate_against(catalog)?;
        audit_numeric(self)?;
        let links = audit_links(self, catalog)?;
        // Coarse-index consistency, full half: the postings must equal the
        // B_2 signature (which `audit_links` just proved equal to the
        // catalog's annotation counts, so signatures == catalog counts by
        // transitivity) and every stored bound summary must re-fold
        // bitwise from the live matrices (stored bounds == fresh bounds).
        self.coarse.audit(self)?;
        let usable = (0..EventKind::COUNT)
            .filter(|&e| {
                self.b1_prime[e]
                    .as_slice()
                    .iter()
                    .any(|&c| c > crate::sim::CENTROID_EPSILON)
            })
            .count();
        let a1_rows = self.locals.iter().map(|l| l.a1.rows()).sum();
        let a1_sparse_videos = self
            .locals
            .iter()
            .filter(|l| l.a1_sparse.is_some())
            .count();
        Ok(AuditSummary {
            videos: self.video_count(),
            shots: self.shot_count(),
            a1_rows,
            a2_rows: self.a2.rows(),
            p12_rows: self.p12.rows(),
            pi_vectors: self.locals.len() + 1,
            links,
            events_with_usable_centroid: usable,
            a1_sparse_videos,
            coarse_postings: self.coarse.postings_len(),
        })
    }
}

// Keep the summary honest about dimensions even if constants move.
const _: () = assert!(FEATURE_COUNT > 0 && EventKind::COUNT > 0);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{build_hmmm, BuildConfig};
    use hmmm_features::{FeatureId, FeatureVector};
    use hmmm_matrix::Matrix;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let feat = |x: f64| {
            let mut v = FeatureVector::zeros();
            v[FeatureId::GrassRatio] = x;
            v[FeatureId::VolumeMean] = 1.0 - x;
            v
        };
        c.add_video(
            "m1",
            vec![
                (vec![EventKind::FreeKick], feat(0.2)),
                (vec![EventKind::FreeKick, EventKind::Goal], feat(0.8)),
                (vec![EventKind::CornerKick], feat(0.5)),
            ],
        );
        c.add_video(
            "m2",
            vec![(vec![EventKind::Goal], feat(0.9)), (vec![], feat(0.1))],
        );
        c
    }

    #[test]
    fn deep_audit_accepts_built_model() {
        let c = catalog();
        let m = build_hmmm(&c, &BuildConfig::default()).unwrap();
        let summary = m.deep_audit(&c).expect("built model must audit clean");
        assert_eq!(summary.videos, 2);
        assert_eq!(summary.shots, 5);
        assert_eq!(summary.a1_rows, 5);
        assert_eq!(summary.links, 5);
        assert_eq!(summary.pi_vectors, 3);
        // Display is the CLI receipt; make sure it stays informative.
        assert!(summary.to_string().contains("2 videos / 5 shots"));
    }

    #[test]
    fn deep_audit_rejects_perturbed_a1_row() {
        let c = catalog();
        let mut m = build_hmmm(&c, &BuildConfig::default()).unwrap();
        let mut dense: Matrix = m.locals[0].a1.as_matrix().clone();
        dense[(0, 0)] += 0.25; // row now sums to 1.25
        m.locals[0].a1 = StochasticMatrix::new_unchecked(dense);
        m.locals[0].refresh_bounds(); // keep bound caches fresh so the
                                      // *row-sum* check is what fires
        let err = m.deep_audit(&c).unwrap_err();
        assert!(matches!(err, CoreError::Inconsistent(ref s) if s.contains("A1")));
    }

    #[test]
    fn deep_audit_rejects_b2_drift() {
        let c = catalog();
        let mut m = build_hmmm(&c, &BuildConfig::default()).unwrap();
        m.b2[0][EventKind::Goal.index()] += 1;
        let err = m.deep_audit(&c).unwrap_err();
        assert!(matches!(err, CoreError::Inconsistent(ref s) if s.contains("B2")));
    }

    #[test]
    fn deep_audit_rejects_non_finite_centroid() {
        let c = catalog();
        let mut m = build_hmmm(&c, &BuildConfig::default()).unwrap();
        m.b1_prime[0].as_mut_slice()[0] = f64::NAN;
        assert!(m.deep_audit(&c).is_err());
    }

    #[test]
    fn deep_audit_rejects_stale_b1_slab() {
        let c = catalog();
        let mut m = build_hmmm(&c, &BuildConfig::default()).unwrap();
        // Mutate the AoS source without refreshing the SoA mirror: the
        // blocked kernel would silently read stale features, so the audit
        // must fail before retrieval ever runs.
        m.b1[0][FeatureId::GrassRatio] += 0.05;
        let err = m.deep_audit(&c).unwrap_err();
        assert!(matches!(err, CoreError::Inconsistent(ref s) if s.contains("B1 SoA slab")));
        m.refresh_derived();
        assert!(m.deep_audit(&c).is_ok());
    }

    #[test]
    fn deep_audit_rejects_stale_event_terms() {
        let c = catalog();
        let mut m = build_hmmm(&c, &BuildConfig::default()).unwrap();
        // Nudge a centroid entry the packed term lists were built from
        // (keep it inside [0, 1] so only the staleness check can fire).
        let slice = m.b1_prime[0].as_mut_slice();
        slice[0] = (slice[0] + 0.1).min(1.0);
        let err = m.deep_audit(&c).unwrap_err();
        assert!(matches!(err, CoreError::Inconsistent(ref s) if s.contains("event terms")));
        m.refresh_event_terms();
        // The coarse index folds calibrated Eq.-14 scores off the packed
        // terms, so it went stale with them and must be refreshed too.
        let err = m.deep_audit(&c).unwrap_err();
        assert!(matches!(err, CoreError::Inconsistent(ref s) if s.contains("coarse")));
        m.refresh_coarse();
        assert!(m.deep_audit(&c).is_ok());
    }

    #[test]
    fn deep_audit_rejects_stale_coarse_index() {
        let c = catalog();
        let mut m = build_hmmm(&c, &BuildConfig::default()).unwrap();
        // A poked bound summary passes the cheap postings predicate in
        // `validate_against` but must fail the deep audit's bitwise
        // re-fold (stored bounds == freshly folded bounds).
        m.coarse.sim_max[EventKind::Goal.index()] += 0.5;
        assert!(m.validate_against(&c).is_ok());
        let err = m.deep_audit(&c).unwrap_err();
        assert!(matches!(err, CoreError::Inconsistent(ref s) if s.contains("coarse sim_max")));
        m.refresh_coarse();
        assert!(m.deep_audit(&c).is_ok());
        // Postings drift, by contrast, is caught by every
        // `validate_against` (and thus every `Retriever::new`).
        m.coarse.postings[EventKind::Goal.index()].clear();
        let err = m.validate_against(&c).unwrap_err();
        assert!(matches!(err, CoreError::Inconsistent(ref s) if s.contains("coarse index")));
    }

    /// A catalog whose lone video has mostly-unannotated shots, so the
    /// initial `A_1` (Eq. 4) is genuinely sparse: only the annotated shots
    /// attract forward mass and the density falls under the CSR threshold.
    fn sparse_catalog() -> Catalog {
        let mut c = Catalog::new();
        let feat = |x: f64| {
            let mut v = FeatureVector::zeros();
            v[FeatureId::GrassRatio] = x;
            v[FeatureId::VolumeMean] = 1.0 - x;
            v
        };
        c.add_video(
            "long",
            vec![
                (vec![EventKind::FreeKick], feat(0.2)),
                (vec![], feat(0.3)),
                (vec![], feat(0.4)),
                (vec![], feat(0.6)),
                (vec![EventKind::Goal], feat(0.8)),
            ],
        );
        c
    }

    #[test]
    fn deep_audit_rejects_stale_sparse_a1() {
        let c = sparse_catalog();
        let mut m = build_hmmm(&c, &BuildConfig::default()).unwrap();
        // Drop the CSR view while the density still demands one: the
        // sparse/dense traversal choice would diverge from the policy.
        assert!(
            m.locals.iter().any(|l| l.a1_sparse.is_some()),
            "fixture should produce at least one sparse A1"
        );
        for local in &mut m.locals {
            local.a1_sparse = None;
        }
        let err = m.deep_audit(&c).unwrap_err();
        assert!(matches!(err, CoreError::Inconsistent(ref s) if s.contains("sparse A1")));
    }

    #[test]
    fn summary_reports_sparse_a1_views() {
        let c = sparse_catalog();
        let m = build_hmmm(&c, &BuildConfig::default()).unwrap();
        let summary = m.deep_audit(&c).unwrap();
        assert_eq!(summary.a1_sparse_videos, 1);
        assert!(summary.to_string().contains("A1 sparse views: 1/1"));
    }
}
