//! Deterministic fault injection for the retrieval stack.
//!
//! The degraded paths this PR hardens — panic isolation, deadline expiry,
//! transient-I/O retry, `.bak` recovery — are exactly the paths ordinary
//! tests never exercise. A [`FaultPlan`] makes them reproducible: a seeded,
//! serializable schedule of injected failures (panic on video *k*, I/O
//! error on the *n*-th filesystem op, latency before lattice step *j*)
//! that the engine consults through a [`FaultHandle`].
//!
//! The handle mirrors the PR-2 recorder pattern
//! ([`hmmm_obs::RecorderHandle`]): `Option<Arc<…>>` inside, so the default
//! [`FaultHandle::noop`] is an inlined `None` check on the hot path —
//! production configs pay (almost) nothing for the hook's existence.
//!
//! Determinism matters more than realism here: every injection decision is
//! a pure function of the plan plus a stable key (video index, global I/O
//! ticket, step index), never of wall time or scheduling — so a failing
//! fault-matrix run replays exactly, in serial and parallel alike, and the
//! `faults.rs` / `proptest_faults.rs` suites can assert the degraded
//! contract byte-for-byte.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A seeded, serializable schedule of injected failures.
///
/// The default plan injects nothing. Plans compose: every field acts
/// independently, so one plan can panic a video, fail an I/O op, *and*
/// stall a lattice step.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FaultPlan {
    /// Seed for the probabilistic fields (only [`FaultPlan::panic_rate`]
    /// today). Decisions are keyed on `seed × video`, not on scheduling,
    /// so the same plan fails the same videos in every configuration.
    pub seed: u64,
    /// Videos (catalog indices) whose traversal panics on entry.
    pub panic_on_videos: Vec<usize>,
    /// Probability in `[0, 1]` that any *other* video panics on entry,
    /// decided per video by a seeded hash (deterministic, schedule-free).
    pub panic_rate: f64,
    /// Global I/O-operation tickets (0-based, counted across the process
    /// lifetime of the handle) that fail with a transient
    /// [`std::io::ErrorKind::Interrupted`] error — exercises the atomic
    /// writer's retry/backoff.
    pub io_error_on_ops: Vec<u64>,
    /// Lattice step index to stall before (`None` = no latency).
    pub latency_step: Option<usize>,
    /// Stall duration in nanoseconds (ignored when
    /// [`FaultPlan::latency_step`] is `None`).
    pub latency_ns: u64,
    /// Connection tickets (0-based, drawn from the handle's global
    /// counter by [`FaultHandle::wrap_stream`]) whose streams the network
    /// faults below apply to. Streams on other tickets pass bytes through
    /// untouched — which is what makes a client retry on a *fresh*
    /// connection deterministically succeed.
    pub net_fault_connections: Vec<u64>,
    /// Outbound byte offset at which a faulted stream tears: the write
    /// covering the offset is truncated there (a torn frame on the wire)
    /// and every later write fails with `ConnectionReset`.
    pub net_tear_write_at: Option<u64>,
    /// Outbound byte offset whose byte is XOR'd with `0xFF` on a faulted
    /// stream. Pointing it inside a frame header corrupts the length
    /// prefix the receiver parses.
    pub net_corrupt_byte_at: Option<u64>,
    /// Per-stream read-call tickets (0-based) stalled for
    /// [`FaultPlan::net_stall_ns`] before the read proceeds — a
    /// slow-loris client or a stalled upstream, reproducibly.
    pub net_stall_reads: Vec<u64>,
    /// Stall duration for [`FaultPlan::net_stall_reads`], nanoseconds.
    pub net_stall_ns: u64,
    /// Inbound byte offset after which a faulted stream's reads return
    /// `Ok(0)` — the peer vanishes kill−9-style mid-frame.
    pub net_close_read_at: Option<u64>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            panic_on_videos: Vec::new(),
            panic_rate: 0.0,
            io_error_on_ops: Vec::new(),
            latency_step: None,
            latency_ns: 0,
            net_fault_connections: Vec::new(),
            net_tear_write_at: None,
            net_corrupt_byte_at: None,
            net_stall_reads: Vec::new(),
            net_stall_ns: 0,
            net_close_read_at: None,
        }
    }
}

// Tolerant by hand (the vendored serde derive has no `#[serde(default)]`):
// every field is optional so CLI plans can be as terse as
// `{"panic_on_videos":[0,2]}`.
impl Deserialize for FaultPlan {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let obj = v.as_object().ok_or_else(|| {
            serde::DeError::new(format!("FaultPlan: expected object, found {}", v.kind()))
        })?;
        let mut plan = FaultPlan::default();
        for (key, value) in obj {
            match key.as_str() {
                "seed" => plan.seed = u64::from_value(value)?,
                "panic_on_videos" => plan.panic_on_videos = Vec::from_value(value)?,
                "panic_rate" => plan.panic_rate = f64::from_value(value)?,
                "io_error_on_ops" => plan.io_error_on_ops = Vec::from_value(value)?,
                "latency_step" => plan.latency_step = Option::from_value(value)?,
                "latency_ns" => plan.latency_ns = u64::from_value(value)?,
                "net_fault_connections" => {
                    plan.net_fault_connections = Vec::from_value(value)?
                }
                "net_tear_write_at" => plan.net_tear_write_at = Option::from_value(value)?,
                "net_corrupt_byte_at" => plan.net_corrupt_byte_at = Option::from_value(value)?,
                "net_stall_reads" => plan.net_stall_reads = Vec::from_value(value)?,
                "net_stall_ns" => plan.net_stall_ns = u64::from_value(value)?,
                "net_close_read_at" => plan.net_close_read_at = Option::from_value(value)?,
                other => {
                    return Err(serde::DeError::new(format!(
                        "FaultPlan: unknown field {other:?}"
                    )))
                }
            }
        }
        if !(0.0..=1.0).contains(&plan.panic_rate) {
            return Err(serde::DeError::new(format!(
                "FaultPlan.panic_rate: {} outside [0, 1]",
                plan.panic_rate
            )));
        }
        Ok(plan)
    }
}

impl FaultPlan {
    /// A plan that panics exactly the given videos (everything else off).
    pub fn panicking(videos: impl IntoIterator<Item = usize>) -> Self {
        FaultPlan {
            panic_on_videos: videos.into_iter().collect(),
            ..FaultPlan::default()
        }
    }

    /// `true` when the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.panic_on_videos.is_empty()
            && self.panic_rate == 0.0
            && self.io_error_on_ops.is_empty()
            && self.latency_step.is_none()
            && !self.has_net_faults()
    }

    /// `true` when the network plane is active: at least one connection is
    /// targeted *and* at least one stream-level fault is configured.
    pub fn has_net_faults(&self) -> bool {
        !self.net_fault_connections.is_empty()
            && (self.net_tear_write_at.is_some()
                || self.net_corrupt_byte_at.is_some()
                || !self.net_stall_reads.is_empty()
                || self.net_close_read_at.is_some())
    }

    /// Whether this plan panics `video`'s traversal: the explicit list
    /// first, then the seeded per-video Bernoulli draw. Pure in
    /// `(plan, video)` — independent of thread count or visit order.
    pub fn panics_on(&self, video: usize) -> bool {
        if self.panic_on_videos.contains(&video) {
            return true;
        }
        if self.panic_rate <= 0.0 {
            return false;
        }
        if self.panic_rate >= 1.0 {
            return true;
        }
        // splitmix64 of (seed, video) → uniform in [0, 1): the top 53 bits
        // make an exact double, the standard Bernoulli-from-bits draw.
        let draw = (splitmix64(self.seed ^ (video as u64).wrapping_add(1)) >> 11) as f64
            / (1u64 << 53) as f64;
        draw < self.panic_rate
    }
}

/// splitmix64 — the statistically solid 64-bit mixer (Steele et al.),
/// used here as a keyed hash for the per-video Bernoulli draws.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Shared mutable state behind an enabled handle: the plan plus the global
/// I/O and connection ticket counters and the network injection tallies.
#[derive(Debug)]
struct FaultState {
    plan: FaultPlan,
    io_ops: AtomicU64,
    /// Next connection ticket for [`FaultHandle::wrap_stream`].
    net_conns: AtomicU64,
    /// Count of writes torn by `net_tear_write_at` (frames truncated or
    /// reset), exposed as the `net.torn_frames_injected` metric.
    net_torn: AtomicU64,
    /// Count of bytes corrupted by `net_corrupt_byte_at`.
    net_corrupted: AtomicU64,
    /// Count of reads stalled by `net_stall_reads`.
    net_stalled: AtomicU64,
    /// Count of reads forced to EOF by `net_close_read_at`.
    net_closed: AtomicU64,
}

impl FaultState {
    fn new(plan: FaultPlan) -> Self {
        FaultState {
            plan,
            io_ops: AtomicU64::new(0),
            net_conns: AtomicU64::new(0),
            net_torn: AtomicU64::new(0),
            net_corrupted: AtomicU64::new(0),
            net_stalled: AtomicU64::new(0),
            net_closed: AtomicU64::new(0),
        }
    }
}

/// Snapshot of the network-plane injection tallies, for metrics export
/// (`net.torn_frames_injected` and friends in `bench_report` / loadgen).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetFaultStats {
    /// Connections wrapped so far (faulted or not).
    pub connections: u64,
    /// Writes torn (truncated or reset) by `net_tear_write_at`.
    pub torn_writes: u64,
    /// Bytes corrupted by `net_corrupt_byte_at`.
    pub corrupted_bytes: u64,
    /// Reads stalled by `net_stall_reads`.
    pub stalled_reads: u64,
    /// Reads forced to EOF by `net_close_read_at`.
    pub forced_closes: u64,
}

/// The zero-cost handle instrumented code carries (mirror of
/// [`hmmm_obs::RecorderHandle`]).
///
/// `Default` (and [`FaultHandle::noop`]) is the disabled state: every hook
/// is an inlined `Option::None` check. Cloning shares the underlying state
/// (the I/O ticket counter is global to the plan, not per clone).
#[derive(Clone, Default)]
pub struct FaultHandle {
    inner: Option<Arc<FaultState>>,
}

impl FaultHandle {
    /// The disabled handle: injects nothing, costs (almost) nothing.
    pub fn noop() -> Self {
        FaultHandle { inner: None }
    }

    /// An enabled handle driving the given plan.
    pub fn from_plan(plan: FaultPlan) -> Self {
        FaultHandle {
            inner: Some(Arc::new(FaultState::new(plan))),
        }
    }

    /// `true` when a plan is attached.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The attached plan, if any.
    pub fn plan(&self) -> Option<&FaultPlan> {
        self.inner.as_ref().map(|s| &s.plan)
    }

    /// Hook at the entry of one video's traversal. Panics (with a
    /// recognizable payload) when the plan schedules this video to fail —
    /// the per-video `catch_unwind` in the retrieval fan-out turns that
    /// into a `videos_failed` entry instead of a crashed query.
    #[inline]
    pub fn on_video_enter(&self, video: usize) {
        if let Some(state) = &self.inner {
            if state.plan.panics_on(video) {
                panic!("injected fault: panic on video {video}");
            }
        }
    }

    /// Hook before lattice step `step` of any video: stalls when the plan
    /// schedules latency there (exercises deadline expiry mid-traversal).
    #[inline]
    pub fn before_step(&self, step: usize) {
        if let Some(state) = &self.inner {
            if state.plan.latency_step == Some(step) && state.plan.latency_ns > 0 {
                std::thread::sleep(std::time::Duration::from_nanos(state.plan.latency_ns));
            }
        }
    }

    /// Hook before one filesystem operation (see
    /// [`hmmm_storage::IoFault`]): draws the next global ticket and fails
    /// with a transient `Interrupted` error when the plan schedules it.
    #[inline]
    pub fn next_io_error(&self, op: &'static str) -> Option<std::io::Error> {
        let state = self.inner.as_ref()?;
        if state.plan.io_error_on_ops.is_empty() {
            return None;
        }
        // ordering: Relaxed — the ticket is a uniqueness/sequence draw, not
        // a synchronization point; fetch_add is atomic at any ordering and
        // no other memory access depends on it. Registered in
        // RELAXED_ALLOWLIST (hmmm-analyze).
        let ticket = state.io_ops.fetch_add(1, Ordering::Relaxed);
        state.plan.io_error_on_ops.contains(&ticket).then(|| {
            std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                format!("injected fault: io error on op {ticket} ({op})"),
            )
        })
    }

    /// Wrap a byte stream in the plan's network fault plane.
    ///
    /// Draws the next global connection ticket; the wrapper injects the
    /// plan's `net_*` faults only when that ticket is listed in
    /// [`FaultPlan::net_fault_connections`] — other streams (and every
    /// stream of a noop handle) pass bytes through untouched. The ticket
    /// draw is what makes retries safe to test against: a reconnect gets a
    /// fresh ticket, so a plan targeting ticket 0 breaks the first attempt
    /// and leaves the retry clean, deterministically.
    pub fn wrap_stream<S>(&self, stream: S) -> FaultyStream<S> {
        let faults = self.inner.as_ref().and_then(|state| {
            // ordering: Relaxed — the connection ticket is a sequence draw
            // used only to select which stream the plan targets; no other
            // memory access is ordered against it. Registered in
            // RELAXED_ALLOWLIST (hmmm-analyze) as an id/ticket source.
            let ticket = state.net_conns.fetch_add(1, Ordering::Relaxed);
            state
                .plan
                .net_fault_connections
                .contains(&ticket)
                .then(|| Arc::clone(state))
        });
        FaultyStream {
            inner: stream,
            faults,
            read_bytes: 0,
            read_ops: 0,
            written: 0,
            torn: false,
        }
    }

    /// Snapshot of the network-plane injection tallies.
    pub fn net_stats(&self) -> NetFaultStats {
        match &self.inner {
            None => NetFaultStats::default(),
            // ordering: Relaxed — the tallies are monotonic counters read
            // for reporting after the fact; no decision synchronizes on
            // them. Registered in RELAXED_ALLOWLIST (hmmm-analyze).
            Some(s) => NetFaultStats {
                connections: s.net_conns.load(Ordering::Relaxed),
                torn_writes: s.net_torn.load(Ordering::Relaxed),
                corrupted_bytes: s.net_corrupted.load(Ordering::Relaxed),
                stalled_reads: s.net_stalled.load(Ordering::Relaxed),
                forced_closes: s.net_closed.load(Ordering::Relaxed),
            },
        }
    }
}

/// A [`Read`](std::io::Read)/[`Write`](std::io::Write) wrapper that injects the plan's network faults into
/// one stream: torn writes at a byte offset, corrupted outbound bytes,
/// stalled reads, and forced mid-read EOF. Created by
/// [`FaultHandle::wrap_stream`]; a stream whose connection ticket the plan
/// does not target is a transparent passthrough.
///
/// All offsets are per-stream (bytes written / read through *this*
/// wrapper), so an injection site is a pure function of the plan and the
/// stream's own traffic — never of scheduling.
#[derive(Debug)]
pub struct FaultyStream<S> {
    inner: S,
    /// `Some` only when this stream's ticket is targeted by the plan.
    faults: Option<Arc<FaultState>>,
    read_bytes: u64,
    read_ops: u64,
    written: u64,
    /// Set once the tear offset is hit: every later write is refused.
    torn: bool,
}

impl<S> FaultyStream<S> {
    /// The wrapped stream (for shutdown/addr calls on a `TcpStream`).
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    /// `true` when the plan targets this particular stream.
    pub fn is_faulted(&self) -> bool {
        self.faults.is_some()
    }
}

impl<S: std::io::Read> std::io::Read for FaultyStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if let Some(state) = &self.faults {
            let op = self.read_ops;
            self.read_ops += 1;
            if state.plan.net_stall_reads.contains(&op) && state.plan.net_stall_ns > 0 {
                // ordering: Relaxed — monotonic injection tally, reporting
                // only. Registered in RELAXED_ALLOWLIST (hmmm-analyze).
                state.net_stalled.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(std::time::Duration::from_nanos(state.plan.net_stall_ns));
            }
            if let Some(at) = state.plan.net_close_read_at {
                if self.read_bytes >= at {
                    // ordering: Relaxed — monotonic injection tally,
                    // reporting only. Registered in RELAXED_ALLOWLIST
                    // (hmmm-analyze).
                    state.net_closed.fetch_add(1, Ordering::Relaxed);
                    return Ok(0); // the peer "vanished": clean EOF mid-frame
                }
                let room = (at - self.read_bytes).min(buf.len() as u64) as usize;
                let n = self.inner.read(&mut buf[..room])?;
                self.read_bytes += n as u64;
                return Ok(n);
            }
        }
        let n = self.inner.read(buf)?;
        self.read_bytes += n as u64;
        Ok(n)
    }
}

impl<S: std::io::Write> std::io::Write for FaultyStream<S> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if let Some(state) = &self.faults {
            if self.torn {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::ConnectionReset,
                    "injected fault: write after torn frame",
                ));
            }
            if let Some(at) = state.plan.net_tear_write_at {
                let end = self.written + buf.len() as u64;
                if end > at {
                    // Truncate at the tear offset (possibly to zero bytes),
                    // then refuse everything after — a torn frame on the
                    // wire followed by a dead connection.
                    self.torn = true;
                    // ordering: Relaxed — monotonic injection tally,
                    // reporting only. Registered in RELAXED_ALLOWLIST
                    // (hmmm-analyze).
                    state.net_torn.fetch_add(1, Ordering::Relaxed);
                    let keep = (at - self.written) as usize;
                    if keep == 0 {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::ConnectionReset,
                            "injected fault: torn write",
                        ));
                    }
                    self.inner.write_all(&buf[..keep])?;
                    self.written += keep as u64;
                    // Report the *full* buffer written so the caller moves
                    // on and the tear lands exactly once at the offset; the
                    // next write errors.
                    return Ok(buf.len());
                }
            }
            if let Some(at) = state.plan.net_corrupt_byte_at {
                if at >= self.written && at < self.written + buf.len() as u64 {
                    let mut patched = buf.to_vec();
                    patched[(at - self.written) as usize] ^= 0xFF;
                    // ordering: Relaxed — monotonic injection tally,
                    // reporting only. Registered in RELAXED_ALLOWLIST
                    // (hmmm-analyze).
                    state.net_corrupted.fetch_add(1, Ordering::Relaxed);
                    self.inner.write_all(&patched)?;
                    self.written += patched.len() as u64;
                    return Ok(buf.len());
                }
            }
        }
        let n = self.inner.write(buf)?;
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// The storage-facing face of the handle: lets `PersistOptions::fault`
/// thread a core [`FaultPlan`] into the atomic writer without storage
/// depending on core.
impl hmmm_storage::IoFault for FaultHandle {
    fn inject(&self, op: &'static str) -> Option<std::io::Error> {
        self.next_io_error(op)
    }
}

impl std::fmt::Debug for FaultHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("FaultHandle(noop)"),
            Some(s) => write!(f, "FaultHandle({:?})", s.plan),
        }
    }
}

/// Handles compare by state identity (like [`hmmm_obs::RecorderHandle`]):
/// two noops are equal, enabled handles only when they share state. Keeps
/// `PartialEq`/`Eq` derivable on configs embedding a handle.
impl PartialEq for FaultHandle {
    fn eq(&self, other: &Self) -> bool {
        match (&self.inner, &other.inner) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl Eq for FaultHandle {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_handle_injects_nothing() {
        let h = FaultHandle::noop();
        assert!(!h.is_enabled());
        h.on_video_enter(0);
        h.before_step(3);
        assert!(h.next_io_error("write").is_none());
        assert_eq!(FaultHandle::default(), FaultHandle::noop());
    }

    #[test]
    fn explicit_video_list_panics() {
        let h = FaultHandle::from_plan(FaultPlan::panicking([2]));
        h.on_video_enter(0);
        h.on_video_enter(1);
        let err = std::panic::catch_unwind(|| h.on_video_enter(2)).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("injected fault: panic on video 2"), "payload: {msg}");
    }

    #[test]
    fn panic_rate_is_deterministic_and_seeded() {
        let plan = FaultPlan {
            seed: 42,
            panic_rate: 0.5,
            ..FaultPlan::default()
        };
        let a: Vec<bool> = (0..64).map(|v| plan.panics_on(v)).collect();
        let b: Vec<bool> = (0..64).map(|v| plan.panics_on(v)).collect();
        assert_eq!(a, b, "same plan, same draws");
        assert!(a.iter().any(|&x| x), "rate 0.5 over 64 videos fires");
        assert!(a.iter().any(|&x| !x), "rate 0.5 over 64 videos spares");

        let reseeded = FaultPlan { seed: 43, ..plan };
        let c: Vec<bool> = (0..64).map(|v| reseeded.panics_on(v)).collect();
        assert_ne!(a, c, "different seed, different draws");
    }

    #[test]
    fn rate_extremes() {
        let never = FaultPlan::default();
        let always = FaultPlan {
            panic_rate: 1.0,
            ..FaultPlan::default()
        };
        for v in 0..32 {
            assert!(!never.panics_on(v));
            assert!(always.panics_on(v));
        }
    }

    #[test]
    fn io_tickets_fire_in_sequence() {
        let h = FaultHandle::from_plan(FaultPlan {
            io_error_on_ops: vec![1, 3],
            ..FaultPlan::default()
        });
        assert!(h.next_io_error("a").is_none()); // ticket 0
        let e = h.next_io_error("b").expect("ticket 1 fails");
        assert_eq!(e.kind(), std::io::ErrorKind::Interrupted);
        assert!(h.next_io_error("c").is_none()); // ticket 2
        assert!(h.next_io_error("d").is_some()); // ticket 3
        assert!(h.next_io_error("e").is_none()); // ticket 4
    }

    #[test]
    fn serde_round_trip_and_tolerant_parse() {
        let plan = FaultPlan {
            seed: 7,
            panic_on_videos: vec![1, 4],
            panic_rate: 0.25,
            io_error_on_ops: vec![0],
            latency_step: Some(2),
            latency_ns: 1_000,
            net_fault_connections: vec![0],
            net_tear_write_at: Some(10),
            net_corrupt_byte_at: None,
            net_stall_reads: vec![2],
            net_stall_ns: 500,
            net_close_read_at: Some(64),
        };
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);

        // Terse CLI-style plans parse with defaults for absent fields.
        let terse: FaultPlan = serde_json::from_str(r#"{"panic_on_videos":[0,2]}"#).unwrap();
        assert_eq!(terse.panic_on_videos, vec![0, 2]);
        assert_eq!(terse.panic_rate, 0.0);
        assert!(terse.latency_step.is_none());

        // Unknown fields and out-of-range rates are rejected, not ignored.
        assert!(serde_json::from_str::<FaultPlan>(r#"{"panic_rates":[1]}"#).is_err());
        assert!(serde_json::from_str::<FaultPlan>(r#"{"panic_rate":1.5}"#).is_err());
    }

    #[test]
    fn empty_plan_detection() {
        assert!(FaultPlan::default().is_empty());
        assert!(!FaultPlan::panicking([0]).is_empty());
        assert!(!FaultPlan {
            latency_step: Some(0),
            ..FaultPlan::default()
        }
        .is_empty());
        // A net fault needs both a target connection and a fault kind.
        let half = FaultPlan {
            net_fault_connections: vec![0],
            ..FaultPlan::default()
        };
        assert!(half.is_empty() && !half.has_net_faults());
        let full = FaultPlan {
            net_fault_connections: vec![0],
            net_tear_write_at: Some(4),
            ..FaultPlan::default()
        };
        assert!(!full.is_empty() && full.has_net_faults());
    }

    /// An in-memory duplex stand-in: reads drain a scripted inbox, writes
    /// append to an outbox we can inspect.
    struct Pipe {
        inbox: std::io::Cursor<Vec<u8>>,
        outbox: Vec<u8>,
    }

    impl std::io::Read for Pipe {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            std::io::Read::read(&mut self.inbox, buf)
        }
    }

    impl std::io::Write for Pipe {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.outbox.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn pipe(inbox: &[u8]) -> Pipe {
        Pipe {
            inbox: std::io::Cursor::new(inbox.to_vec()),
            outbox: Vec::new(),
        }
    }

    #[test]
    fn untargeted_stream_is_transparent() {
        use std::io::{Read, Write};
        let h = FaultHandle::from_plan(FaultPlan {
            net_fault_connections: vec![1], // ticket 1, not this one
            net_tear_write_at: Some(2),
            net_close_read_at: Some(2),
            ..FaultPlan::default()
        });
        let mut s = h.wrap_stream(pipe(b"hello"));
        assert!(!s.is_faulted());
        s.write_all(b"abcdef").unwrap();
        let mut got = String::new();
        s.read_to_string(&mut got).unwrap();
        assert_eq!(got, "hello");
        assert_eq!(s.get_ref().outbox, b"abcdef");
    }

    #[test]
    fn torn_write_truncates_then_resets() {
        use std::io::Write;
        let h = FaultHandle::from_plan(FaultPlan {
            net_fault_connections: vec![0],
            net_tear_write_at: Some(4),
            ..FaultPlan::default()
        });
        let mut s = h.wrap_stream(pipe(b""));
        assert!(s.is_faulted());
        s.write_all(b"ab").unwrap(); // fully before the tear
        s.write_all(b"cdef").unwrap(); // crosses it: only "cd" lands
        let err = s.write_all(b"gh").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::ConnectionReset);
        assert_eq!(s.get_ref().outbox, b"abcd");
        assert_eq!(h.net_stats().torn_writes, 1);
    }

    #[test]
    fn corrupt_byte_flips_exactly_one_offset() {
        use std::io::Write;
        let h = FaultHandle::from_plan(FaultPlan {
            net_fault_connections: vec![0],
            net_corrupt_byte_at: Some(3),
            ..FaultPlan::default()
        });
        let mut s = h.wrap_stream(pipe(b""));
        s.write_all(b"\x01\x02\x03\x04\x05").unwrap();
        assert_eq!(s.get_ref().outbox, [0x01, 0x02, 0x03, 0x04 ^ 0xFF, 0x05]);
        assert_eq!(h.net_stats().corrupted_bytes, 1);
    }

    #[test]
    fn forced_close_eofs_mid_stream() {
        use std::io::Read;
        let h = FaultHandle::from_plan(FaultPlan {
            net_fault_connections: vec![0],
            net_close_read_at: Some(3),
            ..FaultPlan::default()
        });
        let mut s = h.wrap_stream(pipe(b"abcdef"));
        let mut got = Vec::new();
        s.read_to_end(&mut got).unwrap();
        assert_eq!(got, b"abc", "EOF after exactly 3 inbound bytes");
        assert!(h.net_stats().forced_closes >= 1);
    }

    #[test]
    fn retry_connection_gets_clean_stream() {
        use std::io::Write;
        let h = FaultHandle::from_plan(FaultPlan {
            net_fault_connections: vec![0],
            net_tear_write_at: Some(0),
            ..FaultPlan::default()
        });
        let mut first = h.wrap_stream(pipe(b""));
        assert!(first.write_all(b"x").is_err(), "ticket 0 tears at byte 0");
        let mut retry = h.wrap_stream(pipe(b""));
        assert!(!retry.is_faulted());
        retry.write_all(b"x").unwrap();
        assert_eq!(h.net_stats().connections, 2);
    }
}
