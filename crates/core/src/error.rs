//! Error type for HMMM construction and retrieval.

use hmmm_matrix::MatrixError;
use hmmm_storage::CatalogError;
use std::fmt;

/// Errors raised by the HMMM core.
#[derive(Debug)]
pub enum CoreError {
    /// The catalog is empty or missing required data.
    Catalog(CatalogError),
    /// Matrix construction/validation failed.
    Matrix(MatrixError),
    /// The model and catalog disagree (e.g. stale model after ingest).
    Inconsistent(String),
    /// A query referenced an event index outside the vocabulary.
    BadQuery(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Catalog(e) => write!(f, "catalog error: {e}"),
            CoreError::Matrix(e) => write!(f, "matrix error: {e}"),
            CoreError::Inconsistent(s) => write!(f, "model/catalog mismatch: {s}"),
            CoreError::BadQuery(s) => write!(f, "bad query: {s}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Catalog(e) => Some(e),
            CoreError::Matrix(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CatalogError> for CoreError {
    fn from(e: CatalogError) -> Self {
        CoreError::Catalog(e)
    }
}

impl From<MatrixError> for CoreError {
    fn from(e: MatrixError) -> Self {
        CoreError::Matrix(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = CatalogError::Empty.into();
        assert!(e.to_string().contains("catalog"));
        let e: CoreError = MatrixError::Empty.into();
        assert!(e.to_string().contains("matrix"));
        let e = CoreError::BadQuery("nope".into());
        assert!(e.to_string().contains("nope"));
    }
}
