//! Simulated relevance feedback — the stand-in for the paper's human users.
//!
//! The paper gathers feedback through its GUI (Figure 5): users mark
//! retrieved patterns "Positive". This reproduction has no humans, so the
//! oracle judges a retrieved pattern against the catalog's ground-truth
//! annotations: a candidate is relevant iff every step's shot is actually
//! annotated with the matched event and the gap bounds hold. Configurable
//! noise flips judgments to model imperfect users.

use crate::retrieve::RankedPattern;
use hmmm_media::EventKind;
use hmmm_query::CompiledPattern;
use hmmm_storage::Catalog;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Oracle behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OracleConfig {
    /// Probability of flipping a judgment (simulated user error).
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            noise: 0.0,
            seed: 0xFEED,
        }
    }
}

/// The ground-truth relevance oracle.
#[derive(Debug, Clone)]
pub struct FeedbackSimulator {
    config: OracleConfig,
    rng: StdRng,
}

impl FeedbackSimulator {
    /// Creates an oracle.
    pub fn new(config: OracleConfig) -> Self {
        FeedbackSimulator {
            rng: StdRng::seed_from_u64(config.seed),
            config,
        }
    }

    /// Noise-free relevance: does the candidate truly realize the pattern?
    pub fn is_relevant(
        catalog: &Catalog,
        pattern: &CompiledPattern,
        candidate: &RankedPattern,
    ) -> bool {
        if candidate.shots.len() != pattern.steps.len() {
            return false;
        }
        let mut prev_index: Option<usize> = None;
        for ((shot_id, step), &event) in candidate
            .shots
            .iter()
            .zip(pattern.steps.iter())
            .zip(candidate.events.iter())
        {
            let Some(shot) = catalog.shot(*shot_id) else {
                return false;
            };
            // The matched event must be one of the step's alternatives and
            // actually annotated on the shot.
            if !step.alternatives.contains(&event) {
                return false;
            }
            let Some(kind) = EventKind::from_index(event) else {
                return false;
            };
            if !shot.events.contains(&kind) {
                return false;
            }
            // Temporal order and gap bound (in within-video shot steps).
            if let Some(prev) = prev_index {
                if shot.index_in_video < prev {
                    return false;
                }
                if let Some(gap) = step.max_gap {
                    if shot.index_in_video - prev > gap {
                        return false;
                    }
                }
            }
            prev_index = Some(shot.index_in_video);
        }
        true
    }

    /// Judges a candidate, possibly with noise.
    pub fn judge(
        &mut self,
        catalog: &Catalog,
        pattern: &CompiledPattern,
        candidate: &RankedPattern,
    ) -> bool {
        let truth = Self::is_relevant(catalog, pattern, candidate);
        if self.config.noise > 0.0 && self.rng.gen_bool(self.config.noise.clamp(0.0, 1.0)) {
            !truth
        } else {
            truth
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmmm_features::{FeatureId, FeatureVector};
    use hmmm_query::QueryTranslator;
    use hmmm_storage::{ShotId, VideoId};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let feat = |x: f64| {
            let mut v = FeatureVector::zeros();
            v[FeatureId::GrassRatio] = x;
            v
        };
        c.add_video(
            "m",
            vec![
                (vec![EventKind::FreeKick], feat(0.2)),
                (vec![], feat(0.4)),
                (vec![EventKind::Goal], feat(0.6)),
            ],
        );
        c
    }

    fn candidate(shots: Vec<usize>, events: Vec<usize>) -> RankedPattern {
        RankedPattern {
            video: VideoId(0),
            shots: shots.into_iter().map(ShotId).collect(),
            events,
            score: 1.0,
            weights: vec![1.0],
        }
    }

    fn compiled(text: &str) -> CompiledPattern {
        QueryTranslator::new(EventKind::ALL.iter().map(|k| k.name()))
            .compile(text)
            .unwrap()
    }

    #[test]
    fn true_pattern_is_relevant() {
        let c = catalog();
        let p = compiled("free_kick -> goal");
        let good = candidate(
            vec![0, 2],
            vec![EventKind::FreeKick.index(), EventKind::Goal.index()],
        );
        assert!(FeedbackSimulator::is_relevant(&c, &p, &good));
    }

    #[test]
    fn wrong_annotation_is_irrelevant() {
        let c = catalog();
        let p = compiled("free_kick -> goal");
        // Shot 1 has no goal annotation.
        let bad = candidate(
            vec![0, 1],
            vec![EventKind::FreeKick.index(), EventKind::Goal.index()],
        );
        assert!(!FeedbackSimulator::is_relevant(&c, &p, &bad));
    }

    #[test]
    fn gap_violation_is_irrelevant() {
        let c = catalog();
        let p = compiled("free_kick ->[1] goal");
        let far = candidate(
            vec![0, 2],
            vec![EventKind::FreeKick.index(), EventKind::Goal.index()],
        );
        assert!(!FeedbackSimulator::is_relevant(&c, &p, &far));
    }

    #[test]
    fn length_mismatch_is_irrelevant() {
        let c = catalog();
        let p = compiled("free_kick -> goal");
        let short = candidate(vec![0], vec![EventKind::FreeKick.index()]);
        assert!(!FeedbackSimulator::is_relevant(&c, &p, &short));
    }

    #[test]
    fn event_not_in_alternatives_is_irrelevant() {
        let c = catalog();
        let p = compiled("free_kick -> goal");
        // Claims corner_kick at step 1 — not an alternative.
        let wrong = candidate(
            vec![0, 2],
            vec![EventKind::CornerKick.index(), EventKind::Goal.index()],
        );
        assert!(!FeedbackSimulator::is_relevant(&c, &p, &wrong));
    }

    #[test]
    fn noise_flips_judgments() {
        let c = catalog();
        let p = compiled("free_kick -> goal");
        let good = candidate(
            vec![0, 2],
            vec![EventKind::FreeKick.index(), EventKind::Goal.index()],
        );
        let mut always_wrong = FeedbackSimulator::new(OracleConfig {
            noise: 1.0,
            seed: 1,
        });
        assert!(!always_wrong.judge(&c, &p, &good));
        let mut faithful = FeedbackSimulator::new(OracleConfig::default());
        assert!(faithful.judge(&c, &p, &good));
    }
}
