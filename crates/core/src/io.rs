//! Model persistence.
//!
//! The paper's MMDBMS keeps the trained matrices alongside the data so the
//! (expensive, offline) learning survives restarts. Models serialize as
//! JSON; loading re-validates against the catalog the caller pairs them
//! with, so a stale model cannot silently serve a grown archive.

use crate::error::CoreError;
use crate::model::Hmmm;
use hmmm_storage::Catalog;
use std::path::Path;

/// Saves a model as JSON.
///
/// # Errors
///
/// [`CoreError::Inconsistent`] wrapping I/O or serialization failures.
pub fn save_model(model: &Hmmm, path: impl AsRef<Path>) -> Result<(), CoreError> {
    let json = serde_json::to_vec(model)
        .map_err(|e| CoreError::Inconsistent(format!("serialize: {e}")))?;
    std::fs::write(path, json).map_err(|e| CoreError::Inconsistent(format!("write: {e}")))
}

/// Loads a model and validates it against `catalog`.
///
/// # Errors
///
/// [`CoreError::Inconsistent`] for I/O, parse, or shape-mismatch failures.
pub fn load_model(path: impl AsRef<Path>, catalog: &Catalog) -> Result<Hmmm, CoreError> {
    let data =
        std::fs::read(path).map_err(|e| CoreError::Inconsistent(format!("read: {e}")))?;
    let model: Hmmm = serde_json::from_slice(&data)
        .map_err(|e| CoreError::Inconsistent(format!("parse: {e}")))?;
    model.validate_against(catalog)?;
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{build_hmmm, BuildConfig};
    use hmmm_features::FeatureVector;
    use hmmm_media::EventKind;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_video(
            "m",
            vec![
                (vec![EventKind::Goal], FeatureVector::from_array([0.3; 20])),
                (vec![], FeatureVector::from_array([0.7; 20])),
            ],
        );
        c
    }

    #[test]
    fn save_load_round_trip() {
        let c = catalog();
        let model = build_hmmm(&c, &BuildConfig::default()).unwrap();
        let dir = std::env::temp_dir().join("hmmm_model_io");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        save_model(&model, &path).unwrap();
        let back = load_model(&path, &c).unwrap();
        assert_eq!(model, back);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_rejects_stale_model() {
        let c = catalog();
        let model = build_hmmm(&c, &BuildConfig::default()).unwrap();
        let dir = std::env::temp_dir().join("hmmm_model_io_stale");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        save_model(&model, &path).unwrap();
        // The archive grows; the stored model must be refused.
        let mut grown = c.clone();
        grown.add_video("new", vec![(vec![], FeatureVector::zeros())]);
        assert!(matches!(
            load_model(&path, &grown),
            Err(CoreError::Inconsistent(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        let c = catalog();
        assert!(load_model("/nonexistent/model.json", &c).is_err());
    }
}
