//! Model persistence.
//!
//! The paper's MMDBMS keeps the trained matrices alongside the data so the
//! (expensive, offline) learning survives restarts. Models serialize as
//! JSON; loading re-validates against the catalog the caller pairs them
//! with, so a stale model cannot silently serve a grown archive.
//!
//! Saves publish through the crash-safe atomic writer
//! ([`hmmm_storage::atomic_write`]): a crash mid-save never leaves a torn
//! file, the previous generation is kept at `<path>.bak`, and transient
//! I/O errors are retried with bounded backoff. Loads fall back to that
//! `.bak` generation when the primary file is unreadable or unparseable —
//! but **not** when it parses fine and merely fails catalog validation
//! (a stale model is a caller error, not corruption; silently serving an
//! even older generation would compound it). Fallbacks and retries are
//! counted under [`hmmm_storage::CTR_BAK_FALLBACKS`] /
//! [`hmmm_storage::CTR_ATOMIC_WRITE_RETRIES`] via the
//! [`PersistOptions`] recorder.

use crate::error::CoreError;
use crate::model::Hmmm;
use hmmm_storage::{atomic_write, bak_path, Catalog, PersistOptions};
use std::path::Path;

/// Saves a model as JSON (atomically, keeping a `.bak` generation).
///
/// # Errors
///
/// [`CoreError::Inconsistent`] wrapping I/O or serialization failures.
pub fn save_model(model: &Hmmm, path: impl AsRef<Path>) -> Result<(), CoreError> {
    save_model_with(model, path, &PersistOptions::default())
}

/// [`save_model`] with [`PersistOptions`] control (recorder, retry
/// budget, fault hook).
///
/// # Errors
///
/// Same as [`save_model`].
pub fn save_model_with(
    model: &Hmmm,
    path: impl AsRef<Path>,
    opts: &PersistOptions<'_>,
) -> Result<(), CoreError> {
    let json = serde_json::to_vec(model)
        .map_err(|e| CoreError::Inconsistent(format!("serialize: {e}")))?;
    let report = atomic_write(
        path,
        &json,
        &hmmm_storage::AtomicWriteOptions {
            retries: opts.retries,
            backoff: opts.backoff,
            fault: opts.fault,
        },
    )
    .map_err(|e| CoreError::Inconsistent(format!("write: {e}")))?;
    if report.retries > 0 {
        opts.recorder
            .counter(hmmm_storage::CTR_ATOMIC_WRITE_RETRIES, u64::from(report.retries));
    }
    Ok(())
}

/// Loads a model and validates it against `catalog`, falling back to the
/// `.bak` generation when the primary file is unreadable or unparseable.
///
/// # Errors
///
/// [`CoreError::Inconsistent`] for I/O, parse, or shape-mismatch failures.
pub fn load_model(path: impl AsRef<Path>, catalog: &Catalog) -> Result<Hmmm, CoreError> {
    load_model_with(path, catalog, &PersistOptions::default())
}

/// [`load_model`] with [`PersistOptions`] control; `.bak` recoveries are
/// counted under [`hmmm_storage::CTR_BAK_FALLBACKS`].
///
/// # Errors
///
/// Same as [`load_model`]; when both generations fail, the primary file's
/// error is returned. Validation failure (a model that parses but does
/// not match `catalog`) never triggers the fallback.
pub fn load_model_with(
    path: impl AsRef<Path>,
    catalog: &Catalog,
    opts: &PersistOptions<'_>,
) -> Result<Hmmm, CoreError> {
    let path = path.as_ref();
    let model = match read_model(path) {
        Ok(model) => model,
        Err(primary) => {
            // Read/parse failure is what the kept generation can repair
            // (corruption, or the atomic writer's rotate window). Whether
            // the recovered model matches the catalog is still checked
            // below, same as the primary path.
            let bak = bak_path(path);
            match bak.exists().then(|| read_model(&bak)) {
                Some(Ok(model)) => {
                    opts.recorder.counter(hmmm_storage::CTR_BAK_FALLBACKS, 1);
                    model
                }
                _ => return Err(primary),
            }
        }
    };
    model.validate_against(catalog)?;
    Ok(model)
}

/// One generation's read + parse (no validation, no fallback).
fn read_model(path: &Path) -> Result<Hmmm, CoreError> {
    let data =
        std::fs::read(path).map_err(|e| CoreError::Inconsistent(format!("read: {e}")))?;
    serde_json::from_slice(&data).map_err(|e| CoreError::Inconsistent(format!("parse: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{build_hmmm, BuildConfig};
    use hmmm_features::FeatureVector;
    use hmmm_media::EventKind;
    use hmmm_storage::TestDir;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_video(
            "m",
            vec![
                (vec![EventKind::Goal], FeatureVector::from_array([0.3; 20])),
                (vec![], FeatureVector::from_array([0.7; 20])),
            ],
        );
        c
    }

    #[test]
    fn save_load_round_trip() {
        let c = catalog();
        let model = build_hmmm(&c, &BuildConfig::default()).unwrap();
        let dir = TestDir::new("hmmm_model_io");
        let path = dir.file("model.json");
        save_model(&model, &path).unwrap();
        let back = load_model(&path, &c).unwrap();
        assert_eq!(model, back);
    }

    #[test]
    fn load_rejects_stale_model() {
        let c = catalog();
        let model = build_hmmm(&c, &BuildConfig::default()).unwrap();
        let dir = TestDir::new("hmmm_model_io");
        let path = dir.file("model.json");
        save_model(&model, &path).unwrap();
        // The archive grows; the stored model must be refused.
        let mut grown = c.clone();
        grown.add_video("new", vec![(vec![], FeatureVector::zeros())]);
        assert!(matches!(
            load_model(&path, &grown),
            Err(CoreError::Inconsistent(_))
        ));
    }

    #[test]
    fn load_missing_file_errors() {
        let c = catalog();
        assert!(load_model("/nonexistent/model.json", &c).is_err());
    }

    #[test]
    fn corrupt_primary_recovers_from_bak() {
        let c = catalog();
        let model = build_hmmm(&c, &BuildConfig::default()).unwrap();
        let dir = TestDir::new("hmmm_model_io");
        let path = dir.file("model.json");
        save_model(&model, &path).unwrap();
        save_model(&model, &path).unwrap(); // second generation → .bak kept
        std::fs::write(&path, b"{ torn json").unwrap();
        assert_eq!(load_model(&path, &c).unwrap(), model);
    }

    #[test]
    fn stale_model_never_falls_back() {
        // A model that *parses* but fails validation must be refused even
        // when a .bak generation exists — staleness is not corruption.
        let c = catalog();
        let model = build_hmmm(&c, &BuildConfig::default()).unwrap();
        let dir = TestDir::new("hmmm_model_io");
        let path = dir.file("model.json");
        save_model(&model, &path).unwrap();
        save_model(&model, &path).unwrap();
        let mut grown = c.clone();
        grown.add_video("new", vec![(vec![], FeatureVector::zeros())]);
        assert!(matches!(
            load_model(&path, &grown),
            Err(CoreError::Inconsistent(_))
        ));
    }
}
