//! Lock-free shared top-k score register.
//!
//! The exact pruned traversal ([`crate::retrieve`]) needs one fact shared
//! across every worker of the PR-1 fan-out: *the running k-th best Eq.-15
//! score seen so far*. Any candidate whose admissible upper bound
//! ([`crate::bounds`]) falls strictly below that value can never enter the
//! returned top-k prefix, so it can be dropped without changing the ranking.
//!
//! The register is a fixed array of `k` `AtomicU64` slots holding f64 bit
//! patterns plus one cached threshold word. Emitted scores are non-negative
//! (sums of non-negative Eq.-13 weights), and for non-negative finite f64
//! the IEEE-754 bit pattern orders exactly like the number — so plain
//! integer CAS gives a lock-free numeric max/min discipline with no float
//! atomics.
//!
//! # Admissibility invariant
//!
//! [`SharedTopK::threshold`] never exceeds the k-th largest score offered so
//! far (counting multiplicity). Proof sketch: every successful [`SharedTopK::offer`]
//! writes its score into **at most one** slot (a single successful CAS), so
//! at any instant the k slot values form a sub-multiset of
//! `{offered scores} ∪ {0.0 × k}`. Any k-element sub-multiset contains at
//! least one element that is not among the top `k − 1` of the full multiset,
//! hence `min(slots) ≤ k-th largest offered`. The cached threshold is only
//! ever CAS-raised to an observed `min(slots)`, so it inherits the bound
//! (it may *lag* the true minimum, which merely prunes less — never more).
//!
//! Because offers race, *which* candidates get pruned is timing-dependent
//! in parallel runs — but the surviving ranking is exact, because pruning
//! only removes candidates strictly below the settled k-th score. Pruning
//! counters are therefore nondeterministic across runs; rankings are not.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared running top-k threshold over non-negative f64 scores.
///
/// `k = 0` is the degenerate register: the threshold is `+∞` and offers are
/// ignored — every candidate bound compares below it, which matches the
/// exhaustive search returning an empty result list for `limit == 0`.
#[derive(Debug)]
pub struct SharedTopK {
    /// The k best scores offered so far (bit patterns, `0` = empty slot).
    slots: Vec<AtomicU64>,
    /// Cached `min(slots)` — the prune threshold. Monotone non-decreasing.
    threshold: AtomicU64,
}

impl SharedTopK {
    /// A register tracking the `k` best scores, initially all `0.0`
    /// (a zero threshold prunes nothing under the strict-`<` discipline).
    pub fn new(k: usize) -> Self {
        let threshold = if k == 0 {
            f64::INFINITY.to_bits()
        } else {
            0u64
        };
        SharedTopK {
            slots: (0..k).map(|_| AtomicU64::new(0)).collect(),
            threshold: AtomicU64::new(threshold),
        }
    }

    /// The current prune threshold: a value `≤` the k-th best score offered
    /// so far (`0.0` until `k` positive scores have been offered). Bounds
    /// strictly below this can never reach the returned top-k prefix.
    pub fn threshold(&self) -> f64 {
        // ordering: SeqCst — a pruning read must sit in the single total
        // order with every slot CAS and threshold raise, so a worker can
        // never observe a threshold older than a raise it already observed
        // indirectly (e.g. via a beam another worker trimmed).
        f64::from_bits(self.threshold.load(Ordering::SeqCst))
    }

    /// Offers an emitted candidate score. Returns `true` iff this call
    /// raised the visible threshold (the `threshold_raises` statistic).
    ///
    /// Scores must be non-negative and non-NaN (Eq.-15 sums are); zeros are
    /// ignored — they cannot displace the empty-slot sentinel.
    pub fn offer(&self, score: f64) -> bool {
        debug_assert!(score >= 0.0, "Eq.-15 scores are non-negative: {score}");
        let bits = score.to_bits();
        if self.slots.is_empty() || bits == 0 {
            return false;
        }
        loop {
            let (idx, min) = self.min_slot();
            if bits <= min {
                // Not among the current k best; still publish the observed
                // minimum in case the cached threshold lags it.
                return self.raise_threshold(min);
            }
            // ordering: SeqCst — the slot CAS must be totally ordered with
            // the min-scan loads and the threshold raise so two concurrent
            // offers cannot both displace the same minimum (the admissibility
            // proof in the interleaving checker relies on this total order).
            if self.slots[idx]
                .compare_exchange(min, bits, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                // Our score displaced the old minimum; re-derive the new one.
                let (_, new_min) = self.min_slot();
                return self.raise_threshold(new_min);
            }
            // Lost the race for that slot — re-scan and retry.
        }
    }

    /// Index and value of the smallest slot (bit order == numeric order).
    fn min_slot(&self) -> (usize, u64) {
        let mut idx = 0;
        let mut min = u64::MAX;
        for (i, slot) in self.slots.iter().enumerate() {
            // ordering: SeqCst — scan loads participate in the same total
            // order as the slot CASes; a stale load is harmless only because
            // the subsequent CAS re-checks the value, and that argument
            // needs the load and CAS to agree on one modification order.
            let v = slot.load(Ordering::SeqCst);
            if v < min {
                idx = i;
                min = v;
            }
        }
        (idx, min)
    }

    /// Monotone CAS-raise of the cached threshold; `true` iff it moved.
    fn raise_threshold(&self, candidate: u64) -> bool {
        // ordering: SeqCst — pairs with the SeqCst load in `threshold()`;
        // the raise must become visible before any later prune decision
        // that could have been influenced by the offer that triggered it.
        let mut current = self.threshold.load(Ordering::SeqCst);
        while candidate > current {
            // ordering: SeqCst — the monotonicity argument (threshold never
            // decreases) is a statement about the variable's modification
            // order; keeping every raise in the single total order makes
            // the `candidate > current` guard airtight against reordering.
            match self.threshold.compare_exchange_weak(
                current,
                candidate,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return true,
                Err(observed) => current = observed,
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The k-th largest of `scores` (counting multiplicity), 0.0 if fewer.
    fn kth_best(scores: &[f64], k: usize) -> f64 {
        let mut sorted: Vec<f64> = scores.to_vec();
        sorted.sort_by(|a, b| crate::order::cmp_f64_desc(*a, *b));
        sorted.get(k.wrapping_sub(1)).copied().unwrap_or(0.0)
    }

    #[test]
    fn threshold_tracks_kth_best_serially() {
        let reg = SharedTopK::new(3);
        let scores = [0.4, 0.1, 0.9, 0.9, 0.2, 0.55, 0.0, 0.7];
        let mut seen = Vec::new();
        for s in scores {
            reg.offer(s);
            seen.push(s);
            let t = reg.threshold();
            assert!(
                t <= kth_best(&seen, 3),
                "threshold {t} exceeds 3rd best of {seen:?}"
            );
        }
        // Serially the register is exact, not just admissible.
        assert_eq!(reg.threshold(), kth_best(&scores, 3));
    }

    #[test]
    fn zero_capacity_register_prunes_everything() {
        let reg = SharedTopK::new(0);
        assert_eq!(reg.threshold(), f64::INFINITY);
        assert!(!reg.offer(123.0));
        assert_eq!(reg.threshold(), f64::INFINITY);
    }

    #[test]
    fn threshold_stays_zero_until_k_positive_offers() {
        let reg = SharedTopK::new(4);
        for s in [0.5, 0.0, 0.9, 0.3] {
            reg.offer(s);
            assert_eq!(reg.threshold(), 0.0, "raised early after {s}");
        }
        reg.offer(0.2);
        assert_eq!(reg.threshold(), 0.2);
    }

    #[test]
    fn offer_reports_raises_exactly() {
        let reg = SharedTopK::new(2);
        assert!(!reg.offer(0.8)); // one slot still empty → min stays 0
        assert!(reg.offer(0.5)); // 0 → 0.5
        assert!(!reg.offer(0.1)); // below the pair
        assert!(reg.offer(0.6)); // 0.5 → 0.6
    }

    #[test]
    fn concurrent_offers_stay_admissible() {
        let reg = SharedTopK::new(5);
        let scores: Vec<f64> = (0..400).map(|i| (i % 97) as f64 / 97.0).collect();
        crossbeam::thread::scope(|s| {
            for chunk in scores.chunks(100) {
                let reg = &reg;
                s.spawn(move || {
                    for &x in chunk {
                        reg.offer(x);
                    }
                });
            }
        });
        let exact = kth_best(&scores, 5);
        let t = reg.threshold();
        assert!(t <= exact, "threshold {t} exceeds true 5th best {exact}");
        // Every offered score survived or was legitimately displaced by a
        // larger one; with all offers settled the register is again exact.
        assert_eq!(t, exact);
    }
}
