//! Video category clustering — a third HMMM level.
//!
//! Definition 1 allows any depth `d`; the paper deploys `d = 2` but
//! motivates the integrated MMM with "the system is able to learn the
//! semantic concepts and then **cluster the videos into different
//! categories**" (§4.2.2). This module realizes that: k-medoids clustering
//! of videos by their `B_2` event profiles produces a category level —
//! states `S_3` (categories), features `F_3` = the same event concepts,
//! `B_3` aggregated event counts, `Π_3`, and links `L_{2,3}` — turning the
//! deployment into a `d = 3` HMMM. Retrieval can pre-filter whole
//! categories by the query's first event before descending.
//!
//! Clustering is deterministic (farthest-first seeding from the densest
//! video), so model builds stay reproducible.

use crate::model::Hmmm;
use hmmm_matrix::{ProbVector, StochasticMatrix};
use hmmm_media::EventKind;
use hmmm_storage::VideoId;
use serde::{Deserialize, Serialize};

/// The category (level-3) extension of a two-level HMMM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CategoryLevel {
    /// `L_{2,3}`: category index of each video.
    pub assignments: Vec<usize>,
    /// Medoid video of each category.
    pub medoids: Vec<usize>,
    /// `B_3`: aggregated event counts per category.
    pub b3: Vec<[usize; EventKind::COUNT]>,
    /// `A_3`: category affinity (event-profile cosine, row-normalized).
    pub a3: StochasticMatrix,
    /// `Π_3`: initial category distribution (proportional to video count).
    pub pi3: ProbVector,
}

impl CategoryLevel {
    /// Clusters a model's videos into at most `k` categories.
    ///
    /// Returns `None` when the model has no videos or `k == 0`. Fewer than
    /// `k` categories result when videos are fewer than `k`.
    pub fn build(model: &Hmmm, k: usize) -> Option<Self> {
        let m = model.video_count();
        if m == 0 || k == 0 {
            return None;
        }
        let k = k.min(m);
        let (assignments, medoids) = k_medoids(&model.b2, k);

        let mut b3 = vec![[0usize; EventKind::COUNT]; medoids.len()];
        let mut sizes = vec![0.0f64; medoids.len()];
        for (video, &cat) in assignments.iter().enumerate() {
            sizes[cat] += 1.0;
            for (e, cell) in b3[cat].iter_mut().enumerate() {
                *cell += model.b2[video][e];
            }
        }

        let n_cat = medoids.len();
        let mut a3 = hmmm_matrix::Matrix::zeros(n_cat, n_cat);
        for i in 0..n_cat {
            for j in 0..n_cat {
                a3[(i, j)] = cosine(&b3[i], &b3[j]);
            }
        }
        let a3 = StochasticMatrix::normalize(a3, hmmm_matrix::dense::ZeroRowPolicy::Uniform)
            .ok()?;
        let pi3 = ProbVector::from_counts(&sizes).ok()?;

        Some(CategoryLevel {
            assignments,
            medoids,
            b3,
            a3,
            pi3,
        })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.medoids.len()
    }

    /// `true` when no categories exist (never produced by `build`).
    pub fn is_empty(&self) -> bool {
        self.medoids.is_empty()
    }

    /// Category of a video.
    pub fn category_of(&self, video: VideoId) -> Option<usize> {
        self.assignments.get(video.index()).copied()
    }

    /// Videos of a category.
    pub fn videos_of(&self, category: usize) -> Vec<VideoId> {
        self.assignments
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c == category)
            .map(|(v, _)| VideoId(v))
            .collect()
    }

    /// Categories whose aggregated `B_3` contains the event — the level-3
    /// analogue of the Step-2 `B_2` check.
    pub fn categories_with_event(&self, event: usize) -> Vec<usize> {
        self.b3
            .iter()
            .enumerate()
            .filter(|(_, row)| event < EventKind::COUNT && row[event] > 0)
            .map(|(c, _)| c)
            .collect()
    }

    /// Videos eligible for a query whose first step accepts `alternatives`:
    /// the union of videos in categories containing any alternative. A
    /// cheap pre-filter that skips whole categories before the per-video
    /// `B_2` check.
    pub fn eligible_videos(&self, alternatives: &[usize]) -> Vec<VideoId> {
        let mut cats: Vec<usize> = alternatives
            .iter()
            .flat_map(|&e| self.categories_with_event(e))
            .collect();
        cats.sort_unstable();
        cats.dedup();
        cats.into_iter()
            .flat_map(|c| self.videos_of(c))
            .collect()
    }
}

/// Deterministic k-medoids over event-count rows with cosine distance.
/// Returns `(assignments, medoid video indices)`.
fn k_medoids(b2: &[[usize; EventKind::COUNT]], k: usize) -> (Vec<usize>, Vec<usize>) {
    let m = b2.len();
    // Farthest-first seeding from the event-densest video.
    let first = (0..m)
        .max_by_key(|&v| b2[v].iter().sum::<usize>())
        .expect("m > 0");
    let mut medoids = vec![first];
    while medoids.len() < k {
        let next = (0..m)
            .filter(|v| !medoids.contains(v))
            .max_by(|&a, &b| {
                let da = medoids.iter().map(|&med| dist(&b2[a], &b2[med])).fold(f64::INFINITY, f64::min);
                let db = medoids.iter().map(|&med| dist(&b2[b], &b2[med])).fold(f64::INFINITY, f64::min);
                crate::order::cmp_f64(da, db)
            });
        match next {
            Some(v) => medoids.push(v),
            None => break,
        }
    }

    // Lloyd-style refinement with medoid recomputation (few iterations
    // suffice at these sizes).
    let mut assignments = vec![0usize; m];
    for _ in 0..8 {
        // Assign.
        for v in 0..m {
            assignments[v] = medoids
                .iter()
                .enumerate()
                .min_by(|(_, &a), (_, &b)| {
                    crate::order::cmp_f64(dist(&b2[v], &b2[a]), dist(&b2[v], &b2[b]))
                })
                .map(|(c, _)| c)
                .expect("k >= 1");
        }
        // Recompute medoids: the member minimizing total distance.
        let mut changed = false;
        for (c, medoid) in medoids.iter_mut().enumerate() {
            let members: Vec<usize> = (0..m).filter(|&v| assignments[v] == c).collect();
            if members.is_empty() {
                continue;
            }
            let best = *members
                .iter()
                .min_by(|&&a, &&b| {
                    let da: f64 = members.iter().map(|&x| dist(&b2[a], &b2[x])).sum();
                    let db: f64 = members.iter().map(|&x| dist(&b2[b], &b2[x])).sum();
                    crate::order::cmp_f64(da, db)
                })
                .expect("members non-empty");
            if best != *medoid {
                *medoid = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    (assignments, medoids)
}

fn cosine(a: &[usize; EventKind::COUNT], b: &[usize; EventKind::COUNT]) -> f64 {
    let dot: f64 = a.iter().zip(b.iter()).map(|(&x, &y)| (x * y) as f64).sum();
    let na: f64 = a.iter().map(|&x| (x * x) as f64).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|&x| (x * x) as f64).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Cosine distance.
fn dist(a: &[usize; EventKind::COUNT], b: &[usize; EventKind::COUNT]) -> f64 {
    1.0 - cosine(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{build_hmmm, BuildConfig};
    use hmmm_features::{FeatureId, FeatureVector};
    use hmmm_storage::Catalog;

    /// Two clear video populations: goal-heavy and card-heavy.
    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let feat = |x: f64| {
            let mut v = FeatureVector::zeros();
            v[FeatureId::GrassRatio] = x;
            v
        };
        for i in 0..3 {
            c.add_video(
                format!("goals-{i}"),
                vec![
                    (vec![EventKind::Goal], feat(0.5)),
                    (vec![EventKind::Goal, EventKind::FreeKick], feat(0.6)),
                ],
            );
        }
        for i in 0..3 {
            c.add_video(
                format!("cards-{i}"),
                vec![
                    (vec![EventKind::YellowCard], feat(0.2)),
                    (vec![EventKind::RedCard, EventKind::Foul], feat(0.3)),
                ],
            );
        }
        c
    }

    #[test]
    fn clusters_separate_populations() {
        let c = catalog();
        let model = build_hmmm(&c, &BuildConfig::default()).unwrap();
        let cats = CategoryLevel::build(&model, 2).unwrap();
        assert_eq!(cats.len(), 2);
        // Videos 0–2 together, 3–5 together.
        let c0 = cats.category_of(VideoId(0)).unwrap();
        assert_eq!(cats.category_of(VideoId(1)), Some(c0));
        assert_eq!(cats.category_of(VideoId(2)), Some(c0));
        let c3 = cats.category_of(VideoId(3)).unwrap();
        assert_ne!(c0, c3);
        assert_eq!(cats.category_of(VideoId(5)), Some(c3));
    }

    #[test]
    fn b3_aggregates_member_counts() {
        let c = catalog();
        let model = build_hmmm(&c, &BuildConfig::default()).unwrap();
        let cats = CategoryLevel::build(&model, 2).unwrap();
        let goal_cat = cats.category_of(VideoId(0)).unwrap();
        assert_eq!(cats.b3[goal_cat][EventKind::Goal.index()], 6);
        assert_eq!(cats.b3[goal_cat][EventKind::RedCard.index()], 0);
    }

    #[test]
    fn category_event_filter() {
        let c = catalog();
        let model = build_hmmm(&c, &BuildConfig::default()).unwrap();
        let cats = CategoryLevel::build(&model, 2).unwrap();
        let goal_cats = cats.categories_with_event(EventKind::Goal.index());
        assert_eq!(goal_cats.len(), 1);
        let eligible = cats.eligible_videos(&[EventKind::Goal.index()]);
        assert_eq!(eligible.len(), 3);
        assert!(eligible.iter().all(|v| v.index() < 3));
        // Out-of-range event index → empty, no panic.
        assert!(cats.categories_with_event(99).is_empty());
    }

    #[test]
    fn pi3_mass_and_a3_rows() {
        let c = catalog();
        let model = build_hmmm(&c, &BuildConfig::default()).unwrap();
        let cats = CategoryLevel::build(&model, 2).unwrap();
        let mass: f64 = cats.pi3.as_slice().iter().sum();
        assert!((mass - 1.0).abs() < 1e-9);
        for i in 0..cats.len() {
            let s: f64 = cats.a3.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn degenerate_inputs() {
        let c = catalog();
        let model = build_hmmm(&c, &BuildConfig::default()).unwrap();
        assert!(CategoryLevel::build(&model, 0).is_none());
        // k larger than videos: clamps.
        let cats = CategoryLevel::build(&model, 100).unwrap();
        assert!(cats.len() <= model.video_count());
        // Every video assigned.
        assert_eq!(cats.assignments.len(), model.video_count());
    }

    #[test]
    fn clustering_is_deterministic() {
        let c = catalog();
        let model = build_hmmm(&c, &BuildConfig::default()).unwrap();
        let a = CategoryLevel::build(&model, 2).unwrap();
        let b = CategoryLevel::build(&model, 2).unwrap();
        assert_eq!(a, b);
    }
}
