//! Query-scoped similarity cache.
//!
//! `retrieve_within` evaluates Eq. (14) for the same (shot, event) pair many
//! times: every beam entry expanding into shot `s` at step `j` re-scores
//! `sim(s, e_j)`, and `calibrated_similarity` re-derives the event's
//! self-similarity denominator on every call. Both are pure functions of the
//! model and the query, so a single dense pass up front — one
//! `shots × query-events` table plus one memoized self-similarity per event —
//! turns every score lookup on the hot path into an array read.
//!
//! The cache is *query-scoped*: it is built per `retrieve_within` call from
//! the union of event alternatives across the pattern's steps, and shared
//! read-only by all traversal workers (it is `Sync`), so the parallel path
//! pays the build cost once, not per thread.

use crate::model::Hmmm;
use hmmm_media::EventKind;
use hmmm_query::CompiledPattern;

/// Dense per-query table of calibrated Eq.-(14) scores.
#[derive(Debug, Clone)]
pub struct SimCache {
    /// Unique event indices appearing in the pattern (slot → event).
    event_slots: Vec<usize>,
    /// Inverse map (event → slot), `None` for events outside the query.
    slot_of_event: [Option<usize>; EventKind::COUNT],
    /// Calibrated scores, **slot-major**: `scores[slot * shot_count + shot]`
    /// — each event's scores for the whole archive sit in one contiguous
    /// row, so the blocked Eq.-14 kernel fills a row per sweep, per-video
    /// range scans ([`SimCache::max_calibrated_in`],
    /// [`SimCache::calibrated_range`]) are unit-stride, and the parallel
    /// build hands each worker contiguous row segments.
    scores: Vec<f64>,
    /// Number of shots per row (the archive size at build time).
    shot_count: usize,
    /// Memoized `self_similarity` per event (the Eq.-(14) denominator).
    self_sims: [f64; EventKind::COUNT],
    /// Per-event column maxima over the score table — the admissible
    /// per-step similarity factor for the exact top-k pruning bounds.
    /// Zero for events outside the query (matching [`SimCache::calibrated`]).
    col_max: [f64; EventKind::COUNT],
    /// Eq.-(14) evaluations spent building the table (for [`super::RetrievalStats`]).
    evaluations: u64,
}

impl SimCache {
    /// Scores every shot against every event mentioned in `pattern`.
    ///
    /// # Examples
    ///
    /// On the §4.2.1.1 three-shot video, every cached score is bit-identical
    /// to the direct calibrated Eq.-(14) evaluation, and the build cost is
    /// `shots × supported query events`:
    ///
    /// ```
    /// use hmmm_core::sim::calibrated_similarity;
    /// use hmmm_core::{build_hmmm, BuildConfig, SimCache};
    /// use hmmm_features::{FeatureId, FeatureVector};
    /// use hmmm_media::EventKind;
    /// use hmmm_query::QueryTranslator;
    /// use hmmm_storage::Catalog;
    ///
    /// # fn feat(grass: f64, volume: f64) -> FeatureVector {
    /// #     let mut f = FeatureVector::zeros();
    /// #     f[FeatureId::GrassRatio] = grass;
    /// #     f[FeatureId::VolumeMean] = volume;
    /// #     f
    /// # }
    /// let mut catalog = Catalog::new();
    /// catalog.add_video("v1", vec![
    ///     (vec![EventKind::FreeKick], feat(0.3, 0.2)),
    ///     (vec![EventKind::FreeKick, EventKind::Goal], feat(0.8, 0.9)),
    ///     (vec![EventKind::CornerKick], feat(0.5, 0.4)),
    /// ]);
    /// let model = build_hmmm(&catalog, &BuildConfig::default()).unwrap();
    ///
    /// let translator = QueryTranslator::new(EventKind::ALL.iter().map(|k| k.name()));
    /// let pattern = translator.compile("free_kick -> goal").unwrap();
    /// let cache = SimCache::build(&model, &pattern);
    ///
    /// for shot in 0..model.shot_count() {
    ///     for event in [EventKind::FreeKick.index(), EventKind::Goal.index()] {
    ///         assert_eq!(
    ///             cache.calibrated(shot, event),
    ///             calibrated_similarity(&model, shot, event),
    ///         );
    ///     }
    /// }
    /// // 3 shots × 2 supported query events.
    /// assert_eq!(cache.build_evaluations(), 6);
    /// ```
    pub fn build(model: &Hmmm, pattern: &CompiledPattern) -> Self {
        Self::build_with_threads(model, pattern, 1)
    }

    /// Like [`SimCache::build`], splitting the shot dimension across up to
    /// `threads` scoped workers. Every cell is an independent pure function
    /// of (model, shot, event), so the table is identical at any thread
    /// count.
    pub fn build_with_threads(model: &Hmmm, pattern: &CompiledPattern, threads: usize) -> Self {
        let shot_count = model.shot_count();
        let mut slot_of_event = [None; EventKind::COUNT];
        let mut event_slots = Vec::new();
        for step in &pattern.steps {
            for &e in &step.alternatives {
                if e < EventKind::COUNT && slot_of_event[e].is_none() {
                    slot_of_event[e] = Some(event_slots.len());
                    event_slots.push(e);
                }
            }
        }

        // Satellite memo: the denominators were folded once at model build
        // time (bitwise equal to `sim::self_similarity` — the auditor
        // re-proves it), so the cache just copies them.
        let mut self_sims = [0.0; EventKind::COUNT];
        for &e in &event_slots {
            self_sims[e] = model.event_terms[e].self_sim;
        }

        let slots = event_slots.len();
        let mut scores = vec![0.0; slots * shot_count];

        // Fills one segment of a slot's row — the calibrated scores of that
        // slot's event against shots `first_shot ..` — via the blocked SoA
        // kernel, and returns the Eq.-(14) evaluations spent. The kernel
        // accumulates each cell with the exact operation sequence of the
        // scalar `similarity`, and `cell / denom` is the same single
        // division `calibrated_similarity` performs, so cached scores are
        // bit-identical to direct ones (the ranking-neutrality property
        // depends on that). Events with no feature support keep their
        // pre-zeroed cells, matching `calibrated_similarity`'s definition,
        // at zero cost.
        let fill = |slot: usize, first_shot: usize, seg: &mut [f64]| -> u64 {
            let event = event_slots[slot];
            let denom = self_sims[event];
            if denom <= 0.0 {
                return 0;
            }
            crate::sim::similarity_into(model, first_shot..first_shot + seg.len(), event, seg);
            for cell in seg.iter_mut() {
                *cell /= denom;
            }
            seg.len() as u64
        };

        // Chunks below ~2k shots don't amortize a thread spawn.
        let workers = threads
            .max(1)
            .min(shot_count.div_ceil(2048))
            .max(1);
        let evaluations = if slots == 0 || shot_count == 0 {
            0
        } else if workers <= 1 {
            let mut total = 0u64;
            for (slot, row) in scores.chunks_mut(shot_count).enumerate() {
                total += fill(slot, 0, row);
            }
            total
        } else {
            // Worker `w` owns shots `[w * shots_per_worker, ...)` of *every*
            // slot row — the same shot partition as before the slot-major
            // switch, just expressed as one segment per (worker, slot).
            let shots_per_worker = shot_count.div_ceil(workers);
            let mut assignments: Vec<Vec<(usize, usize, &mut [f64])>> =
                (0..workers).map(|_| Vec::new()).collect();
            for (slot, row) in scores.chunks_mut(shot_count).enumerate() {
                let mut row = row;
                let mut first_shot = 0usize;
                while !row.is_empty() {
                    let take = shots_per_worker.min(row.len());
                    let (seg, rest) = std::mem::take(&mut row).split_at_mut(take);
                    assignments[first_shot / shots_per_worker].push((slot, first_shot, seg));
                    row = rest;
                    first_shot += take;
                }
            }
            let mut total = 0u64;
            crossbeam::thread::scope(|s| {
                let handles: Vec<_> = assignments
                    .into_iter()
                    .map(|segments| {
                        let fill = &fill;
                        s.spawn(move || {
                            let mut evals = 0u64;
                            for (slot, first_shot, seg) in segments {
                                evals += fill(slot, first_shot, seg);
                            }
                            evals
                        })
                    })
                    .collect();
                for h in handles {
                    total += h.join().expect("sim cache worker panicked");
                }
            });
            total
        };

        // Column maxima, folded serially over the settled table in shot
        // order — the same `f64::max` fold `sim::max_calibrated_similarity`
        // performs over direct evaluations, so cached and uncached pruning
        // bounds are bit-identical at any build thread count. Reads only;
        // the O(shots × slots) pass is free next to the build itself, and
        // slot-major rows make it a contiguous sweep per event.
        let mut col_max = [0.0f64; EventKind::COUNT];
        if shot_count > 0 {
            for (slot, row) in scores.chunks(shot_count).enumerate() {
                let e = event_slots[slot];
                col_max[e] = row.iter().copied().fold(0.0, f64::max);
            }
        }

        SimCache {
            event_slots,
            slot_of_event,
            scores,
            shot_count,
            self_sims,
            col_max,
            evaluations,
        }
    }

    /// Largest calibrated Eq.-14 score any shot attains for `event` — the
    /// admissible per-step factor for the exact top-k pruning bounds.
    /// Events outside the query read `0.0`.
    pub fn max_calibrated(&self, event: usize) -> f64 {
        self.col_max.get(event).copied().unwrap_or(0.0)
    }

    /// Largest calibrated Eq.-14 score any shot in `shots` (a global shot-id
    /// range, e.g. one video's `shot_range`) attains for `event` — the
    /// *per-video* admissible similarity factor. Much tighter than the
    /// archive-wide [`SimCache::max_calibrated`] on videos that barely
    /// exhibit the event, which is exactly where whole-video pruning pays.
    /// Pure table reads; events outside the query read `0.0`.
    pub fn max_calibrated_in(&self, shots: std::ops::Range<usize>, event: usize) -> f64 {
        match self.calibrated_range(shots, event) {
            Some(row) => row.iter().copied().fold(0.0, f64::max),
            None => 0.0,
        }
    }

    /// The cached calibrated Eq.-14 scores of every shot in `shots` (a
    /// global shot-id range) against `event`, as one contiguous slice —
    /// slot `i` is `calibrated(shots.start + i, event)`. `None` for events
    /// outside the query (whose scores are all `0.0` by definition);
    /// callers treat that as a zero row. This is the slot-major layout's
    /// payoff: per-video start scoring and bound folds become unit-stride
    /// sweeps.
    pub fn calibrated_range(&self, shots: std::ops::Range<usize>, event: usize) -> Option<&[f64]> {
        let slot = self.slot_of_event.get(event).copied().flatten()?;
        let base = slot * self.shot_count;
        Some(&self.scores[base + shots.start..base + shots.end])
    }

    /// Eq.-(14) evaluations the build performed (`shots × supported events`).
    pub fn build_evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Number of distinct events the cache covers.
    pub fn event_count(&self) -> usize {
        self.event_slots.len()
    }

    /// Memoized [`crate::sim::self_similarity`] (the Eq.-14 calibration
    /// denominator) — exact, not re-derived per call.
    pub fn self_similarity(&self, event: usize) -> f64 {
        self.self_sims[event]
    }

    /// Cached [`crate::sim::calibrated_similarity`] (Eq. 14, rescaled by
    /// the event's self-similarity). Events outside the query
    /// pattern score `0.0` (they cannot occur on the traversal hot path).
    pub fn calibrated(&self, shot: usize, event: usize) -> f64 {
        match self.slot_of_event.get(event).copied().flatten() {
            Some(slot) => self.scores[slot * self.shot_count + shot],
            None => 0.0,
        }
    }

    /// Cached [`crate::sim::best_alternative`]: best `(event, score)` among
    /// `events` for `shot` by calibrated Eq.-14 score. Ties keep the
    /// earliest alternative, matching the
    /// direct implementation's deterministic tie-break.
    pub fn best_alternative(&self, shot: usize, events: &[usize]) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for &e in events {
            let s = self.calibrated(shot, e);
            match best {
                Some((_, bs)) if s <= bs => {}
                _ => best = Some((e, s)),
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{build_hmmm, BuildConfig};
    use crate::sim::{best_alternative, calibrated_similarity};
    use hmmm_features::{FeatureId, FeatureVector};
    use hmmm_query::QueryTranslator;
    use hmmm_storage::Catalog;

    fn feat(g: f64, v: f64) -> FeatureVector {
        let mut f = FeatureVector::zeros();
        f[FeatureId::GrassRatio] = g;
        f[FeatureId::VolumeMean] = v;
        f
    }

    fn model() -> Hmmm {
        let mut c = Catalog::new();
        c.add_video(
            "a",
            vec![
                (vec![EventKind::Goal], feat(0.8, 0.9)),
                (vec![EventKind::FreeKick], feat(0.3, 0.1)),
                (vec![], feat(0.5, 0.5)),
            ],
        );
        c.add_video(
            "b",
            vec![
                (vec![EventKind::CornerKick], feat(0.7, 0.3)),
                (vec![EventKind::Goal], feat(0.82, 0.88)),
            ],
        );
        build_hmmm(&c, &BuildConfig::default()).unwrap()
    }

    fn pattern() -> CompiledPattern {
        QueryTranslator::new(EventKind::ALL.iter().map(|k| k.name()))
            .compile("free_kick|corner_kick -> goal")
            .unwrap()
    }

    #[test]
    fn matches_direct_similarity_exactly() {
        let m = model();
        let p = pattern();
        let cache = SimCache::build(&m, &p);
        for shot in 0..m.shot_count() {
            for step in &p.steps {
                for &e in &step.alternatives {
                    let direct = calibrated_similarity(&m, shot, e);
                    let cached = cache.calibrated(shot, e);
                    assert!(
                        (direct - cached).abs() <= 1e-12,
                        "shot {shot} event {e}: direct {direct} cached {cached}"
                    );
                }
            }
        }
    }

    #[test]
    fn best_alternative_agrees_with_direct() {
        let m = model();
        let p = pattern();
        let cache = SimCache::build(&m, &p);
        for shot in 0..m.shot_count() {
            for step in &p.steps {
                let direct = best_alternative(&m, shot, &step.alternatives).unwrap();
                let cached = cache.best_alternative(shot, &step.alternatives).unwrap();
                assert_eq!(direct.0, cached.0, "event choice diverged at shot {shot}");
                assert!((direct.1 - cached.1).abs() <= 1e-12);
            }
        }
    }

    #[test]
    fn self_similarity_is_memoized_exactly(){
        let m = model();
        let cache = SimCache::build(&m, &pattern());
        for e in [
            EventKind::Goal.index(),
            EventKind::FreeKick.index(),
            EventKind::CornerKick.index(),
        ] {
            assert_eq!(cache.self_similarity(e), crate::sim::self_similarity(&m, e));
        }
    }

    #[test]
    fn column_maxima_match_uncached_bound_bitwise() {
        let m = model();
        let p = pattern();
        let cache = SimCache::build_with_threads(&m, &p, 4);
        for step in &p.steps {
            for &e in &step.alternatives {
                assert_eq!(
                    cache.max_calibrated(e),
                    crate::sim::max_calibrated_similarity(&m, e),
                    "column max diverged for event {e}"
                );
            }
        }
        // Events outside the query bound to zero, like their scores.
        assert_eq!(cache.max_calibrated(EventKind::RedCard.index()), 0.0);
    }

    #[test]
    fn range_maxima_bound_their_shots_and_refine_the_column() {
        let m = model();
        let p = pattern();
        let cache = SimCache::build(&m, &p);
        let goal = EventKind::Goal.index();
        // Video "a" owns shots 0..3, video "b" owns 3..5.
        for (range, n) in [(0..3usize, 3usize), (3..5, 2)] {
            let local_max = cache.max_calibrated_in(range.clone(), goal);
            for shot in range {
                assert!(local_max >= cache.calibrated(shot, goal));
            }
            assert!(local_max <= cache.max_calibrated(goal));
            assert!(n > 0);
        }
        // The two per-video maxima reconstruct the archive-wide column max.
        let joined = cache
            .max_calibrated_in(0..3, goal)
            .max(cache.max_calibrated_in(3..5, goal));
        assert_eq!(joined, cache.max_calibrated(goal));
        assert_eq!(cache.max_calibrated_in(0..5, EventKind::RedCard.index()), 0.0);
    }

    #[test]
    fn covers_only_query_events() {
        let m = model();
        let cache = SimCache::build(&m, &pattern());
        assert_eq!(cache.event_count(), 3);
        // An event outside the pattern reads as zero rather than panicking.
        assert_eq!(cache.calibrated(0, EventKind::RedCard.index()), 0.0);
    }

    #[test]
    fn calibrated_range_is_contiguous_and_exact() {
        let m = model();
        let cache = SimCache::build(&m, &pattern());
        let goal = EventKind::Goal.index();
        // Video "b" owns shots 3..5.
        let row = cache.calibrated_range(3..5, goal).unwrap();
        assert_eq!(row.len(), 2);
        for (i, &s) in row.iter().enumerate() {
            assert_eq!(s.to_bits(), cache.calibrated(3 + i, goal).to_bits());
        }
        // Events outside the query have no row (callers read zeros).
        assert!(cache
            .calibrated_range(0..5, EventKind::RedCard.index())
            .is_none());
    }

    #[test]
    fn build_evaluation_count_is_dense() {
        let m = model();
        let p = pattern();
        let cache = SimCache::build(&m, &p);
        // Every (shot, event) pair is evaluated exactly once — except rows
        // for events with no feature support, which are zero by definition
        // and skipped without touching Eq. (14).
        let supported: Vec<usize> = p
            .steps
            .iter()
            .flat_map(|s| s.alternatives.iter().copied())
            .filter(|&e| crate::sim::self_similarity(&m, e) > 0.0)
            .collect();
        assert!(!supported.is_empty());
        assert_eq!(
            cache.build_evaluations(),
            (m.shot_count() * supported.len()) as u64
        );
    }
}
