//! Query-scoped similarity cache.
//!
//! `retrieve_within` evaluates Eq. (14) for the same (shot, event) pair many
//! times: every beam entry expanding into shot `s` at step `j` re-scores
//! `sim(s, e_j)`, and `calibrated_similarity` re-derives the event's
//! self-similarity denominator on every call. Both are pure functions of the
//! model and the query, so a single dense pass up front — one
//! `shots × query-events` table plus one memoized self-similarity per event —
//! turns every score lookup on the hot path into an array read.
//!
//! The cache is *query-scoped*: it is built per `retrieve_within` call from
//! the union of event alternatives across the pattern's steps, and shared
//! read-only by all traversal workers (it is `Sync`), so the parallel path
//! pays the build cost once, not per thread.

use crate::model::Hmmm;
use crate::sim::self_similarity;
use hmmm_media::EventKind;
use hmmm_query::CompiledPattern;

/// Per-event Eq.-(14) constants hoisted out of the build's cell loop: the
/// self-similarity denominator plus the event's non-zero
/// (feature, centroid, `P_{1,2}` weight) terms.
type SlotTerms = (f64, Vec<(usize, f64, f64)>);

/// Dense per-query table of calibrated Eq.-(14) scores.
#[derive(Debug, Clone)]
pub struct SimCache {
    /// Unique event indices appearing in the pattern (slot → event).
    event_slots: Vec<usize>,
    /// Inverse map (event → slot), `None` for events outside the query.
    slot_of_event: [Option<usize>; EventKind::COUNT],
    /// Calibrated scores, shot-major: `scores[shot * slots + slot]` — a
    /// step's alternatives for one shot sit in adjacent cells, and the
    /// parallel build can hand each worker a contiguous shot range.
    scores: Vec<f64>,
    /// Memoized `self_similarity` per event (the Eq.-(14) denominator).
    self_sims: [f64; EventKind::COUNT],
    /// Per-event column maxima over the score table — the admissible
    /// per-step similarity factor for the exact top-k pruning bounds.
    /// Zero for events outside the query (matching [`SimCache::calibrated`]).
    col_max: [f64; EventKind::COUNT],
    /// Eq.-(14) evaluations spent building the table (for [`super::RetrievalStats`]).
    evaluations: u64,
}

impl SimCache {
    /// Scores every shot against every event mentioned in `pattern`.
    ///
    /// # Examples
    ///
    /// On the §4.2.1.1 three-shot video, every cached score is bit-identical
    /// to the direct calibrated Eq.-(14) evaluation, and the build cost is
    /// `shots × supported query events`:
    ///
    /// ```
    /// use hmmm_core::sim::calibrated_similarity;
    /// use hmmm_core::{build_hmmm, BuildConfig, SimCache};
    /// use hmmm_features::{FeatureId, FeatureVector};
    /// use hmmm_media::EventKind;
    /// use hmmm_query::QueryTranslator;
    /// use hmmm_storage::Catalog;
    ///
    /// # fn feat(grass: f64, volume: f64) -> FeatureVector {
    /// #     let mut f = FeatureVector::zeros();
    /// #     f[FeatureId::GrassRatio] = grass;
    /// #     f[FeatureId::VolumeMean] = volume;
    /// #     f
    /// # }
    /// let mut catalog = Catalog::new();
    /// catalog.add_video("v1", vec![
    ///     (vec![EventKind::FreeKick], feat(0.3, 0.2)),
    ///     (vec![EventKind::FreeKick, EventKind::Goal], feat(0.8, 0.9)),
    ///     (vec![EventKind::CornerKick], feat(0.5, 0.4)),
    /// ]);
    /// let model = build_hmmm(&catalog, &BuildConfig::default()).unwrap();
    ///
    /// let translator = QueryTranslator::new(EventKind::ALL.iter().map(|k| k.name()));
    /// let pattern = translator.compile("free_kick -> goal").unwrap();
    /// let cache = SimCache::build(&model, &pattern);
    ///
    /// for shot in 0..model.shot_count() {
    ///     for event in [EventKind::FreeKick.index(), EventKind::Goal.index()] {
    ///         assert_eq!(
    ///             cache.calibrated(shot, event),
    ///             calibrated_similarity(&model, shot, event),
    ///         );
    ///     }
    /// }
    /// // 3 shots × 2 supported query events.
    /// assert_eq!(cache.build_evaluations(), 6);
    /// ```
    pub fn build(model: &Hmmm, pattern: &CompiledPattern) -> Self {
        Self::build_with_threads(model, pattern, 1)
    }

    /// Like [`SimCache::build`], splitting the shot dimension across up to
    /// `threads` scoped workers. Every cell is an independent pure function
    /// of (model, shot, event), so the table is identical at any thread
    /// count.
    pub fn build_with_threads(model: &Hmmm, pattern: &CompiledPattern, threads: usize) -> Self {
        let shot_count = model.shot_count();
        let mut slot_of_event = [None; EventKind::COUNT];
        let mut event_slots = Vec::new();
        for step in &pattern.steps {
            for &e in &step.alternatives {
                if e < EventKind::COUNT && slot_of_event[e].is_none() {
                    slot_of_event[e] = Some(event_slots.len());
                    event_slots.push(e);
                }
            }
        }

        let mut self_sims = [0.0; EventKind::COUNT];
        for &e in &event_slots {
            self_sims[e] = self_similarity(model, e);
        }

        let slots = event_slots.len();
        let mut scores = vec![0.0; slots * shot_count];

        // Hoist each event's Eq.-(14) terms out of the per-cell loop: the
        // non-zero features, their centroids, and their `P_{1,2}` weights
        // are per-event constants. The per-cell accumulation below visits
        // the same features in the same order with the same operations as
        // `similarity`, so cached scores are bit-identical to direct ones
        // (the ranking-neutrality property depends on that).
        let slot_terms: Vec<SlotTerms> = event_slots
            .iter()
            .map(|&e| {
                let centroid = &model.b1_prime[e];
                let terms = (0..hmmm_features::FEATURE_COUNT)
                    .filter(|&y| centroid[y] > crate::sim::CENTROID_EPSILON)
                    .map(|y| (y, centroid[y], model.p12.get(e, y)))
                    .collect();
                (self_sims[e], terms)
            })
            .collect();

        // Fills `chunk` (the rows of shots starting at `first_shot`) and
        // returns the Eq.-(14) evaluations spent. Events with no feature
        // support keep their pre-zeroed cells, matching
        // `calibrated_similarity`'s definition, at zero cost.
        let fill = |first_shot: usize, chunk: &mut [f64]| -> u64 {
            let mut evals = 0u64;
            for (row_idx, row) in chunk.chunks_mut(slots).enumerate() {
                let shot = first_shot + row_idx;
                let b1 = &model.b1[shot];
                for (slot, cell) in row.iter_mut().enumerate() {
                    let (denom, terms) = &slot_terms[slot];
                    if *denom > 0.0 {
                        let mut total = 0.0;
                        for &(y, c, weight) in terms {
                            let diff = (b1[y] - c).abs();
                            total += weight * (1.0 - diff) / c;
                        }
                        *cell = total / denom;
                        evals += 1;
                    }
                }
            }
            evals
        };

        // Chunks below ~2k shots don't amortize a thread spawn.
        let workers = threads
            .max(1)
            .min(shot_count.div_ceil(2048))
            .max(1);
        let evaluations = if workers <= 1 || slots == 0 {
            fill(0, &mut scores)
        } else {
            let shots_per_worker = shot_count.div_ceil(workers);
            let mut total = 0u64;
            crossbeam::thread::scope(|s| {
                let handles: Vec<_> = scores
                    .chunks_mut(shots_per_worker * slots)
                    .enumerate()
                    .map(|(w, chunk)| {
                        let fill = &fill;
                        s.spawn(move || fill(w * shots_per_worker, chunk))
                    })
                    .collect();
                for h in handles {
                    total += h.join().expect("sim cache worker panicked");
                }
            });
            total
        };

        // Column maxima, folded serially over the settled table in shot
        // order — the same `f64::max` fold `sim::max_calibrated_similarity`
        // performs over direct evaluations, so cached and uncached pruning
        // bounds are bit-identical at any build thread count. Reads only;
        // the O(shots × slots) pass is free next to the build itself.
        let mut col_max = [0.0f64; EventKind::COUNT];
        if slots > 0 {
            for row in scores.chunks(slots) {
                for (slot, &cell) in row.iter().enumerate() {
                    let e = event_slots[slot];
                    col_max[e] = col_max[e].max(cell);
                }
            }
        }

        SimCache {
            event_slots,
            slot_of_event,
            scores,
            self_sims,
            col_max,
            evaluations,
        }
    }

    /// Largest calibrated Eq.-14 score any shot attains for `event` — the
    /// admissible per-step factor for the exact top-k pruning bounds.
    /// Events outside the query read `0.0`.
    pub fn max_calibrated(&self, event: usize) -> f64 {
        self.col_max.get(event).copied().unwrap_or(0.0)
    }

    /// Largest calibrated Eq.-14 score any shot in `shots` (a global shot-id
    /// range, e.g. one video's `shot_range`) attains for `event` — the
    /// *per-video* admissible similarity factor. Much tighter than the
    /// archive-wide [`SimCache::max_calibrated`] on videos that barely
    /// exhibit the event, which is exactly where whole-video pruning pays.
    /// Pure table reads; events outside the query read `0.0`.
    pub fn max_calibrated_in(&self, shots: std::ops::Range<usize>, event: usize) -> f64 {
        match self.slot_of_event.get(event).copied().flatten() {
            Some(slot) => {
                let slots = self.event_slots.len();
                shots
                    .map(|shot| self.scores[shot * slots + slot])
                    .fold(0.0, f64::max)
            }
            None => 0.0,
        }
    }

    /// Eq.-(14) evaluations the build performed (`shots × supported events`).
    pub fn build_evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Number of distinct events the cache covers.
    pub fn event_count(&self) -> usize {
        self.event_slots.len()
    }

    /// Memoized [`crate::sim::self_similarity`] (the Eq.-14 calibration
    /// denominator) — exact, not re-derived per call.
    pub fn self_similarity(&self, event: usize) -> f64 {
        self.self_sims[event]
    }

    /// Cached [`crate::sim::calibrated_similarity`] (Eq. 14, rescaled by
    /// the event's self-similarity). Events outside the query
    /// pattern score `0.0` (they cannot occur on the traversal hot path).
    pub fn calibrated(&self, shot: usize, event: usize) -> f64 {
        match self.slot_of_event.get(event).copied().flatten() {
            Some(slot) => self.scores[shot * self.event_slots.len() + slot],
            None => 0.0,
        }
    }

    /// Cached [`crate::sim::best_alternative`]: best `(event, score)` among
    /// `events` for `shot` by calibrated Eq.-14 score. Ties keep the
    /// earliest alternative, matching the
    /// direct implementation's deterministic tie-break.
    pub fn best_alternative(&self, shot: usize, events: &[usize]) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for &e in events {
            let s = self.calibrated(shot, e);
            match best {
                Some((_, bs)) if s <= bs => {}
                _ => best = Some((e, s)),
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{build_hmmm, BuildConfig};
    use crate::sim::{best_alternative, calibrated_similarity};
    use hmmm_features::{FeatureId, FeatureVector};
    use hmmm_query::QueryTranslator;
    use hmmm_storage::Catalog;

    fn feat(g: f64, v: f64) -> FeatureVector {
        let mut f = FeatureVector::zeros();
        f[FeatureId::GrassRatio] = g;
        f[FeatureId::VolumeMean] = v;
        f
    }

    fn model() -> Hmmm {
        let mut c = Catalog::new();
        c.add_video(
            "a",
            vec![
                (vec![EventKind::Goal], feat(0.8, 0.9)),
                (vec![EventKind::FreeKick], feat(0.3, 0.1)),
                (vec![], feat(0.5, 0.5)),
            ],
        );
        c.add_video(
            "b",
            vec![
                (vec![EventKind::CornerKick], feat(0.7, 0.3)),
                (vec![EventKind::Goal], feat(0.82, 0.88)),
            ],
        );
        build_hmmm(&c, &BuildConfig::default()).unwrap()
    }

    fn pattern() -> CompiledPattern {
        QueryTranslator::new(EventKind::ALL.iter().map(|k| k.name()))
            .compile("free_kick|corner_kick -> goal")
            .unwrap()
    }

    #[test]
    fn matches_direct_similarity_exactly() {
        let m = model();
        let p = pattern();
        let cache = SimCache::build(&m, &p);
        for shot in 0..m.shot_count() {
            for step in &p.steps {
                for &e in &step.alternatives {
                    let direct = calibrated_similarity(&m, shot, e);
                    let cached = cache.calibrated(shot, e);
                    assert!(
                        (direct - cached).abs() <= 1e-12,
                        "shot {shot} event {e}: direct {direct} cached {cached}"
                    );
                }
            }
        }
    }

    #[test]
    fn best_alternative_agrees_with_direct() {
        let m = model();
        let p = pattern();
        let cache = SimCache::build(&m, &p);
        for shot in 0..m.shot_count() {
            for step in &p.steps {
                let direct = best_alternative(&m, shot, &step.alternatives).unwrap();
                let cached = cache.best_alternative(shot, &step.alternatives).unwrap();
                assert_eq!(direct.0, cached.0, "event choice diverged at shot {shot}");
                assert!((direct.1 - cached.1).abs() <= 1e-12);
            }
        }
    }

    #[test]
    fn self_similarity_is_memoized_exactly(){
        let m = model();
        let cache = SimCache::build(&m, &pattern());
        for e in [
            EventKind::Goal.index(),
            EventKind::FreeKick.index(),
            EventKind::CornerKick.index(),
        ] {
            assert_eq!(cache.self_similarity(e), crate::sim::self_similarity(&m, e));
        }
    }

    #[test]
    fn column_maxima_match_uncached_bound_bitwise() {
        let m = model();
        let p = pattern();
        let cache = SimCache::build_with_threads(&m, &p, 4);
        for step in &p.steps {
            for &e in &step.alternatives {
                assert_eq!(
                    cache.max_calibrated(e),
                    crate::sim::max_calibrated_similarity(&m, e),
                    "column max diverged for event {e}"
                );
            }
        }
        // Events outside the query bound to zero, like their scores.
        assert_eq!(cache.max_calibrated(EventKind::RedCard.index()), 0.0);
    }

    #[test]
    fn range_maxima_bound_their_shots_and_refine_the_column() {
        let m = model();
        let p = pattern();
        let cache = SimCache::build(&m, &p);
        let goal = EventKind::Goal.index();
        // Video "a" owns shots 0..3, video "b" owns 3..5.
        for (range, n) in [(0..3usize, 3usize), (3..5, 2)] {
            let local_max = cache.max_calibrated_in(range.clone(), goal);
            for shot in range {
                assert!(local_max >= cache.calibrated(shot, goal));
            }
            assert!(local_max <= cache.max_calibrated(goal));
            assert!(n > 0);
        }
        // The two per-video maxima reconstruct the archive-wide column max.
        let joined = cache
            .max_calibrated_in(0..3, goal)
            .max(cache.max_calibrated_in(3..5, goal));
        assert_eq!(joined, cache.max_calibrated(goal));
        assert_eq!(cache.max_calibrated_in(0..5, EventKind::RedCard.index()), 0.0);
    }

    #[test]
    fn covers_only_query_events() {
        let m = model();
        let cache = SimCache::build(&m, &pattern());
        assert_eq!(cache.event_count(), 3);
        // An event outside the pattern reads as zero rather than panicking.
        assert_eq!(cache.calibrated(0, EventKind::RedCard.index()), 0.0);
    }

    #[test]
    fn build_evaluation_count_is_dense() {
        let m = model();
        let p = pattern();
        let cache = SimCache::build(&m, &p);
        // Every (shot, event) pair is evaluated exactly once — except rows
        // for events with no feature support, which are zero by definition
        // and skipped without touching Eq. (14).
        let supported: Vec<usize> = p
            .steps
            .iter()
            .flat_map(|s| s.alternatives.iter().copied())
            .filter(|&e| crate::sim::self_similarity(&m, e) > 0.0)
            .collect();
        assert!(!supported.is_empty());
        assert_eq!(
            cache.build_evaluations(),
            (m.shot_count() * supported.len()) as u64
        );
    }
}
