//! The Eq.-(14) shot/event similarity function — scalar reference and the
//! blocked SoA kernel.
//!
//! Two implementations of the same equation live here. [`similarity`] is the
//! scalar reference: one shot, one event, a dense loop over the 20 features
//! with an epsilon branch per feature. [`similarity_block`] is the hot-path
//! kernel: one event against a *contiguous block* of shots, iterating the
//! event's pre-packed non-zero terms ([`crate::model::EventTerms`]) on the
//! outside and sweeping the feature-major `B_1` slab at unit stride on the
//! inside — no epsilon branch, no indirection, auto-vectorizable. Per shot,
//! both execute the exact same floating-point operation sequence
//! (`acc += w · (1 − |b − c|) / c` in ascending feature order), so their
//! results are **bitwise identical** — pinned by proptests.

use crate::model::Hmmm;
use hmmm_features::FEATURE_COUNT;
use std::ops::Range;

/// Features whose centroid magnitude is below this are skipped: the paper
/// restricts Eq. (14) to "the K non-zero features of the query sample", and
/// the division by `B_1'(e_j, f_y)` is undefined at zero.
pub const CENTROID_EPSILON: f64 = 1e-9;

/// Eq. (14):
/// `sim(s, e) = Σ_y P_{1,2}(e, f_y) · (1 − |B_1(s, f_y) − B_1'(e, f_y)|) / B_1'(e, f_y)`
/// summed over the event's non-zero features.
///
/// Both inputs live in the normalized `[0, 1]` feature space, so each term
/// is non-negative; features with tiny centroids are excluded rather than
/// dividing by ~0. Returns `0.0` for an event with no feature support
/// (no annotated examples).
///
/// # Examples
///
/// On the §4.2.1.1 three-shot video, the goal shot scores higher against
/// `goal` than the non-goal shots do, and an event with no annotated
/// examples (empty `B_1'` centroid) scores zero everywhere:
///
/// ```
/// use hmmm_core::{build_hmmm, similarity, BuildConfig};
/// use hmmm_features::{FeatureId, FeatureVector};
/// use hmmm_media::EventKind;
/// use hmmm_storage::Catalog;
///
/// # fn feat(grass: f64, volume: f64) -> FeatureVector {
/// #     let mut f = FeatureVector::zeros();
/// #     f[FeatureId::GrassRatio] = grass;
/// #     f[FeatureId::VolumeMean] = volume;
/// #     f
/// # }
/// let mut catalog = Catalog::new();
/// catalog.add_video("v1", vec![
///     (vec![EventKind::FreeKick], feat(0.3, 0.2)),
///     (vec![EventKind::FreeKick, EventKind::Goal], feat(0.8, 0.9)),
///     (vec![EventKind::CornerKick], feat(0.5, 0.4)),
/// ]);
/// let model = build_hmmm(&catalog, &BuildConfig::default()).unwrap();
///
/// let goal = EventKind::Goal.index();
/// // Shot 1 carries the goal annotation; shot 0 is a free kick.
/// assert!(similarity(&model, 1, goal) > similarity(&model, 0, goal));
///
/// // red_card never occurs in the archive → zero centroid → zero score.
/// let red = EventKind::RedCard.index();
/// assert_eq!(similarity(&model, 0, red), 0.0);
/// ```
pub fn similarity(model: &Hmmm, shot: usize, event: usize) -> f64 {
    let b1 = &model.b1[shot];
    let centroid = &model.b1_prime[event];
    let mut total = 0.0;
    for y in 0..FEATURE_COUNT {
        let c = centroid[y];
        if c <= CENTROID_EPSILON {
            continue;
        }
        let weight = model.p12.get(event, y);
        let diff = (b1[y] - c).abs();
        total += weight * (1.0 - diff) / c;
    }
    total
}

/// Eq. (14), blocked: writes the similarity of `event` against every shot
/// in `shots` (a contiguous global-id range) into `out`, one slot per shot.
///
/// This is the kernel body shared by [`similarity_block`], the
/// [`crate::simcache::SimCache`] builder, and the uncached bound fallback.
/// It iterates the event's packed non-zero terms on the outside and the
/// feature-major `B_1` slab row at unit stride on the inside, accumulating
/// `w · (1 − |b − c|) / c` per shot in ascending feature order — the exact
/// operation sequence of [`similarity`]'s scalar loop, so every slot is
/// bitwise equal to the scalar score. The `CENTROID_EPSILON` filtering
/// happened once at pack time; there is no branch in the inner loop.
///
/// # Panics
///
/// Panics if `out.len() != shots.len()` or the range exceeds the archive.
pub fn similarity_into(model: &Hmmm, shots: Range<usize>, event: usize, out: &mut [f64]) {
    assert_eq!(out.len(), shots.len(), "similarity block size mismatch");
    out.fill(0.0);
    let terms = &model.event_terms[event];
    for ((&y, &c), &w) in terms
        .features
        .iter()
        .zip(terms.centroids.iter())
        .zip(terms.weights.iter())
    {
        let row = &model.b1_slab.feature_row(y as usize)[shots.clone()];
        for (acc, &b) in out.iter_mut().zip(row.iter()) {
            *acc += w * (1.0 - (b - c).abs()) / c;
        }
    }
}

/// Eq. (14) over a contiguous block of shots: the blocked SoA kernel.
///
/// Evaluates one query event against every shot in `shots` and returns the
/// scores as a slice borrowed from `scratch` (cleared and resized; reusing
/// the same buffer across calls keeps the hot path allocation-free). Slot
/// `i` of the result is bitwise equal to
/// `similarity(model, shots.start + i, event)` — see [`similarity_into`]
/// for why.
///
/// ```
/// use hmmm_core::{build_hmmm, similarity, BuildConfig};
/// use hmmm_core::sim::similarity_block;
/// use hmmm_features::{FeatureId, FeatureVector};
/// use hmmm_media::EventKind;
/// use hmmm_storage::Catalog;
///
/// # fn feat(grass: f64) -> FeatureVector {
/// #     let mut f = FeatureVector::zeros();
/// #     f[FeatureId::GrassRatio] = grass;
/// #     f
/// # }
/// let mut catalog = Catalog::new();
/// catalog.add_video("v1", vec![
///     (vec![EventKind::Goal], feat(0.8)),
///     (vec![EventKind::FreeKick], feat(0.3)),
///     (vec![EventKind::Goal], feat(0.7)),
/// ]);
/// let model = build_hmmm(&catalog, &BuildConfig::default()).unwrap();
/// let goal = EventKind::Goal.index();
///
/// let mut scratch = Vec::new();
/// let block = similarity_block(&model, 0..3, goal, &mut scratch);
/// assert_eq!(block.len(), 3);
/// for (i, &score) in block.iter().enumerate() {
///     assert_eq!(score, similarity(&model, i, goal)); // bitwise
/// }
/// ```
pub fn similarity_block<'a>(
    model: &Hmmm,
    shots: Range<usize>,
    event: usize,
    scratch: &'a mut Vec<f64>,
) -> &'a [f64] {
    scratch.clear();
    scratch.resize(shots.len(), 0.0);
    similarity_into(model, shots, event, scratch);
    &scratch[..]
}

/// [`calibrated_similarity`] over a contiguous block of shots.
///
/// Like [`similarity_block`] but divides each slot by the event's memoized
/// self-similarity denominator (zero-fills when the event has no feature
/// support). Slot `i` is bitwise equal to
/// `calibrated_similarity(model, shots.start + i, event)`: both compute the
/// full Eq.-14 total first and perform a single division by the same
/// denominator.
pub fn calibrated_block<'a>(
    model: &Hmmm,
    shots: Range<usize>,
    event: usize,
    scratch: &'a mut Vec<f64>,
) -> &'a [f64] {
    scratch.clear();
    scratch.resize(shots.len(), 0.0);
    let denom = model.event_terms[event].self_sim;
    if denom > 0.0 {
        similarity_into(model, shots.clone(), event, scratch);
        for v in scratch.iter_mut() {
            *v /= denom;
        }
    }
    &scratch[..]
}

/// The Eq.-(14) score of an event's own centroid:
/// `Σ_y P_{1,2}(e, f_y) / B_1'(e, f_y)` over non-zero features — the
/// maximum attainable similarity for the event.
///
/// This is the *reference* computation; the model memoizes it per event at
/// build/feedback time ([`crate::model::EventTerms::self_sim`], rebuilt by
/// `refresh_event_terms`), and the hot paths read the memo instead of
/// re-folding. The memo's fold walks the same terms in the same ascending
/// order, so it is bitwise equal to this function — the auditor re-proves
/// that on every validation.
pub fn self_similarity(model: &Hmmm, event: usize) -> f64 {
    let centroid = &model.b1_prime[event];
    let mut total = 0.0;
    for y in 0..FEATURE_COUNT {
        let c = centroid[y];
        if c <= CENTROID_EPSILON {
            continue;
        }
        total += model.p12.get(event, y) / c;
    }
    total
}

/// Eq. (14) rescaled so a perfect centroid match scores `1.0`.
///
/// The literal formula divides by `B_1'(e, f_y)`, which systematically
/// inflates the scores of events with small centroids — harmless when
/// ranking shots for a *fixed* event (it is a constant factor), but wrong
/// when attributing one shot to the best of several alternative events.
/// Calibration divides by [`self_similarity`], preserving within-event
/// ordering exactly while making scores comparable across events. (The
/// deviation is recorded in DESIGN.md; [`similarity`] stays literal.)
pub fn calibrated_similarity(model: &Hmmm, shot: usize, event: usize) -> f64 {
    // The denominator is a per-event constant; read the build-time memo
    // (bitwise equal to `self_similarity` — see there) instead of
    // re-folding Eq. 14 at its own centroid on every call.
    let denom = model.event_terms[event].self_sim;
    if denom <= 0.0 {
        0.0
    } else {
        similarity(model, shot, event) / denom
    }
}

/// Largest [`calibrated_similarity`] any archive shot attains for `event` —
/// the admissible per-step similarity factor used by the exact top-k pruning
/// bounds (no Eq.-13 step involving `event` can multiply by more than this).
///
/// This is the *uncached* fallback: when a query runs with the
/// [`crate::simcache::SimCache`] enabled, the cache derives the identical
/// value for free from its column maxima ([`crate::simcache::SimCache::max_calibrated`]);
/// both fold the same scores with `f64::max` in shot order, so cached and
/// uncached bounds are bit-identical and prune the same candidates.
pub fn max_calibrated_similarity(model: &Hmmm, event: usize) -> f64 {
    let denom = model.event_terms[event].self_sim;
    if denom <= 0.0 {
        return 0.0;
    }
    // Blocked evaluation over the whole archive, then the same shot-order
    // `f64::max` fold as before: each slot is the bitwise-identical Eq.-14
    // total, and `total / denom` is the same single division the scalar
    // `calibrated_similarity` performs.
    let mut scores = vec![0.0; model.shot_count()];
    similarity_into(model, 0..model.shot_count(), event, &mut scores);
    scores.iter().map(|&t| t / denom).fold(0.0, f64::max)
}

/// Similarity of a shot against the best of several alternative events
/// (MATN branch arcs), returning `(best_event, similarity)`. Uses the
/// calibrated Eq.-14 score so alternatives with small centroids do not
/// dominate.
/// Ties keep the *earliest* alternative — a total tie-break, so the choice
/// is reproducible and agrees with [`crate::simcache::SimCache`]. Returns
/// `None` for an empty alternative list.
pub fn best_alternative(model: &Hmmm, shot: usize, events: &[usize]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for &e in events {
        let s = calibrated_similarity(model, shot, e);
        match best {
            Some((_, bs)) if s <= bs => {}
            _ => best = Some((e, s)),
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{build_hmmm, BuildConfig};
    use hmmm_features::{FeatureId, FeatureVector};
    use hmmm_media::EventKind;
    use hmmm_storage::Catalog;

    fn model() -> Hmmm {
        let mut c = Catalog::new();
        let feat = |g: f64, v: f64| {
            let mut f = FeatureVector::zeros();
            f[FeatureId::GrassRatio] = g;
            f[FeatureId::VolumeMean] = v;
            f
        };
        c.add_video(
            "m",
            vec![
                (vec![EventKind::Goal], feat(0.8, 0.9)),
                (vec![EventKind::Goal], feat(0.82, 0.95)),
                (vec![EventKind::FreeKick], feat(0.3, 0.1)),
                (vec![EventKind::FreeKick], feat(0.28, 0.12)),
                (vec![], feat(0.5, 0.5)),
            ],
        );
        build_hmmm(&c, &BuildConfig::default()).unwrap()
    }

    #[test]
    fn matching_shots_score_higher() {
        let m = model();
        let goal = EventKind::Goal.index();
        // Shot 0 is a goal shot, shot 2 a free kick.
        assert!(similarity(&m, 0, goal) > similarity(&m, 2, goal));
        let fk = EventKind::FreeKick.index();
        assert!(similarity(&m, 2, fk) > similarity(&m, 0, fk));
    }

    #[test]
    fn similarity_is_non_negative() {
        let m = model();
        for shot in 0..m.shot_count() {
            for event in 0..EventKind::COUNT {
                assert!(similarity(&m, shot, event) >= 0.0);
            }
        }
    }

    #[test]
    fn unseen_event_scores_zero() {
        let m = model();
        let red = EventKind::RedCard.index();
        for shot in 0..m.shot_count() {
            assert_eq!(similarity(&m, shot, red), 0.0);
        }
    }

    #[test]
    fn best_alternative_picks_the_matching_event() {
        let m = model();
        let goal = EventKind::Goal.index();
        let fk = EventKind::FreeKick.index();
        // Shot 0 is a goal shot, shot 2 a free kick: calibration must
        // attribute each to its own event despite centroid-scale bias.
        let (best, score) = best_alternative(&m, 0, &[fk, goal]).unwrap();
        assert_eq!(best, goal);
        assert!(score > 0.0);
        let (best, _) = best_alternative(&m, 2, &[fk, goal]).unwrap();
        assert_eq!(best, fk);
        assert!(best_alternative(&m, 0, &[]).is_none());
    }

    #[test]
    fn calibrated_similarity_is_bounded_by_one_at_centroid() {
        let m = model();
        let goal = EventKind::Goal.index();
        // A shot exactly at the centroid would score 1; real shots near it
        // score close to (but never meaningfully above) 1.
        for shot in 0..m.shot_count() {
            let c = calibrated_similarity(&m, shot, goal);
            assert!((0.0..=1.0 + 1e-9).contains(&c), "calibrated {c}");
        }
        // Literal and calibrated agree on within-event ordering.
        let lit0 = similarity(&m, 0, goal);
        let lit2 = similarity(&m, 2, goal);
        let cal0 = calibrated_similarity(&m, 0, goal);
        let cal2 = calibrated_similarity(&m, 2, goal);
        assert_eq!(lit0 > lit2, cal0 > cal2);
    }

    #[test]
    fn self_similarity_positive_for_seen_events() {
        let m = model();
        assert!(self_similarity(&m, EventKind::Goal.index()) > 0.0);
        assert_eq!(self_similarity(&m, EventKind::RedCard.index()), 0.0);
    }

    #[test]
    fn blocked_kernel_matches_scalar_bitwise() {
        let m = model();
        let mut scratch = Vec::new();
        for event in 0..EventKind::COUNT {
            // Full archive and every sub-block, including empty ones.
            for start in 0..=m.shot_count() {
                for end in start..=m.shot_count() {
                    let block = similarity_block(&m, start..end, event, &mut scratch);
                    for (i, &score) in block.iter().enumerate() {
                        assert_eq!(score.to_bits(), similarity(&m, start + i, event).to_bits());
                    }
                }
            }
        }
    }

    #[test]
    fn calibrated_block_matches_scalar_bitwise() {
        let m = model();
        let mut scratch = Vec::new();
        for event in 0..EventKind::COUNT {
            let block = calibrated_block(&m, 0..m.shot_count(), event, &mut scratch);
            for (shot, &score) in block.iter().enumerate() {
                assert_eq!(
                    score.to_bits(),
                    calibrated_similarity(&m, shot, event).to_bits()
                );
            }
        }
    }

    #[test]
    fn memoized_denominator_matches_reference_bitwise() {
        let m = model();
        for event in 0..EventKind::COUNT {
            assert_eq!(
                m.event_terms[event].self_sim.to_bits(),
                self_similarity(&m, event).to_bits()
            );
        }
    }
}
