//! The §5 temporal pattern retrieval process (Steps 1–9, Figures 2–3).
//!
//! Retrieval walks the hierarchy exactly as the paper's flowchart does:
//!
//! 1. order candidate videos by `Π_2` and `A_2` affinity, skipping videos
//!    whose `B_2` row lacks the pattern's first event (Step 2);
//! 2. inside each video, traverse the shot lattice (Figure 3): candidates
//!    for step `j+1` are *forward* shots reachable through `A_1`, scored by
//!    `w_{j+1} = w_j · A_1(s_j, s_{j+1}) · sim(s_{j+1}, e_{j+1})`
//!    (Eqs. 12–13);
//! 3. the per-video best path(s) become candidate patterns scored
//!    `SS = Σ_j w_j` (Eq. 15);
//! 4. all candidates are ranked and the top `limit` returned (Steps 8–9).
//!
//! The paper traverses greedily ("always tries to traverse the right
//! path"); [`RetrievalConfig::beam_width`] generalizes that to a beam
//! (`1` = paper-greedy) — the beam-width ablation is one of the benches.
//!
//! # Exact top-k pruning
//!
//! With [`RetrievalConfig::prune`] on (the default), retrieval runs a
//! Fagin-style threshold cut: a lock-free [`SharedTopK`] register tracks the
//! running k-th best Eq.-15 score across *all* traversal workers, and
//! admissible completion bounds ([`crate::bounds`]) skip work that provably
//! cannot reach the returned top-`limit` prefix. The rankings are
//! **byte-identical** to `prune: false` (proptest-enforced); only the work
//! counters change.
//!
//! Which prune sites are exact is subtler than classic branch-and-bound,
//! because every lattice step ends in a *width* trim: dropping one hopeless
//! entry (bound below threshold) can change which entries the trim backfills,
//! and a backfilled entry's descendants may legitimately out-score the
//! threshold — producing candidates the unpruned search never generated.
//! Individual mid-beam drops are therefore **unsafe**, and pruning is
//! restricted to the three sites where no backfill can happen:
//!
//! 1. **Whole-video skip** — `UB(video) < threshold` before `traverse_video`
//!    (every candidate the video could emit is below the settled k-th
//!    score), counted in [`RetrievalStats::videos_skipped_by_bound`];
//! 2. **Whole-beam abandon** — after a trim, *every* surviving entry has
//!    `score + w_j · rem_j < threshold`: no candidate from this video can
//!    reach the prefix, so the traversal stops (there is nothing left for a
//!    trim to backfill), counted in [`RetrievalStats::entries_pruned`];
//! 3. **Emission filter** — fully-selected per-video candidates scoring
//!    below the threshold are dropped instead of offered to the global rank
//!    (anything their removal pulls up scores even lower).
//!
//! Dropped candidates are strictly below the threshold, the threshold never
//! exceeds the settled k-th best score (see [`crate::topk`]), and ties at
//! the k-th score are never dropped (strict `<`) — so the top-`limit`
//! prefix, including its deterministic tie-breaks, is unchanged. In
//! parallel runs the *counters* are timing-dependent (workers race the
//! threshold); the rankings are not.
//!
//! Bound tightness depends on the similarity source: with the query cache
//! up, each video gets *per-video* step maxima and an exact whole-video
//! bound folded from per-shot start weights and forward `A_1` row maxima,
//! read straight from the table (free — the table is already built);
//! without it, one archive-wide scan per unique event feeds a single looser
//! [`QueryBounds`] shared by all videos. Both are admissible, so rankings
//! never depend on the cache — but the *pruning decisions* (and counters)
//! do. Entry bounds charge the entry's own shot's forward row maximum
//! ([`crate::LocalMmm::a1_row_max`]) for the next hop rather than the
//! whole-matrix maximum, which a trailing self-loop row would pin near 1.

use crate::bounds::{QueryBounds, VideoBounds};
use crate::error::CoreError;
use crate::fault::FaultHandle;
use crate::metrics as m;
use crate::model::Hmmm;
use crate::sim::{best_alternative, max_calibrated_similarity};
use crate::simcache::SimCache;
use crate::topk::SharedTopK;
use hmmm_media::EventKind;
use hmmm_obs::RecorderHandle;
use hmmm_query::CompiledPattern;
use hmmm_storage::{Catalog, ShotId, VideoId};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Retrieval tuning knobs.
///
/// Plain data apart from [`RetrievalConfig::recorder`], which is an
/// `Arc`-backed observability handle: cloning a config shares the sink,
/// serializing one drops it (a deserialized config records nothing until
/// a recorder is attached again).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetrievalConfig {
    /// Paths kept per lattice step (`1` = the paper's greedy traversal).
    pub beam_width: usize,
    /// Cap on first-step candidates when no shot is annotated with the
    /// first event (fallback to feature similarity, Step 3's "or similar").
    pub max_start_candidates: usize,
    /// Candidate sequences emitted per video (Step 7 advances `k` once per
    /// video in the paper, i.e. `1`).
    pub per_video_results: usize,
    /// Skip videos whose `B_2` row lacks every alternative of the first
    /// step (the paper's Step 2 `B_2` check).
    pub require_first_event: bool,
    /// Step 3 candidate policy. `true`: prefer shots *annotated as* `e_j`,
    /// falling back to feature similarity only when a video has none
    /// (exact-annotation reading of §5 Step 3). `false`: rank every
    /// reachable shot purely by the model (`Π_1`/`A_1` × Eq.-14 sim) — the
    /// "or similar to event e_j" reading, where the learned `P_{1,2}` and
    /// `B_1'` decide everything (used by the feedback experiments).
    pub annotated_first: bool,
    /// Worker threads for the per-video traversal fan-out. `None` uses
    /// [`std::thread::available_parallelism`], `Some(1)` runs serially on
    /// the calling thread. The ranking is byte-identical at every setting:
    /// videos are traversed independently and merged under a total order.
    pub threads: Option<usize>,
    /// Allow a query-scoped [`SimCache`] (`true`, the default): when the
    /// traversal is similarity-bound (`annotated_first == false`), Eq. (14)
    /// is evaluated once per (shot, query-event) in a dense up-front pass
    /// instead of repeatedly on the hot path. Annotation-bound traversal
    /// never builds the cache — it scores too few shots for the build to
    /// pay. `false` forces direct evaluation everywhere (the
    /// cached-vs-uncached cost benches).
    pub use_sim_cache: bool,
    /// Exact top-k pruning (`true`, the default): share the running k-th
    /// best Eq.-15 score across workers and skip videos/beams whose
    /// admissible upper bound falls strictly below it. Rankings are
    /// byte-identical at either setting; only the work counters differ
    /// (and, in parallel runs, the pruning counters are timing-dependent).
    /// `false` forces the exhaustive traversal — the pruning on/off sweep
    /// and the exactness proptests use it as ground truth. Pruning
    /// auto-disables for `limit > 65 536`: the threshold register scales
    /// with `limit`, and a cut that deep could never pay for itself.
    pub prune: bool,
    /// Deadline budget for anytime retrieval (`None` = unbounded, the
    /// default). When set, workers stop admitting new videos once the
    /// budget elapses (checked at video granularity and every
    /// [`DeadlineConfig::check_interval`] beam expansions inside a
    /// traversal), the current beam is abandoned whole, and the engine
    /// returns the best-so-far ranking with
    /// [`RetrievalStats::degraded`] set. Whenever the deadline never
    /// fires, results are bit-identical to an unbounded run — the clock
    /// only ever *removes* whole videos/beams, it never reorders
    /// surviving candidates.
    pub deadline: Option<DeadlineConfig>,
    /// Observability sink for every retrieval this config drives: spans
    /// (per-stage and per-video timings), counters, and the cache/thread
    /// gauges — see [`crate::metrics`] for the emitted names. The default
    /// [`RecorderHandle::noop`] is near-zero-cost; attach an
    /// [`hmmm_obs::InMemoryRecorder`] to collect a
    /// [`hmmm_obs::MetricsReport`]. Skipped by serde (a deserialized
    /// config is a noop until a recorder is attached).
    pub recorder: RecorderHandle,
    /// Deterministic fault-injection hook (see [`crate::fault`]). The
    /// default [`FaultHandle::noop`] injects nothing at near-zero cost;
    /// attach a [`crate::fault::FaultPlan`] to drive the degraded paths in
    /// tests and the fault-matrix CI job. Skipped by serde, like the
    /// recorder (a runtime hook, not data).
    pub fault: FaultHandle,
    /// Two-stage coarse-to-fine retrieval mode ([`CoarseMode::Off`] by
    /// default, which reproduces single-stage behavior — counters
    /// included — exactly). `Exact` and `Approx` run the ingest-time
    /// [`crate::coarse::CoarseIndex`] stage first: candidate videos come
    /// from the inverted `B_2` postings (no per-video `B_2` row scan) and
    /// carry admissible per-video upper bounds derived from table lookups
    /// (no archive-wide Eq.-14 bound scan on the cold path — the
    /// [`RetrievalStats::bound_evaluations`] counter drops to zero).
    pub coarse: CoarseMode,
    /// Candidate-set cut for [`CoarseMode::Approx`]: only the
    /// `coarse_candidates` videos with the highest coarse upper bounds
    /// enter the fine stage (the recall@k-vs-latency knob `C` of the E13
    /// sweep). Ignored by `Off` and `Exact`.
    pub coarse_candidates: usize,
}

/// Which coarse stage [`Retriever::retrieve`] runs before the exact
/// per-video lattice traversal (see [`crate::coarse`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoarseMode {
    /// Single-stage retrieval (the default): candidate videos come from
    /// the per-video `B_2` row scan and bounds from the similarity source
    /// in use. Byte-identical to pre-coarse behavior, counters included.
    Off,
    /// Bound-admissible coarse stage: candidates from the inverted `B_2`
    /// postings, ordered by their admissible coarse upper bound
    /// (descending), with zero-bound videos skipped. The ranking is
    /// provably **byte-identical** to `Off` (proptest-pinned): every
    /// skipped video is either `B_2`-ineligible, admissibly bounded below
    /// the shared top-k threshold, or structurally unable to admit a
    /// start entry (`w > 0` is required), and visit order only affects
    /// counters — the final sort is a total order.
    Exact,
    /// `Exact` plus a top-`C` candidate cut
    /// ([`RetrievalConfig::coarse_candidates`]): only the `C` candidates
    /// with the highest coarse bounds are traversed. Recall@k is
    /// deterministically monotone in `C` (the candidate order is total,
    /// so cuts are nested prefixes) and measured against latency by the
    /// E13 `exp_coarse_sweep`.
    Approx,
}

impl CoarseMode {
    /// Canonical CLI/config spelling (`off` / `exact` / `approx`).
    pub fn as_str(&self) -> &'static str {
        match self {
            CoarseMode::Off => "off",
            CoarseMode::Exact => "exact",
            CoarseMode::Approx => "approx",
        }
    }

    /// Parses the canonical spelling (the `--coarse` CLI flag).
    pub fn parse(s: &str) -> Option<CoarseMode> {
        match s {
            "off" => Some(CoarseMode::Off),
            "exact" => Some(CoarseMode::Exact),
            "approx" => Some(CoarseMode::Approx),
            _ => None,
        }
    }
}

/// Wall-clock budget for one retrieve call (anytime retrieval).
///
/// The budget spans the *whole* call — cache build, bound derivation, and
/// traversal all draw from it. `check_interval` bounds how often a
/// traversal reads the clock: once per `check_interval` beam-entry
/// expansions (plus once per admitted video), so the overhead of deadline
/// support is one integer increment per expansion, not a syscall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlineConfig {
    /// The wall-clock budget, measured from the start of the retrieve
    /// call.
    pub budget: Duration,
    /// Beam expansions between clock reads inside a traversal (`≥ 1`).
    pub check_interval: u32,
}

impl DeadlineConfig {
    /// A budget with the default check interval (64 expansions).
    pub fn new(budget: Duration) -> Self {
        DeadlineConfig {
            budget,
            check_interval: 64,
        }
    }
}

// Hand-written (de)serialization: the vendored serde stub has no Duration
// support, so the budget travels as nanoseconds.
impl Serialize for DeadlineConfig {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            (
                "budget_ns".into(),
                u64::try_from(self.budget.as_nanos())
                    .unwrap_or(u64::MAX)
                    .to_value(),
            ),
            ("check_interval".into(), self.check_interval.to_value()),
        ])
    }
}

impl Deserialize for DeadlineConfig {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let obj = v.as_object().ok_or_else(|| {
            serde::DeError::new(format!("DeadlineConfig: expected object, found {}", v.kind()))
        })?;
        let budget_ns: u64 = serde::__field(obj, "budget_ns", "DeadlineConfig")?;
        let check_interval: u32 = serde::__field(obj, "check_interval", "DeadlineConfig")?;
        if check_interval == 0 {
            return Err(serde::DeError::new(
                "DeadlineConfig.check_interval: must be ≥ 1".to_string(),
            ));
        }
        Ok(DeadlineConfig {
            budget: Duration::from_nanos(budget_ns),
            check_interval,
        })
    }
}

/// The per-worker deadline clock: a cheap tick counter in front of the
/// actual `Instant::now()` read. Once expired, stays expired (the budget
/// never un-elapses), so every check after the first hit is branch-only.
struct DeadlineClock {
    expires_at: Instant,
    check_interval: u32,
    ticks: u32,
    expired: bool,
}

impl DeadlineClock {
    fn new(config: DeadlineConfig, started: Instant) -> Self {
        DeadlineClock {
            expires_at: started + config.budget,
            check_interval: config.check_interval.max(1),
            ticks: 0,
            expired: false,
        }
    }

    /// One beam-expansion tick; reads the clock every `check_interval`
    /// ticks. Returns `true` once the budget has elapsed.
    #[inline]
    fn tick(&mut self) -> bool {
        if self.expired {
            return true;
        }
        self.ticks += 1;
        if self.ticks >= self.check_interval {
            self.ticks = 0;
            return self.check_now();
        }
        false
    }

    /// Unconditional clock read (video-granularity checkpoints).
    fn check_now(&mut self) -> bool {
        if !self.expired && Instant::now() >= self.expires_at {
            self.expired = true;
        }
        self.expired
    }
}

// Hand-written (de)serialization because the recorder handle is a runtime
// sink, not data: serializing omits it, deserializing defaults it to noop
// (and tolerates its absence, so configs persisted before the field existed
// still load).
impl Serialize for RetrievalConfig {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("beam_width".into(), self.beam_width.to_value()),
            (
                "max_start_candidates".into(),
                self.max_start_candidates.to_value(),
            ),
            ("per_video_results".into(), self.per_video_results.to_value()),
            (
                "require_first_event".into(),
                self.require_first_event.to_value(),
            ),
            ("annotated_first".into(), self.annotated_first.to_value()),
            ("threads".into(), self.threads.to_value()),
            ("use_sim_cache".into(), self.use_sim_cache.to_value()),
            ("prune".into(), self.prune.to_value()),
            ("deadline".into(), self.deadline.to_value()),
            ("coarse".into(), self.coarse.to_value()),
            ("coarse_candidates".into(), self.coarse_candidates.to_value()),
        ])
    }
}

impl Deserialize for RetrievalConfig {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let obj = v.as_object().ok_or_else(|| {
            serde::DeError::new(format!("RetrievalConfig: expected object, found {}", v.kind()))
        })?;
        Ok(RetrievalConfig {
            beam_width: serde::__field(obj, "beam_width", "RetrievalConfig")?,
            max_start_candidates: serde::__field(obj, "max_start_candidates", "RetrievalConfig")?,
            per_video_results: serde::__field(obj, "per_video_results", "RetrievalConfig")?,
            require_first_event: serde::__field(obj, "require_first_event", "RetrievalConfig")?,
            annotated_first: serde::__field(obj, "annotated_first", "RetrievalConfig")?,
            threads: serde::__field(obj, "threads", "RetrievalConfig")?,
            use_sim_cache: serde::__field(obj, "use_sim_cache", "RetrievalConfig")?,
            // Tolerant: configs persisted before the pruning PR lack the
            // field and should keep loading (defaulting to pruning on,
            // which is ranking-neutral).
            prune: match obj.iter().find(|(k, _)| k == "prune") {
                Some((_, v)) => bool::from_value(v)?,
                None => true,
            },
            // Tolerant like `prune`: configs persisted before the deadline
            // PR lack the field and should keep loading as unbounded.
            deadline: match obj.iter().find(|(k, _)| k == "deadline") {
                Some((_, v)) => Option::from_value(v)?,
                None => None,
            },
            // Tolerant like `prune`: configs persisted before the coarse
            // PR lack both fields and should keep loading single-stage.
            coarse: match obj.iter().find(|(k, _)| k == "coarse") {
                Some((_, v)) => CoarseMode::from_value(v)?,
                None => CoarseMode::Off,
            },
            coarse_candidates: match obj.iter().find(|(k, _)| k == "coarse_candidates") {
                Some((_, v)) => usize::from_value(v)?,
                None => 16,
            },
            recorder: RecorderHandle::noop(),
            fault: FaultHandle::noop(),
        })
    }
}

impl Default for RetrievalConfig {
    fn default() -> Self {
        RetrievalConfig {
            beam_width: 3,
            max_start_candidates: 16,
            per_video_results: 1,
            require_first_event: true,
            annotated_first: true,
            threads: None,
            use_sim_cache: true,
            prune: true,
            deadline: None,
            recorder: RecorderHandle::noop(),
            fault: FaultHandle::noop(),
            coarse: CoarseMode::Off,
            coarse_candidates: 16,
        }
    }
}

impl RetrievalConfig {
    /// Pure content-driven traversal: candidates come from the stochastic
    /// model alone, annotations only seed construction.
    pub fn content_only() -> Self {
        RetrievalConfig {
            annotated_first: false,
            require_first_event: false,
            ..RetrievalConfig::default()
        }
    }

    /// The paper's literal greedy traversal.
    pub fn paper_greedy() -> Self {
        RetrievalConfig {
            beam_width: 1,
            ..RetrievalConfig::default()
        }
    }

    /// Attaches an observability sink (builder-style).
    #[must_use]
    pub fn with_recorder(mut self, recorder: RecorderHandle) -> Self {
        self.recorder = recorder;
        self
    }

    /// Sets a deadline budget (builder-style).
    #[must_use]
    pub fn with_deadline(mut self, deadline: DeadlineConfig) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches a fault-injection plan (builder-style).
    #[must_use]
    pub fn with_fault_plan(mut self, plan: crate::fault::FaultPlan) -> Self {
        self.fault = FaultHandle::from_plan(plan);
        self
    }

    /// Selects a coarse-to-fine retrieval mode (builder-style). See
    /// [`CoarseMode`] for the exactness contract of each mode.
    #[must_use]
    pub fn with_coarse(mut self, mode: CoarseMode) -> Self {
        self.coarse = mode;
        self
    }
}

/// One retrieved candidate pattern (`Q_k` in §5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankedPattern {
    /// The video the sequence lives in.
    pub video: VideoId,
    /// Matched shots, one per query step, in temporal order.
    pub shots: Vec<ShotId>,
    /// The event alternative matched at each step (dense event indices).
    pub events: Vec<usize>,
    /// Eq.-(15) similarity score `SS(R, Q_k)`.
    pub score: f64,
    /// The per-step edge weights `w_j` (their sum is `score`).
    pub weights: Vec<f64>,
}

/// Work counters for the cost experiments (E5).
///
/// A mergeable value type: every traversal worker accumulates its own
/// `RetrievalStats` and the results are combined with [`RetrievalStats::merge`]
/// at join time. All counters are commutative sums, so the merged totals are
/// independent of worker count and scheduling.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetrievalStats {
    /// Videos whose lattices were traversed.
    pub videos_visited: usize,
    /// Videos skipped by the `B_2` first-event check.
    pub videos_skipped: usize,
    /// Hot-path Eq.-(14) evaluations — scoring lookups answered by
    /// evaluating the similarity directly because no cache was built
    /// (cache disabled, or the annotation-bound regime gate skipped it).
    pub sim_evaluations: u64,
    /// Eq.-(14) evaluations spent building the query-scoped [`SimCache`]
    /// (zero when no cache was built). Kept separate from
    /// [`RetrievalStats::sim_evaluations`] so cache *bypasses* (direct
    /// hot-path work) and cache *build* work are never conflated;
    /// [`RetrievalStats::total_sim_evaluations`] sums both.
    pub cache_build_evaluations: u64,
    /// Hot-path scoring lookups served from the cache. The table is dense
    /// over the query's events, so every cached lookup is a hit; the
    /// cache hit ratio is `cache_lookups / (cache_lookups +
    /// sim_evaluations)`.
    pub cache_lookups: u64,
    /// Lattice transitions examined (`A_1` lookups).
    pub transitions_examined: u64,
    /// Candidate sequences scored (`k − 1` in Step 8).
    pub candidates_scored: usize,
    /// Videos skipped whole because their admissible upper bound fell below
    /// the shared top-k threshold — before any traversal work was spent.
    /// Timing-dependent in parallel runs (see the module docs); zero with
    /// [`RetrievalConfig::prune`] off.
    pub videos_skipped_by_bound: usize,
    /// Beam entries and selected candidates dropped by the threshold cut
    /// (whole-beam abandons plus emission filtering). Timing-dependent in
    /// parallel runs; zero with pruning off.
    pub entries_pruned: u64,
    /// Times an emitted candidate raised the shared k-th-best threshold.
    /// Timing-dependent in parallel runs; zero with pruning off.
    pub threshold_raises: u64,
    /// Eq.-(14) evaluations spent deriving the per-event bound maxima when
    /// no [`SimCache`] was available (the cache derives them for free from
    /// its column maxima). Kept apart from
    /// [`RetrievalStats::sim_evaluations`] so hot-path scoring and bound
    /// derivation are never conflated.
    pub bound_evaluations: u64,
    /// Videos whose traversal panicked (caught per video; the query keeps
    /// running on the survivors). Payloads in
    /// [`RetrievalStats::panic_payloads`].
    pub videos_failed: usize,
    /// Eligible videos never admitted because the deadline expired first.
    pub videos_unvisited: usize,
    /// In-flight beams abandoned whole at deadline expiry (partial paths
    /// cannot be emitted, so a mid-traversal expiry discards the video's
    /// beam rather than returning unfinished candidates).
    pub beams_abandoned: u64,
    /// Whether the [`RetrievalConfig::deadline`] budget elapsed during
    /// this query.
    pub deadline_expired: bool,
    /// Panic payloads of failed videos, rendered to strings and sorted
    /// (so parallel runs report deterministically regardless of which
    /// worker hit which failure first).
    pub panic_payloads: Vec<String>,
    /// `Some` when this query returned less than a full ranking —
    /// deadline expiry, worker panics, or both. `None` means the ranking
    /// is the complete (exact) answer.
    pub degraded: Option<Degraded>,
    /// Candidate videos the coarse stage admitted to the fine stage
    /// (zero with [`CoarseMode::Off`], where candidates come from the
    /// per-video `B_2` row scan instead).
    pub coarse_candidates: usize,
    /// Candidates dropped by the [`CoarseMode::Approx`] top-`C` cut
    /// (always zero in `Off`/`Exact`).
    pub coarse_cut: usize,
    /// Candidates skipped because their coarse upper bound was exactly
    /// zero — a zero bound proves no start entry can be admitted (`w > 0`
    /// is required), so the skip is exact even with pruning off.
    pub coarse_skipped_zero_ub: usize,
    /// Precomputed-summary table reads the coarse stage spent deriving
    /// per-video bounds — the quantity that replaces the archive-wide
    /// Eq.-14 scan charged to [`RetrievalStats::bound_evaluations`].
    pub coarse_bound_lookups: u64,
}

/// Degradation summary attached to a partial ranking (see
/// [`RetrievalStats::degraded`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Degraded {
    /// Eligible videos never admitted (deadline).
    pub videos_unvisited: usize,
    /// Videos whose traversal panicked.
    pub videos_failed: usize,
    /// What degraded the query.
    pub reason: DegradedReason,
}

/// Why a ranking is partial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DegradedReason {
    /// The [`RetrievalConfig::deadline`] budget elapsed.
    DeadlineExpired,
    /// One or more per-video traversals panicked.
    WorkerPanic,
    /// Both: the deadline expired *and* traversals panicked.
    DeadlineAndPanic,
}

impl DegradedReason {
    /// The canonical human-readable reason string. Every consumer that
    /// renders a degradation reason — the CLI's `DEGRADED` banner, the
    /// `hmmm-serve` response summaries, test assertions — goes through
    /// this one mapping so the strings can never drift between surfaces.
    pub fn as_str(&self) -> &'static str {
        match self {
            DegradedReason::DeadlineExpired => "deadline expired",
            DegradedReason::WorkerPanic => "worker panic",
            DegradedReason::DeadlineAndPanic => "deadline expired + worker panic",
        }
    }
}

impl std::fmt::Display for DegradedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl RetrievalStats {
    /// Folds another worker's counters into this one (commutative).
    pub fn merge(&mut self, other: RetrievalStats) {
        self.videos_visited += other.videos_visited;
        self.videos_skipped += other.videos_skipped;
        self.sim_evaluations += other.sim_evaluations;
        self.cache_build_evaluations += other.cache_build_evaluations;
        self.cache_lookups += other.cache_lookups;
        self.transitions_examined += other.transitions_examined;
        self.candidates_scored += other.candidates_scored;
        self.videos_skipped_by_bound += other.videos_skipped_by_bound;
        self.entries_pruned += other.entries_pruned;
        self.threshold_raises += other.threshold_raises;
        self.bound_evaluations += other.bound_evaluations;
        self.videos_failed += other.videos_failed;
        self.videos_unvisited += other.videos_unvisited;
        self.beams_abandoned += other.beams_abandoned;
        self.deadline_expired |= other.deadline_expired;
        self.coarse_candidates += other.coarse_candidates;
        self.coarse_cut += other.coarse_cut;
        self.coarse_skipped_zero_ub += other.coarse_skipped_zero_ub;
        self.coarse_bound_lookups += other.coarse_bound_lookups;
        self.panic_payloads.extend(other.panic_payloads);
        // `degraded` is assembled centrally at the end of the retrieve
        // call (after the sorted-payload pass), never merged piecewise.
    }

    /// Total Eq.-(14) evaluations this query paid for, wherever they were
    /// spent: direct hot-path scoring plus the dense cache build. This is
    /// the cost-model quantity the E5 experiments track.
    pub fn total_sim_evaluations(&self) -> u64 {
        self.sim_evaluations + self.cache_build_evaluations
    }

    /// Cache hit ratio over hot-path scoring lookups, `None` when no
    /// lookups happened.
    pub fn cache_hit_ratio(&self) -> Option<f64> {
        let total = self.cache_lookups + self.sim_evaluations;
        (total > 0).then(|| self.cache_lookups as f64 / total as f64)
    }
}

/// How traversal scores a shot against a step's event alternatives: through
/// the query-scoped [`SimCache`] (an array read) or by evaluating Eq. (14)
/// directly. Both use the same earliest-alternative tie-break, so rankings
/// are identical either way — only the cost differs.
enum Scorer<'q> {
    Cached(&'q SimCache),
    Direct(&'q Hmmm),
}

impl Scorer<'_> {
    fn best_alternative(&self, shot: usize, events: &[usize]) -> Option<(usize, f64)> {
        match self {
            Scorer::Cached(cache) => cache.best_alternative(shot, events),
            Scorer::Direct(model) => best_alternative(model, shot, events),
        }
    }

    /// Charges one hot-path scoring lookup to the right counter: a cache
    /// read counts as a hit ([`RetrievalStats::cache_lookups`]), a direct
    /// call as an Eq.-(14) evaluation
    /// ([`RetrievalStats::sim_evaluations`]). The dense build is charged
    /// separately, once, in `retrieve_within`.
    fn charge(&self, stats: &mut RetrievalStats) {
        match self {
            Scorer::Cached(_) => stats.cache_lookups += 1,
            Scorer::Direct(_) => stats.sim_evaluations += 1,
        }
    }

    /// [`Scorer::charge`] for a whole block of shots at once — same totals,
    /// one branch instead of one per shot.
    fn charge_block(&self, stats: &mut RetrievalStats, n: u64) {
        match self {
            Scorer::Cached(_) => stats.cache_lookups += n,
            Scorer::Direct(_) => stats.sim_evaluations += n,
        }
    }

    /// Blocked [`Scorer::best_alternative`]: fills `best_score[i]` /
    /// `best_event[i]` with the winning `(score, event)` of shot
    /// `shots.start + i` over `events`. Event-outer sweeps over contiguous
    /// score rows (the cache's slot-major rows, or the blocked Eq.-14 kernel
    /// through `block` for the direct scorer) replace the per-shot dispatch.
    ///
    /// Tie-break parity with the scalar path: the first event claims every
    /// shot unconditionally; later events take over only on a strictly
    /// greater score — exactly the earliest-alternative rule. An event with
    /// no cached row scores `0.0` everywhere, so past the first event it can
    /// never win strictly and is skipped whole.
    fn best_alternative_block(
        &self,
        shots: std::ops::Range<usize>,
        events: &[usize],
        block: &mut Vec<f64>,
        best_score: &mut Vec<f64>,
        best_event: &mut Vec<u32>,
    ) {
        debug_assert!(!events.is_empty(), "alternatives checked non-empty");
        let n = shots.len();
        best_score.clear();
        best_score.resize(n, 0.0);
        best_event.clear();
        best_event.resize(n, 0);
        for (k, &e) in events.iter().enumerate() {
            let row: Option<&[f64]> = match self {
                Scorer::Cached(cache) => cache.calibrated_range(shots.clone(), e),
                Scorer::Direct(model) => {
                    Some(crate::sim::calibrated_block(model, shots.clone(), e, block))
                }
            };
            match row {
                Some(row) if k == 0 => {
                    best_score.copy_from_slice(row);
                    best_event.fill(e as u32);
                }
                Some(row) => {
                    for ((bs, be), &s) in
                        best_score.iter_mut().zip(best_event.iter_mut()).zip(row)
                    {
                        if s > *bs {
                            *bs = s;
                            *be = e as u32;
                        }
                    }
                }
                None if k == 0 => {
                    // Scores stay the pre-zeroed 0.0, matching the scalar
                    // path's zero score for out-of-query events.
                    best_event.fill(e as u32);
                }
                None => {}
            }
        }
    }
}

/// Reusable per-worker traversal buffers: the beam arena, the beam/pending
/// node lists, the start-candidate list, and the blocked-scoring scratch
/// rows. One instance lives per [`Retriever::run_video_set`] call (one per
/// worker on the parallel path) and is recycled across that worker's videos,
/// so the per-video traversal allocates nothing once the buffers have grown
/// to the worker's largest video — the hmmm-lint `no-alloc-in-traversal`
/// rule keeps it that way.
///
/// Contents are garbage between videos by design: every user clears before
/// use ([`Retriever::traverse_video`] clears defensively at entry, which
/// also makes a panic-torn scratch harmless — see the unwind-safety audit in
/// `run_video_set`).
#[derive(Default)]
struct TraversalScratch {
    /// Settled lattice nodes (trim survivors only), reset per video.
    arena: Vec<BeamNode>,
    /// Arena indices of the current step's surviving beam.
    beam: Vec<u32>,
    /// Children of the current expansion, pre-trim.
    pending: Vec<BeamNode>,
    /// Start candidates `(local shot, event, sim)` of step 0.
    starts: Vec<(usize, usize, f64)>,
    /// Blocked Eq.-14 kernel output row (direct scorer only).
    block: Vec<f64>,
    /// Per-shot winning score of the blocked start scan.
    best_score: Vec<f64>,
    /// Per-shot winning event of the blocked start scan.
    best_event: Vec<u32>,
}

/// A reusable traversal arena for callers that serve many queries from one
/// thread — the in-process `QueryServer` worker pool (`hmmm-serve`) above
/// all. Wraps the per-worker `TraversalScratch` (beam arenas, blocked
/// Eq.-14 scoring rows, start-candidate buffers) so the buffers grow to the
/// largest video once and are then recycled across *queries*, not just
/// across one query's videos. Pass it to
/// [`Retriever::retrieve_with_scratch`]; contents between calls are
/// garbage by design (every traversal clears before use), so a scratch can
/// be reused freely after errors or degraded runs.
///
/// Only the serial path (effective `threads <= 1`) draws from an external
/// scratch: a parallel fan-out gives each scoped worker its own arenas,
/// which cannot outlive the call.
#[derive(Default)]
pub struct QueryScratch {
    inner: TraversalScratch,
}

impl QueryScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        QueryScratch::default()
    }
}

/// Where the admissible per-step similarity maxima come from (see the
/// module docs on bound tightness).
enum PruneBounds {
    /// Query cache up: per-video maxima and the exact start-weight bound
    /// are read from the table as each candidate video is reached.
    PerVideo,
    /// No cache: one archive-wide [`QueryBounds`] shared by every video
    /// (paid for with [`RetrievalStats::bound_evaluations`] up front).
    Archive(QueryBounds),
    /// Coarse stage up, no cache: per-video bounds were already derived
    /// from the ingest-time [`crate::coarse::CoarseIndex`] summaries
    /// (table lookups, no archive scan — `bound_evaluations` stays zero),
    /// indexed by video index (`None` = not admitted by the coarse stage).
    Coarse(Vec<Option<VideoBounds>>),
}

/// Output of the coarse stage: the candidate videos in coarse-bound order
/// (the fine stage's visit order) plus their admissible per-video bounds,
/// indexed by video index for the pruned traversal to look up.
struct CoarseStage {
    order: Vec<VideoId>,
    bounds: Vec<Option<VideoBounds>>,
}

/// Pruning auto-disables above this `limit`: the [`SharedTopK`] register
/// scales with `limit`, and a threshold that deep could never pay.
const PRUNE_LIMIT_CAP: usize = 65_536;

/// Sentinel parent index for first-step lattice nodes.
const NO_PARENT: u32 = u32::MAX;

/// One lattice node in the arena-backed beam.
///
/// The seed's `BeamEntry` cloned three `Vec`s (path, events, weights) per
/// child expansion — O(path-len) heap traffic on the hottest loop. A node
/// instead records only its own step (shot, event, edge weight `w_j`,
/// running Eq.-15 sum) plus a parent *index* into the per-video arena; full
/// paths are materialized by walking parent chains, and only for the
/// handful of entries that survive to emission. Trim survivors are the only
/// nodes ever pushed into the arena, so its length is bounded by
/// `beam_width × steps`, not by the expansion fan-out.
#[derive(Debug, Clone, Copy)]
struct BeamNode {
    /// Arena index of the previous step's node (`NO_PARENT` at step 0).
    parent: u32,
    /// Local shot index of this step.
    local: u32,
    /// Matched event alternative at this step.
    event: u32,
    /// This step's edge weight `w_j` (Eqs. 12–13).
    weight: f64,
    /// Running sum `Σ w_i` up to this step (the eventual Eq.-15 score).
    score: f64,
}

/// Root-first lexicographic order of two equal-depth parent chains — equal
/// to `Vec::cmp` on the materialized paths, without materializing them.
/// Shared parents short-circuit at the index compare, so the common case
/// (siblings) costs one integer compare per shared prefix step at most.
fn cmp_chain(arena: &[BeamNode], a: u32, b: u32) -> Ordering {
    if a == b {
        return Ordering::Equal; // same node, or both NO_PARENT roots
    }
    // Depths are equal by construction (same lattice step), so neither
    // side can run out of chain before the other.
    let (na, nb) = (&arena[a as usize], &arena[b as usize]);
    match cmp_chain(arena, na.parent, nb.parent) {
        Ordering::Equal => na.local.cmp(&nb.local),
        other => other,
    }
}

/// Path order of two pending children (own shot breaks parent-chain ties).
fn cmp_paths(arena: &[BeamNode], a: &BeamNode, b: &BeamNode) -> Ordering {
    match cmp_chain(arena, a.parent, b.parent) {
        Ordering::Equal => a.local.cmp(&b.local),
        other => other,
    }
}

/// The retrieval engine: an [`Hmmm`] plus its catalog.
pub struct Retriever<'a> {
    model: &'a Hmmm,
    catalog: &'a Catalog,
    config: RetrievalConfig,
}

impl<'a> Retriever<'a> {
    /// Creates a retriever after validating model/catalog consistency.
    ///
    /// # Errors
    ///
    /// [`CoreError::Inconsistent`] if the model was not built from (an
    /// equal-shape) catalog.
    pub fn new(
        model: &'a Hmmm,
        catalog: &'a Catalog,
        config: RetrievalConfig,
    ) -> Result<Self, CoreError> {
        model.validate_against(catalog)?;
        Ok(Retriever {
            model,
            catalog,
            config,
        })
    }

    /// Runs the nine-step retrieval for `pattern`, returning the top
    /// `limit` candidates (Step 9) and the work counters.
    ///
    /// # Examples
    ///
    /// Querying `free_kick -> goal` over the §4.2.1.1 three-shot video: the
    /// Eqs.-12/13 lattice walk must find the `shot 0 → shot 1` path (the
    /// free kick that leads to the annotated goal), scored by Eq. 15:
    ///
    /// ```
    /// use hmmm_core::{build_hmmm, BuildConfig, RetrievalConfig, Retriever};
    /// use hmmm_features::{FeatureId, FeatureVector};
    /// use hmmm_media::EventKind;
    /// use hmmm_query::QueryTranslator;
    /// use hmmm_storage::Catalog;
    ///
    /// # fn feat(grass: f64, volume: f64) -> FeatureVector {
    /// #     let mut f = FeatureVector::zeros();
    /// #     f[FeatureId::GrassRatio] = grass;
    /// #     f[FeatureId::VolumeMean] = volume;
    /// #     f
    /// # }
    /// let mut catalog = Catalog::new();
    /// catalog.add_video("v1", vec![
    ///     (vec![EventKind::FreeKick], feat(0.3, 0.2)),
    ///     (vec![EventKind::FreeKick, EventKind::Goal], feat(0.8, 0.9)),
    ///     (vec![EventKind::CornerKick], feat(0.5, 0.4)),
    /// ]);
    /// let model = build_hmmm(&catalog, &BuildConfig::default()).unwrap();
    ///
    /// let translator = QueryTranslator::new(EventKind::ALL.iter().map(|k| k.name()));
    /// let pattern = translator.compile("free_kick -> goal").unwrap();
    ///
    /// let retriever = Retriever::new(&model, &catalog, RetrievalConfig::default()).unwrap();
    /// let (results, stats) = retriever.retrieve(&pattern, 5).unwrap();
    ///
    /// assert!(!results.is_empty());
    /// let best = &results[0];
    /// assert_eq!(best.shots.len(), 2);                     // one shot per step
    /// assert!(best.score > 0.0);                           // SS = Σ w_j (Eq. 15)
    /// assert!(stats.total_sim_evaluations() > 0);          // Eq.-14 work was counted
    /// ```
    ///
    /// # Errors
    ///
    /// [`CoreError::BadQuery`] for an empty pattern or out-of-range event
    /// indices.
    pub fn retrieve(
        &self,
        pattern: &CompiledPattern,
        limit: usize,
    ) -> Result<(Vec<RankedPattern>, RetrievalStats), CoreError> {
        self.retrieve_within(pattern, limit, None)
    }

    /// Like [`Retriever::retrieve`], but restricted to a subset of videos —
    /// the hook for level-3 category pre-filtering
    /// ([`crate::cluster::CategoryLevel::eligible_videos`]). `None` searches
    /// the whole archive.
    ///
    /// # Errors
    ///
    /// Same as [`Retriever::retrieve`].
    pub fn retrieve_within(
        &self,
        pattern: &CompiledPattern,
        limit: usize,
        videos: Option<&[VideoId]>,
    ) -> Result<(Vec<RankedPattern>, RetrievalStats), CoreError> {
        self.retrieve_scratched(pattern, limit, videos, None)
    }

    /// [`Retriever::retrieve`] drawing its traversal buffers from a
    /// caller-owned [`QueryScratch`] instead of allocating fresh arenas:
    /// the long-lived-server hot path, where one worker thread answers a
    /// stream of queries serially (`threads = 1`) and the beam/scoring
    /// buffers should be paid for once, not once per query. Rankings and
    /// stats are byte-identical to [`Retriever::retrieve`].
    ///
    /// # Errors
    ///
    /// Same as [`Retriever::retrieve`].
    pub fn retrieve_with_scratch(
        &self,
        pattern: &CompiledPattern,
        limit: usize,
        scratch: &mut QueryScratch,
    ) -> Result<(Vec<RankedPattern>, RetrievalStats), CoreError> {
        self.retrieve_scratched(pattern, limit, None, Some(&mut scratch.inner))
    }

    /// The shared body of every retrieve entry point; `scratch` is the
    /// optional caller-owned arena (serial path only — parallel workers
    /// own per-thread arenas scoped to the call).
    fn retrieve_scratched(
        &self,
        pattern: &CompiledPattern,
        limit: usize,
        videos: Option<&[VideoId]>,
        scratch: Option<&mut TraversalScratch>,
    ) -> Result<(Vec<RankedPattern>, RetrievalStats), CoreError> {
        if pattern.is_empty() {
            return Err(CoreError::BadQuery("empty pattern".into()));
        }
        for step in &pattern.steps {
            if step.alternatives.is_empty() {
                return Err(CoreError::BadQuery("step with no alternatives".into()));
            }
            if let Some(&bad) = step
                .alternatives
                .iter()
                .find(|&&e| e >= EventKind::COUNT)
            {
                return Err(CoreError::BadQuery(format!(
                    "event index {bad} out of range"
                )));
            }
        }

        let obs = &self.config.recorder;
        let root_span = obs.span(m::SPAN_RETRIEVE);
        let mut stats = RetrievalStats::default();
        let requested_threads = self.requested_threads();

        // Anytime-retrieval budget: the clock starts here, so the cache
        // build and bound derivation below draw from the same budget as
        // the traversal. (No clock read at all when no deadline is set.)
        let deadline = self.config.deadline.map(|d| (d, Instant::now()));

        // Tentpole layer 1: one dense shots × query-events scoring pass,
        // shared read-only by every traversal worker. The build itself
        // shards the shot dimension across the same worker budget.
        //
        // The build pays for itself only when traversal is similarity-bound:
        // content-driven candidate selection scores every reachable shot
        // through Eq. (14), so the dense pass trades ~1 evaluation per cell
        // for many 2-pass direct calls. Annotation-first traversal is
        // annotation-bound — it scores so few shots that the build would
        // dominate the whole query — so the cache is skipped there.
        let similarity_bound = !self.config.annotated_first;
        let cache = (self.config.use_sim_cache && similarity_bound).then(|| {
            let _build_span = obs.span(m::SPAN_SIM_CACHE_BUILD);
            SimCache::build_with_threads(self.model, pattern, requested_threads)
        });
        let scorer = match &cache {
            Some(c) => {
                stats.cache_build_evaluations += c.build_evaluations();
                Scorer::Cached(c)
            }
            None => Scorer::Direct(self.model),
        };

        // Coarse stage (this PR's tentpole, `CoarseMode::Exact`/`Approx`):
        // candidate videos from the ingest-time inverted `B_2` postings,
        // each carrying an admissible upper bound derived from the
        // precomputed summaries — table lookups, not shot scans. Runs
        // before the prune context so the bounds can replace the
        // archive-wide scan on the cold (cache-off) path.
        let coarse_stage = (self.config.coarse != CoarseMode::Off).then(|| {
            let _coarse_span = obs.span(m::SPAN_COARSE);
            self.coarse_stage(pattern, videos, &mut stats)
        });

        // Tentpole layer 3: the exact top-k threshold cut. One shared
        // register holds the running k-th best score; admissible completion
        // bounds feed the three exact prune sites (see the module docs).
        // With the cache up the bounds are derived per video at traversal
        // time (tighter, free table reads); with the coarse stage up they
        // were already derived from the index summaries above; otherwise
        // one archive scan per unique event builds a shared set here,
        // charged to `bound_evaluations`.
        let prune_ctx = (self.config.prune && limit <= PRUNE_LIMIT_CAP).then(|| {
            let bounds = match (&scorer, &coarse_stage) {
                (Scorer::Cached(_), _) => PruneBounds::PerVideo,
                (Scorer::Direct(_), Some(stage)) => PruneBounds::Coarse(stage.bounds.clone()),
                (Scorer::Direct(model), None) => {
                    let mut memo: [Option<f64>; EventKind::COUNT] = [None; EventKind::COUNT];
                    let mut step_max = Vec::with_capacity(pattern.steps.len());
                    for step in &pattern.steps {
                        let mut best = 0.0f64;
                        for &e in &step.alternatives {
                            let me = match memo[e] {
                                Some(v) => v,
                                None => {
                                    stats.bound_evaluations += model.shot_count() as u64;
                                    let v = max_calibrated_similarity(model, e);
                                    memo[e] = Some(v);
                                    v
                                }
                            };
                            best = best.max(me);
                        }
                        step_max.push(best);
                    }
                    PruneBounds::Archive(QueryBounds::new(step_max))
                }
            };
            (SharedTopK::new(limit), bounds)
        });

        let order = match coarse_stage {
            // Coarse on: candidates already enumerated (postings union) and
            // ordered (bound desc). Visit order only affects counters — the
            // final ranking is re-sorted under a total order below.
            Some(stage) => stage.order,
            None => {
                let _order_span = obs.span(m::SPAN_VIDEO_ORDER);
                self.video_order(pattern, videos, &mut stats)
            }
        };
        let threads = requested_threads.min(order.len().max(1));

        // Tentpole layer 2: fan the per-video traversals across a scoped
        // worker pool. Each video's traversal depends only on (model,
        // catalog, pattern, config, video), each worker owns its results
        // and stats, and the merge below is a commutative fold + total-order
        // sort — so the ranking is byte-identical to the serial path.
        //
        // Observability stays off the per-transition hot path: workers batch
        // counts in their local `RetrievalStats` and everything is flushed to
        // the recorder once, below. Only the per-worker/per-video spans (and
        // the busy-time sum feeding the utilization gauge) touch the clock,
        // and only when a recorder is attached.
        let mut candidates: Vec<RankedPattern> = Vec::new();
        let traverse_span = obs.span(m::SPAN_TRAVERSE);
        let mut workers_busy_ns: u64 = 0;
        if threads <= 1 {
            // Serial path: draw from the caller's reusable arena when one
            // was provided (the serving hot path), else a call-local one.
            let mut local_scratch;
            let scratch = match scratch {
                Some(s) => s,
                None => {
                    local_scratch = TraversalScratch::default();
                    &mut local_scratch
                }
            };
            candidates = self.run_video_set(
                &order, pattern, &scorer, &prune_ctx, deadline, scratch, &mut stats,
            );
        } else {
            let chunk = order.len().div_ceil(threads);
            crossbeam::thread::scope(|s| {
                let scorer = &scorer;
                let prune_ctx = &prune_ctx;
                let handles: Vec<_> = order
                    .chunks(chunk)
                    .enumerate()
                    .map(|(w, videos)| {
                        s.spawn(move || {
                            let worker_span =
                                self.config.recorder.span_labeled(m::SPAN_WORKER, w as u64);
                            let mut local = RetrievalStats::default();
                            // One scratch per scoped worker: recycled
                            // across this worker's videos, dropped at join
                            // (a caller-owned arena cannot be shared
                            // across workers).
                            let mut scratch = TraversalScratch::default();
                            let found = self.run_video_set(
                                videos, pattern, scorer, prune_ctx, deadline, &mut scratch,
                                &mut local,
                            );
                            let busy_ns = worker_span.elapsed_ns();
                            (found, local, busy_ns)
                        })
                    })
                    .collect();
                for handle in handles {
                    // Worker-level panics can no longer originate in a
                    // traversal (those are caught per video inside
                    // `run_video_set`); anything reaching here is a bug in
                    // the harness itself and should propagate.
                    let (found, local, busy_ns) =
                        handle.join().expect("retrieval worker panicked");
                    candidates.extend(found);
                    stats.merge(local);
                    workers_busy_ns += busy_ns;
                }
            });
        }
        let traverse_wall_ns = traverse_span.elapsed_ns();
        drop(traverse_span);

        stats.candidates_scored = candidates.len();
        {
            let _rank_span = obs.span(m::SPAN_RANK);
            candidates.sort_by(rank_order);
            candidates.truncate(limit);
        }

        // Degradation summary: payloads sorted so parallel runs report
        // deterministically, then one canonical `Degraded` for callers to
        // branch on (None = the ranking is the complete exact answer).
        stats.panic_payloads.sort();
        stats.degraded = match (stats.deadline_expired, stats.videos_failed > 0) {
            (false, false) => None,
            (true, false) => Some(Degraded {
                videos_unvisited: stats.videos_unvisited,
                videos_failed: 0,
                reason: DegradedReason::DeadlineExpired,
            }),
            (false, true) => Some(Degraded {
                videos_unvisited: 0,
                videos_failed: stats.videos_failed,
                reason: DegradedReason::WorkerPanic,
            }),
            (true, true) => Some(Degraded {
                videos_unvisited: stats.videos_unvisited,
                videos_failed: stats.videos_failed,
                reason: DegradedReason::DeadlineAndPanic,
            }),
        };

        if obs.is_enabled() {
            self.flush_metrics(
                &stats,
                candidates.len(),
                cache.is_some(),
                similarity_bound,
                threads,
                traverse_wall_ns,
                workers_busy_ns,
                prune_ctx.as_ref().map(|(register, _)| register.threshold()),
            );
            obs.observe_ns(m::HIST_RETRIEVE_LATENCY, root_span.elapsed_ns());
        }
        Ok((candidates, stats))
    }

    /// One worker's share of the fan-out: the per-video loop with its
    /// deadline checkpoints, the panic-isolation boundary, and the
    /// post-traversal threshold offers. Shared verbatim by the serial path
    /// and every parallel worker, so serial and parallel runs degrade (and
    /// stay byte-identical when nothing fires) the same way.
    #[allow(clippy::too_many_arguments)]
    fn run_video_set(
        &self,
        videos: &[VideoId],
        pattern: &CompiledPattern,
        scorer: &Scorer<'_>,
        prune_ctx: &Option<(SharedTopK, PruneBounds)>,
        deadline: Option<(DeadlineConfig, Instant)>,
        // One scratch per worker, recycled across its videos (and, through
        // [`QueryScratch`], across a serving worker's queries): beam arenas
        // and blocked-scoring rows grow to the largest video once and are
        // then reused, so the traversal hot path stops allocating.
        scratch: &mut TraversalScratch,
        stats: &mut RetrievalStats,
    ) -> Vec<RankedPattern> {
        let mut clock = deadline.map(|(config, started)| DeadlineClock::new(config, started));
        let mut results = Vec::new();
        for (i, &video) in videos.iter().enumerate() {
            // Deadline checkpoint (video granularity): once the budget has
            // elapsed, stop admitting new videos — everything not yet
            // admitted in this worker's share is reported unvisited.
            if let Some(c) = clock.as_mut() {
                if c.check_now() {
                    stats.deadline_expired = true;
                    stats.videos_unvisited += videos.len() - i;
                    break;
                }
            }

            // Panic isolation: one video's traversal cannot take down the
            // query. `AssertUnwindSafe` audit of what crosses the boundary:
            //
            // * `self` (model + catalog + config) — shared immutably; the
            //   traversal never mutates them, so no broken invariant can be
            //   observed after an unwind.
            // * `scorer` — read-only table/model reads.
            // * `prune_ctx`'s `SharedTopK` — lock-free; every update is a
            //   single CAS that installs a complete value, so a panicking
            //   thread can never leave it mid-update. Threshold offers for
            //   this video happen *below, after* the boundary: a panic
            //   mid-traversal therefore cannot have raised the threshold
            //   with a score whose candidate was then lost — every raise
            //   corresponds to a candidate that safely escaped, keeping the
            //   bound admissible for all surviving videos (acceptance
            //   criterion: the degraded ranking is exact over survivors).
            // * `clock` (`&mut`) — plain scalar fields; a partial tick is
            //   at worst a deferred clock read, never an inconsistency.
            // * `scratch` (`&mut`) — the reusable traversal buffers. An
            //   unwind can leave them holding a half-built beam, but their
            //   contents are garbage *between videos by design*: every
            //   consumer clears them at traversal entry, so the next video
            //   observes no state from the failed one.
            // * `attempt` stats — created inside the closure and discarded
            //   on unwind, so a failed video contributes no torn counters.
            // * the recorder — its sinks are `Sync` and poison-safe at this
            //   boundary: the per-video span guard dropped during unwind
            //   records through a short, panic-free critical section.
            let clock_ref = clock.as_mut();
            let scratch_ref = &mut *scratch;
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                self.config.fault.on_video_enter(video.index());
                let mut attempt = RetrievalStats::default();
                let found = self.traverse_video_bounded(
                    video, pattern, scorer, prune_ctx, clock_ref, scratch_ref, &mut attempt,
                );
                (found, attempt)
            }));
            match outcome {
                Ok((found, attempt)) => {
                    stats.merge(attempt);
                    // Exact prune site 3, offer half (the emission filter
                    // runs inside `traverse_video`): every emitted score is
                    // offered so later videos prune against the best
                    // results found anywhere. Sits after the catch_unwind
                    // boundary — see the audit above.
                    if let Some((register, _)) = prune_ctx {
                        for c in &found {
                            if register.offer(c.score) {
                                stats.threshold_raises += 1;
                            }
                        }
                    }
                    results.extend(found);
                }
                Err(payload) => {
                    stats.videos_failed += 1;
                    stats
                        .panic_payloads
                        .push(panic_message(video, payload.as_ref()));
                }
            }
        }
        results
    }

    /// Flushes one query's batched counters and gauges to the recorder.
    /// Called once per retrieve, and only when a recorder is attached — the
    /// hot loops never touch the handle directly.
    #[allow(clippy::too_many_arguments)]
    fn flush_metrics(
        &self,
        stats: &RetrievalStats,
        results_returned: usize,
        cache_built: bool,
        similarity_bound: bool,
        threads: usize,
        traverse_wall_ns: u64,
        workers_busy_ns: u64,
        prune_threshold: Option<f64>,
    ) {
        let obs = &self.config.recorder;
        obs.counter(m::CTR_QUERIES, 1);
        obs.counter(m::CTR_VIDEOS_VISITED, stats.videos_visited as u64);
        obs.counter(m::CTR_VIDEOS_SKIPPED, stats.videos_skipped as u64);
        obs.counter(m::CTR_TRANSITIONS, stats.transitions_examined);
        obs.counter(m::CTR_CANDIDATES, stats.candidates_scored as u64);
        obs.counter(m::CTR_RESULTS, results_returned as u64);
        obs.counter(m::CTR_SIM_DIRECT_EVALS, stats.sim_evaluations);
        obs.counter(m::CTR_CACHE_BUILD_EVALS, stats.cache_build_evaluations);
        obs.counter(m::CTR_CACHE_LOOKUPS, stats.cache_lookups);
        obs.counter(
            m::CTR_VIDEOS_SKIPPED_BY_BOUND,
            stats.videos_skipped_by_bound as u64,
        );
        obs.counter(m::CTR_ENTRIES_PRUNED, stats.entries_pruned);
        obs.counter(m::CTR_THRESHOLD_RAISES, stats.threshold_raises);
        obs.counter(m::CTR_BOUND_EVALS, stats.bound_evaluations);
        obs.counter(m::CTR_VIDEOS_FAILED, stats.videos_failed as u64);
        obs.counter(m::CTR_VIDEOS_UNVISITED, stats.videos_unvisited as u64);
        obs.counter(m::CTR_BEAMS_ABANDONED, stats.beams_abandoned);
        if self.config.coarse != CoarseMode::Off {
            obs.counter(m::CTR_COARSE_CANDIDATES, stats.coarse_candidates as u64);
            obs.counter(m::CTR_COARSE_CUT, stats.coarse_cut as u64);
            obs.counter(m::CTR_COARSE_ZERO_UB, stats.coarse_skipped_zero_ub as u64);
            obs.counter(m::CTR_COARSE_LOOKUPS, stats.coarse_bound_lookups);
        }
        if stats.deadline_expired {
            obs.counter(m::CTR_DEADLINE_EXPIRED, 1);
        }
        if let Some(threshold) = prune_threshold {
            obs.gauge(m::GAUGE_PRUNE_THRESHOLD, threshold);
        }
        if cache_built {
            obs.counter(m::CTR_CACHE_BUILDS, 1);
        } else if similarity_bound {
            obs.counter(m::CTR_CACHE_BYPASSED_QUERIES, 1);
        } else {
            obs.counter(m::CTR_CACHE_REGIME_SKIPPED_QUERIES, 1);
        }
        obs.gauge(m::GAUGE_THREADS, threads as f64);
        let utilization = if threads <= 1 {
            1.0
        } else if traverse_wall_ns == 0 {
            0.0
        } else {
            workers_busy_ns as f64 / (traverse_wall_ns as f64 * threads as f64)
        };
        obs.gauge(m::GAUGE_THREAD_UTILIZATION, utilization);
    }

    /// The configured worker budget (`None` = all available cores).
    fn requested_threads(&self) -> usize {
        match self.config.threads {
            Some(t) => t.max(1),
            None => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }

    /// Step 2 / Step 7: eligible videos in `Π_2` affinity order.
    ///
    /// The seed implementation realised "Π_2 then A_2 affinity" as a greedy
    /// chain — start at the `Π_2`-preferred video, then repeatedly hop to
    /// the unvisited video with the highest `A_2` affinity from the current
    /// one — which is O(V²) and was the dominant cost on large archives.
    /// Since every eligible video is traversed and the final ranking is
    /// re-sorted under a total order, visit order only affects scheduling,
    /// not results; a direct sort by (`Π_2` desc, index asc) preserves the
    /// paper's "most-affine first" intent at O(V log V).
    fn video_order(
        &self,
        pattern: &CompiledPattern,
        subset: Option<&[VideoId]>,
        stats: &mut RetrievalStats,
    ) -> Vec<VideoId> {
        let first_alts = &pattern.steps[0].alternatives;
        let candidates: Vec<usize> = match subset {
            Some(videos) => videos
                .iter()
                .map(|v| v.index())
                .filter(|&v| v < self.model.video_count())
                .collect(),
            None => (0..self.model.video_count()).collect(),
        };
        let eligible: Vec<usize> = candidates
            .into_iter()
            .filter(|&v| {
                if !self.config.require_first_event {
                    return true;
                }
                let has = first_alts.iter().any(|&e| self.model.b2[v][e] > 0);
                if !has {
                    stats.videos_skipped += 1;
                }
                has
            })
            .collect();

        let mut order = eligible;
        order.sort_by(|&a, &b| {
            crate::order::cmp_f64_desc(self.model.pi2.get(a), self.model.pi2.get(b))
                .then_with(|| a.cmp(&b))
        });
        order.into_iter().map(VideoId).collect()
    }

    /// The coarse stage ([`CoarseMode::Exact`]/[`CoarseMode::Approx`]):
    /// Step-2 candidate enumeration from the inverted `B_2` postings and
    /// admissible per-video bounds from the ingest-time summaries — table
    /// lookups only, no `B_2` row scan, no archive-wide Eq.-14 scan.
    ///
    /// Exactness bookkeeping vs the single-stage path:
    ///
    /// * Candidate set: the postings union over the first step's
    ///   alternatives is *definitionally* the set passing the `B_2`
    ///   first-event check, so `videos_skipped` is charged the identical
    ///   count. An explicit `subset` keeps the per-video row check (the
    ///   postings index the whole archive, not arbitrary subsets).
    /// * Zero-bound skip: a coarse upper bound of exactly zero proves
    ///   `Π_1(s) · sim(s, e) = 0` for every shot and first-step
    ///   alternative, and start admission requires `w > 0` — the video
    ///   cannot emit a candidate, so skipping it is exact even with
    ///   pruning off.
    /// * Order (bound desc, index asc — a total order) only affects
    ///   scheduling and timing-dependent counters, never the ranking.
    fn coarse_stage(
        &self,
        pattern: &CompiledPattern,
        subset: Option<&[VideoId]>,
        stats: &mut RetrievalStats,
    ) -> CoarseStage {
        let coarse = &self.model.coarse;
        let video_count = self.model.video_count();
        let first_alts = &pattern.steps[0].alternatives;
        let candidates: Vec<usize> = match subset {
            Some(videos) => videos
                .iter()
                .map(|v| v.index())
                .filter(|&v| v < video_count)
                .filter(|&v| {
                    if !self.config.require_first_event {
                        return true;
                    }
                    let has = first_alts.iter().any(|&e| self.model.b2[v][e] > 0);
                    if !has {
                        stats.videos_skipped += 1;
                    }
                    has
                })
                .collect(),
            None if self.config.require_first_event => {
                let mut union: Vec<usize> = first_alts
                    .iter()
                    .flat_map(|&e| coarse.postings(e).iter().map(|&v| v as usize))
                    .collect();
                union.sort_unstable();
                union.dedup();
                stats.videos_skipped += video_count - union.len();
                union
            }
            None => (0..video_count).collect(),
        };

        let lookups = crate::coarse::CoarseIndex::bound_lookups(pattern);
        let mut scored: Vec<(usize, VideoBounds)> = Vec::with_capacity(candidates.len());
        for v in candidates {
            let local = &self.model.locals[v];
            stats.coarse_bound_lookups += lookups;
            let vb = coarse.video_bounds(v, local, pattern);
            if vb.video_ub() <= 0.0 {
                stats.coarse_skipped_zero_ub += 1;
                continue;
            }
            scored.push((v, vb));
        }
        scored.sort_by(|a, b| {
            crate::order::cmp_f64_desc(a.1.video_ub(), b.1.video_ub())
                .then_with(|| a.0.cmp(&b.0))
        });
        // Approx cut: the order above is total, so cuts at increasing `C`
        // are nested prefixes — recall@k is deterministically monotone in
        // `C` (the E13 frontier).
        if self.config.coarse == CoarseMode::Approx && scored.len() > self.config.coarse_candidates
        {
            stats.coarse_cut = scored.len() - self.config.coarse_candidates;
            scored.truncate(self.config.coarse_candidates);
        }
        stats.coarse_candidates = scored.len();
        let mut bounds: Vec<Option<VideoBounds>> = vec![None; video_count];
        let order = scored
            .into_iter()
            .map(|(v, vb)| {
                bounds[v] = Some(vb);
                VideoId(v)
            })
            .collect();
        CoarseStage { order, bounds }
    }

    /// [`Retriever::traverse_video`] behind the whole-video bound check
    /// (exact prune site 1): a video whose admissible upper bound falls
    /// strictly below the shared threshold cannot contribute to the
    /// top-`limit` prefix and is skipped before any traversal work.
    #[allow(clippy::too_many_arguments)]
    fn traverse_video_bounded(
        &self,
        video: VideoId,
        pattern: &CompiledPattern,
        scorer: &Scorer<'_>,
        prune_ctx: &Option<(SharedTopK, PruneBounds)>,
        clock: Option<&mut DeadlineClock>,
        scratch: &mut TraversalScratch,
        stats: &mut RetrievalStats,
    ) -> Vec<RankedPattern> {
        match prune_ctx {
            Some((register, bounds)) => {
                let local = &self.model.locals[video.index()];
                let video_bounds = match (bounds, scorer) {
                    (PruneBounds::Archive(query_bounds), _) => query_bounds.for_video(local),
                    // Coarse stage already derived this video's admissible
                    // bound from the index summaries; `None` means the
                    // stage never admitted it (can only happen if the
                    // visit order and the bound table disagree — skip).
                    (PruneBounds::Coarse(table), _) => {
                        match table.get(video.index()).and_then(Clone::clone) {
                            Some(vb) => vb,
                            None => return Vec::new(),
                        }
                    }
                    (PruneBounds::PerVideo, Scorer::Cached(cache)) => {
                        match self.per_video_bounds(video, pattern, cache, scratch) {
                            Some(vb) => vb,
                            None => return Vec::new(), // empty/unknown video
                        }
                    }
                    // PerVideo is only constructed alongside a cached
                    // scorer; fall back to an unpruned traversal rather
                    // than panic if that invariant ever breaks.
                    (PruneBounds::PerVideo, Scorer::Direct(_)) => {
                        return self
                            .traverse_video(video, pattern, scorer, None, clock, scratch, stats)
                    }
                };
                if video_bounds.video_ub() < register.threshold() {
                    stats.videos_skipped_by_bound += 1;
                    return Vec::new();
                }
                self.traverse_video(
                    video,
                    pattern,
                    scorer,
                    Some((register, &video_bounds)),
                    clock,
                    scratch,
                    stats,
                )
            }
            None => self.traverse_video(video, pattern, scorer, None, clock, scratch, stats),
        }
    }

    /// Per-video admissible bounds read from the query cache: step maxima
    /// over *this video's* shot range, plus the exact whole-video bound
    /// fold `max_s Π_1(s) · sim(s, step 0) · (1 + a1_row_max[s] · chain_0)`
    /// — all pure table reads, all far tighter than the archive-wide
    /// fallback on videos that barely exhibit the queried events (which is
    /// exactly where the skip pays).
    /// `None` for empty or unknown videos (nothing to traverse anyway).
    fn per_video_bounds(
        &self,
        video: VideoId,
        pattern: &CompiledPattern,
        cache: &SimCache,
        scratch: &mut TraversalScratch,
    ) -> Option<VideoBounds> {
        let record = self.catalog.video(video)?;
        let range = record.shot_range.clone();
        if range.is_empty() {
            return None;
        }
        let local = &self.model.locals[video.index()];
        let mut memo: [Option<f64>; EventKind::COUNT] = [None; EventKind::COUNT];
        let step_max: Vec<f64> = pattern
            .steps
            .iter()
            .map(|step| {
                step.alternatives
                    .iter()
                    .map(|&e| match memo.get(e).copied().flatten() {
                        Some(v) => v,
                        None => {
                            let v = cache.max_calibrated_in(range.clone(), e);
                            if let Some(slot) = memo.get_mut(e) {
                                *slot = Some(v);
                            }
                            v
                        }
                    })
                    .fold(0.0, f64::max)
            })
            .collect();
        let vb = QueryBounds::new(step_max).for_video(local);
        let chain0 = vb.chain0();
        let first_alts = &pattern.steps[0].alternatives;
        // Event-outer best-sim sweep over the cache's contiguous slot-major
        // rows, reusing the worker's scratch row. Per shot this folds the
        // same scores with the same `f64::max` in the same event order as
        // the old shot-outer loop (rows absent from the cache are all-zero
        // and fold to a no-op), so the resulting bound is bit-identical.
        let best = &mut scratch.best_score;
        best.clear();
        best.resize(range.len(), 0.0);
        for &e in first_alts {
            if let Some(row) = cache.calibrated_range(range.clone(), e) {
                for (b, &v) in best.iter_mut().zip(row.iter()) {
                    *b = b.max(v);
                }
            }
        }
        let raw_ub = best
            .iter()
            .enumerate()
            .map(|(s, &sim)| local.pi1.get(s) * sim * (1.0 + local.a1_row_max[s] * chain0))
            .fold(0.0, f64::max);
        Some(vb.with_video_ub(raw_ub))
    }

    /// Steps 3–6 for one video: beam traversal of the Figure-3 lattice,
    /// arena-backed (buffers recycled across videos via the worker's
    /// [`TraversalScratch`]), with the exact-safe threshold cuts (sites 2
    /// and 3 of the module docs) when `prune` carries the shared register.
    #[allow(clippy::too_many_arguments)]
    fn traverse_video(
        &self,
        video: VideoId,
        pattern: &CompiledPattern,
        scorer: &Scorer<'_>,
        prune: Option<(&SharedTopK, &VideoBounds)>,
        mut clock: Option<&mut DeadlineClock>,
        scratch: &mut TraversalScratch,
        stats: &mut RetrievalStats,
    ) -> Vec<RankedPattern> {
        let record = match self.catalog.video(video) {
            Some(r) => r,
            None => return Vec::new(),
        };
        let base = record.shot_range.start;
        let n = record.shot_count();
        if n == 0 {
            return Vec::new();
        }
        let _video_span = self
            .config
            .recorder
            .span_labeled(m::SPAN_VIDEO, video.index() as u64);
        stats.videos_visited += 1;
        let local = &self.model.locals[video.index()];
        let shots = self.catalog.shots_of_video(video);
        let steps_total = pattern.steps.len();

        // Trim survivors are the only nodes the arena ever holds, so it
        // tops out at beam_width × steps — paths, events and weights are
        // materialized from parent chains only for emitted candidates.
        // All buffers are the worker's recycled scratch; clearing at entry
        // (rather than trusting the previous video) also wipes anything a
        // panic-interrupted predecessor left behind.
        let TraversalScratch {
            arena,
            beam,
            pending,
            starts,
            block,
            best_score,
            best_event,
        } = scratch;
        arena.clear();
        arena.reserve(self.config.beam_width.max(1) * steps_total);
        beam.clear();
        pending.clear();
        starts.clear();

        // hmmm-lint: begin(traversal-hot-path)
        // Step 4 at j = 1: w_1 = Π_1(s_1) · sim(s_1, e_1)  (Eq. 12). Each
        // start candidate carries its (event, sim) from the selection scan —
        // the seed re-evaluated Eq. 14 on every fallback survivor and
        // double-charged the stats for it.
        let first_alts = &pattern.steps[0].alternatives;
        if self.config.annotated_first {
            for (s, shot) in shots.iter().enumerate() {
                if shot
                    .events
                    .iter()
                    .any(|&e| first_alts.contains(&e.index()))
                {
                    scorer.charge(stats);
                    let (event, sim) = scorer
                        .best_alternative(base + s, first_alts)
                        .expect("alternatives checked non-empty");
                    starts.push((s, event, sim));
                }
            }
        }
        if starts.is_empty() {
            // "…or similar to event e_j": fall back to the most similar
            // shots by features — scored for the whole video in one blocked
            // event-outer sweep instead of n per-shot dispatches. Same
            // scores, same earliest-alternative tie-break, same charge
            // totals as the scalar scan (see `best_alternative_block`).
            scorer.charge_block(stats, n as u64);
            scorer.best_alternative_block(
                record.shot_range.clone(),
                first_alts,
                block,
                best_score,
                best_event,
            );
            for (s, (&sim, &event)) in best_score.iter().zip(best_event.iter()).enumerate() {
                starts.push((s, event as usize, sim));
            }
            // Same width-cut trick as `trim_beam`: the comparator is a
            // strict total order (shot ids are unique), so selecting the
            // top `keep` in O(n) and sorting only that prefix yields the
            // byte-identical candidate list the seed's full sort produced.
            let cmp = |a: &(usize, usize, f64), b: &(usize, usize, f64)| {
                crate::order::cmp_f64_desc(a.2, b.2).then_with(|| a.0.cmp(&b.0))
            };
            let keep = self.config.max_start_candidates;
            if starts.len() > keep {
                if keep == 0 {
                    starts.clear();
                } else {
                    starts.select_nth_unstable_by(keep - 1, cmp);
                    starts.truncate(keep);
                }
            }
            starts.sort_by(cmp);
        }
        for &(s, event, sim) in starts.iter() {
            let w = local.pi1.get(s) * sim;
            if w > 0.0 {
                pending.push(BeamNode {
                    parent: NO_PARENT,
                    local: s as u32,
                    event: event as u32,
                    weight: w,
                    score: w,
                });
            }
        }
        trim_beam(pending, self.config.beam_width, arena);
        settle(pending, arena, beam);
        if beam.is_empty() {
            // hmmm-lint: allow(no-alloc-in-traversal) empty result, no heap
            return Vec::new();
        }
        if beam_is_hopeless(arena, beam, prune, 0, &local.a1_row_max, stats) {
            // hmmm-lint: allow(no-alloc-in-traversal) empty result, no heap
            return Vec::new();
        }

        // Steps 3–5 for j = 2..C: expand through A_1 (Eq. 13). Step 3 is
        // annotated-first: the traversal prefers shots *annotated as* e_j;
        // only when the video has none does it fall back to "or similar to
        // event e_j" over all reachable shots.
        for (j, step) in pattern.steps.iter().enumerate().skip(1) {
            self.config.fault.before_step(j);
            let step_has_annotation = self.config.annotated_first
                && (0..n).any(|s| {
                    shots[s]
                        .events
                        .iter()
                        .any(|&e| step.alternatives.contains(&e.index()))
                });
            pending.clear();
            for &idx in beam.iter() {
                // Deadline checkpoint (beam granularity, one clock read per
                // `check_interval` ticks): partial paths cannot be emitted,
                // so expiry abandons this video's beam whole — all-or-
                // nothing, like prune site 2, never a reordering.
                if let Some(c) = clock.as_deref_mut() {
                    if c.tick() {
                        stats.deadline_expired = true;
                        stats.beams_abandoned += 1;
                        // hmmm-lint: allow(no-alloc-in-traversal) empty result
                        return Vec::new();
                    }
                }
                let entry = arena[idx as usize];
                let from = entry.local as usize;
                // The admission tail shared by the sparse and dense walks:
                // annotation filter, same-shot rule, Eq.-13 edge weight,
                // child push. `a` is already known strictly positive here,
                // so both walks admit exactly the same transitions in the
                // same ascending-`to` order — identical beams either way.
                let admit =
                    |to: usize, a: f64, pending: &mut Vec<BeamNode>, stats: &mut RetrievalStats| {
                        let shot = &shots[to];
                        if step_has_annotation
                            && !shot
                                .events
                                .iter()
                                .any(|&e| step.alternatives.contains(&e.index()))
                        {
                            return;
                        }
                        if to == from
                            && !same_shot_revisit_ok(&shot.events, entry.event as usize, step)
                        {
                            return;
                        }
                        scorer.charge(stats);
                        let Some((event, sim)) =
                            scorer.best_alternative(base + to, &step.alternatives)
                        else {
                            return;
                        };
                        let w = entry.weight * a * sim;
                        if w <= 0.0 {
                            return;
                        }
                        pending.push(BeamNode {
                            parent: idx,
                            local: to as u32,
                            event: event as u32,
                            weight: w,
                            score: entry.score + w,
                        });
                    };
                match &local.a1_sparse {
                    // CSR walk: only the non-zero forward entries of row
                    // `from`, in ascending column order (so the `max_gap`
                    // early-break stays valid). The dense walk's `a <= 0`
                    // rejects are exactly the entries the CSR omits, so
                    // `transitions_examined` now counts real candidate
                    // edges rather than structural zeros.
                    Some(csr) => {
                        let (cols, vals) = csr.row(from);
                        for (&to, &a) in cols.iter().zip(vals.iter()) {
                            let to = to as usize;
                            if let Some(gap) = step.max_gap {
                                if to - from > gap {
                                    break;
                                }
                            }
                            stats.transitions_examined += 1;
                            admit(to, a, pending, stats);
                        }
                    }
                    // Dense fallback (forward density above the CSR
                    // threshold): scan the row as before.
                    None => {
                        for to in from..n {
                            if let Some(gap) = step.max_gap {
                                if to - from > gap {
                                    break;
                                }
                            }
                            stats.transitions_examined += 1;
                            let a = local.a1.get(from, to);
                            if a > 0.0 {
                                admit(to, a, pending, stats);
                            }
                        }
                    }
                }
            }
            trim_beam(pending, self.config.beam_width, arena);
            settle(pending, arena, beam);
            if beam.is_empty() {
                // hmmm-lint: allow(no-alloc-in-traversal) empty result
                return Vec::new();
            }
            if beam_is_hopeless(arena, beam, prune, j, &local.a1_row_max, stats) {
                // hmmm-lint: allow(no-alloc-in-traversal) empty result
                return Vec::new();
            }
        }
        // hmmm-lint: end(traversal-hot-path)

        // Step 6: the per-video candidates with Eq.-15 scores, materialized
        // from the arena. The path tie-break makes the cut at
        // `per_video_results` deterministic (and guarantees equal paths are
        // adjacent for the dedup).
        let mut finals: Vec<Candidate> = beam
            .iter()
            .map(|&idx| materialize(arena, idx))
            .collect();
        finals.sort_by(|a, b| {
            crate::order::cmp_f64_desc(a.score, b.score).then_with(|| a.path.cmp(&b.path))
        });
        finals.dedup_by(|a, b| a.path == b.path);
        finals.truncate(self.config.per_video_results);

        // Exact prune site 3, filter half: dropping a selected candidate
        // scoring strictly below the threshold cannot change the global
        // prefix (anything its removal pulls up ranks — and scores — below
        // it). The matching threshold *offers* live in `run_video_set`,
        // outside the panic-isolation boundary, so a traversal that
        // panics after this point can never have raised the shared
        // threshold with a score that then fails to escape.
        if let Some((register, _)) = prune {
            let threshold = register.threshold();
            let before = finals.len();
            finals.retain(|c| c.score >= threshold);
            stats.entries_pruned += (before - finals.len()) as u64;
        }

        finals
            .into_iter()
            .map(|c| RankedPattern {
                video,
                shots: c.path.iter().map(|&s| ShotId(base + s)).collect(),
                events: c.events,
                score: c.score,
                weights: c.weights,
            })
            .collect()
    }
}

/// A fully materialized per-video candidate (paths walked out of the arena).
struct Candidate {
    path: Vec<usize>,
    events: Vec<usize>,
    weights: Vec<f64>,
    score: f64,
}

/// Walks `idx`'s parent chain into root-first path/events/weights vectors.
fn materialize(arena: &[BeamNode], idx: u32) -> Candidate {
    let score = arena[idx as usize].score;
    let mut path = Vec::new();
    let mut events = Vec::new();
    let mut weights = Vec::new();
    let mut cursor = idx;
    loop {
        let node = &arena[cursor as usize];
        path.push(node.local as usize);
        events.push(node.event as usize);
        weights.push(node.weight);
        if node.parent == NO_PARENT {
            break;
        }
        cursor = node.parent;
    }
    path.reverse();
    events.reverse();
    weights.reverse();
    Candidate {
        path,
        events,
        weights,
        score,
    }
}

/// Appends the trimmed survivors to the arena and points `beam` at them.
fn settle(pending: &mut Vec<BeamNode>, arena: &mut Vec<BeamNode>, beam: &mut Vec<u32>) {
    beam.clear();
    for node in pending.drain(..) {
        beam.push(arena.len() as u32);
        arena.push(node);
    }
}

/// Exact prune site 2: `true` iff pruning is on, the threshold has settled
/// above zero, and *every* surviving beam entry's admissible completion
/// bound sits strictly below it — the all-or-nothing abandon. (Dropping a
/// strict subset would be inexact: the width trims downstream would
/// backfill entries the unpruned search cuts, and their descendants can
/// out-score the threshold. See the module docs.)
fn beam_is_hopeless(
    arena: &[BeamNode],
    beam: &[u32],
    prune: Option<(&SharedTopK, &VideoBounds)>,
    step: usize,
    row_max: &[f64],
    stats: &mut RetrievalStats,
) -> bool {
    let Some((register, video_bounds)) = prune else {
        return false;
    };
    let threshold = register.threshold();
    if threshold <= 0.0 {
        return false;
    }
    let hopeless = beam.iter().all(|&idx| {
        let node = &arena[idx as usize];
        let ub = video_bounds.entry_ub(node.score, node.weight, step, row_max[node.local as usize]);
        ub < threshold
    });
    if hopeless {
        stats.entries_pruned += beam.len() as u64;
    }
    hopeless
}

/// Same-shot continuation is allowed only when the shot carries *distinct*
/// annotation slots for the previous and current step (the paper's
/// `T_{s_m} ≤ T_{s_n}` with the double-annotation shots of §4.2.1.1).
fn same_shot_revisit_ok(
    events: &[EventKind],
    prev_event: usize,
    step: &hmmm_query::CompiledStep,
) -> bool {
    step.alternatives.iter().any(|&alt| {
        events.iter().any(|e| e.index() == alt)
            && (alt != prev_event || events.iter().filter(|e| e.index() == alt).count() >= 2)
    })
}

/// Renders a caught panic payload into a stable, greppable string for
/// [`RetrievalStats::panic_payloads`]. `panic!` with a message produces a
/// `String` (formatted) or `&'static str` (literal) payload; anything else
/// is reported opaquely rather than dropped.
fn panic_message(video: VideoId, payload: &(dyn std::any::Any + Send)) -> String {
    let msg = payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&'static str>().copied())
        .unwrap_or("<non-string panic payload>");
    format!("video {}: {msg}", video.index())
}

/// Total order on final candidates: score desc, then video asc, then shot
/// sequence asc. Strictness matters — with a partial order, equal-scored
/// candidates from different videos would rank by arrival order, which the
/// parallel merge does not preserve.
fn rank_order(a: &RankedPattern, b: &RankedPattern) -> Ordering {
    crate::order::cmp_f64_desc(a.score, b.score)
        .then_with(|| a.video.cmp(&b.video))
        .then_with(|| a.shots.cmp(&b.shots))
}

/// Width cut over pending children: keep the top `width` by
/// (weight desc, path asc), sorted, deduplicated by path.
///
/// The seed sorted the whole fan-out (O(n log n)) before truncating; the cut
/// is now `select_nth_unstable_by` (O(n) average) plus a sort of the
/// surviving prefix only. The comparator is the same total order, so the
/// surviving set and its order are byte-identical. Paths are unique by
/// construction — children are distinct `(parent, to)` pairs of parents with
/// distinct paths — so the path dedup never fires; if it ever would (the
/// prefix shows adjacent equal paths), the full-sort + dedup semantics of
/// the seed are restored verbatim rather than guessed at.
fn trim_beam(pending: &mut Vec<BeamNode>, width: usize, arena: &[BeamNode]) {
    let width = width.max(1);
    let cmp = |a: &BeamNode, b: &BeamNode| {
        crate::order::cmp_f64_desc(a.weight, b.weight).then_with(|| cmp_paths(arena, a, b))
    };
    if pending.len() > width {
        pending.select_nth_unstable_by(width - 1, cmp);
        pending[..width].sort_by(cmp);
        let prefix_has_dup = pending[..width]
            .windows(2)
            .any(|pair| cmp_paths(arena, &pair[0], &pair[1]) == Ordering::Equal);
        if prefix_has_dup {
            pending.sort_by(cmp);
            pending.dedup_by(|a, b| cmp_paths(arena, a, b) == Ordering::Equal);
        }
        pending.truncate(width);
    } else {
        pending.sort_by(cmp);
        pending.dedup_by(|a, b| cmp_paths(arena, a, b) == Ordering::Equal);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{build_hmmm, BuildConfig};
    use hmmm_features::{FeatureId, FeatureVector};
    use hmmm_query::QueryTranslator;

    fn feat(g: f64, v: f64, s3: f64) -> FeatureVector {
        let mut f = FeatureVector::zeros();
        f[FeatureId::GrassRatio] = g;
        f[FeatureId::VolumeMean] = v;
        f[FeatureId::Sub3Mean] = s3;
        f
    }

    /// Two videos; video 0 contains the free_kick → goal pattern, video 1
    /// only has a lone goal.
    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_video(
            "with-pattern",
            vec![
                (vec![], feat(0.5, 0.2, 0.1)),
                (vec![EventKind::FreeKick], feat(0.7, 0.25, 0.8)),
                (vec![], feat(0.5, 0.2, 0.1)),
                (vec![EventKind::Goal], feat(0.8, 0.9, 0.2)),
                (vec![EventKind::CornerKick], feat(0.75, 0.3, 0.7)),
            ],
        );
        c.add_video(
            "goal-only",
            vec![
                (vec![EventKind::Goal], feat(0.78, 0.88, 0.15)),
                (vec![], feat(0.5, 0.2, 0.1)),
            ],
        );
        c
    }

    fn translator() -> QueryTranslator {
        QueryTranslator::new(EventKind::ALL.iter().map(|k| k.name()))
    }

    #[test]
    fn finds_the_scripted_pattern() {
        let c = catalog();
        let model = build_hmmm(&c, &BuildConfig::default()).unwrap();
        let r = Retriever::new(&model, &c, RetrievalConfig::default()).unwrap();
        let pattern = translator().compile("free_kick -> goal").unwrap();
        let (results, stats) = r.retrieve(&pattern, 10).unwrap();
        assert!(!results.is_empty());
        let top = &results[0];
        assert_eq!(top.video, VideoId(0));
        assert_eq!(top.shots, vec![ShotId(1), ShotId(3)]);
        assert!(top.score > 0.0);
        assert!(stats.videos_visited >= 1);
    }

    #[test]
    fn b2_check_skips_videos_without_first_event() {
        let c = catalog();
        let model = build_hmmm(&c, &BuildConfig::default()).unwrap();
        let r = Retriever::new(&model, &c, RetrievalConfig::default()).unwrap();
        let pattern = translator().compile("corner_kick -> goal").unwrap();
        let (_, stats) = r.retrieve(&pattern, 10).unwrap();
        // Video 1 has no corner kick → skipped by the B2 check.
        assert_eq!(stats.videos_skipped, 1);
        assert_eq!(stats.videos_visited, 1);
    }

    #[test]
    fn single_event_query_ranks_annotated_shot_first() {
        let c = catalog();
        let model = build_hmmm(&c, &BuildConfig::default()).unwrap();
        let r = Retriever::new(&model, &c, RetrievalConfig::default()).unwrap();
        let pattern = translator().compile("goal").unwrap();
        let (results, _) = r.retrieve(&pattern, 10).unwrap();
        assert!(!results.is_empty());
        let shot = c.shot(results[0].shots[0]).unwrap();
        assert!(shot.events.contains(&EventKind::Goal));
    }

    #[test]
    fn gap_constraint_prunes_distant_matches() {
        let c = catalog();
        let model = build_hmmm(&c, &BuildConfig::default()).unwrap();
        let r = Retriever::new(&model, &c, RetrievalConfig::default()).unwrap();
        let bounded = translator().compile("free_kick ->[1] goal").unwrap();
        let (results, _) = r.retrieve(&bounded, 10).unwrap();
        // free_kick at local 1, goal at local 3: gap 2 > 1 → no match in
        // video 0 via annotations (similar-shot fallback may still score
        // something but never the (1,3) pair).
        assert!(results
            .iter()
            .all(|p| p.shots != vec![ShotId(1), ShotId(3)]));
    }

    #[test]
    fn empty_and_bad_queries_rejected() {
        let c = catalog();
        let model = build_hmmm(&c, &BuildConfig::default()).unwrap();
        let r = Retriever::new(&model, &c, RetrievalConfig::default()).unwrap();
        let empty = CompiledPattern { steps: vec![] };
        assert!(matches!(
            r.retrieve(&empty, 5),
            Err(CoreError::BadQuery(_))
        ));
        let bad = CompiledPattern {
            steps: vec![hmmm_query::CompiledStep {
                alternatives: vec![99],
                max_gap: None,
            }],
        };
        assert!(matches!(r.retrieve(&bad, 5), Err(CoreError::BadQuery(_))));
    }

    #[test]
    fn results_are_sorted_by_score() {
        let c = catalog();
        let model = build_hmmm(&c, &BuildConfig::default()).unwrap();
        let r = Retriever::new(&model, &c, RetrievalConfig::default()).unwrap();
        let pattern = translator().compile("goal").unwrap();
        let (results, _) = r.retrieve(&pattern, 10).unwrap();
        for pair in results.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
    }

    #[test]
    fn limit_truncates() {
        let c = catalog();
        let model = build_hmmm(&c, &BuildConfig::default()).unwrap();
        let r = Retriever::new(&model, &c, RetrievalConfig::default()).unwrap();
        let pattern = translator().compile("goal").unwrap();
        let (results, _) = r.retrieve(&pattern, 1).unwrap();
        assert_eq!(results.len(), 1);
    }

    #[test]
    fn greedy_is_subset_of_beam_quality() {
        let c = catalog();
        let model = build_hmmm(&c, &BuildConfig::default()).unwrap();
        let pattern = translator().compile("free_kick -> goal").unwrap();
        let greedy = Retriever::new(&model, &c, RetrievalConfig::paper_greedy()).unwrap();
        let beam = Retriever::new(&model, &c, RetrievalConfig::default()).unwrap();
        let (g, _) = greedy.retrieve(&pattern, 10).unwrap();
        let (b, _) = beam.retrieve(&pattern, 10).unwrap();
        // Beam search never returns a worse best-candidate than greedy.
        if let (Some(gt), Some(bt)) = (g.first(), b.first()) {
            assert!(bt.score >= gt.score - 1e-12);
        }
    }

    #[test]
    fn alternatives_match_either_event() {
        let c = catalog();
        let model = build_hmmm(&c, &BuildConfig::default()).unwrap();
        let r = Retriever::new(&model, &c, RetrievalConfig::default()).unwrap();
        let pattern = translator()
            .compile("free_kick|corner_kick -> goal")
            .unwrap();
        let (results, _) = r.retrieve(&pattern, 10).unwrap();
        assert!(!results.is_empty());
        let top = &results[0];
        let first_shot = c.shot(top.shots[0]).unwrap();
        assert!(
            first_shot.events.contains(&EventKind::FreeKick)
                || first_shot.events.contains(&EventKind::CornerKick)
        );
    }

    /// All retrieval config knobs that interact with the coarse stage, for
    /// the exactness tests below.
    fn coarse_grid_configs() -> Vec<RetrievalConfig> {
        let mut configs = Vec::new();
        for &annotated_first in &[true, false] {
            for &use_sim_cache in &[true, false] {
                for &prune in &[true, false] {
                    for &threads in &[1usize, 4] {
                        configs.push(RetrievalConfig {
                            annotated_first,
                            require_first_event: annotated_first,
                            use_sim_cache,
                            prune,
                            threads: Some(threads),
                            ..RetrievalConfig::default()
                        });
                    }
                }
            }
        }
        configs
    }

    #[test]
    fn coarse_exact_ranking_matches_coarse_off() {
        let c = catalog();
        let model = build_hmmm(&c, &BuildConfig::default()).unwrap();
        for query in ["free_kick -> goal", "goal", "free_kick|corner_kick -> goal"] {
            let pattern = translator().compile(query).unwrap();
            for base in coarse_grid_configs() {
                let off = Retriever::new(&model, &c, base.clone()).unwrap();
                let exact = Retriever::new(
                    &model,
                    &c,
                    base.clone().with_coarse(CoarseMode::Exact),
                )
                .unwrap();
                let (r_off, _) = off.retrieve(&pattern, 10).unwrap();
                let (r_exact, s_exact) = exact.retrieve(&pattern, 10).unwrap();
                assert_eq!(r_off, r_exact, "query {query:?} config {base:?}");
                assert!(s_exact.coarse_candidates > 0);
                assert_eq!(s_exact.coarse_cut, 0);
            }
        }
    }

    #[test]
    fn coarse_skip_counter_matches_b2_filter() {
        let c = catalog();
        let model = build_hmmm(&c, &BuildConfig::default()).unwrap();
        let pattern = translator().compile("corner_kick -> goal").unwrap();
        let off = Retriever::new(&model, &c, RetrievalConfig::default()).unwrap();
        let exact = Retriever::new(
            &model,
            &c,
            RetrievalConfig::default().with_coarse(CoarseMode::Exact),
        )
        .unwrap();
        let (_, s_off) = off.retrieve(&pattern, 10).unwrap();
        let (_, s_exact) = exact.retrieve(&pattern, 10).unwrap();
        // The postings union is definitionally the B2-eligible set, so the
        // skip counter is identical to the single-stage row scan's.
        assert_eq!(s_off.videos_skipped, s_exact.videos_skipped);
        assert_eq!(s_exact.videos_skipped, 1);
        assert_eq!(s_exact.coarse_candidates, 1);
    }

    #[test]
    fn coarse_replaces_archive_bound_scan_on_cold_path() {
        let c = catalog();
        let model = build_hmmm(&c, &BuildConfig::default()).unwrap();
        // Cold path: content-driven (cache-eligible) but cache disabled, so
        // single-stage pruning must pay the archive-wide bound scan...
        let cold = RetrievalConfig {
            use_sim_cache: false,
            ..RetrievalConfig::content_only()
        };
        let pattern = translator().compile("free_kick -> goal").unwrap();
        let off = Retriever::new(&model, &c, cold.clone()).unwrap();
        let (_, s_off) = off.retrieve(&pattern, 10).unwrap();
        assert!(s_off.bound_evaluations > 0);
        // ...while the coarse stage answers every bound from the index.
        let exact =
            Retriever::new(&model, &c, cold.with_coarse(CoarseMode::Exact)).unwrap();
        let (_, s_exact) = exact.retrieve(&pattern, 10).unwrap();
        assert_eq!(s_exact.bound_evaluations, 0);
        assert!(s_exact.coarse_bound_lookups > 0);
    }

    #[test]
    fn approx_cut_truncates_candidates_and_recall_is_monotone() {
        let c = catalog();
        let model = build_hmmm(&c, &BuildConfig::default()).unwrap();
        let pattern = translator().compile("goal").unwrap();
        let full = Retriever::new(&model, &c, RetrievalConfig::default())
            .unwrap()
            .retrieve(&pattern, 10)
            .unwrap()
            .0;
        let mut prev_recall = 0.0f64;
        for candidates in [1usize, 2, 4] {
            let cfg = RetrievalConfig {
                coarse: CoarseMode::Approx,
                coarse_candidates: candidates,
                ..RetrievalConfig::default()
            };
            let r = Retriever::new(&model, &c, cfg).unwrap();
            let (results, stats) = r.retrieve(&pattern, 10).unwrap();
            assert!(stats.coarse_candidates <= candidates);
            let hit = full
                .iter()
                .filter(|p| results.contains(p))
                .count();
            let recall = hit as f64 / full.len() as f64;
            assert!(recall >= prev_recall, "recall dropped at C={candidates}");
            prev_recall = recall;
        }
        // Both videos admit `goal`, so C=2 already recovers everything.
        assert_eq!(prev_recall, 1.0);
    }

    #[test]
    fn coarse_respects_explicit_video_subset() {
        let c = catalog();
        let model = build_hmmm(&c, &BuildConfig::default()).unwrap();
        let pattern = translator().compile("goal").unwrap();
        let cfg = RetrievalConfig::default().with_coarse(CoarseMode::Exact);
        let r = Retriever::new(&model, &c, cfg).unwrap();
        let (results, _) = r
            .retrieve_within(&pattern, 10, Some(&[VideoId(1)]))
            .unwrap();
        assert!(results.iter().all(|p| p.video == VideoId(1)));
    }

    #[test]
    fn coarse_config_serde_round_trips_and_tolerates_absence() {
        let cfg = RetrievalConfig {
            coarse: CoarseMode::Approx,
            coarse_candidates: 7,
            ..RetrievalConfig::default()
        };
        let json = serde_json::to_string(&cfg).unwrap();
        let back: RetrievalConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.coarse, CoarseMode::Approx);
        assert_eq!(back.coarse_candidates, 7);
        // Configs persisted before the coarse PR load single-stage.
        let legacy = serde_json::to_string(&RetrievalConfig::default()).unwrap();
        let stripped = legacy
            .replace(",\"coarse\":\"Off\"", "")
            .replace(",\"coarse_candidates\":16", "");
        assert!(stripped.len() < legacy.len(), "field strip failed: {legacy}");
        let back: RetrievalConfig = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.coarse, CoarseMode::Off);
        assert_eq!(back.coarse_candidates, 16);
    }
}
