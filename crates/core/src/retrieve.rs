//! The §5 temporal pattern retrieval process (Steps 1–9, Figures 2–3).
//!
//! Retrieval walks the hierarchy exactly as the paper's flowchart does:
//!
//! 1. order candidate videos by `Π_2` and `A_2` affinity, skipping videos
//!    whose `B_2` row lacks the pattern's first event (Step 2);
//! 2. inside each video, traverse the shot lattice (Figure 3): candidates
//!    for step `j+1` are *forward* shots reachable through `A_1`, scored by
//!    `w_{j+1} = w_j · A_1(s_j, s_{j+1}) · sim(s_{j+1}, e_{j+1})`
//!    (Eqs. 12–13);
//! 3. the per-video best path(s) become candidate patterns scored
//!    `SS = Σ_j w_j` (Eq. 15);
//! 4. all candidates are ranked and the top `limit` returned (Steps 8–9).
//!
//! The paper traverses greedily ("always tries to traverse the right
//! path"); [`RetrievalConfig::beam_width`] generalizes that to a beam
//! (`1` = paper-greedy) — the beam-width ablation is one of the benches.

use crate::error::CoreError;
use crate::metrics as m;
use crate::model::Hmmm;
use crate::sim::best_alternative;
use crate::simcache::SimCache;
use hmmm_media::EventKind;
use hmmm_obs::RecorderHandle;
use hmmm_query::CompiledPattern;
use hmmm_storage::{Catalog, ShotId, VideoId};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// Retrieval tuning knobs.
///
/// Plain data apart from [`RetrievalConfig::recorder`], which is an
/// `Arc`-backed observability handle: cloning a config shares the sink,
/// serializing one drops it (a deserialized config records nothing until
/// a recorder is attached again).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetrievalConfig {
    /// Paths kept per lattice step (`1` = the paper's greedy traversal).
    pub beam_width: usize,
    /// Cap on first-step candidates when no shot is annotated with the
    /// first event (fallback to feature similarity, Step 3's "or similar").
    pub max_start_candidates: usize,
    /// Candidate sequences emitted per video (Step 7 advances `k` once per
    /// video in the paper, i.e. `1`).
    pub per_video_results: usize,
    /// Skip videos whose `B_2` row lacks every alternative of the first
    /// step (the paper's Step 2 `B_2` check).
    pub require_first_event: bool,
    /// Step 3 candidate policy. `true`: prefer shots *annotated as* `e_j`,
    /// falling back to feature similarity only when a video has none
    /// (exact-annotation reading of §5 Step 3). `false`: rank every
    /// reachable shot purely by the model (`Π_1`/`A_1` × Eq.-14 sim) — the
    /// "or similar to event e_j" reading, where the learned `P_{1,2}` and
    /// `B_1'` decide everything (used by the feedback experiments).
    pub annotated_first: bool,
    /// Worker threads for the per-video traversal fan-out. `None` uses
    /// [`std::thread::available_parallelism`], `Some(1)` runs serially on
    /// the calling thread. The ranking is byte-identical at every setting:
    /// videos are traversed independently and merged under a total order.
    pub threads: Option<usize>,
    /// Allow a query-scoped [`SimCache`] (`true`, the default): when the
    /// traversal is similarity-bound (`annotated_first == false`), Eq. (14)
    /// is evaluated once per (shot, query-event) in a dense up-front pass
    /// instead of repeatedly on the hot path. Annotation-bound traversal
    /// never builds the cache — it scores too few shots for the build to
    /// pay. `false` forces direct evaluation everywhere (the
    /// cached-vs-uncached cost benches).
    pub use_sim_cache: bool,
    /// Observability sink for every retrieval this config drives: spans
    /// (per-stage and per-video timings), counters, and the cache/thread
    /// gauges — see [`crate::metrics`] for the emitted names. The default
    /// [`RecorderHandle::noop`] is near-zero-cost; attach an
    /// [`hmmm_obs::InMemoryRecorder`] to collect a
    /// [`hmmm_obs::MetricsReport`]. Skipped by serde (a deserialized
    /// config is a noop until a recorder is attached).
    pub recorder: RecorderHandle,
}

// Hand-written (de)serialization because the recorder handle is a runtime
// sink, not data: serializing omits it, deserializing defaults it to noop
// (and tolerates its absence, so configs persisted before the field existed
// still load).
impl Serialize for RetrievalConfig {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("beam_width".into(), self.beam_width.to_value()),
            (
                "max_start_candidates".into(),
                self.max_start_candidates.to_value(),
            ),
            ("per_video_results".into(), self.per_video_results.to_value()),
            (
                "require_first_event".into(),
                self.require_first_event.to_value(),
            ),
            ("annotated_first".into(), self.annotated_first.to_value()),
            ("threads".into(), self.threads.to_value()),
            ("use_sim_cache".into(), self.use_sim_cache.to_value()),
        ])
    }
}

impl Deserialize for RetrievalConfig {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let obj = v.as_object().ok_or_else(|| {
            serde::DeError::new(format!("RetrievalConfig: expected object, found {}", v.kind()))
        })?;
        Ok(RetrievalConfig {
            beam_width: serde::__field(obj, "beam_width", "RetrievalConfig")?,
            max_start_candidates: serde::__field(obj, "max_start_candidates", "RetrievalConfig")?,
            per_video_results: serde::__field(obj, "per_video_results", "RetrievalConfig")?,
            require_first_event: serde::__field(obj, "require_first_event", "RetrievalConfig")?,
            annotated_first: serde::__field(obj, "annotated_first", "RetrievalConfig")?,
            threads: serde::__field(obj, "threads", "RetrievalConfig")?,
            use_sim_cache: serde::__field(obj, "use_sim_cache", "RetrievalConfig")?,
            recorder: RecorderHandle::noop(),
        })
    }
}

impl Default for RetrievalConfig {
    fn default() -> Self {
        RetrievalConfig {
            beam_width: 3,
            max_start_candidates: 16,
            per_video_results: 1,
            require_first_event: true,
            annotated_first: true,
            threads: None,
            use_sim_cache: true,
            recorder: RecorderHandle::noop(),
        }
    }
}

impl RetrievalConfig {
    /// Pure content-driven traversal: candidates come from the stochastic
    /// model alone, annotations only seed construction.
    pub fn content_only() -> Self {
        RetrievalConfig {
            annotated_first: false,
            require_first_event: false,
            ..RetrievalConfig::default()
        }
    }

    /// The paper's literal greedy traversal.
    pub fn paper_greedy() -> Self {
        RetrievalConfig {
            beam_width: 1,
            ..RetrievalConfig::default()
        }
    }

    /// Attaches an observability sink (builder-style).
    #[must_use]
    pub fn with_recorder(mut self, recorder: RecorderHandle) -> Self {
        self.recorder = recorder;
        self
    }
}

/// One retrieved candidate pattern (`Q_k` in §5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankedPattern {
    /// The video the sequence lives in.
    pub video: VideoId,
    /// Matched shots, one per query step, in temporal order.
    pub shots: Vec<ShotId>,
    /// The event alternative matched at each step (dense event indices).
    pub events: Vec<usize>,
    /// Eq.-(15) similarity score `SS(R, Q_k)`.
    pub score: f64,
    /// The per-step edge weights `w_j` (their sum is `score`).
    pub weights: Vec<f64>,
}

/// Work counters for the cost experiments (E5).
///
/// A mergeable value type: every traversal worker accumulates its own
/// `RetrievalStats` and the results are combined with [`RetrievalStats::merge`]
/// at join time. All counters are commutative sums, so the merged totals are
/// independent of worker count and scheduling.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetrievalStats {
    /// Videos whose lattices were traversed.
    pub videos_visited: usize,
    /// Videos skipped by the `B_2` first-event check.
    pub videos_skipped: usize,
    /// Hot-path Eq.-(14) evaluations — scoring lookups answered by
    /// evaluating the similarity directly because no cache was built
    /// (cache disabled, or the annotation-bound regime gate skipped it).
    pub sim_evaluations: u64,
    /// Eq.-(14) evaluations spent building the query-scoped [`SimCache`]
    /// (zero when no cache was built). Kept separate from
    /// [`RetrievalStats::sim_evaluations`] so cache *bypasses* (direct
    /// hot-path work) and cache *build* work are never conflated;
    /// [`RetrievalStats::total_sim_evaluations`] sums both.
    pub cache_build_evaluations: u64,
    /// Hot-path scoring lookups served from the cache. The table is dense
    /// over the query's events, so every cached lookup is a hit; the
    /// cache hit ratio is `cache_lookups / (cache_lookups +
    /// sim_evaluations)`.
    pub cache_lookups: u64,
    /// Lattice transitions examined (`A_1` lookups).
    pub transitions_examined: u64,
    /// Candidate sequences scored (`k − 1` in Step 8).
    pub candidates_scored: usize,
}

impl RetrievalStats {
    /// Folds another worker's counters into this one (commutative).
    pub fn merge(&mut self, other: RetrievalStats) {
        self.videos_visited += other.videos_visited;
        self.videos_skipped += other.videos_skipped;
        self.sim_evaluations += other.sim_evaluations;
        self.cache_build_evaluations += other.cache_build_evaluations;
        self.cache_lookups += other.cache_lookups;
        self.transitions_examined += other.transitions_examined;
        self.candidates_scored += other.candidates_scored;
    }

    /// Total Eq.-(14) evaluations this query paid for, wherever they were
    /// spent: direct hot-path scoring plus the dense cache build. This is
    /// the cost-model quantity the E5 experiments track.
    pub fn total_sim_evaluations(&self) -> u64 {
        self.sim_evaluations + self.cache_build_evaluations
    }

    /// Cache hit ratio over hot-path scoring lookups, `None` when no
    /// lookups happened.
    pub fn cache_hit_ratio(&self) -> Option<f64> {
        let total = self.cache_lookups + self.sim_evaluations;
        (total > 0).then(|| self.cache_lookups as f64 / total as f64)
    }
}

/// How traversal scores a shot against a step's event alternatives: through
/// the query-scoped [`SimCache`] (an array read) or by evaluating Eq. (14)
/// directly. Both use the same earliest-alternative tie-break, so rankings
/// are identical either way — only the cost differs.
enum Scorer<'q> {
    Cached(&'q SimCache),
    Direct(&'q Hmmm),
}

impl Scorer<'_> {
    fn best_alternative(&self, shot: usize, events: &[usize]) -> Option<(usize, f64)> {
        match self {
            Scorer::Cached(cache) => cache.best_alternative(shot, events),
            Scorer::Direct(model) => best_alternative(model, shot, events),
        }
    }

    /// Charges one hot-path scoring lookup to the right counter: a cache
    /// read counts as a hit ([`RetrievalStats::cache_lookups`]), a direct
    /// call as an Eq.-(14) evaluation
    /// ([`RetrievalStats::sim_evaluations`]). The dense build is charged
    /// separately, once, in `retrieve_within`.
    fn charge(&self, stats: &mut RetrievalStats) {
        match self {
            Scorer::Cached(_) => stats.cache_lookups += 1,
            Scorer::Direct(_) => stats.sim_evaluations += 1,
        }
    }
}

/// One partial path through a video's lattice.
#[derive(Debug, Clone)]
struct BeamEntry {
    /// Local shot index of the current step.
    local: usize,
    /// Running product `w_j`.
    weight: f64,
    /// Running sum `Σ w_j` (the eventual Eq.-15 score).
    score: f64,
    /// Local shot indices of the path so far.
    path: Vec<usize>,
    /// Matched event per step.
    events: Vec<usize>,
    /// Edge weight `w_j` of every step so far.
    weights: Vec<f64>,
}

/// The retrieval engine: an [`Hmmm`] plus its catalog.
pub struct Retriever<'a> {
    model: &'a Hmmm,
    catalog: &'a Catalog,
    config: RetrievalConfig,
}

impl<'a> Retriever<'a> {
    /// Creates a retriever after validating model/catalog consistency.
    ///
    /// # Errors
    ///
    /// [`CoreError::Inconsistent`] if the model was not built from (an
    /// equal-shape) catalog.
    pub fn new(
        model: &'a Hmmm,
        catalog: &'a Catalog,
        config: RetrievalConfig,
    ) -> Result<Self, CoreError> {
        model.validate_against(catalog)?;
        Ok(Retriever {
            model,
            catalog,
            config,
        })
    }

    /// Runs the nine-step retrieval for `pattern`, returning the top
    /// `limit` candidates (Step 9) and the work counters.
    ///
    /// # Examples
    ///
    /// Querying `free_kick -> goal` over the §4.2.1.1 three-shot video: the
    /// Eqs.-12/13 lattice walk must find the `shot 0 → shot 1` path (the
    /// free kick that leads to the annotated goal), scored by Eq. 15:
    ///
    /// ```
    /// use hmmm_core::{build_hmmm, BuildConfig, RetrievalConfig, Retriever};
    /// use hmmm_features::{FeatureId, FeatureVector};
    /// use hmmm_media::EventKind;
    /// use hmmm_query::QueryTranslator;
    /// use hmmm_storage::Catalog;
    ///
    /// # fn feat(grass: f64, volume: f64) -> FeatureVector {
    /// #     let mut f = FeatureVector::zeros();
    /// #     f[FeatureId::GrassRatio] = grass;
    /// #     f[FeatureId::VolumeMean] = volume;
    /// #     f
    /// # }
    /// let mut catalog = Catalog::new();
    /// catalog.add_video("v1", vec![
    ///     (vec![EventKind::FreeKick], feat(0.3, 0.2)),
    ///     (vec![EventKind::FreeKick, EventKind::Goal], feat(0.8, 0.9)),
    ///     (vec![EventKind::CornerKick], feat(0.5, 0.4)),
    /// ]);
    /// let model = build_hmmm(&catalog, &BuildConfig::default()).unwrap();
    ///
    /// let translator = QueryTranslator::new(EventKind::ALL.iter().map(|k| k.name()));
    /// let pattern = translator.compile("free_kick -> goal").unwrap();
    ///
    /// let retriever = Retriever::new(&model, &catalog, RetrievalConfig::default()).unwrap();
    /// let (results, stats) = retriever.retrieve(&pattern, 5).unwrap();
    ///
    /// assert!(!results.is_empty());
    /// let best = &results[0];
    /// assert_eq!(best.shots.len(), 2);                     // one shot per step
    /// assert!(best.score > 0.0);                           // SS = Σ w_j (Eq. 15)
    /// assert!(stats.total_sim_evaluations() > 0);          // Eq.-14 work was counted
    /// ```
    ///
    /// # Errors
    ///
    /// [`CoreError::BadQuery`] for an empty pattern or out-of-range event
    /// indices.
    pub fn retrieve(
        &self,
        pattern: &CompiledPattern,
        limit: usize,
    ) -> Result<(Vec<RankedPattern>, RetrievalStats), CoreError> {
        self.retrieve_within(pattern, limit, None)
    }

    /// Like [`Retriever::retrieve`], but restricted to a subset of videos —
    /// the hook for level-3 category pre-filtering
    /// ([`crate::cluster::CategoryLevel::eligible_videos`]). `None` searches
    /// the whole archive.
    ///
    /// # Errors
    ///
    /// Same as [`Retriever::retrieve`].
    pub fn retrieve_within(
        &self,
        pattern: &CompiledPattern,
        limit: usize,
        videos: Option<&[VideoId]>,
    ) -> Result<(Vec<RankedPattern>, RetrievalStats), CoreError> {
        if pattern.is_empty() {
            return Err(CoreError::BadQuery("empty pattern".into()));
        }
        for step in &pattern.steps {
            if step.alternatives.is_empty() {
                return Err(CoreError::BadQuery("step with no alternatives".into()));
            }
            if let Some(&bad) = step
                .alternatives
                .iter()
                .find(|&&e| e >= EventKind::COUNT)
            {
                return Err(CoreError::BadQuery(format!(
                    "event index {bad} out of range"
                )));
            }
        }

        let obs = &self.config.recorder;
        let root_span = obs.span(m::SPAN_RETRIEVE);
        let mut stats = RetrievalStats::default();
        let requested_threads = self.requested_threads();

        // Tentpole layer 1: one dense shots × query-events scoring pass,
        // shared read-only by every traversal worker. The build itself
        // shards the shot dimension across the same worker budget.
        //
        // The build pays for itself only when traversal is similarity-bound:
        // content-driven candidate selection scores every reachable shot
        // through Eq. (14), so the dense pass trades ~1 evaluation per cell
        // for many 2-pass direct calls. Annotation-first traversal is
        // annotation-bound — it scores so few shots that the build would
        // dominate the whole query — so the cache is skipped there.
        let similarity_bound = !self.config.annotated_first;
        let cache = (self.config.use_sim_cache && similarity_bound).then(|| {
            let _build_span = obs.span(m::SPAN_SIM_CACHE_BUILD);
            SimCache::build_with_threads(self.model, pattern, requested_threads)
        });
        let scorer = match &cache {
            Some(c) => {
                stats.cache_build_evaluations += c.build_evaluations();
                Scorer::Cached(c)
            }
            None => Scorer::Direct(self.model),
        };

        let order = {
            let _order_span = obs.span(m::SPAN_VIDEO_ORDER);
            self.video_order(pattern, videos, &mut stats)
        };
        let threads = requested_threads.min(order.len().max(1));

        // Tentpole layer 2: fan the per-video traversals across a scoped
        // worker pool. Each video's traversal depends only on (model,
        // catalog, pattern, config, video), each worker owns its results
        // and stats, and the merge below is a commutative fold + total-order
        // sort — so the ranking is byte-identical to the serial path.
        //
        // Observability stays off the per-transition hot path: workers batch
        // counts in their local `RetrievalStats` and everything is flushed to
        // the recorder once, below. Only the per-worker/per-video spans (and
        // the busy-time sum feeding the utilization gauge) touch the clock,
        // and only when a recorder is attached.
        let mut candidates: Vec<RankedPattern> = Vec::new();
        let traverse_span = obs.span(m::SPAN_TRAVERSE);
        let mut workers_busy_ns: u64 = 0;
        if threads <= 1 {
            for video in order {
                let found = self.traverse_video(video, pattern, &scorer, &mut stats);
                candidates.extend(found);
            }
        } else {
            let chunk = order.len().div_ceil(threads);
            crossbeam::thread::scope(|s| {
                let scorer = &scorer;
                let handles: Vec<_> = order
                    .chunks(chunk)
                    .enumerate()
                    .map(|(w, videos)| {
                        s.spawn(move || {
                            let worker_span =
                                self.config.recorder.span_labeled(m::SPAN_WORKER, w as u64);
                            let mut local = RetrievalStats::default();
                            let mut found = Vec::new();
                            for &video in videos {
                                found.extend(self.traverse_video(
                                    video, pattern, scorer, &mut local,
                                ));
                            }
                            let busy_ns = worker_span.elapsed_ns();
                            (found, local, busy_ns)
                        })
                    })
                    .collect();
                for handle in handles {
                    let (found, local, busy_ns) =
                        handle.join().expect("retrieval worker panicked");
                    candidates.extend(found);
                    stats.merge(local);
                    workers_busy_ns += busy_ns;
                }
            });
        }
        let traverse_wall_ns = traverse_span.elapsed_ns();
        drop(traverse_span);

        stats.candidates_scored = candidates.len();
        {
            let _rank_span = obs.span(m::SPAN_RANK);
            candidates.sort_by(rank_order);
            candidates.truncate(limit);
        }

        if obs.is_enabled() {
            self.flush_metrics(
                &stats,
                candidates.len(),
                cache.is_some(),
                similarity_bound,
                threads,
                traverse_wall_ns,
                workers_busy_ns,
            );
            obs.observe_ns(m::HIST_RETRIEVE_LATENCY, root_span.elapsed_ns());
        }
        Ok((candidates, stats))
    }

    /// Flushes one query's batched counters and gauges to the recorder.
    /// Called once per retrieve, and only when a recorder is attached — the
    /// hot loops never touch the handle directly.
    #[allow(clippy::too_many_arguments)]
    fn flush_metrics(
        &self,
        stats: &RetrievalStats,
        results_returned: usize,
        cache_built: bool,
        similarity_bound: bool,
        threads: usize,
        traverse_wall_ns: u64,
        workers_busy_ns: u64,
    ) {
        let obs = &self.config.recorder;
        obs.counter(m::CTR_QUERIES, 1);
        obs.counter(m::CTR_VIDEOS_VISITED, stats.videos_visited as u64);
        obs.counter(m::CTR_VIDEOS_SKIPPED, stats.videos_skipped as u64);
        obs.counter(m::CTR_TRANSITIONS, stats.transitions_examined);
        obs.counter(m::CTR_CANDIDATES, stats.candidates_scored as u64);
        obs.counter(m::CTR_RESULTS, results_returned as u64);
        obs.counter(m::CTR_SIM_DIRECT_EVALS, stats.sim_evaluations);
        obs.counter(m::CTR_CACHE_BUILD_EVALS, stats.cache_build_evaluations);
        obs.counter(m::CTR_CACHE_LOOKUPS, stats.cache_lookups);
        if cache_built {
            obs.counter(m::CTR_CACHE_BUILDS, 1);
        } else if similarity_bound {
            obs.counter(m::CTR_CACHE_BYPASSED_QUERIES, 1);
        } else {
            obs.counter(m::CTR_CACHE_REGIME_SKIPPED_QUERIES, 1);
        }
        obs.gauge(m::GAUGE_THREADS, threads as f64);
        let utilization = if threads <= 1 {
            1.0
        } else if traverse_wall_ns == 0 {
            0.0
        } else {
            workers_busy_ns as f64 / (traverse_wall_ns as f64 * threads as f64)
        };
        obs.gauge(m::GAUGE_THREAD_UTILIZATION, utilization);
    }

    /// The configured worker budget (`None` = all available cores).
    fn requested_threads(&self) -> usize {
        match self.config.threads {
            Some(t) => t.max(1),
            None => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }

    /// Step 2 / Step 7: eligible videos in `Π_2` affinity order.
    ///
    /// The seed implementation realised "Π_2 then A_2 affinity" as a greedy
    /// chain — start at the `Π_2`-preferred video, then repeatedly hop to
    /// the unvisited video with the highest `A_2` affinity from the current
    /// one — which is O(V²) and was the dominant cost on large archives.
    /// Since every eligible video is traversed and the final ranking is
    /// re-sorted under a total order, visit order only affects scheduling,
    /// not results; a direct sort by (`Π_2` desc, index asc) preserves the
    /// paper's "most-affine first" intent at O(V log V).
    fn video_order(
        &self,
        pattern: &CompiledPattern,
        subset: Option<&[VideoId]>,
        stats: &mut RetrievalStats,
    ) -> Vec<VideoId> {
        let first_alts = &pattern.steps[0].alternatives;
        let candidates: Vec<usize> = match subset {
            Some(videos) => videos
                .iter()
                .map(|v| v.index())
                .filter(|&v| v < self.model.video_count())
                .collect(),
            None => (0..self.model.video_count()).collect(),
        };
        let eligible: Vec<usize> = candidates
            .into_iter()
            .filter(|&v| {
                if !self.config.require_first_event {
                    return true;
                }
                let has = first_alts.iter().any(|&e| self.model.b2[v][e] > 0);
                if !has {
                    stats.videos_skipped += 1;
                }
                has
            })
            .collect();

        let mut order = eligible;
        order.sort_by(|&a, &b| {
            self.model
                .pi2
                .get(b)
                .partial_cmp(&self.model.pi2.get(a))
                .unwrap_or(Ordering::Equal)
                .then_with(|| a.cmp(&b))
        });
        order.into_iter().map(VideoId).collect()
    }

    /// Steps 3–6 for one video: beam traversal of the Figure-3 lattice.
    fn traverse_video(
        &self,
        video: VideoId,
        pattern: &CompiledPattern,
        scorer: &Scorer<'_>,
        stats: &mut RetrievalStats,
    ) -> Vec<RankedPattern> {
        let record = match self.catalog.video(video) {
            Some(r) => r,
            None => return Vec::new(),
        };
        let base = record.shot_range.start;
        let n = record.shot_count();
        if n == 0 {
            return Vec::new();
        }
        let _video_span = self
            .config
            .recorder
            .span_labeled(m::SPAN_VIDEO, video.index() as u64);
        stats.videos_visited += 1;
        let local = &self.model.locals[video.index()];
        let shots = self.catalog.shots_of_video(video);

        // Step 4 at j = 1: w_1 = Π_1(s_1) · sim(s_1, e_1)  (Eq. 12).
        let first_alts = &pattern.steps[0].alternatives;
        let mut beam: Vec<BeamEntry> = Vec::new();
        let mut starts: Vec<usize> = if self.config.annotated_first {
            (0..n)
                .filter(|&s| {
                    shots[s]
                        .events
                        .iter()
                        .any(|&e| first_alts.contains(&e.index()))
                })
                .collect()
        } else {
            Vec::new()
        };
        if starts.is_empty() {
            // "…or similar to event e_j": fall back to the most similar
            // shots by features.
            let mut scored: Vec<(usize, f64)> = (0..n)
                .map(|s| {
                    scorer.charge(stats);
                    let (_, sim) = scorer
                        .best_alternative(base + s, first_alts)
                        .expect("alternatives checked non-empty");
                    (s, sim)
                })
                .collect();
            scored.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .unwrap_or(Ordering::Equal)
                    .then_with(|| a.0.cmp(&b.0))
            });
            starts = scored
                .into_iter()
                .take(self.config.max_start_candidates)
                .map(|(s, _)| s)
                .collect();
        }
        for s in starts {
            scorer.charge(stats);
            if let Some((event, sim)) = scorer.best_alternative(base + s, first_alts) {
                let w = local.pi1.get(s) * sim;
                if w > 0.0 {
                    beam.push(BeamEntry {
                        local: s,
                        weight: w,
                        score: w,
                        path: vec![s],
                        events: vec![event],
                        weights: vec![w],
                    });
                }
            }
        }
        trim_beam(&mut beam, self.config.beam_width);

        // Steps 3–5 for j = 2..C: expand through A_1 (Eq. 13). Step 3 is
        // annotated-first: the traversal prefers shots *annotated as* e_j;
        // only when the video has none does it fall back to "or similar to
        // event e_j" over all reachable shots.
        for step in &pattern.steps[1..] {
            let step_has_annotation = self.config.annotated_first
                && (0..n).any(|s| {
                    shots[s]
                        .events
                        .iter()
                        .any(|&e| step.alternatives.contains(&e.index()))
                });
            let mut next: Vec<BeamEntry> = Vec::new();
            for entry in &beam {
                let from = entry.local;
                for (to, shot) in shots.iter().enumerate().take(n).skip(from) {
                    if let Some(gap) = step.max_gap {
                        if to - from > gap {
                            break;
                        }
                    }
                    stats.transitions_examined += 1;
                    if step_has_annotation
                        && !shot
                            .events
                            .iter()
                            .any(|&e| step.alternatives.contains(&e.index()))
                    {
                        continue;
                    }
                    let a = local.a1.get(from, to);
                    if a <= 0.0 {
                        continue;
                    }
                    if to == from && !same_shot_revisit_ok(&shot.events, entry, step) {
                        continue;
                    }
                    scorer.charge(stats);
                    let Some((event, sim)) = scorer.best_alternative(base + to, &step.alternatives)
                    else {
                        continue;
                    };
                    let w = entry.weight * a * sim;
                    if w <= 0.0 {
                        continue;
                    }
                    let mut path = entry.path.clone();
                    path.push(to);
                    let mut events = entry.events.clone();
                    events.push(event);
                    let mut weights = entry.weights.clone();
                    weights.push(w);
                    next.push(BeamEntry {
                        local: to,
                        weight: w,
                        score: entry.score + w,
                        path,
                        events,
                        weights,
                    });
                }
            }
            trim_beam(&mut next, self.config.beam_width);
            beam = next;
            if beam.is_empty() {
                return Vec::new();
            }
        }

        // Step 6: the per-video candidates with Eq.-15 scores. The path
        // tie-break makes the cut at `per_video_results` deterministic (and
        // guarantees equal paths are adjacent for the dedup).
        beam.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(Ordering::Equal)
                .then_with(|| a.path.cmp(&b.path))
        });
        beam.dedup_by(|a, b| a.path == b.path);
        beam.truncate(self.config.per_video_results);
        beam.into_iter()
            .map(|entry| RankedPattern {
                video,
                shots: entry.path.iter().map(|&s| ShotId(base + s)).collect(),
                events: entry.events,
                score: entry.score,
                weights: entry.weights,
            })
            .collect()
    }
}

/// Same-shot continuation is allowed only when the shot carries *distinct*
/// annotation slots for the previous and current step (the paper's
/// `T_{s_m} ≤ T_{s_n}` with the double-annotation shots of §4.2.1.1).
fn same_shot_revisit_ok(events: &[EventKind], entry: &BeamEntry, step: &hmmm_query::CompiledStep) -> bool {
    let prev_event = *entry.events.last().expect("path is non-empty");
    step.alternatives.iter().any(|&alt| {
        events.iter().any(|e| e.index() == alt)
            && (alt != prev_event || events.iter().filter(|e| e.index() == alt).count() >= 2)
    })
}

/// Total order on final candidates: score desc, then video asc, then shot
/// sequence asc. Strictness matters — with a partial order, equal-scored
/// candidates from different videos would rank by arrival order, which the
/// parallel merge does not preserve.
fn rank_order(a: &RankedPattern, b: &RankedPattern) -> Ordering {
    b.score
        .partial_cmp(&a.score)
        .unwrap_or(Ordering::Equal)
        .then_with(|| a.video.cmp(&b.video))
        .then_with(|| a.shots.cmp(&b.shots))
}

fn trim_beam(beam: &mut Vec<BeamEntry>, width: usize) {
    // Path tie-break: which entries survive an equal-weight cut must not
    // depend on insertion order, and equal paths must be adjacent for the
    // dedup to be exhaustive.
    beam.sort_by(|a, b| {
        b.weight
            .partial_cmp(&a.weight)
            .unwrap_or(Ordering::Equal)
            .then_with(|| a.path.cmp(&b.path))
    });
    beam.dedup_by(|a, b| a.path == b.path);
    beam.truncate(width.max(1));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{build_hmmm, BuildConfig};
    use hmmm_features::{FeatureId, FeatureVector};
    use hmmm_query::QueryTranslator;

    fn feat(g: f64, v: f64, s3: f64) -> FeatureVector {
        let mut f = FeatureVector::zeros();
        f[FeatureId::GrassRatio] = g;
        f[FeatureId::VolumeMean] = v;
        f[FeatureId::Sub3Mean] = s3;
        f
    }

    /// Two videos; video 0 contains the free_kick → goal pattern, video 1
    /// only has a lone goal.
    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_video(
            "with-pattern",
            vec![
                (vec![], feat(0.5, 0.2, 0.1)),
                (vec![EventKind::FreeKick], feat(0.7, 0.25, 0.8)),
                (vec![], feat(0.5, 0.2, 0.1)),
                (vec![EventKind::Goal], feat(0.8, 0.9, 0.2)),
                (vec![EventKind::CornerKick], feat(0.75, 0.3, 0.7)),
            ],
        );
        c.add_video(
            "goal-only",
            vec![
                (vec![EventKind::Goal], feat(0.78, 0.88, 0.15)),
                (vec![], feat(0.5, 0.2, 0.1)),
            ],
        );
        c
    }

    fn translator() -> QueryTranslator {
        QueryTranslator::new(EventKind::ALL.iter().map(|k| k.name()))
    }

    #[test]
    fn finds_the_scripted_pattern() {
        let c = catalog();
        let model = build_hmmm(&c, &BuildConfig::default()).unwrap();
        let r = Retriever::new(&model, &c, RetrievalConfig::default()).unwrap();
        let pattern = translator().compile("free_kick -> goal").unwrap();
        let (results, stats) = r.retrieve(&pattern, 10).unwrap();
        assert!(!results.is_empty());
        let top = &results[0];
        assert_eq!(top.video, VideoId(0));
        assert_eq!(top.shots, vec![ShotId(1), ShotId(3)]);
        assert!(top.score > 0.0);
        assert!(stats.videos_visited >= 1);
    }

    #[test]
    fn b2_check_skips_videos_without_first_event() {
        let c = catalog();
        let model = build_hmmm(&c, &BuildConfig::default()).unwrap();
        let r = Retriever::new(&model, &c, RetrievalConfig::default()).unwrap();
        let pattern = translator().compile("corner_kick -> goal").unwrap();
        let (_, stats) = r.retrieve(&pattern, 10).unwrap();
        // Video 1 has no corner kick → skipped by the B2 check.
        assert_eq!(stats.videos_skipped, 1);
        assert_eq!(stats.videos_visited, 1);
    }

    #[test]
    fn single_event_query_ranks_annotated_shot_first() {
        let c = catalog();
        let model = build_hmmm(&c, &BuildConfig::default()).unwrap();
        let r = Retriever::new(&model, &c, RetrievalConfig::default()).unwrap();
        let pattern = translator().compile("goal").unwrap();
        let (results, _) = r.retrieve(&pattern, 10).unwrap();
        assert!(!results.is_empty());
        let shot = c.shot(results[0].shots[0]).unwrap();
        assert!(shot.events.contains(&EventKind::Goal));
    }

    #[test]
    fn gap_constraint_prunes_distant_matches() {
        let c = catalog();
        let model = build_hmmm(&c, &BuildConfig::default()).unwrap();
        let r = Retriever::new(&model, &c, RetrievalConfig::default()).unwrap();
        let bounded = translator().compile("free_kick ->[1] goal").unwrap();
        let (results, _) = r.retrieve(&bounded, 10).unwrap();
        // free_kick at local 1, goal at local 3: gap 2 > 1 → no match in
        // video 0 via annotations (similar-shot fallback may still score
        // something but never the (1,3) pair).
        assert!(results
            .iter()
            .all(|p| p.shots != vec![ShotId(1), ShotId(3)]));
    }

    #[test]
    fn empty_and_bad_queries_rejected() {
        let c = catalog();
        let model = build_hmmm(&c, &BuildConfig::default()).unwrap();
        let r = Retriever::new(&model, &c, RetrievalConfig::default()).unwrap();
        let empty = CompiledPattern { steps: vec![] };
        assert!(matches!(
            r.retrieve(&empty, 5),
            Err(CoreError::BadQuery(_))
        ));
        let bad = CompiledPattern {
            steps: vec![hmmm_query::CompiledStep {
                alternatives: vec![99],
                max_gap: None,
            }],
        };
        assert!(matches!(r.retrieve(&bad, 5), Err(CoreError::BadQuery(_))));
    }

    #[test]
    fn results_are_sorted_by_score() {
        let c = catalog();
        let model = build_hmmm(&c, &BuildConfig::default()).unwrap();
        let r = Retriever::new(&model, &c, RetrievalConfig::default()).unwrap();
        let pattern = translator().compile("goal").unwrap();
        let (results, _) = r.retrieve(&pattern, 10).unwrap();
        for pair in results.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
    }

    #[test]
    fn limit_truncates() {
        let c = catalog();
        let model = build_hmmm(&c, &BuildConfig::default()).unwrap();
        let r = Retriever::new(&model, &c, RetrievalConfig::default()).unwrap();
        let pattern = translator().compile("goal").unwrap();
        let (results, _) = r.retrieve(&pattern, 1).unwrap();
        assert_eq!(results.len(), 1);
    }

    #[test]
    fn greedy_is_subset_of_beam_quality() {
        let c = catalog();
        let model = build_hmmm(&c, &BuildConfig::default()).unwrap();
        let pattern = translator().compile("free_kick -> goal").unwrap();
        let greedy = Retriever::new(&model, &c, RetrievalConfig::paper_greedy()).unwrap();
        let beam = Retriever::new(&model, &c, RetrievalConfig::default()).unwrap();
        let (g, _) = greedy.retrieve(&pattern, 10).unwrap();
        let (b, _) = beam.retrieve(&pattern, 10).unwrap();
        // Beam search never returns a worse best-candidate than greedy.
        if let (Some(gt), Some(bt)) = (g.first(), b.first()) {
            assert!(bt.score >= gt.score - 1e-12);
        }
    }

    #[test]
    fn alternatives_match_either_event() {
        let c = catalog();
        let model = build_hmmm(&c, &BuildConfig::default()).unwrap();
        let r = Retriever::new(&model, &c, RetrievalConfig::default()).unwrap();
        let pattern = translator()
            .compile("free_kick|corner_kick -> goal")
            .unwrap();
        let (results, _) = r.retrieve(&pattern, 10).unwrap();
        assert!(!results.is_empty());
        let top = &results[0];
        let first_shot = c.shot(top.shots[0]).unwrap();
        assert!(
            first_shot.events.contains(&EventKind::FreeKick)
                || first_shot.events.contains(&EventKind::CornerKick)
        );
    }
}
