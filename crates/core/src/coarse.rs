//! The ingest-time coarse index behind two-stage coarse-to-fine retrieval.
//!
//! The paper's level-2 structure (Definition 1: `B_2` event counts and the
//! `Π_2` prior over videos) already answers the Step-2 eligibility question
//! — "which videos exhibit this event at all?" — without touching a single
//! shot. [`CoarseIndex`] materializes that answer at build time as an
//! inverted event → video index ([`CoarseIndex::postings`]) and pairs it
//! with **precomputed per-video bound summaries**: for every
//! `(video, event)` cell, the largest calibrated Eq.-14 similarity any of
//! the video's shots attains, and the largest Eq.-12 start weight
//! (`Π_1(s) · sim(s, e)`, with and without the shot's forward `A_1` row
//! maximum folded in). A query then derives an *admissible* per-video upper
//! bound on any Eq.-15 score the video can produce from
//! `O(steps × alternatives)` table lookups ([`CoarseIndex::video_bounds`])
//! — no Eq.-14 work, no archive scan — which is exactly what the cold
//! (cache-off) retrieval path used to pay
//! ([`crate::sim::max_calibrated_similarity`] over every shot, per unique
//! query event).
//!
//! The index is a **derived cache** of the model, like the `B_1` SoA slab
//! and the packed event terms: [`crate::Hmmm::refresh_coarse`] rebuilds it
//! whenever the source matrices move (construction, every feedback round),
//! `validate_against` checks its shape and the postings ↔ `B_2` agreement
//! on every [`crate::Retriever::new`], and `deep_audit` re-folds every
//! stored bound bitwise from the live matrices.
//!
//! # Why the bounds are admissible
//!
//! For a fixed video `v` and event `e`:
//!
//! * every Eq.-13 edge into a shot matching `e` multiplies by at most
//!   `sim_max(v, e)` (the max is over *all* of `v`'s shots);
//! * every Eq.-12 start weight `Π_1(s) · sim(s, e)` is at most
//!   `start_max(v, e)`;
//! * a start entry's first hop multiplies by its own shot's forward row
//!   maximum, so `Π_1(s) · sim(s, e) · a1_row_max[s] ≤ start_joint(v, e)`.
//!
//! The whole-video bound folds these as `max_e [start_max(v, e) +
//! chain_0 · start_joint(v, e)]` over the first step's alternatives, where
//! `chain_0` is the [`QueryBounds`] completion chain built from the
//! *per-video* step maxima. Per start shot, the true quantity is
//! `w_0(s) · (1 + row_max(s) · chain_0)`; bounding the sum by the sum of
//! per-term maxima (`max_s a + max_s b ≥ max_s (a + b)`) keeps it
//! admissible. It is looser than the joint per-shot fold the query-scoped
//! [`crate::simcache::SimCache`] affords (`per_video_bounds`), which is why
//! the cached path keeps its own bounds — but it costs two table reads
//! instead of a shot scan, which is why the cold path wins.

use crate::bounds::{QueryBounds, VideoBounds};
use crate::error::CoreError;
use crate::model::{Hmmm, LocalMmm};
use hmmm_media::EventKind;
use hmmm_query::CompiledPattern;
use serde::{Deserialize, Serialize};

/// The ingest-time candidate index + per-video bound summaries (see the
/// module docs). Flat `f64` tables are indexed `[video × EventKind::COUNT
/// + event]`; postings lists hold ascending video indices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoarseIndex {
    /// Inverted `B_2` signature: `postings[e]` lists (ascending) every
    /// video whose `B_2[v][e] > 0` — the videos that pass the paper's
    /// Step-2 first-event check for `e`.
    pub postings: Vec<Vec<u32>>,
    /// `sim_max[v·C + e]` — largest calibrated Eq.-14 similarity any shot
    /// of video `v` attains against event `e` (the per-video per-step
    /// similarity ceiling `sm_j` of [`QueryBounds`]).
    pub sim_max: Vec<f64>,
    /// `start_max[v·C + e] = max_s Π_1(s) · sim(s, e)` — the largest
    /// Eq.-12 start weight video `v` can admit for event `e`.
    pub start_max: Vec<f64>,
    /// `start_joint[v·C + e] = max_s Π_1(s) · sim(s, e) · a1_row_max[s]` —
    /// the start weight with the shot's own forward `A_1` row maximum
    /// (first Eq.-13 hop) folded in.
    pub start_joint: Vec<f64>,
}

impl CoarseIndex {
    /// The empty index (no videos, no events indexed) — the construction
    /// placeholder before [`crate::Hmmm::refresh_coarse`] runs, mirroring
    /// the other Definition-1 derived caches (`B_1` slab, event terms).
    pub fn empty() -> Self {
        CoarseIndex {
            postings: Vec::new(),
            sim_max: Vec::new(),
            start_max: Vec::new(),
            start_joint: Vec::new(),
        }
    }

    /// Builds the index from a model: one blocked calibrated Eq.-14 pass
    /// over the archive per event, folded per video into the
    /// `sim_max`/`start_max`/`start_joint` summaries (Eqs. 12–14 maxima),
    /// plus the inverted `B_2` postings (Step 2's eligibility signature).
    ///
    /// The per-video `sim_max` folds walk shots in ascending order with
    /// `f64::max`, so the union over all videos reproduces
    /// [`crate::sim::max_calibrated_similarity`]'s archive fold bitwise
    /// (`f64::max` is associative over the non-NaN scores and always
    /// returns one of its inputs).
    pub fn build(model: &Hmmm) -> Self {
        let videos = model.video_count();
        let shots = model.shot_count();
        let cells = videos * EventKind::COUNT;
        let mut index = CoarseIndex {
            postings: vec![Vec::new(); EventKind::COUNT],
            sim_max: vec![0.0; cells],
            start_max: vec![0.0; cells],
            start_joint: vec![0.0; cells],
        };
        let mut scores = vec![0.0; shots];
        for e in 0..EventKind::COUNT {
            // Calibrated Eq.-14 scores of every archive shot against `e`:
            // the blocked kernel plus the same single division by the
            // memoized self-similarity denominator the scalar path uses.
            let denom = model.event_terms[e].self_sim;
            if denom > 0.0 {
                crate::sim::similarity_into(model, 0..shots, e, &mut scores);
                for s in scores.iter_mut() {
                    *s /= denom;
                }
            } else {
                scores.fill(0.0);
            }
            // L_{1,2} is dense and implicit: each video's shots are the
            // next `local.len()` global ids, in order.
            let mut offset = 0usize;
            for (v, local) in model.locals.iter().enumerate() {
                let cell = v * EventKind::COUNT + e;
                let mut sim_max = 0.0f64;
                let mut start_max = 0.0f64;
                let mut start_joint = 0.0f64;
                for (s, &sim) in scores[offset..offset + local.len()].iter().enumerate() {
                    sim_max = sim_max.max(sim);
                    let w = local.pi1.get(s) * sim;
                    start_max = start_max.max(w);
                    start_joint = start_joint.max(w * local.a1_row_max[s]);
                }
                index.sim_max[cell] = sim_max;
                index.start_max[cell] = start_max;
                index.start_joint[cell] = start_joint;
                offset += local.len();
            }
            index.postings[e] = (0..videos)
                .filter(|&v| model.b2[v][e] > 0)
                .map(|v| v as u32)
                .collect();
        }
        index
    }

    /// `B_2`-eligible videos for `event` (ascending indices) — the
    /// inverted form of the paper's Step-2 first-event check, so candidate
    /// enumeration reads one postings list instead of scanning every
    /// video's `B_2` row.
    pub fn postings(&self, event: usize) -> &[u32] {
        &self.postings[event]
    }

    /// Largest calibrated Eq.-14 similarity any shot of `video` attains
    /// against `event` — the table-lookup replacement for the per-query
    /// archive scan of [`crate::sim::max_calibrated_similarity`].
    pub fn sim_max(&self, video: usize, event: usize) -> f64 {
        self.sim_max[video * EventKind::COUNT + event]
    }

    /// Admissible per-video bounds for one query, from table lookups only
    /// (see the module docs for the admissibility argument): per-step
    /// similarity maxima feed the [`QueryBounds`] completion chain
    /// (Eq. 13's per-hop ceiling), and the whole-video bound folds the
    /// Eq.-12 start summaries `max_e [start_max + chain_0 · start_joint]`
    /// over the first step's alternatives. Costs
    /// `Σ_j |alternatives_j| + 2 · |alternatives_0|` table reads — see
    /// [`CoarseIndex::bound_lookups`].
    pub fn video_bounds(
        &self,
        video: usize,
        local: &LocalMmm,
        pattern: &CompiledPattern,
    ) -> VideoBounds {
        let step_max: Vec<f64> = pattern
            .steps
            .iter()
            .map(|step| {
                step.alternatives
                    .iter()
                    .map(|&e| self.sim_max(video, e))
                    .fold(0.0, f64::max)
            })
            .collect();
        let vb = QueryBounds::new(step_max).for_video(local);
        let chain0 = vb.chain0();
        let base = video * EventKind::COUNT;
        let raw_ub = pattern.steps[0]
            .alternatives
            .iter()
            .map(|&e| self.start_max[base + e] + chain0 * self.start_joint[base + e])
            .fold(0.0, f64::max);
        vb.with_video_ub(raw_ub)
    }

    /// Table reads one [`CoarseIndex::video_bounds`] call performs for
    /// `pattern` (the Step-2-to-fine admission cost the coarse counters
    /// report): one `sim_max` read per step alternative plus the two start
    /// summaries per first-step alternative.
    pub fn bound_lookups(pattern: &CompiledPattern) -> u64 {
        let step_reads: usize = pattern.steps.iter().map(|s| s.alternatives.len()).sum();
        (step_reads + 2 * pattern.steps[0].alternatives.len()) as u64
    }

    /// Cheap freshness predicate for `validate_against` (every
    /// [`crate::Retriever::new`] runs it): shapes match the model and the
    /// postings agree with the `B_2` signature (Step 2's eligibility
    /// predicate) — `O(videos × events)`, no Eq.-14 work. The full bitwise
    /// re-fold of the stored bound summaries lives in
    /// [`CoarseIndex::audit`] (run by `deep_audit`).
    pub fn matches(&self, model: &Hmmm) -> bool {
        let videos = model.video_count();
        let cells = videos * EventKind::COUNT;
        if self.postings.len() != EventKind::COUNT
            || self.sim_max.len() != cells
            || self.start_max.len() != cells
            || self.start_joint.len() != cells
        {
            return false;
        }
        for e in 0..EventKind::COUNT {
            let mut k = 0usize;
            for v in 0..videos {
                if model.b2[v][e] > 0 {
                    if k >= self.postings[e].len() || self.postings[e][k] as usize != v {
                        return false;
                    }
                    k += 1;
                }
            }
            if k != self.postings[e].len() {
                return false;
            }
        }
        true
    }

    /// Full index-consistency audit: rebuilds the index from the live
    /// matrices and compares **bitwise** — postings equal to the `B_2`
    /// signature, every stored `sim_max`/`start_max`/`start_joint` cell
    /// equal to a fresh Eq.-12/13/14 fold. Run by `deep_audit` (stored
    /// bounds == freshly folded bounds); a mismatch means a mutation
    /// bypassed [`crate::Hmmm::refresh_coarse`] and the coarse stage's
    /// admission bounds can no longer be trusted.
    ///
    /// # Errors
    ///
    /// [`CoreError::Inconsistent`] naming the first stale table.
    pub fn audit(&self, model: &Hmmm) -> Result<(), CoreError> {
        let fresh = CoarseIndex::build(model);
        if self.postings != fresh.postings {
            return Err(CoreError::Inconsistent(
                "stale coarse postings vs B2 signature (refresh_coarse not \
                 called after mutation?)"
                    .into(),
            ));
        }
        let bitwise_eq = |a: &[f64], b: &[f64]| {
            a.len() == b.len()
                && a.iter()
                    .zip(b.iter())
                    .all(|(x, y)| x.to_bits() == y.to_bits())
        };
        for (name, stored, rebuilt) in [
            ("sim_max", &self.sim_max, &fresh.sim_max),
            ("start_max", &self.start_max, &fresh.start_max),
            ("start_joint", &self.start_joint, &fresh.start_joint),
        ] {
            if !bitwise_eq(stored, rebuilt) {
                return Err(CoreError::Inconsistent(format!(
                    "stale coarse {name} summaries vs fresh fold \
                     (refresh_coarse not called after mutation?)"
                )));
            }
        }
        Ok(())
    }

    /// Total postings entries across all events (the `B_2` signature
    /// cardinality reported by the Definition-1 audit summary).
    pub fn postings_len(&self) -> usize {
        self.postings.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{build_hmmm, BuildConfig};
    use crate::sim::{calibrated_similarity, max_calibrated_similarity};
    use hmmm_features::{FeatureId, FeatureVector};
    use hmmm_query::QueryTranslator;
    use hmmm_storage::Catalog;

    fn feat(g: f64, v: f64) -> FeatureVector {
        let mut f = FeatureVector::zeros();
        f[FeatureId::GrassRatio] = g;
        f[FeatureId::VolumeMean] = v;
        f
    }

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_video(
            "m1",
            vec![
                (vec![EventKind::FreeKick], feat(0.3, 0.2)),
                (vec![EventKind::FreeKick, EventKind::Goal], feat(0.8, 0.9)),
                (vec![EventKind::CornerKick], feat(0.5, 0.4)),
            ],
        );
        c.add_video(
            "m2",
            vec![
                (vec![EventKind::Goal], feat(0.9, 0.8)),
                (vec![], feat(0.1, 0.2)),
            ],
        );
        c
    }

    fn translator() -> QueryTranslator {
        QueryTranslator::new(EventKind::ALL.iter().map(|k| k.name()))
    }

    #[test]
    fn postings_mirror_b2_ascending() {
        let c = catalog();
        let m = build_hmmm(&c, &BuildConfig::default()).unwrap();
        let goal = EventKind::Goal.index();
        let fk = EventKind::FreeKick.index();
        let ck = EventKind::CornerKick.index();
        assert_eq!(m.coarse.postings(goal), &[0, 1]);
        assert_eq!(m.coarse.postings(fk), &[0]);
        assert_eq!(m.coarse.postings(ck), &[0]);
        assert_eq!(m.coarse.postings(EventKind::RedCard.index()), &[] as &[u32]);
        for e in 0..EventKind::COUNT {
            for pair in m.coarse.postings(e).windows(2) {
                assert!(pair[0] < pair[1], "postings not ascending");
            }
        }
    }

    #[test]
    fn per_video_sim_max_unions_to_archive_max_bitwise() {
        let c = catalog();
        let m = build_hmmm(&c, &BuildConfig::default()).unwrap();
        for e in 0..EventKind::COUNT {
            let union = (0..m.video_count())
                .map(|v| m.coarse.sim_max(v, e))
                .fold(0.0, f64::max);
            assert_eq!(
                union.to_bits(),
                max_calibrated_similarity(&m, e).to_bits(),
                "event {e}"
            );
        }
    }

    #[test]
    fn summaries_match_scalar_folds() {
        let c = catalog();
        let m = build_hmmm(&c, &BuildConfig::default()).unwrap();
        let mut offset = 0usize;
        for (v, local) in m.locals.iter().enumerate() {
            for e in 0..EventKind::COUNT {
                let mut sim_max = 0.0f64;
                let mut start_max = 0.0f64;
                let mut start_joint = 0.0f64;
                for s in 0..local.len() {
                    let sim = calibrated_similarity(&m, offset + s, e);
                    sim_max = sim_max.max(sim);
                    let w = local.pi1.get(s) * sim;
                    start_max = start_max.max(w);
                    start_joint = start_joint.max(w * local.a1_row_max[s]);
                }
                assert_eq!(m.coarse.sim_max(v, e).to_bits(), sim_max.to_bits());
                assert_eq!(
                    m.coarse.start_max[v * EventKind::COUNT + e].to_bits(),
                    start_max.to_bits()
                );
                assert_eq!(
                    m.coarse.start_joint[v * EventKind::COUNT + e].to_bits(),
                    start_joint.to_bits()
                );
            }
            offset += local.len();
        }
    }

    #[test]
    fn video_bounds_dominate_retrieved_scores() {
        let c = catalog();
        let m = build_hmmm(&c, &BuildConfig::default()).unwrap();
        let pattern = translator().compile("free_kick -> goal").unwrap();
        let r = crate::Retriever::new(&m, &c, crate::RetrievalConfig::content_only()).unwrap();
        let (results, _) = r.retrieve(&pattern, 10).unwrap();
        assert!(!results.is_empty());
        for p in &results {
            let v = p.video.index();
            let vb = m.coarse.video_bounds(v, &m.locals[v], &pattern);
            assert!(
                vb.video_ub() >= p.score,
                "coarse bound {} below retrieved score {} for video {v}",
                vb.video_ub(),
                p.score
            );
        }
    }

    #[test]
    fn bound_lookups_counts_table_reads() {
        let pattern = translator().compile("free_kick|corner_kick -> goal").unwrap();
        // 2 + 1 step reads, plus 2 × 2 start reads on the first step.
        assert_eq!(CoarseIndex::bound_lookups(&pattern), 7);
    }

    #[test]
    fn matches_and_audit_accept_fresh_reject_stale() {
        let c = catalog();
        let mut m = build_hmmm(&c, &BuildConfig::default()).unwrap();
        assert!(m.coarse.matches(&m));
        assert!(m.coarse.audit(&m).is_ok());
        // Postings drift is caught by the cheap predicate.
        let goal = EventKind::Goal.index();
        let mut stale = m.coarse.clone();
        stale.postings[goal].pop();
        assert!(!stale.matches(&m));
        assert!(matches!(
            stale.audit(&m),
            Err(CoreError::Inconsistent(msg)) if msg.contains("coarse postings")
        ));
        // A poked bound cell passes the cheap predicate but fails the
        // bitwise audit.
        let cell = goal; // video 0, event goal
        let mut poked = m.coarse.clone();
        poked.sim_max[cell] += 0.25;
        assert!(poked.matches(&m));
        assert!(matches!(
            poked.audit(&m),
            Err(CoreError::Inconsistent(msg)) if msg.contains("sim_max")
        ));
        // Mutating Π_1 without a refresh makes the stored start summaries
        // stale; refresh_coarse repairs them.
        let old = m.clone();
        m.locals[0].pi1 = hmmm_matrix::ProbVector::from_counts(&[5.0, 1.0, 1.0]).unwrap();
        m.locals[0].refresh_bounds();
        assert!(m.coarse.audit(&m).is_err());
        m.refresh_coarse();
        assert!(m.coarse.audit(&m).is_ok());
        assert_ne!(m.coarse, old.coarse);
    }

    #[test]
    fn empty_index_matches_nothing_built() {
        let c = catalog();
        let m = build_hmmm(&c, &BuildConfig::default()).unwrap();
        assert!(!CoarseIndex::empty().matches(&m));
        assert_eq!(CoarseIndex::empty().postings_len(), 0);
    }

    #[test]
    fn serde_round_trip() {
        let c = catalog();
        let m = build_hmmm(&c, &BuildConfig::default()).unwrap();
        let json = serde_json::to_string(&m.coarse).unwrap();
        let back: CoarseIndex = serde_json::from_str(&json).unwrap();
        assert_eq!(m.coarse, back);
    }
}
