//! # hmmm-core
//!
//! The Hierarchical Markov Model Mediator — the primary contribution of
//! Zhao, Chen & Shyu, *Video Database Modeling and Temporal Pattern
//! Retrieval using Hierarchical Markov Model Mediator* (ICDE 2006).
//!
//! An HMMM (Definition 1) is the 8-tuple `λ = (d, S, F, A, B, Π, P, L)`:
//! `d` hierarchy levels of states `S_n` with feature sets `F_n`, per-level
//! affinity matrices `A_n`, feature matrices `B_n` and initial-state
//! distributions `Π_n`, plus cross-level feature-importance matrices
//! `P_{n,n+1}` and link conditions `L_{n,n+1}`.
//!
//! The paper deploys a **two-level** instance over a soccer archive (§4.2):
//! one *local* MMM per video over its shots (temporal affinity `A_1`,
//! Table-1 features `B_1`, `Π_1`), and one *integrated* MMM over the videos
//! (`A_2`, event counts `B_2`, `Π_2`), glued by the feature-importance
//! matrix `P_{1,2}`, the per-event centroids `B_1'`, and the shot→video
//! links `L_{1,2}`. This crate implements that instance end to end:
//!
//! * [`model`] — the [`model::Hmmm`] container and its invariants.
//! * [`construct`] — §4.2 construction, including the closed-form `A_1`
//!   initialization whose worked example (2/3, 1/3, 1/2, 1/2, 1) is a unit
//!   test, `P_{1,2}` uniform init (Eq. 7) and dispersion learning
//!   (Eqs. 8–10), and `B_1'` centroids (Eq. 11).
//! * [`sim`] — the Eq.-14 shot/event similarity.
//! * [`simcache`] — the query-scoped dense similarity table that turns
//!   hot-path Eq.-14 scoring into array reads.
//! * [`retrieve`] — the §5 nine-step retrieval: per-video lattice beam
//!   traversal (Figure 3) with edge weights (Eqs. 12–13), pattern scores
//!   (Eq. 15), `A_2`-guided video ordering (optionally fanned across a
//!   scoped-thread worker pool), and cost accounting.
//! * [`bounds`] / [`topk`] — the exact top-k pruning machinery: admissible
//!   Eq.-13 completion bounds and the lock-free shared k-th-best-score
//!   register the traversal prunes against.
//! * [`coarse`] — the ingest-time coarse index (inverted `B_2` event →
//!   video postings + precomputed per-video bound summaries) behind the
//!   two-stage coarse-to-fine retrieval modes
//!   ([`retrieve::CoarseMode`]).
//! * [`feedback`] — positive-pattern logging and the offline learning
//!   updates (Eqs. 1–2, 4, 5–6, 8–10).
//! * [`simulate`] — a ground-truth relevance oracle standing in for the
//!   paper's human feedback (see DESIGN.md substitutions).
//! * [`audit`] — the λ-invariant deep auditor: numeric Definition-1
//!   well-formedness checks (row-stochastic `A_n`, unit-mass `Π_n`/`P_{1,2}`,
//!   the `L_{1,2}` partition, `B_1'` sanity, fresh pruning bounds) behind
//!   [`model::Hmmm::deep_audit`] and the `hmmm check` CLI subcommand.
//! * [`order`] — the blessed total-order float comparators every ranking
//!   sort goes through (re-exported from `hmmm_matrix::order`).
//! * [`metrics`] — the canonical metric/span names this crate records
//!   through [`hmmm_obs`] (attach a recorder via
//!   [`retrieve::RetrievalConfig::recorder`] to observe the hot path).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod bounds;
pub mod cluster;
pub mod coarse;
pub mod construct;
pub mod error;
pub mod fault;
pub mod feedback;
pub mod io;
pub mod metrics;
pub mod model;
pub mod order;
pub mod retrieve;
pub mod sim;
pub mod simcache;
pub mod simulate;
pub mod topk;

pub use hmmm_obs as obs;
pub use hmmm_obs::{InMemoryRecorder, MetricsReport, RecorderHandle};

pub use audit::AuditSummary;
pub use bounds::{QueryBounds, VideoBounds};
pub use coarse::CoarseIndex;
pub use order::{cmp_f64, cmp_f64_desc};
pub use cluster::CategoryLevel;
pub use construct::{build_hmmm, build_hmmm_observed, BuildConfig};
pub use error::CoreError;
pub use fault::{FaultHandle, FaultPlan, FaultyStream, NetFaultStats};
pub use feedback::{FeedbackConfig, FeedbackLog, PositivePattern, UpdateReport};
pub use io::{load_model, load_model_with, save_model, save_model_with};
pub use model::{Hmmm, LocalMmm, ModelSummary};
pub use retrieve::{
    CoarseMode, DeadlineConfig, Degraded, DegradedReason, QueryScratch, RankedPattern,
    RetrievalConfig, RetrievalStats, Retriever,
};
pub use sim::{similarity, similarity_block};
pub use simcache::SimCache;
pub use topk::SharedTopK;
pub use simulate::{FeedbackSimulator, OracleConfig};
