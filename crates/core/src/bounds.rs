//! Admissible upper bounds for the exact top-k pruned traversal.
//!
//! The Eq.-13 lattice walk is monotone: every edge multiplies the running
//! weight by `A_1(prev, next) · sim(next, e)`, both factors non-negative and
//! bounded. Similarities are bounded by the per-event maximum of the
//! calibrated Eq.-14 score over the shots in scope: one video's range when
//! the query cache is available
//! ([`crate::simcache::SimCache::max_calibrated_in`], the tight variant),
//! the whole archive otherwise
//! ([`crate::sim::max_calibrated_similarity`]). Transitions are bounded by
//! the *forward row maxima* of `A_1` ([`LocalMmm::a1_row_max`]): the walk
//! only ever moves forward through a video's shots, so an entry sitting on
//! shot `s` multiplies by at most `max_{t ≥ s} A_1(s, t)` on its next hop —
//! and by at most the video-wide forward maximum [`LocalMmm::a1_max`] on
//! every hop after that (whose source shot is not yet known). Folding those
//! factors along the remaining pattern steps bounds everything a partial
//! walk can still add to its Eq.-15 sum, which is exactly what
//! branch-and-bound needs:
//!
//! * `step_max[j]` — largest calibrated similarity any in-scope shot
//!   attains against any of step `j`'s alternative events (`sm_j`).
//! * `chain[j]`    — per video: max of `Σ_{i>j} w_i / (w_j · a)` over all
//!   continuations of an entry at step `j` whose first hop uses transition
//!   factor `a`, via the recurrence `chain[C−1] = 0`,
//!   `chain[j] = sm_{j+1} · (1 + a1_max · chain[j+1])` (this edge's
//!   similarity, then whatever its own suffix can add). The first-hop
//!   transition factor is deliberately left *out* of the chain so each
//!   bound site can charge the tightest factor it knows — the entry's own
//!   row maximum, or `pi1_max`/`a1_max` when no row is pinned down.
//! * `UB(video)`   — `Π_1`-start version of the same:
//!   `pi1_max · sm_0 · (1 + a1_max · chain[0]) ≥ max achievable SS` in the
//!   video; or, tighter, the caller folds the actual per-shot start weights
//!   and row maxima ([`VideoBounds::with_video_ub`]).
//!
//! # Float safety margin
//!
//! The real-arithmetic inequalities above survive rounding *almost*
//! everywhere (rounding is monotone per operation), but when a bound is
//! exactly tight — the maximal shot *is* the walked path — the traversal and
//! the bound evaluate the same product in different association orders and
//! may round to adjacent representable values in either direction. A bound
//! that rounds one ulp below a score that rounds one ulp above would prune a
//! genuine top-k candidate. Every bound is therefore inflated by
//! [`BOUND_SLACK`] (a relative 2⁻³⁰ ≈ 9.3e-10 — about five orders of
//! magnitude above the worst accumulated rounding error for realistic
//! pattern lengths, and far too small to keep any genuinely hopeless
//! candidate alive for long). Admissibility is preserved; tightness is
//! given up by a hair.

use crate::model::LocalMmm;

/// Relative inflation applied to every bound so float rounding can never
/// make an exact-tight bound dip below the score it dominates.
pub const BOUND_SLACK: f64 = 1.0 + 1.0 / (1u64 << 30) as f64;

/// Per-query step similarity maxima (`sm_j`), shared by all videos.
#[derive(Debug, Clone)]
pub struct QueryBounds {
    /// `sm_j`: max calibrated similarity over step `j`'s alternatives,
    /// maximized over every shot in scope (one video's range, or the whole
    /// archive in the uncached fallback).
    step_max: Vec<f64>,
}

impl QueryBounds {
    /// Wraps precomputed per-step maxima of the Eq.-14 similarity factor
    /// (one entry `sm_j` per pattern step).
    /// The caller derives them from the similarity source in use: with the
    /// query cache they can be *per-video* maxima
    /// ([`crate::simcache::SimCache::max_calibrated_in`] over the video's
    /// shot range — much tighter); without it, the archive-wide
    /// `sim.rs` scan. Either is admissible for the video(s) it covers.
    pub fn new(step_max: Vec<f64>) -> Self {
        QueryBounds { step_max }
    }

    /// Number of pattern steps covered.
    pub fn step_count(&self) -> usize {
        self.step_max.len()
    }

    /// `sm_j` for step `j`.
    pub fn step_max(&self, step: usize) -> f64 {
        self.step_max[step]
    }

    /// Specializes the query bounds to one video, bounding the Eq.-12
    /// start weight by the separable `pi1_max · sm_0` product and the
    /// first Eq.-13 hop
    /// by the video-wide forward maximum `a1_max`. Tight enough for the
    /// uncached fallback; callers holding the query cache should refine
    /// the whole-video bound with [`VideoBounds::with_video_ub`].
    pub fn for_video(&self, local: &LocalMmm) -> VideoBounds {
        let chain = self.chain_for(local);
        let video_ub = if self.step_max.is_empty() {
            0.0
        } else {
            local.pi1_max * self.step_max[0] * (1.0 + local.a1_max * chain[0]) * BOUND_SLACK
        };
        VideoBounds { chain, video_ub }
    }

    /// The `chain[j]` recurrence for one video (see the module docs).
    fn chain_for(&self, local: &LocalMmm) -> Vec<f64> {
        let steps = self.step_max.len();
        let mut chain = vec![0.0; steps.max(1)];
        for j in (0..steps.saturating_sub(1)).rev() {
            chain[j] = self.step_max[j + 1] * (1.0 + local.a1_max * chain[j + 1]);
        }
        chain
    }
}

/// Bounds specialized to one video (its `A_1`/`Π_1` maxima folded in).
#[derive(Debug, Clone)]
pub struct VideoBounds {
    /// `chain[j]`: admissible max of `Σ_{i>j} w_i / (w_j · a)` where `a`
    /// is the first hop's transition factor (charged by the caller).
    chain: Vec<f64>,
    /// `UB(video) ≥ max achievable SS` of any candidate in the video.
    video_ub: f64,
}

impl VideoBounds {
    /// Upper bound on the Eq.-15 score of *any* candidate this video can
    /// produce. Strictly below the top-k threshold ⇒ the whole video is
    /// skipped before `traverse_video`.
    pub fn video_ub(&self) -> f64 {
        self.video_ub
    }

    /// `chain[0]` — what a start shot's first hop multiplies into. Exposed
    /// so callers with per-shot start weights can fold the exact
    /// whole-video bound `max_s w_0(s) · (1 + row_max(s) · chain[0])`
    /// themselves (see [`VideoBounds::with_video_ub`]).
    pub fn chain0(&self) -> f64 {
        self.chain[0]
    }

    /// Replaces the whole-video bound with a caller-computed admissible
    /// `raw_ub` (the [`BOUND_SLACK`] inflation is applied here). With the
    /// query cache the caller can fold the joint Eq.-12/13 factor
    /// `max_s Π_1(s) · sim(s, step 0) ·
    /// (1 + a1_row_max[s] · chain[0])` in one pass of table reads — far
    /// tighter than the separable product of [`QueryBounds::for_video`],
    /// since `Π_1` mass, high similarity and a strong outgoing transition
    /// rarely coincide on one shot.
    pub fn with_video_ub(mut self, raw_ub: f64) -> VideoBounds {
        self.video_ub = raw_ub * BOUND_SLACK;
        self
    }

    /// Upper bound on the final Eq.-15 score of a beam entry sitting at
    /// `step` with partial sum `score`, running weight `weight`, and
    /// forward transition maximum `row_max` out of its current shot
    /// ([`LocalMmm::a1_row_max`]). Strictly below the threshold ⇒ the
    /// entry can never reach the top-k.
    pub fn entry_ub(&self, score: f64, weight: f64, step: usize, row_max: f64) -> f64 {
        (score + weight * row_max * self.chain[step]) * BOUND_SLACK
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmmm_matrix::{ProbVector, StochasticMatrix};

    fn local(a1_rows: &[&[f64]], pi1: &[f64]) -> LocalMmm {
        let n = a1_rows.len();
        let mut m = hmmm_matrix::Matrix::zeros(n, n);
        for (i, row) in a1_rows.iter().enumerate() {
            for (j, &x) in row.iter().enumerate() {
                m[(i, j)] = x;
            }
        }
        LocalMmm::new(
            StochasticMatrix::new(m).unwrap(),
            ProbVector::from_counts(pi1).unwrap(),
        )
    }

    #[test]
    fn chain_recurrence_matches_hand_fold() {
        let l = local(
            &[&[0.2, 0.8], &[0.5, 0.5]],
            &[1.0, 3.0], // normalizes to [0.25, 0.75]
        );
        assert_eq!(l.a1_row_max, vec![0.8, 0.5]);
        assert_eq!(l.a1_max, 0.8);
        assert_eq!(l.pi1_max, 0.75);
        let qb = QueryBounds::new(vec![0.9, 0.6, 0.4]);
        let vb = qb.for_video(&l);
        // chain[2] = 0; chain[1] = 0.4·1 = 0.4;
        // chain[0] = 0.6·(1 + 0.8·0.4) = 0.792.
        assert_eq!(vb.chain[2], 0.0);
        assert!((vb.chain[1] - 0.4).abs() < 1e-12);
        assert!((vb.chain[0] - 0.792).abs() < 1e-12);
        assert!((vb.chain0() - 0.792).abs() < 1e-12);
        // UB = 0.75·0.9·(1 + 0.8·0.792)·slack.
        let expect = 0.75 * 0.9 * (1.0 + 0.8 * 0.792) * BOUND_SLACK;
        assert!((vb.video_ub() - expect).abs() < 1e-12);
        // A caller-refined whole-video bound replaces it, slack included.
        let refined = vb.clone().with_video_ub(0.5);
        assert!((refined.video_ub() - 0.5 * BOUND_SLACK).abs() < 1e-15);
    }

    #[test]
    fn entry_ub_dominates_every_enumerated_completion() {
        // Tiny 3-shot lattice, 3-step pattern: enumerate all *forward*
        // completions (the only ones the walk can take) of every
        // (start, step) prefix by brute force and check domination —
        // entry bounds charged with each prefix shot's own row maximum.
        let a1 = [
            [0.1, 0.6, 0.3],
            [0.4, 0.2, 0.4],
            [0.3, 0.3, 0.4],
        ];
        let l = local(
            &[&a1[0], &a1[1], &a1[2]],
            &[0.2, 0.5, 0.3],
        );
        assert_eq!(l.a1_row_max, vec![0.6, 0.4, 0.4]);
        let sims = [
            [0.9, 0.1, 0.5], // sim(shot, step) for step 0..3
            [0.2, 0.8, 0.3],
            [0.4, 0.4, 0.7],
        ];
        let sm: Vec<f64> = (0..3)
            .map(|j| (0..3).map(|s| sims[s][j]).fold(0.0, f64::max))
            .collect();
        let qb = QueryBounds::new(sm);
        let vb = qb.for_video(&l);

        // All forward paths s0 ≤ s1 ≤ s2; track best completion per prefix.
        let pi = [0.2, 0.5, 0.3];
        for s0 in 0..3 {
            let w0 = pi[s0] * sims[s0][0];
            let mut best_from_s0 = w0;
            for s1 in s0..3 {
                let w1 = w0 * a1[s0][s1] * sims[s1][1];
                let mut best_from_s1 = w0 + w1;
                for s2 in s1..3 {
                    let w2 = w1 * a1[s1][s2] * sims[s2][2];
                    let total = w0 + w1 + w2;
                    best_from_s1 = best_from_s1.max(total);
                    best_from_s0 = best_from_s0.max(total);
                    assert!(vb.video_ub() >= total);
                    // An entry settled at the final step bounds itself.
                    assert!(vb.entry_ub(total, w2, 2, l.a1_row_max[s2]) >= total);
                }
                assert!(
                    vb.entry_ub(w0 + w1, w1, 1, l.a1_row_max[s1]) >= best_from_s1,
                    "step-1 entry bound below its best completion"
                );
            }
            assert!(vb.entry_ub(w0, w0, 0, l.a1_row_max[s0]) >= best_from_s0);
        }
    }

    #[test]
    fn refined_video_ub_is_tighter_and_still_admissible() {
        // Same lattice: the per-shot start fold must dominate every
        // forward path yet sit at or below the separable product.
        let a1 = [
            [0.1, 0.6, 0.3],
            [0.4, 0.2, 0.4],
            [0.3, 0.3, 0.4],
        ];
        let l = local(&[&a1[0], &a1[1], &a1[2]], &[0.2, 0.5, 0.3]);
        let sims = [[0.9, 0.1], [0.2, 0.8], [0.4, 0.4]];
        let sm: Vec<f64> = (0..2)
            .map(|j| (0..3).map(|s| sims[s][j]).fold(0.0, f64::max))
            .collect();
        let vb = QueryBounds::new(sm).for_video(&l);
        let pi = [0.2, 0.5, 0.3];
        let raw = (0..3)
            .map(|s| pi[s] * sims[s][0] * (1.0 + l.a1_row_max[s] * vb.chain0()))
            .fold(0.0, f64::max);
        let refined = vb.clone().with_video_ub(raw);
        assert!(refined.video_ub() <= vb.video_ub());
        for s0 in 0..3 {
            let w0 = pi[s0] * sims[s0][0];
            assert!(refined.video_ub() >= w0);
            for s1 in s0..3 {
                let total = w0 + w0 * a1[s0][s1] * sims[s1][1];
                assert!(refined.video_ub() >= total, "start {s0} → {s1}");
            }
        }
    }

    #[test]
    fn empty_pattern_bounds_to_zero() {
        let l = local(&[&[1.0]], &[1.0]);
        let qb = QueryBounds::new(vec![]);
        let vb = qb.for_video(&l);
        assert_eq!(vb.video_ub(), 0.0);
        assert_eq!(qb.step_count(), 0);
    }
}
