//! Feedback logging and offline learning (§4.2.1.1-2, Eqs. 1–10).
//!
//! The paper's training system "records all the user access patterns and
//! access frequencies during a training period … once the number of newly
//! achieved feedbacks reaches a certain threshold, the update of the `A_1`
//! matrix can be triggered automatically. All the computations should be
//! done offline." [`FeedbackLog`] is that recorder; [`FeedbackLog::apply`]
//! is the offline update:
//!
//! * `A_1` — Eq. (1) affinity accumulation (`aff_1(m,n) = A_1(m,n) ·
//!   Σ_k use·use·access`, forward pairs only) + Eq. (2) row normalization;
//! * `Π_1` — Eq. (4) initial-state re-estimation from pattern starts;
//! * `A_2`, `Π_2` — Eqs. (5)–(6) from video co-access within a query;
//! * `P_{1,2}` — Eqs. (8)–(10) re-learned from the event membership grown
//!   by confirmed patterns; `B_1'` — Eq. (11) likewise.
//!
//! One deliberate deviation, documented in DESIGN.md: a literal Eq. (1)
//! *zeroes* every transition no feedback pattern has touched, which after
//! one sparse round disconnects most of the lattice. A retention term
//! `λ · A_1` is mixed into the counts before normalizing (λ =
//! [`FeedbackConfig::retention`]; `0.0` recovers the literal behaviour).

use crate::construct;
use crate::error::CoreError;
use crate::metrics;
use crate::model::Hmmm;
use hmmm_features::FeatureVector;
use hmmm_obs::RecorderHandle;
use hmmm_matrix::dense::ZeroRowPolicy;
use hmmm_matrix::{Matrix, ProbVector, StochasticMatrix};
use hmmm_media::EventKind;
use hmmm_storage::{Catalog, ShotId, VideoId};
use serde::{Deserialize, Serialize};

/// One positive (user-confirmed) pattern — the unit of feedback.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PositivePattern {
    /// Query session this judgment belongs to (videos confirmed in the
    /// same session co-accumulate in `A_2`).
    pub query: u64,
    /// The video the pattern lives in.
    pub video: VideoId,
    /// The confirmed shots, in temporal order (global ids).
    pub shots: Vec<ShotId>,
    /// The event matched at each step (dense indices; same length as
    /// `shots`). Grows the per-event membership used by Eqs. (8)–(11).
    pub events: Vec<usize>,
    /// Access frequency `access(k)` (how often the user retrieved it).
    pub access: f64,
}

/// Learning hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeedbackConfig {
    /// Feedback count that triggers an automatic offline update.
    pub update_threshold: u64,
    /// Prior-retention mixing weight `λ` for `A_1`/`A_2`/`Π` updates.
    pub retention: f64,
    /// Dispersion floor for the Eq.-(8) re-learning of `P_{1,2}`.
    pub std_floor: f64,
    /// Re-learn `P_{1,2}`/`B_1'` from the grown event membership.
    pub relearn_p12: bool,
}

impl Default for FeedbackConfig {
    fn default() -> Self {
        FeedbackConfig {
            update_threshold: 20,
            retention: 0.1,
            std_floor: 1e-3,
            relearn_p12: true,
        }
    }
}

/// What an offline update changed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UpdateReport {
    /// Patterns consumed by this update.
    pub patterns_applied: usize,
    /// Videos whose `A_1` changed.
    pub videos_updated: usize,
    /// Frobenius distance between old and new `P_{1,2}`.
    pub p12_drift: f64,
    /// Mean Frobenius distance of updated `A_1` blocks.
    pub a1_drift: f64,
}

/// The feedback recorder.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FeedbackLog {
    patterns: Vec<PositivePattern>,
    /// Extra (shot, event) assignments confirmed across *all* feedback ever
    /// applied — event membership only grows (the paper keeps all access
    /// patterns from the training period).
    confirmed_members: Vec<(ShotId, usize)>,
}

impl FeedbackLog {
    /// An empty log.
    pub fn new() -> Self {
        FeedbackLog::default()
    }

    /// Records a positive pattern.
    ///
    /// # Errors
    ///
    /// [`CoreError::BadQuery`] when shots/events lengths differ or the shot
    /// list is not temporally ordered.
    pub fn record(&mut self, pattern: PositivePattern) -> Result<(), CoreError> {
        if pattern.shots.len() != pattern.events.len() {
            return Err(CoreError::BadQuery(
                "pattern shots/events length mismatch".into(),
            ));
        }
        if pattern.shots.windows(2).any(|w| w[1] < w[0]) {
            return Err(CoreError::BadQuery(
                "pattern shots must be in temporal order".into(),
            ));
        }
        if !(pattern.access.is_finite() && pattern.access >= 0.0) {
            return Err(CoreError::BadQuery("invalid access frequency".into()));
        }
        self.patterns.push(pattern);
        Ok(())
    }

    /// Number of patterns waiting to be applied.
    pub fn pending(&self) -> usize {
        self.patterns.len()
    }

    /// `true` once the configured threshold is reached (the paper's
    /// automatic update trigger).
    pub fn should_update(&self, config: &FeedbackConfig) -> bool {
        self.patterns.len() as u64 >= config.update_threshold
    }

    /// Applies all pending feedback to the model (the offline update),
    /// clearing the pending queue.
    ///
    /// # Examples
    ///
    /// Confirming the `shot 0 → shot 1` free-kick→goal pattern on the
    /// §4.2.1.1 three-shot video strengthens that `A_1` transition above its
    /// closed-form initial value of 2/3 (Eq. 1 accumulation + Eq. 2
    /// normalization):
    ///
    /// ```
    /// use hmmm_core::{build_hmmm, BuildConfig, FeedbackConfig, FeedbackLog, PositivePattern};
    /// use hmmm_features::{FeatureId, FeatureVector};
    /// use hmmm_media::EventKind;
    /// use hmmm_storage::{Catalog, ShotId, VideoId};
    ///
    /// # fn feat(grass: f64, volume: f64) -> FeatureVector {
    /// #     let mut f = FeatureVector::zeros();
    /// #     f[FeatureId::GrassRatio] = grass;
    /// #     f[FeatureId::VolumeMean] = volume;
    /// #     f
    /// # }
    /// let mut catalog = Catalog::new();
    /// catalog.add_video("v1", vec![
    ///     (vec![EventKind::FreeKick], feat(0.3, 0.2)),
    ///     (vec![EventKind::FreeKick, EventKind::Goal], feat(0.8, 0.9)),
    ///     (vec![EventKind::CornerKick], feat(0.5, 0.4)),
    /// ]);
    /// let mut model = build_hmmm(&catalog, &BuildConfig::default()).unwrap();
    /// assert!((model.locals[0].a1.get(0, 1) - 2.0 / 3.0).abs() < 1e-12);
    ///
    /// let mut log = FeedbackLog::new();
    /// log.record(PositivePattern {
    ///     query: 0,
    ///     video: VideoId(0),
    ///     shots: vec![ShotId(0), ShotId(1)],
    ///     events: vec![EventKind::FreeKick.index(), EventKind::Goal.index()],
    ///     access: 1.0,
    /// }).unwrap();
    ///
    /// let report = log.apply(&mut model, &catalog, &FeedbackConfig::default()).unwrap();
    /// assert_eq!(report.patterns_applied, 1);
    /// assert!(model.locals[0].a1.get(0, 1) > 2.0 / 3.0);
    /// ```
    ///
    /// # Errors
    ///
    /// [`CoreError::Inconsistent`] for out-of-range ids,
    /// [`CoreError::Matrix`] on degenerate matrix states.
    pub fn apply(
        &mut self,
        model: &mut Hmmm,
        catalog: &Catalog,
        config: &FeedbackConfig,
    ) -> Result<UpdateReport, CoreError> {
        self.apply_observed(model, catalog, config, &RecorderHandle::noop())
    }

    /// [`FeedbackLog::apply`] (Eqs. 1–2, 4, 5–6, 8–10) with per-stage
    /// observability: spans around
    /// the `A_1`/`Π_1`, `A_2`/`Π_2` and `P_{1,2}` updates plus the
    /// `feedback.*` counters — see [`crate::metrics`]. With a noop handle
    /// this is exactly `apply`.
    ///
    /// # Errors
    ///
    /// Same as [`FeedbackLog::apply`].
    pub fn apply_observed(
        &mut self,
        model: &mut Hmmm,
        catalog: &Catalog,
        config: &FeedbackConfig,
        obs: &RecorderHandle,
    ) -> Result<UpdateReport, CoreError> {
        let _root = obs.span(metrics::SPAN_FEEDBACK);
        let patterns = std::mem::take(&mut self.patterns);
        if patterns.is_empty() {
            return Ok(UpdateReport {
                patterns_applied: 0,
                videos_updated: 0,
                p12_drift: 0.0,
                a1_drift: 0.0,
            });
        }
        for p in &patterns {
            let Some(video) = catalog.video(p.video) else {
                return Err(CoreError::Inconsistent(format!(
                    "feedback references unknown {}",
                    p.video
                )));
            };
            if p
                .shots
                .iter()
                .any(|s| !video.shot_range.contains(&s.index()))
            {
                return Err(CoreError::Inconsistent(format!(
                    "feedback shot outside {}",
                    p.video
                )));
            }
        }

        // --- A_1 / Π_1 per video (Eqs. 1, 2, 4).
        let local_span = obs.span(metrics::SPAN_FEEDBACK_LOCAL);
        let mut videos_updated = 0usize;
        let mut a1_drift_total = 0.0;
        for (v, local) in model.locals.iter_mut().enumerate() {
            let video_patterns: Vec<&PositivePattern> =
                patterns.iter().filter(|p| p.video.index() == v).collect();
            if video_patterns.is_empty() {
                continue;
            }
            // The pattern-validation loop above only proves that every
            // *referenced* video exists; a catalog with fewer videos than
            // the model has locals (stale snapshot passed alongside a newer
            // model) would still reach this lookup. Error out instead of
            // panicking the feedback path.
            let Some(record) = catalog.video(VideoId(v)) else {
                return Err(CoreError::Inconsistent(format!(
                    "feedback update: model video {v} missing from catalog \
                     of {} videos (stale catalog?)",
                    catalog.video_count()
                )));
            };
            let base = record.shot_range.start;
            let n = local.len();

            // Eq. (1): counts weighted by the *current* A_1 entries, plus
            // the retention prior.
            let old = local.a1.as_matrix().clone();
            let mut counts = old.clone();
            counts.scale(config.retention);
            for p in &video_patterns {
                let locals: Vec<usize> = p.shots.iter().map(|s| s.index() - base).collect();
                for (i, &m) in locals.iter().enumerate() {
                    for &nn in &locals[i..] {
                        counts[(m, nn)] += old[(m, nn)] * p.access;
                    }
                }
            }
            let updated = StochasticMatrix::normalize(counts, ZeroRowPolicy::SelfLoop)?;
            a1_drift_total += updated.as_matrix().frobenius_distance(&old)?;
            local.a1 = updated;

            // Eq. (4): initial-state usage — pattern starting shots.
            let mut usage = vec![0.0; n];
            for p in &video_patterns {
                if let Some(first) = p.shots.first() {
                    usage[first.index() - base] += p.access;
                }
            }
            let mut blended: Vec<f64> = local
                .pi1
                .as_slice()
                .iter()
                .map(|&x| x * config.retention.max(f64::MIN_POSITIVE))
                .collect();
            let total_usage: f64 = usage.iter().sum();
            if total_usage > 0.0 {
                for (b, u) in blended.iter_mut().zip(usage.iter()) {
                    *b += u / total_usage;
                }
            }
            local.pi1 = ProbVector::from_counts(&blended)?;
            // Both matrices just moved; stale maxima would make the top-k
            // pruning bounds inadmissible (validate_against checks this).
            local.refresh_bounds();
            videos_updated += 1;
        }

        drop(local_span);

        // --- A_2 / Π_2 (Eqs. 5, 6): co-access of videos within a query.
        let level2_span = obs.span(metrics::SPAN_FEEDBACK_LEVEL2);
        let m = model.video_count();
        let mut a2_counts = model.a2.as_matrix().clone();
        a2_counts.scale(config.retention);
        let mut queries: Vec<u64> = patterns.iter().map(|p| p.query).collect();
        queries.sort_unstable();
        queries.dedup();
        let mut video_usage = vec![0.0; m];
        for q in queries {
            let mut videos: Vec<(usize, f64)> = patterns
                .iter()
                .filter(|p| p.query == q)
                .map(|p| (p.video.index(), p.access))
                .collect();
            videos.sort_by_key(|&(v, _)| v);
            videos.dedup_by_key(|&mut (v, _)| v);
            for &(a, acc_a) in &videos {
                video_usage[a] += acc_a;
                for &(b, acc_b) in &videos {
                    a2_counts[(a, b)] += acc_a.min(acc_b);
                    let _ = b;
                }
            }
        }
        model.a2 = StochasticMatrix::normalize(a2_counts, ZeroRowPolicy::Uniform)?;
        let mut pi2_counts: Vec<f64> = model
            .pi2
            .as_slice()
            .iter()
            .map(|&x| x * config.retention.max(f64::MIN_POSITIVE))
            .collect();
        let usage_total: f64 = video_usage.iter().sum();
        if usage_total > 0.0 {
            for (c, u) in pi2_counts.iter_mut().zip(video_usage.iter()) {
                *c += u / usage_total;
            }
        }
        model.pi2 = ProbVector::from_counts(&pi2_counts)?;
        drop(level2_span);

        // --- P_{1,2} / B_1' (Eqs. 8–11) over the grown membership.
        let cross_span = obs.span(metrics::SPAN_FEEDBACK_CROSS);
        for p in &patterns {
            for (&shot, &event) in p.shots.iter().zip(p.events.iter()) {
                if event < EventKind::COUNT {
                    self.confirmed_members.push((shot, event));
                }
            }
        }
        let p12_drift = if config.relearn_p12 {
            let old_p12 = model.p12.as_matrix().clone();
            let (p12, b1_prime) = relearn_cross_level(
                catalog,
                &model.b1,
                &self.confirmed_members,
                config.std_floor,
            )?;
            model.p12 = p12;
            model.b1_prime = b1_prime;
            // The cross-level matrices just moved: repack the per-event
            // Eq.-14 terms and their memoized self-similarity denominators
            // (validate_against checks their freshness).
            model.refresh_event_terms();
            model.p12.as_matrix().frobenius_distance(&old_p12)?
        } else {
            0.0
        };
        drop(cross_span);

        // The coarse retrieval index folds Π_1/A_1 row maxima and the
        // calibrated Eq.-14 scores — all of which just moved (Π_1/A_1
        // unconditionally above, P_{1,2}/B_1' under `relearn_p12`) — so it
        // is rebuilt unconditionally, after the event terms it reads.
        model.refresh_coarse();

        if obs.is_enabled() {
            obs.counter(metrics::CTR_FEEDBACK_PATTERNS, patterns.len() as u64);
            obs.counter(metrics::CTR_FEEDBACK_VIDEOS, videos_updated as u64);
        }

        Ok(UpdateReport {
            patterns_applied: patterns.len(),
            videos_updated,
            p12_drift,
            a1_drift: if videos_updated > 0 {
                a1_drift_total / videos_updated as f64
            } else {
                0.0
            },
        })
    }
}

/// Recomputes `P_{1,2}` (Eqs. 8–10) and `B_1'` (Eq. 11) over catalog
/// annotations plus feedback-confirmed members.
fn relearn_cross_level(
    catalog: &Catalog,
    b1: &[FeatureVector],
    extra: &[(ShotId, usize)],
    std_floor: f64,
) -> Result<(StochasticMatrix, Vec<FeatureVector>), CoreError> {
    let mut members: Vec<Vec<FeatureVector>> = vec![Vec::new(); EventKind::COUNT];
    for (e, kind) in EventKind::ALL.iter().enumerate() {
        for id in catalog.shots_with_event(*kind) {
            members[e].push(b1[id.index()]);
        }
    }
    for &(shot, event) in extra {
        if shot.index() < b1.len() && event < EventKind::COUNT {
            members[event].push(b1[shot.index()]);
        }
    }

    let k = hmmm_features::FEATURE_COUNT;
    let mut p = Matrix::zeros(EventKind::COUNT, k);
    let mut centroids = Vec::with_capacity(EventKind::COUNT);
    for (e, ms) in members.iter().enumerate() {
        centroids.push(FeatureVector::mean_of(ms));
        construct::dispersion_weights_into(ms, std_floor, e, &mut p);
    }
    let p12 = StochasticMatrix::normalize(p, ZeroRowPolicy::Uniform)?;
    Ok((p12, centroids))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{build_hmmm, BuildConfig};
    use hmmm_features::FeatureId;

    fn feat(g: f64, v: f64) -> FeatureVector {
        let mut f = FeatureVector::zeros();
        f[FeatureId::GrassRatio] = g;
        f[FeatureId::VolumeMean] = v;
        f
    }

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_video(
            "m1",
            vec![
                (vec![EventKind::FreeKick], feat(0.7, 0.2)),
                (vec![EventKind::Goal], feat(0.8, 0.9)),
                (vec![EventKind::CornerKick], feat(0.6, 0.3)),
                (vec![EventKind::Goal], feat(0.75, 0.95)),
            ],
        );
        c.add_video(
            "m2",
            vec![
                (vec![EventKind::FreeKick], feat(0.72, 0.22)),
                (vec![EventKind::Goal], feat(0.78, 0.88)),
            ],
        );
        c
    }

    fn pattern(query: u64, video: usize, shots: Vec<usize>, events: Vec<usize>) -> PositivePattern {
        PositivePattern {
            query,
            video: VideoId(video),
            shots: shots.into_iter().map(ShotId).collect(),
            events,
            access: 1.0,
        }
    }

    #[test]
    fn record_validates_patterns() {
        let mut log = FeedbackLog::new();
        assert!(log
            .record(pattern(0, 0, vec![0, 1], vec![2, 0]))
            .is_ok());
        assert!(log
            .record(pattern(0, 0, vec![1, 0], vec![0, 0]))
            .is_err()); // out of order
        assert!(log
            .record(pattern(0, 0, vec![0], vec![0, 1]))
            .is_err()); // length mismatch
        let mut bad = pattern(0, 0, vec![0], vec![0]);
        bad.access = f64::NAN;
        assert!(log.record(bad).is_err());
        assert_eq!(log.pending(), 1);
    }

    #[test]
    fn threshold_trigger() {
        let mut log = FeedbackLog::new();
        let cfg = FeedbackConfig {
            update_threshold: 2,
            ..FeedbackConfig::default()
        };
        assert!(!log.should_update(&cfg));
        log.record(pattern(0, 0, vec![0], vec![2])).unwrap();
        log.record(pattern(1, 0, vec![1], vec![0])).unwrap();
        assert!(log.should_update(&cfg));
    }

    #[test]
    fn apply_strengthens_confirmed_transition() {
        let c = catalog();
        let mut model = build_hmmm(&c, &BuildConfig::default()).unwrap();
        let before = model.locals[0].a1.get(0, 1);
        assert!(before > 0.0);
        let mut log = FeedbackLog::new();
        // Confirm free_kick(0) → goal(1) in video 0, many accesses.
        for q in 0..5 {
            log.record(PositivePattern {
                query: q,
                video: VideoId(0),
                shots: vec![ShotId(0), ShotId(1)],
                events: vec![EventKind::FreeKick.index(), EventKind::Goal.index()],
                access: 3.0,
            })
            .unwrap();
        }
        let report = log
            .apply(&mut model, &c, &FeedbackConfig::default())
            .unwrap();
        assert_eq!(report.patterns_applied, 5);
        assert_eq!(report.videos_updated, 1);
        assert!(report.a1_drift > 0.0);
        let after = model.locals[0].a1.get(0, 1);
        assert!(
            after > before,
            "confirmed transition must strengthen: {before} -> {after}"
        );
        // Rows remain stochastic.
        for i in 0..model.locals[0].len() {
            let s: f64 = model.locals[0].a1.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-8);
        }
        // Queue drained.
        assert_eq!(log.pending(), 0);
    }

    #[test]
    fn apply_updates_pi1_toward_pattern_starts() {
        let c = catalog();
        let mut model = build_hmmm(&c, &BuildConfig::default()).unwrap();
        let before = model.locals[0].pi1.get(1);
        let mut log = FeedbackLog::new();
        for q in 0..10 {
            log.record(PositivePattern {
                query: q,
                video: VideoId(0),
                shots: vec![ShotId(1), ShotId(3)],
                events: vec![EventKind::Goal.index(), EventKind::Goal.index()],
                access: 1.0,
            })
            .unwrap();
        }
        log.apply(&mut model, &c, &FeedbackConfig::default())
            .unwrap();
        let after = model.locals[0].pi1.get(1);
        assert!(after > before, "start shot must gain Π1 mass");
    }

    #[test]
    fn apply_updates_a2_coaccess() {
        let c = catalog();
        let mut model = build_hmmm(&c, &BuildConfig::default()).unwrap();
        let before = model.a2.get(0, 1);
        let mut log = FeedbackLog::new();
        // Same query confirms patterns in both videos.
        log.record(pattern(7, 0, vec![1], vec![EventKind::Goal.index()]))
            .unwrap();
        log.record(pattern(7, 1, vec![5], vec![EventKind::Goal.index()]))
            .unwrap();
        log.apply(&mut model, &c, &FeedbackConfig::default())
            .unwrap();
        let after = model.a2.get(0, 1);
        assert!(after > before, "co-accessed videos must bind: {before} -> {after}");
    }

    #[test]
    fn apply_on_empty_log_is_noop() {
        let c = catalog();
        let mut model = build_hmmm(&c, &BuildConfig::default()).unwrap();
        let snapshot = model.clone();
        let mut log = FeedbackLog::new();
        let report = log
            .apply(&mut model, &c, &FeedbackConfig::default())
            .unwrap();
        assert_eq!(report.patterns_applied, 0);
        assert_eq!(model, snapshot);
    }

    #[test]
    fn apply_rejects_foreign_ids() {
        let c = catalog();
        let mut model = build_hmmm(&c, &BuildConfig::default()).unwrap();
        let mut log = FeedbackLog::new();
        log.record(pattern(0, 9, vec![0], vec![0])).unwrap();
        assert!(matches!(
            log.apply(&mut model, &c, &FeedbackConfig::default()),
            Err(CoreError::Inconsistent(_))
        ));
        let mut log = FeedbackLog::new();
        // Shot 5 belongs to video 1, not video 0.
        log.record(pattern(0, 0, vec![5], vec![0])).unwrap();
        assert!(matches!(
            log.apply(&mut model, &c, &FeedbackConfig::default()),
            Err(CoreError::Inconsistent(_))
        ));
    }

    #[test]
    fn zero_retention_is_paper_literal() {
        // With λ = 0, transitions outside feedback vanish entirely.
        let c = catalog();
        let mut model = build_hmmm(&c, &BuildConfig::default()).unwrap();
        let mut log = FeedbackLog::new();
        log.record(PositivePattern {
            query: 0,
            video: VideoId(0),
            shots: vec![ShotId(0), ShotId(1)],
            events: vec![EventKind::FreeKick.index(), EventKind::Goal.index()],
            access: 1.0,
        })
        .unwrap();
        let cfg = FeedbackConfig {
            retention: 0.0,
            ..FeedbackConfig::default()
        };
        log.apply(&mut model, &c, &cfg).unwrap();
        // Transition 0→2 was never confirmed → literal Eq. (1) zeroes it.
        assert_eq!(model.locals[0].a1.get(0, 2), 0.0);
        assert!(model.locals[0].a1.get(0, 1) > 0.9);
    }
}
