//! The TCP front-end: a zero-dependency `std::net` wire protocol over the
//! in-process [`QueryServer`], designed so the network edge *degrades*
//! instead of failing — slow clients are shed, torn frames drop exactly
//! one connection, drains finish in-flight work, and every refusal carries
//! a stable status code a client can act on.
//!
//! # Wire protocol
//!
//! Every frame is a fixed 6-byte header followed by a JSON payload:
//!
//! ```text
//! ┌─────────┬────────┬──────────────────┬─────────────────────────┐
//! │ version │  kind  │ payload length   │ payload (UTF-8 JSON)    │
//! │ 1 byte  │ 1 byte │ 4 bytes, LE u32  │ ≤ MAX_FRAME_LEN bytes   │
//! └─────────┴────────┴──────────────────┴─────────────────────────┘
//! ```
//!
//! Kinds: [`FRAME_REQUEST`] carries a [`WireRequest`] (pattern text,
//! top-k limit, optional deadline), [`FRAME_RESPONSE`] a [`WireResponse`]
//! (status + ranked results), [`FRAME_STATUS`] a [`WireStatus`] (a refusal
//! or notice with no ranking). A frame longer than [`MAX_FRAME_LEN`] or
//! with the wrong version byte is a protocol violation: the server answers
//! [`STATUS_BAD_FRAME`] and closes, because framing can no longer be
//! trusted past that point.
//!
//! JSON is the payload codec because the vendored writer round-trips
//! `f64` bit-exactly (shortest-repr printing), so a ranking that crosses
//! the wire compares byte-identical to the in-process one — the property
//! `hmmm loadgen --connect … --check` asserts.
//!
//! # Status codes
//!
//! Every [`RejectReason`] and [`DegradedReason`] from the admission /
//! anytime-retrieval layers maps to one stable code (see the table in
//! `docs/SERVING.md`); [`status_name`] is the canonical code → name map.
//!
//! # Connection QoS
//!
//! The acceptor is bounded ([`NetConfig::max_connections`]); over-cap
//! connections are refused with [`STATUS_CONN_LIMIT`], never queued. Each
//! connection thread reads with a poll-tick timeout so two conditions are
//! noticed promptly: a drain in progress (idle connections get a final
//! [`STATUS_DRAINING`] notice and are closed) and a frame that started but
//! did not finish within [`NetConfig::frame_timeout`] (the slow-loris
//! client is shed, counted under `net.shed_slow_client`). Network read
//! time draws from the request's deadline budget exactly like queue wait
//! does in the [`QueryServer`]: a request whose budget was consumed before
//! admission is refused with [`STATUS_REJECTED_DEADLINE`].
//!
//! # Answered-exactly-once-or-dropped
//!
//! A response write that fails (peer gone, injected tear) is never
//! retried on that connection: the handler drops the connection instead,
//! because a failed write says nothing about how many bytes the peer
//! already received — rewriting risks duplicate delivery. The
//! `mc/connection.rs` protocol model checks exactly this contract, and its
//! seeded double-respond mutation shows what the checker catches when the
//! rule is broken.

use crate::server::{QueryRequest, QueryServer, RejectReason, ServeOutcome};
use hmmm_core::metrics as m;
use hmmm_core::{DegradedReason, FaultHandle, RankedPattern};
use hmmm_media::EventKind;
use hmmm_obs::RecorderHandle;
use hmmm_query::QueryTranslator;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Wire protocol version carried in byte 0 of every frame.
pub const PROTO_VERSION: u8 = 1;
/// Fixed frame header length: version, kind, LE u32 payload length.
pub const HEADER_LEN: usize = 6;
/// Hard cap on a frame's payload length. Anything longer is refused with
/// [`STATUS_BAD_FRAME`] before a single payload byte is buffered.
pub const MAX_FRAME_LEN: u32 = 1 << 20;

/// Frame kind: client → server query ([`WireRequest`]).
pub const FRAME_REQUEST: u8 = 1;
/// Frame kind: server → client ranking ([`WireResponse`]).
pub const FRAME_RESPONSE: u8 = 2;
/// Frame kind: server → client refusal/notice ([`WireStatus`]).
pub const FRAME_STATUS: u8 = 3;

/// The request completed with an exact ranking.
pub const STATUS_OK: u8 = 0;
/// Completed, degraded: [`DegradedReason::DeadlineExpired`].
pub const STATUS_DEGRADED_DEADLINE: u8 = 20;
/// Completed, degraded: [`DegradedReason::WorkerPanic`].
pub const STATUS_DEGRADED_PANIC: u8 = 21;
/// Completed, degraded: [`DegradedReason::DeadlineAndPanic`].
pub const STATUS_DEGRADED_DEADLINE_AND_PANIC: u8 = 22;
/// Refused: [`RejectReason::QueueFull`] (transient — safe to retry).
pub const STATUS_REJECTED_QUEUE_FULL: u8 = 40;
/// Refused: [`RejectReason::DeadlineBeforeService`] — the budget was
/// consumed by network read time and/or queue wait before any work.
pub const STATUS_REJECTED_DEADLINE: u8 = 41;
/// Refused: [`RejectReason::Shutdown`].
pub const STATUS_REJECTED_SHUTDOWN: u8 = 42;
/// Refused: [`RejectReason::Invalid`] (bad pattern text, engine refusal).
pub const STATUS_REJECTED_INVALID: u8 = 43;
/// Refused at accept (or per-connection request cap): connection limit.
pub const STATUS_CONN_LIMIT: u8 = 44;
/// Notice: the server is draining; this connection is being closed.
pub const STATUS_DRAINING: u8 = 50;
/// Protocol violation: bad version byte, over-cap length, or an
/// unparseable payload.
pub const STATUS_BAD_FRAME: u8 = 60;

/// Canonical name for a wire status code (the docs/SERVING.md table and
/// the loadgen report key off this single mapping).
pub fn status_name(code: u8) -> &'static str {
    match code {
        STATUS_OK => "ok",
        STATUS_DEGRADED_DEADLINE => "degraded: deadline expired",
        STATUS_DEGRADED_PANIC => "degraded: worker panic",
        STATUS_DEGRADED_DEADLINE_AND_PANIC => "degraded: deadline expired + worker panic",
        STATUS_REJECTED_QUEUE_FULL => "rejected: queue full",
        STATUS_REJECTED_DEADLINE => "rejected: deadline exhausted before service",
        STATUS_REJECTED_SHUTDOWN => "rejected: server shutting down",
        STATUS_REJECTED_INVALID => "rejected: invalid request",
        STATUS_CONN_LIMIT => "rejected: connection limit",
        STATUS_DRAINING => "draining",
        STATUS_BAD_FRAME => "bad frame",
        _ => "unknown status",
    }
}

/// Stable status code for an admission rejection.
pub fn status_for_reject(reason: &RejectReason) -> u8 {
    match reason {
        RejectReason::QueueFull => STATUS_REJECTED_QUEUE_FULL,
        RejectReason::DeadlineBeforeService => STATUS_REJECTED_DEADLINE,
        RejectReason::Shutdown => STATUS_REJECTED_SHUTDOWN,
        RejectReason::Invalid(_) => STATUS_REJECTED_INVALID,
    }
}

/// Stable status code for a degraded completion.
pub fn status_for_degraded(reason: DegradedReason) -> u8 {
    match reason {
        DegradedReason::DeadlineExpired => STATUS_DEGRADED_DEADLINE,
        DegradedReason::WorkerPanic => STATUS_DEGRADED_PANIC,
        DegradedReason::DeadlineAndPanic => STATUS_DEGRADED_DEADLINE_AND_PANIC,
    }
}

/// One query as it crosses the wire (payload of a [`FRAME_REQUEST`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireRequest {
    /// Query text, compiled server-side by the [`hmmm_query`] translator.
    pub pattern: String,
    /// Top-k limit (Step 9).
    pub limit: usize,
    /// Per-request deadline budget, milliseconds. Network read time and
    /// queue wait both draw from it before execution does.
    pub deadline_ms: Option<u64>,
}

/// A completed ranking as it crosses the wire (payload of a
/// [`FRAME_RESPONSE`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireResponse {
    /// [`STATUS_OK`] or one of the `STATUS_DEGRADED_*` codes.
    pub status: u8,
    /// Epoch of the model generation that answered.
    pub epoch: u64,
    /// Canonical [`DegradedReason::as_str`] string when degraded.
    pub degraded: Option<String>,
    /// The ranked candidates — bit-exact across the JSON round trip.
    pub results: Vec<RankedPattern>,
    /// Time the request sat in the admission queue, nanoseconds.
    pub queue_ns: u64,
    /// Retrieval execution time, nanoseconds.
    pub service_ns: u64,
}

/// A refusal or notice with no ranking (payload of a [`FRAME_STATUS`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireStatus {
    /// One of the `STATUS_*` codes above.
    pub code: u8,
    /// Human-readable detail (the canonical reason string, plus engine
    /// detail for invalid requests).
    pub reason: String,
}

/// Writes one frame: header then payload, flushed.
///
/// # Errors
///
/// `InvalidInput` when the payload exceeds [`MAX_FRAME_LEN`]; otherwise
/// whatever the underlying stream returns.
pub fn write_frame<W: Write>(w: &mut W, kind: u8, payload: &[u8]) -> std::io::Result<()> {
    if payload.len() as u64 > MAX_FRAME_LEN as u64 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("frame payload {} exceeds cap {MAX_FRAME_LEN}", payload.len()),
        ));
    }
    let mut header = [0u8; HEADER_LEN];
    header[0] = PROTO_VERSION;
    header[1] = kind;
    header[2..HEADER_LEN].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()
}

/// Hard cap on a status frame's reason detail. A refusal must always fit
/// in a frame no matter how large the input that provoked it was — an
/// `Invalid` rejection echoes the offending pattern text, and an
/// exact-cap request would otherwise produce a status payload over
/// [`MAX_FRAME_LEN`], turning a clean refusal into a dropped connection.
pub const MAX_REASON_LEN: usize = 512;

/// Serializes and writes a [`WireStatus`] frame, truncating the reason to
/// [`MAX_REASON_LEN`] bytes (on a char boundary, with a marker).
pub fn write_status<W: Write>(w: &mut W, code: u8, reason: &str) -> std::io::Result<()> {
    let reason = if reason.len() > MAX_REASON_LEN {
        let mut cut = MAX_REASON_LEN;
        while !reason.is_char_boundary(cut) {
            cut -= 1;
        }
        format!("{}… (truncated)", &reason[..cut])
    } else {
        reason.to_string()
    };
    let payload = serde_json::to_vec(&WireStatus { code, reason }).expect("status serializes");
    write_frame(w, FRAME_STATUS, &payload)
}

/// A fully received frame.
#[derive(Debug)]
pub struct Frame {
    /// `FRAME_*` kind byte.
    pub kind: u8,
    /// Raw JSON payload.
    pub payload: Vec<u8>,
    /// When the first byte of this frame arrived — the start of the
    /// network time that draws from the request's deadline budget.
    pub first_byte: Instant,
}

/// Why a frame read ended without a frame.
#[derive(Debug)]
pub enum FrameError {
    /// Clean EOF before any byte of a frame: the peer closed between
    /// frames.
    Closed,
    /// EOF or I/O error with part of a frame already read: the frame is
    /// torn and the connection unusable.
    Torn(std::io::Error),
    /// Protocol violation (bad version byte, over-cap length). Framing can
    /// no longer be trusted; the connection must close.
    Malformed(String),
    /// No complete frame arrived in time. `started` distinguishes a
    /// slow-loris mid-frame stall (`true`) from plain idleness past the
    /// caller's idle budget (`false`).
    TimedOut {
        /// Whether any byte of the frame had arrived.
        started: bool,
    },
    /// The `is_draining` probe fired before a frame started (server side
    /// only — idle connections notice a drain here).
    Draining,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => f.write_str("connection closed"),
            FrameError::Torn(e) => write!(f, "torn frame: {e}"),
            FrameError::Malformed(msg) => write!(f, "malformed frame: {msg}"),
            FrameError::TimedOut { started: true } => f.write_str("frame stalled mid-read"),
            FrameError::TimedOut { started: false } => f.write_str("timed out waiting for a frame"),
            FrameError::Draining => f.write_str("draining"),
        }
    }
}

/// Reads one frame from a stream whose read timeout is set to a short
/// poll tick. Between ticks it checks `is_draining` (only before the
/// frame's first byte) and the two timeouts: `frame_timeout` bounds the
/// time from first byte to complete frame (slow-loris shedding), and
/// `idle_timeout`, when given, bounds the wait for the first byte (the
/// client's response wait).
///
/// # Errors
///
/// [`FrameError`] as documented per variant.
pub fn read_frame<R: Read>(
    r: &mut R,
    is_draining: impl Fn() -> bool,
    frame_timeout: Duration,
    idle_timeout: Option<Duration>,
) -> Result<Frame, FrameError> {
    let idle_since = Instant::now();
    let mut header = [0u8; HEADER_LEN];
    let mut started: Option<Instant> = None;
    read_exact_polled(
        r,
        &mut header,
        &is_draining,
        frame_timeout,
        idle_timeout,
        idle_since,
        &mut started,
    )?;
    let first_byte = started.expect("header read sets the first-byte instant");
    if header[0] != PROTO_VERSION {
        return Err(FrameError::Malformed(format!(
            "bad version byte {} (expected {PROTO_VERSION})",
            header[0]
        )));
    }
    let kind = header[1];
    let len = u32::from_le_bytes([header[2], header[3], header[4], header[5]]);
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Malformed(format!(
            "frame length {len} exceeds cap {MAX_FRAME_LEN}"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_polled(
        r,
        &mut payload,
        &is_draining,
        frame_timeout,
        idle_timeout,
        idle_since,
        &mut started,
    )?;
    Ok(Frame {
        kind,
        payload,
        first_byte,
    })
}

/// The poll loop under [`read_frame`]: fills `buf` completely or explains
/// why it could not.
fn read_exact_polled<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    is_draining: &impl Fn() -> bool,
    frame_timeout: Duration,
    idle_timeout: Option<Duration>,
    idle_since: Instant,
    started: &mut Option<Instant>,
) -> Result<(), FrameError> {
    let mut have = 0usize;
    while have < buf.len() {
        match r.read(&mut buf[have..]) {
            Ok(0) => {
                return Err(match started {
                    None => FrameError::Closed,
                    Some(_) => FrameError::Torn(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "peer closed mid-frame",
                    )),
                });
            }
            Ok(n) => {
                if started.is_none() {
                    *started = Some(Instant::now());
                }
                have += n;
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                match started {
                    None => {
                        if is_draining() {
                            return Err(FrameError::Draining);
                        }
                        if let Some(idle) = idle_timeout {
                            if idle_since.elapsed() >= idle {
                                return Err(FrameError::TimedOut { started: false });
                            }
                        }
                    }
                    Some(t0) => {
                        if t0.elapsed() >= frame_timeout {
                            return Err(FrameError::TimedOut { started: true });
                        }
                    }
                }
            }
            Err(e) => {
                return Err(match started {
                    None => FrameError::Closed,
                    Some(_) => FrameError::Torn(e),
                })
            }
        }
    }
    Ok(())
}

/// Front-end tuning knobs.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Concurrent connections the acceptor admits; the next one is refused
    /// with [`STATUS_CONN_LIMIT`] (reject-not-queue, mirroring admission).
    pub max_connections: usize,
    /// Requests served per connection before it is closed with
    /// [`STATUS_CONN_LIMIT`]; `0` = unlimited.
    pub max_requests_per_conn: usize,
    /// Budget from a frame's first byte to its last: a connection that
    /// starts a frame and stalls past this is shed (slow-loris defense).
    pub frame_timeout: Duration,
    /// Read poll tick — how promptly drains and frame timeouts are
    /// noticed. Short enough for responsiveness, long enough to not spin.
    pub poll_interval: Duration,
    /// Server-side network fault plane: every accepted stream is wrapped
    /// through [`FaultHandle::wrap_stream`] (a noop handle passes bytes
    /// through untouched).
    pub fault: FaultHandle,
    /// Observability sink for the `net.*` counters and connection spans.
    pub recorder: RecorderHandle,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_connections: 64,
            max_requests_per_conn: 0,
            frame_timeout: Duration::from_secs(2),
            poll_interval: Duration::from_millis(10),
            fault: FaultHandle::noop(),
            recorder: RecorderHandle::noop(),
        }
    }
}

/// Everything the acceptor and connection threads share.
struct NetShared {
    server: Arc<QueryServer>,
    config: NetConfig,
    /// Set once by [`NetServer::shutdown`]: the acceptor stops admitting
    /// and every connection thread finishes its in-flight request, sends a
    /// final notice, and closes.
    draining: AtomicBool,
    /// Live connection threads (reaped opportunistically by the acceptor,
    /// joined exhaustively at shutdown — no connection leaks past drain).
    conns: Mutex<Vec<JoinHandle<()>>>,
}

/// The TCP front-end: a bounded acceptor plus one thread per connection,
/// all funneling into the shared [`QueryServer`] admission queue.
///
/// Start with [`NetServer::start`] (port 0 picks a free port — see
/// [`NetServer::local_addr`]); stop with [`NetServer::shutdown`], which
/// drains in-flight requests and joins every thread before returning.
pub struct NetServer {
    shared: Arc<NetShared>,
    acceptor: Option<JoinHandle<()>>,
    local_addr: SocketAddr,
}

impl NetServer {
    /// Binds `addr` and spawns the acceptor.
    ///
    /// # Errors
    ///
    /// Any bind/listen error from the OS.
    pub fn start(
        server: Arc<QueryServer>,
        addr: impl ToSocketAddrs,
        config: NetConfig,
    ) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        // Non-blocking accept + poll tick: the acceptor notices the drain
        // flag without needing a wake-up connection or signals.
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(NetShared {
            server,
            config,
            draining: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("hmmm-net-accept".into())
                .spawn(move || acceptor_loop(&shared, listener))
                .expect("spawn acceptor")
        };
        Ok(NetServer {
            shared,
            acceptor: Some(acceptor),
            local_addr,
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared in-process server behind the front-end.
    pub fn server(&self) -> &Arc<QueryServer> {
        &self.shared.server
    }

    /// Graceful shutdown: stop accepting, let every connection finish its
    /// in-flight request (idle ones get a final [`STATUS_DRAINING`]
    /// notice), join all threads, then close the admission queue. Every
    /// connection is accounted for when this returns.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        // ordering: Release — publishes the drain decision to acceptor and
        // connection threads, which load it with Acquire; everything the
        // drain must observe (config, server state) was written before
        // start() published the Arc anyway, so this pairing is about
        // making the flag's flip itself promptly and safely visible.
        self.shared.draining.store(true, Ordering::Release);
        if let Some(acceptor) = self.acceptor.take() {
            acceptor.join().expect("acceptor panicked");
        }
        let conns = std::mem::take(&mut *self.shared.conns.lock().expect("conns poisoned"));
        for conn in conns {
            conn.join().expect("connection thread panicked");
        }
        self.shared.server.close();
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            self.shutdown_inner();
        }
    }
}

/// The acceptor: poll-accept, reap finished connection threads, enforce
/// the connection cap, spawn handlers.
fn acceptor_loop(shared: &Arc<NetShared>, listener: TcpListener) {
    let obs = &shared.config.recorder;
    let mut next_conn_id: u64 = 0;
    loop {
        // ordering: Acquire — pairs with the Release store in shutdown;
        // once observed, the acceptor stops admitting for good.
        if shared.draining.load(Ordering::Acquire) {
            return;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(shared.config.poll_interval);
                continue;
            }
            Err(_) => continue, // transient accept error: keep serving
        };
        // The listener is non-blocking; the accepted socket must not be
        // (some platforms propagate the flag).
        if stream.set_nonblocking(false).is_err() {
            continue;
        }
        let mut conns = shared.conns.lock().expect("conns poisoned");
        let mut i = 0;
        while i < conns.len() {
            if conns[i].is_finished() {
                let done = conns.swap_remove(i);
                done.join().expect("connection thread panicked");
            } else {
                i += 1;
            }
        }
        if conns.len() >= shared.config.max_connections {
            drop(conns);
            obs.counter(m::CTR_NET_REJECTED_CONN_LIMIT, 1);
            // Refusals write to the raw stream (no fault wrapping): the
            // fault plane's connection tickets count *served* streams, so
            // plans stay stable under cap pressure.
            let mut stream = stream;
            let _ = write_status(&mut stream, STATUS_CONN_LIMIT, "connection limit reached");
            continue;
        }
        let conn_id = next_conn_id;
        next_conn_id += 1;
        obs.counter(m::CTR_NET_ACCEPTED, 1);
        obs.gauge(m::GAUGE_NET_OPEN_CONNS, (conns.len() + 1) as f64);
        let handler = {
            let shared = Arc::clone(shared);
            std::thread::Builder::new()
                .name(format!("hmmm-net-conn-{conn_id}"))
                .spawn(move || serve_conn(&shared, stream, conn_id))
                .expect("spawn connection thread")
        };
        conns.push(handler);
    }
}

/// One connection's lifetime: read frame → compile → propagate deadline →
/// admit → write exactly one response or status → repeat until the client
/// leaves, a drain fires, a limit trips, or the stream breaks.
fn serve_conn(shared: &NetShared, stream: TcpStream, conn_id: u64) {
    let obs = &shared.config.recorder;
    let _span = obs.span_labeled(m::SPAN_NET_CONN, conn_id);
    let _ = stream.set_nodelay(true);
    if stream
        .set_read_timeout(Some(shared.config.poll_interval))
        .is_err()
    {
        return; // cannot poll: give the connection up before serving
    }
    let mut stream = shared.config.fault.wrap_stream(stream);
    let translator = QueryTranslator::new(EventKind::ALL.iter().map(|k| k.name()));
    // ordering: Acquire — pairs with the Release store in shutdown; the
    // probe runs between poll ticks while the connection is idle.
    let is_draining = || shared.draining.load(Ordering::Acquire);
    let mut served = 0usize;
    loop {
        let frame = match read_frame(&mut stream, is_draining, shared.config.frame_timeout, None) {
            Ok(frame) => frame,
            Err(FrameError::Closed) => return, // client left between frames
            Err(FrameError::Draining) => {
                if write_status(&mut stream, STATUS_DRAINING, "server draining").is_ok() {
                    obs.counter(m::CTR_NET_DRAINING_NOTICES, 1);
                } else {
                    obs.counter(m::CTR_NET_WRITE_FAILURES, 1);
                }
                return;
            }
            Err(FrameError::TimedOut { .. }) => {
                obs.counter(m::CTR_NET_SHED_SLOW_CLIENT, 1);
                return;
            }
            Err(FrameError::Torn(_)) => return, // half a frame, then gone
            Err(FrameError::Malformed(msg)) => {
                // Framing is lost (unknown bytes may follow): answer once,
                // then close — resynchronization is not attempted.
                obs.counter(m::CTR_NET_BAD_FRAMES, 1);
                if write_status(&mut stream, STATUS_BAD_FRAME, &msg).is_err() {
                    obs.counter(m::CTR_NET_WRITE_FAILURES, 1);
                }
                return;
            }
        };
        if frame.kind != FRAME_REQUEST {
            obs.counter(m::CTR_NET_BAD_FRAMES, 1);
            let detail = format!("unexpected frame kind {}", frame.kind);
            if write_status(&mut stream, STATUS_BAD_FRAME, &detail).is_err() {
                obs.counter(m::CTR_NET_WRITE_FAILURES, 1);
                return;
            }
            continue; // framing is intact: the frame parsed, only its kind is wrong
        }
        let request: WireRequest = match serde_json::from_slice(&frame.payload) {
            Ok(request) => request,
            Err(e) => {
                obs.counter(m::CTR_NET_BAD_FRAMES, 1);
                let detail = format!("unparseable request payload: {e}");
                if write_status(&mut stream, STATUS_BAD_FRAME, &detail).is_err() {
                    obs.counter(m::CTR_NET_WRITE_FAILURES, 1);
                    return;
                }
                continue; // payload-level error: framing is intact
            }
        };
        obs.counter(m::CTR_NET_REQUESTS, 1);
        let wrote = answer_request(shared, &translator, &mut stream, request, frame.first_byte);
        match wrote {
            Ok(()) => obs.counter(m::CTR_NET_RESPONSES, 1),
            Err(_) => {
                // Answered-exactly-once-or-dropped: a failed response
                // write is never retried on this connection (the peer may
                // hold any prefix of it); drop the connection instead.
                obs.counter(m::CTR_NET_WRITE_FAILURES, 1);
                return;
            }
        }
        served += 1;
        if shared.config.max_requests_per_conn > 0 && served >= shared.config.max_requests_per_conn
        {
            if write_status(
                &mut stream,
                STATUS_CONN_LIMIT,
                "per-connection request limit reached",
            )
            .is_err()
            {
                obs.counter(m::CTR_NET_WRITE_FAILURES, 1);
            }
            return;
        }
    }
}

/// Compiles, budgets, admits, and writes exactly one reply for one parsed
/// request. `Err` means the reply write failed (the caller drops the
/// connection); every other path wrote a complete frame.
fn answer_request<S: Read + Write>(
    shared: &NetShared,
    translator: &QueryTranslator,
    stream: &mut S,
    request: WireRequest,
    first_byte: Instant,
) -> std::io::Result<()> {
    let compiled = match translator.compile(&request.pattern) {
        Ok(compiled) => compiled,
        Err(e) => {
            let reason = RejectReason::Invalid(e.to_string());
            return write_status(stream, status_for_reject(&reason), &reason.to_string());
        }
    };
    // Deadline propagation: the time this request spent on the wire (read
    // polls, injected stalls) already drew from its budget — the same
    // contract queue wait has in `serve_one`.
    let mut deadline = request.deadline_ms.map(Duration::from_millis);
    if let Some(budget) = deadline {
        match budget.checked_sub(first_byte.elapsed()) {
            Some(rest) if !rest.is_zero() => deadline = Some(rest),
            _ => {
                let reason = RejectReason::DeadlineBeforeService;
                return write_status(stream, status_for_reject(&reason), reason.as_str());
            }
        }
    }
    let mut query = QueryRequest::new(compiled, request.limit);
    query.deadline = deadline;
    match shared.server.query(query) {
        ServeOutcome::Completed(response) => {
            let degraded = response.stats.degraded.as_ref().map(|d| d.reason);
            let wire = WireResponse {
                status: degraded.map_or(STATUS_OK, status_for_degraded),
                epoch: response.epoch,
                degraded: degraded.map(|d| d.as_str().to_string()),
                results: response.results,
                queue_ns: response.queue_ns,
                service_ns: response.service_ns,
            };
            let payload = serde_json::to_vec(&wire).expect("response serializes");
            write_frame(stream, FRAME_RESPONSE, &payload)
        }
        ServeOutcome::Rejected(reason) => {
            write_status(stream, status_for_reject(&reason), &reason.to_string())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let request = WireRequest {
            pattern: "corner_kick -> goal".into(),
            limit: 5,
            deadline_ms: Some(250),
        };
        let payload = serde_json::to_vec(&request).unwrap();
        let mut wire = Vec::new();
        write_frame(&mut wire, FRAME_REQUEST, &payload).unwrap();
        assert_eq!(wire[0], PROTO_VERSION);
        assert_eq!(wire[1], FRAME_REQUEST);
        assert_eq!(wire.len(), HEADER_LEN + payload.len());

        let mut cursor = std::io::Cursor::new(wire);
        let frame = read_frame(&mut cursor, || false, Duration::from_secs(1), None).unwrap();
        assert_eq!(frame.kind, FRAME_REQUEST);
        let back: WireRequest = serde_json::from_slice(&frame.payload).unwrap();
        assert_eq!(back, request);
    }

    #[test]
    fn oversized_payload_is_refused_at_write() {
        let huge = vec![b'x'; MAX_FRAME_LEN as usize + 1];
        let err = write_frame(&mut Vec::new(), FRAME_REQUEST, &huge).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }

    #[test]
    fn bad_version_and_over_cap_length_are_malformed() {
        let bad_version = vec![9u8, FRAME_REQUEST, 0, 0, 0, 0];
        let mut cursor = std::io::Cursor::new(bad_version);
        match read_frame(&mut cursor, || false, Duration::from_secs(1), None) {
            Err(FrameError::Malformed(msg)) => assert!(msg.contains("version"), "{msg}"),
            other => panic!("expected Malformed, got {other:?}"),
        }

        let mut over_cap = vec![PROTO_VERSION, FRAME_REQUEST];
        over_cap.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        let mut cursor = std::io::Cursor::new(over_cap);
        match read_frame(&mut cursor, || false, Duration::from_secs(1), None) {
            Err(FrameError::Malformed(msg)) => assert!(msg.contains("cap"), "{msg}"),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn truncated_header_is_torn_and_empty_is_closed() {
        let mut empty = std::io::Cursor::new(Vec::<u8>::new());
        assert!(matches!(
            read_frame(&mut empty, || false, Duration::from_secs(1), None),
            Err(FrameError::Closed)
        ));
        let mut truncated = std::io::Cursor::new(vec![PROTO_VERSION, FRAME_REQUEST, 3]);
        assert!(matches!(
            read_frame(&mut truncated, || false, Duration::from_secs(1), None),
            Err(FrameError::Torn(_))
        ));
    }

    #[test]
    fn status_reason_is_truncated_to_always_fit_a_frame() {
        // An Invalid rejection echoes the pattern text; with an exact-cap
        // request the untruncated echo would overflow the frame cap and
        // turn the refusal into a dropped connection.
        let huge = "é".repeat(MAX_FRAME_LEN as usize);
        let mut wire = Vec::new();
        write_status(&mut wire, STATUS_REJECTED_INVALID, &huge).unwrap();
        assert!(wire.len() <= HEADER_LEN + MAX_FRAME_LEN as usize);
        let mut cursor = std::io::Cursor::new(wire);
        let frame = read_frame(&mut cursor, || false, Duration::from_secs(1), None).unwrap();
        let status: WireStatus = serde_json::from_slice(&frame.payload).unwrap();
        assert_eq!(status.code, STATUS_REJECTED_INVALID);
        assert!(status.reason.len() < MAX_REASON_LEN + 32);
        assert!(status.reason.ends_with("… (truncated)"), "{}", status.reason);
    }

    #[test]
    fn status_code_map_is_total_and_stable() {
        for reason in [
            RejectReason::QueueFull,
            RejectReason::DeadlineBeforeService,
            RejectReason::Shutdown,
            RejectReason::Invalid("x".into()),
        ] {
            let code = status_for_reject(&reason);
            assert!(status_name(code).starts_with("rejected:"), "{code}");
        }
        for reason in [
            DegradedReason::DeadlineExpired,
            DegradedReason::WorkerPanic,
            DegradedReason::DeadlineAndPanic,
        ] {
            let code = status_for_degraded(reason);
            assert!(status_name(code).starts_with("degraded:"), "{code}");
        }
        assert_eq!(status_name(STATUS_OK), "ok");
        assert_eq!(status_name(STATUS_DRAINING), "draining");
        assert_eq!(status_name(STATUS_BAD_FRAME), "bad frame");
    }
}
