//! # hmmm-serve
//!
//! The in-process serving layer over the HMMM retrieval engine: many
//! concurrent queries, one shared immutable model generation, and
//! RCU-style feedback installs that never block a reader.
//!
//! The paper treats retrieval as a one-query-at-a-time affair; a video
//! database *serves*. This crate closes that gap with three pieces (the
//! full architecture, including a worked request trace, is in
//! `docs/SERVING.md`):
//!
//! * [`ModelSnapshot`] / [`SnapshotCell`] — an immutable, `deep_audit`-ed
//!   generation of (model, catalog) behind an `Arc`, published through an
//!   epoch-stamped cell. The snapshot lifecycle is
//!   **build → audit → RCU install → drain**: feedback learning
//!   (Eqs. 1–10) builds the next generation off to the side and the old
//!   one is freed when its last in-flight query drops the `Arc`.
//! * [`QueryServer`] — a bounded admission queue in front of a worker
//!   pool. Admission is reject-not-block (queue full, shutdown, or a
//!   deadline already consumed by queueing each produce an explicit
//!   [`RejectReason`]); per-request deadlines are the PR-5 anytime
//!   machinery promoted to the QoS primitive, so an admitted request runs
//!   with whatever budget queueing left it. Workers reuse their
//!   traversal arenas ([`hmmm_core::QueryScratch`]) across requests.
//! * [`run_workload`] — a seeded load generator (Zipf query mix, Poisson
//!   arrivals, probabilistic feedback) whose `--check` mode re-derives
//!   every exact response serially on the snapshot generation that
//!   answered it, byte-for-byte.
//! * [`NetServer`] / [`NetClient`] — the fault-hardened TCP front door
//!   over the admission queue: length-prefixed JSON frames with stable
//!   status codes, slow-loris shedding, deadline propagation across
//!   network time, graceful drains, and a client whose seeded
//!   retry/backoff never re-sends after a response byte has arrived
//!   (see the `net` module docs for the wire format).
//!
//! Everything here is `std`-only (threads, `Mutex`, `Condvar`, atomics),
//! consistent with the workspace's vendored-dependency policy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod net;
pub mod server;
pub mod snapshot;
pub mod workload;

pub use client::{ClientCounters, NetClient, NetError, NetOutcome, RetryPolicy};
pub use net::{NetConfig, NetServer, WireRequest, WireResponse, WireStatus};
pub use server::{
    QueryRequest, QueryResponse, QueryServer, RejectReason, ResponseTicket, ServeOutcome,
    ServerConfig,
};
pub use snapshot::{ModelSnapshot, SnapshotCell};
pub use workload::{
    run_net_workload, run_workload, LoadReport, NetCheck, NetLoadReport, NetWorkloadConfig,
    PatternPool, WorkloadConfig,
};
