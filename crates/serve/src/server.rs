//! The in-process [`QueryServer`]: N concurrent queries over one shared
//! immutable [`ModelSnapshot`].
//!
//! Request lifecycle (the worked trace in `docs/SERVING.md` follows one
//! request through these states):
//!
//! ```text
//! submit ──▶ Queued ──▶ Executing ──▶ Completed(response)
//!    │          │
//!    │          └─(deadline consumed by queueing)─▶ Rejected(DeadlineBeforeService)
//!    ├─(queue at capacity)──────────────────────▶ Rejected(QueueFull)
//!    └─(admission closed)───────────────────────▶ Rejected(Shutdown)
//! ```
//!
//! Admission control is **reject-not-block**: a full bounded queue turns a
//! latency collapse into an explicit, reasoned rejection the caller can
//! retry or shed. Deadlines are the QoS primitive promoted from PR 5's
//! anytime retrieval: time spent queued draws from the same per-request
//! budget as execution, so under load a request either runs with its
//! *remaining* budget (degrading exactly as `RetrievalConfig::deadline`
//! always has — exact-so-far, never wrong) or is rejected before any work
//! is wasted on it.
//!
//! Workers are plain threads in a pool. Each owns a cached
//! `Arc<ModelSnapshot>` (refreshed by one atomic epoch check per request —
//! see [`SnapshotCell`]) and a reusable [`hmmm_core::QueryScratch`], so the
//! per-query steady state allocates nothing for beams and scoring rows.
//! Queries execute with `threads = 1`: under concurrent traffic the
//! parallelism that used to fan one query across cores is spent across
//! queries instead, which is the right trade once the queue is non-empty.

use crate::snapshot::{ModelSnapshot, SnapshotCell};
use hmmm_core::metrics as m;
use hmmm_core::{
    CoreError, FeedbackConfig, FeedbackLog, Hmmm, QueryScratch, RankedPattern, RetrievalConfig,
    RetrievalStats, Retriever, UpdateReport,
};
use hmmm_obs::RecorderHandle;
use hmmm_query::CompiledPattern;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing queries (`≥ 1`).
    pub workers: usize,
    /// Bounded admission-queue capacity: submissions beyond it are
    /// rejected with [`RejectReason::QueueFull`] instead of queueing
    /// unboundedly (reject-not-block).
    pub queue_capacity: usize,
    /// Deadline applied to requests that do not carry their own
    /// ([`QueryRequest::deadline`]). `None` = unbounded. The budget covers
    /// queue wait *plus* execution.
    pub default_deadline: Option<Duration>,
    /// Base per-query retrieval configuration. `threads` is forced to 1 by
    /// the server (concurrency lives across queries); `deadline` is
    /// overwritten per request from the admission budget; the `recorder`
    /// is replaced by [`ServerConfig::recorder`].
    pub retrieval: RetrievalConfig,
    /// Observability sink for the whole server: per-request span trees
    /// (`serve/request` → `serve/request/execute` → the engine's own
    /// `retrieve` spans), queue-depth gauges, and the admission counters —
    /// see the `serve.*` names in [`hmmm_core::metrics`].
    pub recorder: RecorderHandle,
    /// Keep an `Arc` to every installed snapshot so tests and the load
    /// generator's `--check` mode can re-derive any response against the
    /// exact model generation that produced it
    /// ([`QueryServer::snapshot_at`]). Off by default: a long-lived server
    /// must not grow memory per feedback install.
    pub retain_snapshot_history: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            queue_capacity: 64,
            default_deadline: None,
            retrieval: RetrievalConfig::content_only(),
            recorder: RecorderHandle::noop(),
            retain_snapshot_history: false,
        }
    }
}

/// One query submitted to the server.
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// The compiled temporal pattern (Eqs. 12–15 drive its scoring).
    pub pattern: CompiledPattern,
    /// Top-`limit` candidates to return (Step 9).
    pub limit: usize,
    /// Per-request deadline override; `None` falls back to
    /// [`ServerConfig::default_deadline`]. Queue wait draws from this
    /// budget.
    pub deadline: Option<Duration>,
}

impl QueryRequest {
    /// A request with no per-request deadline.
    pub fn new(pattern: CompiledPattern, limit: usize) -> Self {
        QueryRequest {
            pattern,
            limit,
            deadline: None,
        }
    }
}

/// A completed query's answer.
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// The ranked candidates (byte-identical to a serial
    /// [`Retriever::retrieve`] against the same snapshot, unless
    /// `stats.degraded` says a deadline fired).
    pub results: Vec<RankedPattern>,
    /// The engine's work counters and degradation summary.
    pub stats: RetrievalStats,
    /// Epoch of the [`ModelSnapshot`] this ranking was computed on.
    pub epoch: u64,
    /// Time spent in the admission queue, nanoseconds.
    pub queue_ns: u64,
    /// Time spent executing the retrieval, nanoseconds.
    pub service_ns: u64,
}

/// Why a request was refused without producing a ranking. Every rejection
/// carries a reason — [`RejectReason::as_str`] is the canonical string, so
/// "rejected without reason" is unrepresentable (the `serve-smoke` CI job
/// asserts exactly that).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded admission queue was at capacity.
    QueueFull,
    /// The request's whole deadline budget was consumed while it sat in
    /// the queue — running it could only return a degraded-to-empty
    /// ranking late, so it is shed before any retrieval work.
    DeadlineBeforeService,
    /// The server had stopped admitting (shutdown in progress).
    Shutdown,
    /// The engine refused the request (bad pattern, model/catalog
    /// mismatch); carries the engine error rendered to a string.
    Invalid(String),
}

impl RejectReason {
    /// Canonical reason string (stable across surfaces; see also
    /// [`hmmm_core::DegradedReason::as_str`] for the degraded-completion
    /// counterpart).
    pub fn as_str(&self) -> &str {
        match self {
            RejectReason::QueueFull => "queue full",
            RejectReason::DeadlineBeforeService => "deadline exhausted in queue",
            RejectReason::Shutdown => "server shutting down",
            RejectReason::Invalid(_) => "invalid request",
        }
    }
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::Invalid(detail) => write!(f, "invalid request: {detail}"),
            other => f.write_str(other.as_str()),
        }
    }
}

/// Terminal state of one submitted request.
// One ServeOutcome lives per in-flight request (inside its one-shot
// ResponseSlot), never in bulk collections, so the variant size gap
// costs a few hundred stack bytes per request; boxing the response
// would instead charge every completion a heap allocation.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum ServeOutcome {
    /// The request ran; the ranking (possibly degraded, never wrong) is
    /// inside.
    Completed(QueryResponse),
    /// The request never ran; the reason says why.
    Rejected(RejectReason),
}

impl ServeOutcome {
    /// The response, if the request completed.
    pub fn response(&self) -> Option<&QueryResponse> {
        match self {
            ServeOutcome::Completed(r) => Some(r),
            ServeOutcome::Rejected(_) => None,
        }
    }
}

/// One-shot response slot a submitter blocks on (hand-rolled oneshot
/// channel: `Mutex<Option<…>> + Condvar`).
struct ResponseSlot {
    outcome: Mutex<Option<ServeOutcome>>,
    ready: Condvar,
}

impl ResponseSlot {
    fn new() -> Arc<Self> {
        Arc::new(ResponseSlot {
            outcome: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    fn fulfill(&self, outcome: ServeOutcome) {
        let mut slot = self.outcome.lock().expect("response slot poisoned");
        debug_assert!(slot.is_none(), "response slot fulfilled twice");
        *slot = Some(outcome);
        self.ready.notify_all();
    }
}

/// The submitter's handle to an in-flight request.
#[derive(Debug)]
pub struct ResponseTicket {
    slot: Arc<ResponseSlot>,
}

impl std::fmt::Debug for ResponseSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResponseSlot").finish_non_exhaustive()
    }
}

impl ResponseTicket {
    /// Blocks until the request reaches a terminal state.
    pub fn wait(self) -> ServeOutcome {
        let mut slot = self.slot.outcome.lock().expect("response slot poisoned");
        loop {
            if let Some(outcome) = slot.take() {
                return outcome;
            }
            slot = self
                .slot
                .ready
                .wait(slot)
                .expect("response slot poisoned");
        }
    }

    /// Immediately-fulfilled ticket (admission-time rejections).
    fn rejected(reason: RejectReason) -> Self {
        let slot = ResponseSlot::new();
        slot.fulfill(ServeOutcome::Rejected(reason));
        ResponseTicket { slot }
    }
}

/// One queued unit of work.
struct Job {
    request: QueryRequest,
    submitted: Instant,
    id: u64,
    slot: Arc<ResponseSlot>,
}

/// Queue state behind the admission mutex.
struct QueueState {
    jobs: VecDeque<Job>,
    /// `false` once shutdown began: admission rejects, workers drain.
    open: bool,
}

/// Everything the workers share.
struct ServerShared {
    cell: SnapshotCell,
    queue: Mutex<QueueState>,
    not_empty: Condvar,
    config: ServerConfig,
    obs: RecorderHandle,
    next_id: AtomicU64,
    /// Installed generations, oldest first (only when
    /// [`ServerConfig::retain_snapshot_history`]).
    history: Mutex<Vec<Arc<ModelSnapshot>>>,
}

/// The long-lived in-process query server (see the module docs for the
/// request lifecycle and `docs/SERVING.md` for the full architecture).
///
/// # Examples
///
/// ```
/// use hmmm_core::BuildConfig;
/// use hmmm_features::FeatureVector;
/// use hmmm_media::EventKind;
/// use hmmm_query::QueryTranslator;
/// use hmmm_serve::{ModelSnapshot, QueryRequest, QueryServer, ServerConfig};
/// use hmmm_storage::Catalog;
///
/// let mut catalog = Catalog::new();
/// catalog.add_video("v0", vec![
///     (vec![EventKind::FreeKick], FeatureVector::zeros()),
///     (vec![EventKind::Goal], FeatureVector::zeros()),
/// ]);
/// let snapshot = ModelSnapshot::build(catalog, &BuildConfig::default()).unwrap();
/// let server = QueryServer::start(snapshot, ServerConfig::default()).unwrap();
///
/// let translator = QueryTranslator::new(EventKind::ALL.iter().map(|k| k.name()));
/// let pattern = translator.compile("free_kick -> goal").unwrap();
/// let outcome = server.query(QueryRequest::new(pattern, 5));
/// let response = outcome.response().expect("completed");
/// assert_eq!(response.epoch, 0);
/// server.join();
/// ```
pub struct QueryServer {
    shared: Arc<ServerShared>,
    workers: Vec<JoinHandle<()>>,
}

impl QueryServer {
    /// Publishes `snapshot` and spawns the worker pool.
    ///
    /// # Errors
    ///
    /// [`CoreError::Inconsistent`] for a zero-worker or zero-capacity
    /// configuration.
    pub fn start(snapshot: ModelSnapshot, config: ServerConfig) -> Result<Self, CoreError> {
        if config.workers == 0 {
            return Err(CoreError::Inconsistent(
                "ServerConfig.workers must be ≥ 1".into(),
            ));
        }
        if config.queue_capacity == 0 {
            return Err(CoreError::Inconsistent(
                "ServerConfig.queue_capacity must be ≥ 1".into(),
            ));
        }
        let obs = config.recorder.clone();
        let workers_n = config.workers;
        let retain = config.retain_snapshot_history;
        let cell = SnapshotCell::new(snapshot);
        let initial = retain.then(|| cell.load());
        let shared = Arc::new(ServerShared {
            cell,
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                open: true,
            }),
            not_empty: Condvar::new(),
            config,
            obs: obs.clone(),
            next_id: AtomicU64::new(0),
            history: Mutex::new(initial.into_iter().collect()),
        });
        obs.counter(m::CTR_SERVE_SNAPSHOT_INSTALLS, 1);
        obs.gauge(m::GAUGE_SERVE_WORKERS, workers_n as f64);
        let workers = (0..workers_n)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("hmmm-serve-{w}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn serve worker")
            })
            .collect();
        Ok(QueryServer { shared, workers })
    }

    /// Submits a request; returns immediately with a ticket. Admission
    /// rejections (queue full, shutdown) resolve the ticket instantly —
    /// `submit` itself never blocks on query execution.
    pub fn submit(&self, request: QueryRequest) -> ResponseTicket {
        let obs = &self.shared.obs;
        let mut queue = self.shared.queue.lock().expect("admission queue poisoned");
        if !queue.open {
            drop(queue);
            obs.counter(m::CTR_SERVE_REJECTED_SHUTDOWN, 1);
            return ResponseTicket::rejected(RejectReason::Shutdown);
        }
        if queue.jobs.len() >= self.shared.config.queue_capacity {
            drop(queue);
            obs.counter(m::CTR_SERVE_REJECTED_QUEUE_FULL, 1);
            return ResponseTicket::rejected(RejectReason::QueueFull);
        }
        let slot = ResponseSlot::new();
        // ordering: Relaxed — the id is a label for spans/debugging, no
        // other memory is published through it. Registered in
        // RELAXED_ALLOWLIST (hmmm-analyze) as an id/ticket source.
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        queue.jobs.push_back(Job {
            request,
            submitted: Instant::now(),
            id,
            slot: Arc::clone(&slot),
        });
        let depth = queue.jobs.len();
        drop(queue);
        obs.counter(m::CTR_SERVE_SUBMITTED, 1);
        obs.gauge(m::GAUGE_SERVE_QUEUE_DEPTH, depth as f64);
        self.shared.not_empty.notify_one();
        ResponseTicket { slot }
    }

    /// Submit-and-wait convenience: one round trip through the queue and
    /// a worker.
    pub fn query(&self, request: QueryRequest) -> ServeOutcome {
        self.submit(request).wait()
    }

    /// The currently published snapshot (an `Arc` bump).
    pub fn snapshot(&self) -> Arc<ModelSnapshot> {
        self.shared.cell.load()
    }

    /// The currently published epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.cell.epoch()
    }

    /// A clone of the base per-query retrieval configuration (as the
    /// workers use it — before the per-request deadline/thread overrides).
    pub fn retrieval_config(&self) -> RetrievalConfig {
        self.shared.config.retrieval.clone()
    }

    /// A retained historical generation by epoch (requires
    /// [`ServerConfig::retain_snapshot_history`]; `None` otherwise or for
    /// an unknown epoch).
    pub fn snapshot_at(&self, epoch: u64) -> Option<Arc<ModelSnapshot>> {
        self.shared
            .history
            .lock()
            .expect("snapshot history poisoned")
            .iter()
            .find(|s| s.epoch == epoch)
            .cloned()
    }

    /// Audits and installs a candidate snapshot RCU-style (see
    /// [`SnapshotCell::install`]): in-flight queries finish on the
    /// generation they started with; subsequent dequeues see the new one.
    /// Returns the published epoch.
    ///
    /// # Errors
    ///
    /// [`CoreError`] when the pre-install `deep_audit` rejects the
    /// candidate — the live snapshot keeps serving and the rejection is
    /// counted (`serve.snapshot_audit_rejections`).
    pub fn install(&self, candidate: ModelSnapshot) -> Result<u64, CoreError> {
        match self.shared.cell.install(candidate) {
            Ok(epoch) => {
                self.shared.obs.counter(m::CTR_SERVE_SNAPSHOT_INSTALLS, 1);
                if self.shared.config.retain_snapshot_history {
                    let current = self.shared.cell.load();
                    self.shared
                        .history
                        .lock()
                        .expect("snapshot history poisoned")
                        .push(current);
                }
                Ok(epoch)
            }
            Err(e) => {
                self.shared.obs.counter(m::CTR_SERVE_AUDIT_REJECTIONS, 1);
                Err(e)
            }
        }
    }

    /// Wraps a bare model into a candidate snapshot against the live
    /// catalog and installs it (audit-gated). Returns the published epoch.
    ///
    /// # Errors
    ///
    /// Same as [`QueryServer::install`].
    pub fn install_model(&self, model: Hmmm) -> Result<u64, CoreError> {
        let current = self.shared.cell.load();
        let candidate = ModelSnapshot {
            audit: current.audit,
            catalog: Arc::clone(&current.catalog),
            epoch: current.epoch + 1,
            model,
        };
        self.install(candidate)
    }

    /// The full feedback round against the live generation: clone the
    /// model off to the side, apply the Eqs. 1–10 offline updates from
    /// `log`, audit the candidate, and install it. Readers never block;
    /// a failed audit leaves the live snapshot serving.
    ///
    /// # Errors
    ///
    /// Same as [`ModelSnapshot::apply_feedback`] plus the install gate.
    pub fn apply_feedback(
        &self,
        log: &mut FeedbackLog,
        config: &FeedbackConfig,
    ) -> Result<(u64, UpdateReport), CoreError> {
        let current = self.shared.cell.load();
        let (candidate, report) = match current.apply_feedback(log, config) {
            Ok(built) => built,
            Err(e) => {
                self.shared.obs.counter(m::CTR_SERVE_AUDIT_REJECTIONS, 1);
                return Err(e);
            }
        };
        let epoch = self.install(candidate)?;
        Ok((epoch, report))
    }

    /// Closes admission: subsequent submits are rejected with
    /// [`RejectReason::Shutdown`]; already-queued requests still drain
    /// through the workers. Idempotent.
    pub fn close(&self) {
        let mut queue = self.shared.queue.lock().expect("admission queue poisoned");
        queue.open = false;
        drop(queue);
        self.shared.not_empty.notify_all();
    }

    /// Closes admission, drains the queue, and joins every worker. Every
    /// ticket issued before `join` resolves (completed or rejected) before
    /// this returns.
    pub fn join(mut self) {
        self.close();
        for worker in self.workers.drain(..) {
            worker.join().expect("serve worker panicked");
        }
    }
}

impl Drop for QueryServer {
    fn drop(&mut self) {
        self.close();
        for worker in self.workers.drain(..) {
            // A worker that panicked already poisoned nothing the server
            // owns (jobs resolve their own slots); surface it.
            worker.join().expect("serve worker panicked");
        }
    }
}

/// One worker: dequeue → refresh snapshot (atomic epoch check) → admission
/// deadline check → execute with the remaining budget → fulfill.
fn worker_loop(shared: &ServerShared) {
    let mut snapshot = shared.cell.load();
    let mut scratch = QueryScratch::new();
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("admission queue poisoned");
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    let depth = queue.jobs.len();
                    drop(queue);
                    shared.obs.gauge(m::GAUGE_SERVE_QUEUE_DEPTH, depth as f64);
                    break Some(job);
                }
                if !queue.open {
                    break None;
                }
                queue = shared
                    .not_empty
                    .wait(queue)
                    .expect("admission queue poisoned");
            }
        };
        let Some(job) = job else {
            return; // drained and closed
        };
        shared.cell.refresh(&mut snapshot);
        serve_one(shared, &snapshot, &mut scratch, job);
    }
}

/// Executes one dequeued job against the worker's snapshot.
fn serve_one(shared: &ServerShared, snapshot: &ModelSnapshot, scratch: &mut QueryScratch, job: Job) {
    let obs = &shared.obs;
    let _request_span = obs.span_labeled(m::SPAN_SERVE_REQUEST, job.id);
    let queue_ns = job.submitted.elapsed().as_nanos() as u64;
    obs.observe_ns(m::HIST_SERVE_QUEUE_WAIT, queue_ns);

    // Admission deadline (QoS): queue wait already drew from the budget.
    // Shed the request if nothing is left; otherwise the remainder becomes
    // the engine's anytime-retrieval budget (PR 5 semantics: exact-so-far,
    // degraded, never wrong).
    let budget = job.request.deadline.or(shared.config.default_deadline);
    let remaining = match budget {
        Some(budget) => match budget.checked_sub(Duration::from_nanos(queue_ns)) {
            Some(rest) if !rest.is_zero() => Some(rest),
            _ => {
                obs.counter(m::CTR_SERVE_REJECTED_DEADLINE, 1);
                job.slot
                    .fulfill(ServeOutcome::Rejected(RejectReason::DeadlineBeforeService));
                return;
            }
        },
        None => None,
    };

    let mut config = shared.config.retrieval.clone();
    config.threads = Some(1); // concurrency lives across queries
    config.recorder = obs.clone();
    config.deadline = remaining.map(hmmm_core::DeadlineConfig::new);

    let execute_span = obs.span_labeled(m::SPAN_SERVE_EXECUTE, job.id);
    let execute_started = Instant::now();
    let executed = Retriever::new(&snapshot.model, &snapshot.catalog, config)
        .and_then(|r| r.retrieve_with_scratch(&job.request.pattern, job.request.limit, scratch));
    let service_ns = execute_started.elapsed().as_nanos() as u64;
    drop(execute_span);

    match executed {
        Ok((results, stats)) => {
            obs.counter(m::CTR_SERVE_COMPLETED, 1);
            if stats.degraded.is_some() {
                obs.counter(m::CTR_SERVE_DEGRADED, 1);
            }
            obs.observe_ns(m::HIST_SERVE_LATENCY, job.submitted.elapsed().as_nanos() as u64);
            job.slot.fulfill(ServeOutcome::Completed(QueryResponse {
                results,
                stats,
                epoch: snapshot.epoch,
                queue_ns,
                service_ns,
            }));
        }
        Err(e) => {
            job.slot
                .fulfill(ServeOutcome::Rejected(RejectReason::Invalid(e.to_string())));
        }
    }
}
