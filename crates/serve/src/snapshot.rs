//! Immutable model snapshots and the RCU-style cell that publishes them.
//!
//! The serving layer's structural invariant is that **queries never see a
//! model mid-update**. A [`ModelSnapshot`] bundles everything one query
//! needs — the λ model (with its derived `B_1` SoA slab and packed
//! per-event term lists, so a query-scoped `SimCache` can be built straight
//! from it), the catalog, and a monotonically increasing epoch — behind an
//! `Arc`, and is *never mutated after construction*. Feedback learning
//! (Eqs. 1–10) builds a **new** snapshot off to the side, proves it sane
//! with [`hmmm_core::Hmmm::deep_audit`], and only then swaps the published
//! pointer in a [`SnapshotCell`]:
//!
//! ```text
//! build (clone + Eqs. 1–10) → audit (Definition-1 gate) → install (pointer
//! swap) → drain (old snapshot freed when its last in-flight query drops
//! the Arc)
//! ```
//!
//! Readers on the hot path never block: a worker keeps a cached
//! `Arc<ModelSnapshot>` and re-reads the published pointer only when the
//! epoch counter (one atomic load) says it moved. Writers serialize on a
//! `Mutex`, consistent with the workspace's vendored-deps policy (no
//! external `arc-swap`); the mutex is never on a query's execution path.

use hmmm_core::{AuditSummary, CoreError, FeedbackConfig, FeedbackLog, Hmmm, UpdateReport};
use hmmm_storage::Catalog;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One immutable, audited generation of the model: everything a query
/// executes against, frozen at a single epoch.
#[derive(Debug)]
pub struct ModelSnapshot {
    /// The λ model (Definition 1), with derived caches fresh: the
    /// feature-major `B_1` slab and per-event term lists are ready for
    /// query-scoped `SimCache` builds without further work.
    pub model: Hmmm,
    /// The catalog the model was built from. Shared across generations —
    /// feedback learning (Eqs. 1–10) changes the model, never the catalog.
    pub catalog: Arc<Catalog>,
    /// Monotonic generation counter: the initial snapshot is epoch 0 and
    /// every install increments by one. Responses echo the epoch so a
    /// ranking can always be traced to the exact model that produced it.
    pub epoch: u64,
    /// Receipt of the pre-publication `deep_audit` pass.
    pub audit: AuditSummary,
}

impl ModelSnapshot {
    /// Builds the epoch-0 snapshot from a catalog: §4.2 model construction
    /// ([`hmmm_core::build_hmmm`], Definition 1) followed by the
    /// λ-invariant `deep_audit` gate — an unauditable model is refused
    /// here exactly as it would be at install time.
    ///
    /// # Errors
    ///
    /// [`CoreError`] from construction or from the audit.
    pub fn build(catalog: Catalog, config: &hmmm_core::BuildConfig) -> Result<Self, CoreError> {
        let model = hmmm_core::build_hmmm(&catalog, config)?;
        let audit = model.deep_audit(&catalog)?;
        Ok(ModelSnapshot {
            model,
            catalog: Arc::new(catalog),
            epoch: 0,
            audit,
        })
    }

    /// Wraps an already-built model as an epoch-0 snapshot after auditing
    /// it against `catalog` (Definition-1 well-formedness gate).
    ///
    /// # Errors
    ///
    /// [`CoreError`] if the audit rejects the model.
    pub fn from_model(model: Hmmm, catalog: Catalog) -> Result<Self, CoreError> {
        let audit = model.deep_audit(&catalog)?;
        Ok(ModelSnapshot {
            model,
            catalog: Arc::new(catalog),
            epoch: 0,
            audit,
        })
    }

    /// The relearning step of the snapshot lifecycle: clones this
    /// generation's model, applies the accumulated positive feedback
    /// through the paper's offline updates — `A_1` affinity accumulation
    /// and renormalization (Eqs. 1–2), `Π_1` re-estimation (Eq. 4),
    /// `A_2`/`Π_2` co-access updates (Eqs. 5–6), and the `P_{1,2}`/`B_1'`
    /// re-learning (Eqs. 8–10 and Eq. 11) — then audits the candidate.
    /// `self` is untouched: in-flight queries on this snapshot are
    /// unaffected, which is the whole point of RCU-style installs.
    ///
    /// The returned candidate carries `epoch = self.epoch + 1`;
    /// [`SnapshotCell::install`] re-stamps the epoch under its writer lock,
    /// so racing writers still publish a strictly increasing sequence.
    ///
    /// # Errors
    ///
    /// [`CoreError`] from the feedback update itself or from the
    /// post-update `deep_audit` (a candidate that fails the audit is
    /// dropped; the live snapshot keeps serving).
    pub fn apply_feedback(
        &self,
        log: &mut FeedbackLog,
        config: &FeedbackConfig,
    ) -> Result<(ModelSnapshot, UpdateReport), CoreError> {
        let mut model = self.model.clone();
        let report = log.apply(&mut model, &self.catalog, config)?;
        let audit = model.deep_audit(&self.catalog)?;
        Ok((
            ModelSnapshot {
                model,
                catalog: Arc::clone(&self.catalog),
                epoch: self.epoch + 1,
                audit,
            },
            report,
        ))
    }
}

/// The RCU publication point: one atomic epoch counter in front of a
/// mutex-guarded `Arc` slot.
///
/// * **Readers** ([`SnapshotCell::load`], [`SnapshotCell::refresh`]) are
///   wait-free in the steady state: `refresh` is a single atomic epoch
///   load when nothing changed, and even a cold `load` only clones an
///   `Arc` inside a critical section that contains no other work — no
///   reader ever waits on model construction, feedback math, or auditing.
/// * **Writers** ([`SnapshotCell::install`]) serialize on the slot mutex,
///   run the `deep_audit` gate *outside* the critical section, and swap
///   the pointer only on a clean audit. A failed install leaves the
///   published snapshot untouched.
/// * **Drain** is implicit in `Arc`: a superseded snapshot stays alive
///   until the last in-flight query drops its clone, so installs never
///   tear or block running queries.
pub struct SnapshotCell {
    /// Published epoch, readable without the lock.
    epoch: AtomicU64,
    /// The published snapshot. The mutex orders writers; readers take it
    /// only to clone the `Arc` (a reference-count increment).
    slot: Mutex<Arc<ModelSnapshot>>,
}

impl SnapshotCell {
    /// Publishes `snapshot` as the initial generation.
    pub fn new(snapshot: ModelSnapshot) -> Self {
        SnapshotCell {
            epoch: AtomicU64::new(snapshot.epoch),
            slot: Mutex::new(Arc::new(snapshot)),
        }
    }

    /// The currently published epoch.
    pub fn epoch(&self) -> u64 {
        // ordering: Acquire pairs with the Release store in `install` — a
        // reader that observes epoch N is guaranteed to observe the slot
        // contents published with it (the slot mutex it takes next is
        // itself a stronger synchronization point; the Acquire here only
        // makes the *fast-path skip* in `refresh` sound).
        self.epoch.load(Ordering::Acquire)
    }

    /// Clones the published snapshot handle (an `Arc` bump, not a model
    /// copy).
    pub fn load(&self) -> Arc<ModelSnapshot> {
        Arc::clone(&self.slot.lock().expect("snapshot slot poisoned"))
    }

    /// Refreshes a worker's cached handle only if a newer generation was
    /// published; returns `true` when `cached` was replaced. The
    /// steady-state cost is one atomic load — the serving hot path calls
    /// this once per dequeued request.
    pub fn refresh(&self, cached: &mut Arc<ModelSnapshot>) -> bool {
        if self.epoch() == cached.epoch {
            return false;
        }
        *cached = self.load();
        true
    }

    /// Audits and publishes a candidate snapshot (the "audit → RCU
    /// install" steps of the lifecycle). The candidate's epoch is
    /// re-stamped to `published + 1` under the writer lock, so concurrent
    /// writers — however they interleave — publish a strictly increasing
    /// epoch sequence. Returns the epoch the candidate was published at.
    ///
    /// The audit runs *before* the critical section (it reads only the
    /// candidate), so readers are never exposed to an unaudited model and
    /// writers hold the lock only for the pointer swap.
    ///
    /// # Errors
    ///
    /// [`CoreError`] if `deep_audit` rejects the candidate — the
    /// previously published snapshot keeps serving, untouched.
    pub fn install(&self, mut candidate: ModelSnapshot) -> Result<u64, CoreError> {
        candidate.audit = candidate.model.deep_audit(&candidate.catalog)?;
        let mut slot = self.slot.lock().expect("snapshot slot poisoned");
        let epoch = slot.epoch + 1;
        candidate.epoch = epoch;
        *slot = Arc::new(candidate);
        // ordering: Release pairs with the Acquire in `epoch()` — the new
        // epoch value must become visible no earlier than the slot swap
        // above (both happen inside the mutex, but `epoch()` readers skip
        // the mutex, so the pair carries the happens-before edge for them).
        self.epoch.store(epoch, Ordering::Release);
        Ok(epoch)
    }
}

impl std::fmt::Debug for SnapshotCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotCell")
            .field("epoch", &self.epoch())
            .finish_non_exhaustive()
    }
}
