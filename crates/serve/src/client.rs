//! The built-in wire client: one connection, blocking queries, and a
//! seeded retry policy that is **safe by construction**.
//!
//! The retry rule is the whole design: an attempt is retried only when
//! the failure proves the server cannot have *delivered* a response —
//! connect failures, request-write failures, read failures/EOF before any
//! response byte, and the explicitly transient [`STATUS_REJECTED_QUEUE_FULL`]
//! refusal. The moment a single response byte has arrived, a failure is
//! surfaced as [`NetError::MidResponse`] instead of retried: the client
//! cannot know how much of the response (or any side effect a future
//! protocol revision might carry) already landed, so the re-issue decision
//! belongs to a caller who knows the request is idempotent.
//!
//! Backoff between attempts is capped exponential with seeded jitter
//! (deterministic per [`RetryPolicy::seed`]), recorded in the
//! `net.backoff_ns` histogram. Every retry opens a *fresh* connection,
//! which is also what makes the core fault plane's per-connection tickets
//! compose with it: a plan targeting connection ticket 0 breaks the first
//! attempt and deterministically spares the retry.

use crate::net::{
    read_frame, status_name, write_frame, FrameError, WireRequest, WireResponse, WireStatus,
    FRAME_REQUEST, FRAME_RESPONSE, FRAME_STATUS, STATUS_REJECTED_QUEUE_FULL,
};
use hmmm_core::metrics as m;
use hmmm_core::{FaultHandle, FaultyStream};
use hmmm_obs::RecorderHandle;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Retry/backoff knobs.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per query, including the first (`≥ 1`).
    pub max_attempts: u32,
    /// Backoff before retry `n` is `base × 2^(n-1)`, capped and jittered.
    pub backoff_base: Duration,
    /// Upper bound on any single backoff sleep.
    pub backoff_cap: Duration,
    /// How long to wait for the *first* byte of a reply before treating
    /// the attempt as failed-before-response (retryable).
    pub response_timeout: Duration,
    /// Budget from a reply's first byte to its last; a stall past it is a
    /// mid-response failure (not retryable).
    pub frame_timeout: Duration,
    /// Seed for the backoff jitter (deterministic sleeps per client).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(250),
            response_timeout: Duration::from_secs(10),
            frame_timeout: Duration::from_secs(10),
            seed: 0x0b5e_55ed,
        }
    }
}

/// What one query ultimately came to.
#[derive(Debug, Clone, PartialEq)]
pub enum NetOutcome {
    /// A ranking arrived ([`crate::net::STATUS_OK`] or degraded).
    Response(WireResponse),
    /// The server refused with a terminal status (shutdown, invalid,
    /// deadline, draining, bad frame, connection limit).
    Rejected(WireStatus),
}

impl NetOutcome {
    /// The response, when one arrived.
    pub fn response(&self) -> Option<&WireResponse> {
        match self {
            NetOutcome::Response(r) => Some(r),
            NetOutcome::Rejected(_) => None,
        }
    }
}

/// Why a query produced no outcome.
#[derive(Debug)]
pub enum NetError {
    /// The stream failed after at least one response byte arrived. Not
    /// retried automatically (see the module docs); the caller may
    /// re-issue if it knows the request is idempotent.
    MidResponse(String),
    /// Every attempt failed before a response byte; the last failure is
    /// carried for diagnosis.
    Exhausted {
        /// Attempts made (== the policy's `max_attempts`).
        attempts: u32,
        /// The last attempt's failure, rendered.
        last: String,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::MidResponse(detail) => write!(f, "failed mid-response: {detail}"),
            NetError::Exhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for NetError {}

/// Per-client tallies (also mirrored into the recorder's `net.*`
/// counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientCounters {
    /// Queries issued through [`NetClient::query`].
    pub requests: u64,
    /// Attempts beyond the first, across all queries.
    pub retries: u64,
    /// Queries that reached an outcome on a retry attempt.
    pub retry_successes: u64,
    /// Queries that exhausted every attempt.
    pub give_ups: u64,
    /// Connect failures observed (each one consumed an attempt).
    pub connect_errors: u64,
}

/// A blocking wire client over one (lazily re-established) connection.
pub struct NetClient {
    addr: SocketAddr,
    policy: RetryPolicy,
    fault: FaultHandle,
    obs: RecorderHandle,
    counters: ClientCounters,
    jitter: u64,
    conn: Option<FaultyStream<TcpStream>>,
}

/// Read poll tick for client streams (bounds how late a timeout check
/// can fire; the real budgets live in [`RetryPolicy`]).
const CLIENT_POLL: Duration = Duration::from_millis(10);

impl NetClient {
    /// A client for `addr` with the given retry policy. `fault` is the
    /// client-side network fault plane (use [`FaultHandle::noop`] for
    /// none); `obs` receives the `net.*` client counters.
    pub fn connect(
        addr: SocketAddr,
        policy: RetryPolicy,
        fault: FaultHandle,
        obs: RecorderHandle,
    ) -> NetClient {
        let jitter = policy.seed;
        NetClient {
            addr,
            policy,
            fault,
            obs,
            counters: ClientCounters::default(),
            jitter,
            conn: None,
        }
    }

    /// The tallies so far.
    pub fn counters(&self) -> ClientCounters {
        self.counters
    }

    /// One query end to end: ensure a connection, send the request frame,
    /// read exactly one reply frame, retrying failed-before-response
    /// attempts per the policy.
    ///
    /// # Errors
    ///
    /// [`NetError::MidResponse`] when a reply broke after its first byte
    /// (never auto-retried), [`NetError::Exhausted`] when every attempt
    /// failed before one.
    pub fn query(
        &mut self,
        pattern: &str,
        limit: usize,
        deadline: Option<Duration>,
    ) -> Result<NetOutcome, NetError> {
        self.counters.requests += 1;
        let payload = serde_json::to_vec(&WireRequest {
            pattern: pattern.to_string(),
            limit,
            deadline_ms: deadline.map(|d| d.as_millis() as u64),
        })
        .expect("wire request serializes");
        let mut last = String::from("no attempt ran");
        for attempt in 0..self.policy.max_attempts {
            if attempt > 0 {
                self.counters.retries += 1;
                self.obs.counter(m::CTR_NET_RETRIES, 1);
                let sleep = self.backoff(attempt);
                self.obs.observe_ns(m::HIST_NET_BACKOFF, sleep.as_nanos() as u64);
                std::thread::sleep(sleep);
            }
            match self.attempt(&payload) {
                Ok(outcome) => {
                    if attempt > 0 {
                        self.counters.retry_successes += 1;
                        self.obs.counter(m::CTR_NET_RETRY_SUCCESSES, 1);
                    }
                    return Ok(outcome);
                }
                Err(AttemptError::Retryable(detail)) => last = detail,
                Err(AttemptError::MidResponse(detail)) => {
                    return Err(NetError::MidResponse(detail));
                }
            }
        }
        self.counters.give_ups += 1;
        self.obs.counter(m::CTR_NET_GIVE_UPS, 1);
        Err(NetError::Exhausted {
            attempts: self.policy.max_attempts,
            last,
        })
    }

    /// One attempt: write the request, read one reply frame, classify.
    fn attempt(&mut self, payload: &[u8]) -> Result<NetOutcome, AttemptError> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(self.addr).map_err(|e| {
                self.counters.connect_errors += 1;
                AttemptError::Retryable(format!("connect failed: {e}"))
            })?;
            let _ = stream.set_nodelay(true);
            stream.set_read_timeout(Some(CLIENT_POLL)).map_err(|e| {
                AttemptError::Retryable(format!("socket setup failed: {e}"))
            })?;
            self.conn = Some(self.fault.wrap_stream(stream));
        }
        let stream = self.conn.as_mut().expect("connection just ensured");
        // A request-write failure proves the server saw at most a torn
        // request it cannot act on: retryable, on a fresh connection.
        if let Err(e) = write_frame(stream, FRAME_REQUEST, payload) {
            self.conn = None;
            return Err(AttemptError::Retryable(format!("request write failed: {e}")));
        }
        let frame = match read_frame(
            stream,
            || false,
            self.policy.frame_timeout,
            Some(self.policy.response_timeout),
        ) {
            Ok(frame) => frame,
            // No response byte arrived: the server never answered this
            // attempt, so a retry cannot duplicate anything.
            Err(FrameError::Closed) | Err(FrameError::TimedOut { started: false }) => {
                self.conn = None;
                return Err(AttemptError::Retryable("no response before failure".into()));
            }
            // Response bytes arrived, then the stream broke, stalled, or
            // turned to garbage: never retried automatically.
            Err(e @ FrameError::Torn(_))
            | Err(e @ FrameError::Malformed(_))
            | Err(e @ FrameError::TimedOut { started: true }) => {
                self.conn = None;
                return Err(AttemptError::MidResponse(e.to_string()));
            }
            Err(FrameError::Draining) => unreachable!("client read never probes draining"),
        };
        match frame.kind {
            FRAME_RESPONSE => match serde_json::from_slice::<WireResponse>(&frame.payload) {
                Ok(response) => Ok(NetOutcome::Response(response)),
                Err(e) => {
                    self.conn = None;
                    Err(AttemptError::MidResponse(format!(
                        "unparseable response payload: {e}"
                    )))
                }
            },
            FRAME_STATUS => {
                let status: WireStatus = match serde_json::from_slice(&frame.payload) {
                    Ok(status) => status,
                    Err(e) => {
                        self.conn = None;
                        return Err(AttemptError::MidResponse(format!(
                            "unparseable status payload: {e}"
                        )));
                    }
                };
                if status.code == STATUS_REJECTED_QUEUE_FULL {
                    // The one transient refusal: the request was never
                    // admitted, so retrying (with backoff) is safe and is
                    // the point of reject-not-block admission.
                    return Err(AttemptError::Retryable(format!(
                        "{} ({})",
                        status_name(status.code),
                        status.reason
                    )));
                }
                // Terminal refusals close the connection server-side for
                // framing/drain statuses; reconnect lazily either way.
                self.conn = None;
                Ok(NetOutcome::Rejected(status))
            }
            other => {
                self.conn = None;
                Err(AttemptError::MidResponse(format!(
                    "unexpected reply frame kind {other}"
                )))
            }
        }
    }

    /// Capped exponential backoff with seeded jitter in `[0.5, 1.0)×`.
    fn backoff(&mut self, attempt: u32) -> Duration {
        let exp = self
            .policy
            .backoff_base
            .saturating_mul(1u32 << (attempt - 1).min(16))
            .min(self.policy.backoff_cap);
        self.jitter = splitmix64(self.jitter);
        let unit = (self.jitter >> 11) as f64 / (1u64 << 53) as f64;
        exp.mul_f64(0.5 + 0.5 * unit)
    }
}

/// Attempt-level classification feeding the retry loop.
enum AttemptError {
    /// Failed before any response byte (or queue-full): retry on a fresh
    /// connection after backoff.
    Retryable(String),
    /// Failed after a response byte: surface, never retry.
    MidResponse(String),
}

/// splitmix64 (Steele et al.) — the jitter stream's mixer, same shape the
/// core fault plane uses for its Bernoulli draws.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_capped_jittered_and_deterministic() {
        let policy = RetryPolicy {
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(40),
            seed: 7,
            ..RetryPolicy::default()
        };
        let mut a = NetClient::connect(
            "127.0.0.1:1".parse().unwrap(),
            policy.clone(),
            FaultHandle::noop(),
            RecorderHandle::noop(),
        );
        let mut b = NetClient::connect(
            "127.0.0.1:1".parse().unwrap(),
            policy,
            FaultHandle::noop(),
            RecorderHandle::noop(),
        );
        let sleeps_a: Vec<Duration> = (1..6).map(|n| a.backoff(n)).collect();
        let sleeps_b: Vec<Duration> = (1..6).map(|n| b.backoff(n)).collect();
        assert_eq!(sleeps_a, sleeps_b, "same seed, same jitter");
        for (n, sleep) in sleeps_a.iter().enumerate() {
            let exp = Duration::from_millis(10)
                .saturating_mul(1 << n)
                .min(Duration::from_millis(40));
            assert!(*sleep >= exp.mul_f64(0.5) && *sleep < exp, "attempt {n}: {sleep:?}");
        }
    }

    #[test]
    fn connect_failure_exhausts_with_backoff() {
        // Port 1 on localhost refuses immediately; every attempt fails
        // before a response byte, so the client gives up cleanly.
        let mut client = NetClient::connect(
            "127.0.0.1:1".parse().unwrap(),
            RetryPolicy {
                max_attempts: 2,
                backoff_base: Duration::from_millis(1),
                backoff_cap: Duration::from_millis(2),
                ..RetryPolicy::default()
            },
            FaultHandle::noop(),
            RecorderHandle::noop(),
        );
        match client.query("goal", 3, None) {
            Err(NetError::Exhausted { attempts: 2, last }) => {
                assert!(last.contains("connect failed"), "{last}")
            }
            other => panic!("expected Exhausted, got {other:?}"),
        }
        let counters = client.counters();
        assert_eq!(counters.requests, 1);
        assert_eq!(counters.retries, 1);
        assert_eq!(counters.give_ups, 1);
        assert_eq!(counters.connect_errors, 2);
        assert_eq!(counters.retry_successes, 0);
    }
}
