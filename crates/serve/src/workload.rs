//! Seeded open-workload generator for the [`QueryServer`]: a Zipf query
//! mix over soccer temporal patterns, Poisson arrivals per client, and a
//! configurable probability that a completed query feeds its top result
//! back into the Eqs. 1–10 relearning loop (triggering audit-gated
//! snapshot installs while the load runs).
//!
//! Everything is deterministic from [`WorkloadConfig::seed`]: each client
//! thread derives its own `StdRng`, so the *sequence* of queries,
//! think-times, and feedback decisions per client is reproducible even
//! though thread interleaving (and thus queue contention, rejections, and
//! the epoch each request lands on) is not. The `--check` mode below is
//! how the exactness contract survives that nondeterminism: every
//! completed response is re-derived serially against the *exact snapshot
//! generation that answered it* and compared byte-for-byte.

use crate::client::{NetClient, NetError, NetOutcome, RetryPolicy};
use crate::net::status_name;
use crate::server::{QueryRequest, QueryServer, RejectReason, ServeOutcome};
use crate::snapshot::ModelSnapshot;
use hmmm_core::{
    DegradedReason, FaultHandle, FeedbackConfig, FeedbackLog, PositivePattern, RankedPattern,
    RetrievalConfig, Retriever,
};
use hmmm_media::EventKind;
use hmmm_obs::RecorderHandle;
use hmmm_query::{CompiledPattern, QueryTranslator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The query mix: compiled patterns in Zipf rank order (rank 1 = most
/// popular) with a precomputed CDF for O(pool) sampling.
#[derive(Debug, Clone)]
pub struct PatternPool {
    patterns: Vec<(String, CompiledPattern)>,
    cdf: Vec<f64>,
}

impl PatternPool {
    /// The built-in soccer mix: every single-event query plus the
    /// multi-step temporal patterns the paper's examples revolve around
    /// ("corner kick followed by a goal", §5), ranked so short popular
    /// queries dominate under Zipf.
    ///
    /// # Errors
    ///
    /// [`hmmm_core::CoreError`] only if the built-in query strings fail to
    /// compile (a bug, not an input condition).
    pub fn soccer(exponent: f64) -> Result<Self, hmmm_core::CoreError> {
        let texts: Vec<String> = [
            "corner_kick -> goal",
            "free_kick -> goal",
            "foul -> yellow_card",
            "foul -> free_kick -> goal",
            "corner_kick -> goal_kick",
            "foul -> red_card",
        ]
        .iter()
        .map(|s| s.to_string())
        .chain(EventKind::ALL.iter().map(|k| k.name().to_string()))
        .collect();
        Self::from_texts(&texts, exponent)
    }

    /// Compiles `texts` (already in popularity rank order) into a pool
    /// with Zipf weights `rank^-exponent`. `exponent = 0` is a uniform
    /// mix.
    ///
    /// # Errors
    ///
    /// [`hmmm_core::CoreError`] when a query fails to compile or the pool
    /// is empty.
    pub fn from_texts(texts: &[String], exponent: f64) -> Result<Self, hmmm_core::CoreError> {
        if texts.is_empty() {
            return Err(hmmm_core::CoreError::BadQuery(
                "empty workload pattern pool".into(),
            ));
        }
        let translator = QueryTranslator::new(EventKind::ALL.iter().map(|k| k.name()));
        let mut patterns = Vec::with_capacity(texts.len());
        let mut cdf = Vec::with_capacity(texts.len());
        let mut total = 0.0_f64;
        for (rank, text) in texts.iter().enumerate() {
            let compiled = translator
                .compile(text)
                .map_err(|e| hmmm_core::CoreError::BadQuery(e.to_string()))?;
            total += ((rank + 1) as f64).powf(-exponent);
            patterns.push((text.clone(), compiled));
            cdf.push(total);
        }
        Ok(PatternPool { patterns, cdf })
    }

    /// Number of distinct queries in the mix.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// `true` when the pool has no queries (never for the built-ins).
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Draws a pattern index by the Zipf weights.
    fn sample(&self, rng: &mut StdRng) -> usize {
        let total = *self.cdf.last().expect("non-empty pool");
        let u = rng.next_f64() * total;
        // Linear scan: the pool is a dozen entries, and this avoids any
        // float-comparator machinery on a non-hot path.
        self.cdf.iter().position(|&c| u < c).unwrap_or(self.len() - 1)
    }

    /// The query text and compiled pattern at `index`.
    pub fn get(&self, index: usize) -> (&str, &CompiledPattern) {
        let (text, compiled) = &self.patterns[index];
        (text, compiled)
    }
}

/// Knobs for one load run.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Concurrent closed-loop clients (each is its own Poisson source, so
    /// the aggregate arrival process is Poisson too).
    pub clients: usize,
    /// Requests each client submits.
    pub requests_per_client: usize,
    /// Zipf exponent for the query mix (`0` = uniform; `~1` = classic
    /// popularity skew).
    pub zipf_exponent: f64,
    /// Mean think time between a client's requests; the actual gap is
    /// exponentially distributed (Poisson arrivals). Zero = closed loop
    /// at full speed.
    pub mean_interarrival: Duration,
    /// Probability that a completed, non-empty response is fed back as a
    /// confirmed positive pattern (the paper's access-pattern
    /// accumulation); reaching [`FeedbackConfig::update_threshold`]
    /// pending patterns triggers an Eqs. 1–10 relearn + snapshot install
    /// *while the load is running*.
    pub feedback_probability: f64,
    /// Learning hyper-parameters for those installs.
    pub feedback: FeedbackConfig,
    /// Per-request deadline attached to every submission (`None` defers
    /// to the server's default).
    pub deadline: Option<Duration>,
    /// Top-k limit per query.
    pub limit: usize,
    /// Master seed; client `i` derives `seed ⊕ splitmix(i)`.
    pub seed: u64,
    /// Re-derive every completed response serially against the snapshot
    /// generation that answered it and compare byte-for-byte (requires
    /// the server to retain snapshot history). Degraded responses are
    /// checked as prefixes-of-no-lie: only exact (non-degraded) responses
    /// are compared.
    pub check: bool,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            clients: 4,
            requests_per_client: 64,
            zipf_exponent: 1.0,
            mean_interarrival: Duration::from_micros(200),
            feedback_probability: 0.05,
            feedback: FeedbackConfig::default(),
            deadline: None,
            limit: 10,
            seed: 0x5eed_f00d,
            check: false,
        }
    }
}

/// Aggregate result of one load run ([`run_workload`]); serialized into
/// `BENCH_retrieval.json` by `bench_report` and printed by `hmmm loadgen`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadReport {
    /// Client count the run used.
    pub clients: usize,
    /// Requests submitted (including rejected ones).
    pub submitted: usize,
    /// Requests that produced a ranking.
    pub completed: usize,
    /// Completed-but-degraded responses (deadline fired mid-query).
    pub degraded: usize,
    /// Requests rejected at admission, keyed by canonical
    /// [`RejectReason::as_str`] string. Every rejection has a reason —
    /// the counts here sum to `submitted - completed`.
    pub rejections: BTreeMap<String, usize>,
    /// Audit-gated snapshot installs triggered by feedback during the run.
    pub feedback_installs: usize,
    /// Highest epoch observed in any response.
    pub max_epoch: u64,
    /// Wall-clock duration of the whole run, nanoseconds.
    pub wall_ns: u64,
    /// Completed queries per second of wall-clock.
    pub qps: f64,
    /// Median end-to-end latency (submit → outcome), milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
    /// `--check` mismatches: completed exact responses whose ranking was
    /// not byte-identical to a serial re-derivation on the same snapshot
    /// epoch. Always 0 on a healthy build.
    pub check_mismatches: usize,
    /// Exact responses actually re-derived in `--check` mode.
    pub checked: usize,
}

impl LoadReport {
    /// `true` when every submission reached a reasoned terminal state and
    /// (in `--check` mode) every checked ranking matched its serial
    /// re-derivation.
    pub fn healthy(&self) -> bool {
        let rejected: usize = self.rejections.values().sum();
        self.completed + rejected == self.submitted && self.check_mismatches == 0
    }
}

/// Per-client tally merged into the final [`LoadReport`].
#[derive(Default)]
struct ClientTally {
    submitted: usize,
    completed: usize,
    degraded: usize,
    rejections: BTreeMap<String, usize>,
    latencies_ns: Vec<u64>,
    max_epoch: u64,
    check_mismatches: usize,
    checked: usize,
}

impl ClientTally {
    fn merge(&mut self, other: ClientTally) {
        self.submitted += other.submitted;
        self.completed += other.completed;
        self.degraded += other.degraded;
        for (reason, n) in other.rejections {
            *self.rejections.entry(reason).or_insert(0) += n;
        }
        self.latencies_ns.extend(other.latencies_ns);
        self.max_epoch = self.max_epoch.max(other.max_epoch);
        self.check_mismatches += other.check_mismatches;
        self.checked += other.checked;
    }
}

/// Nearest-rank percentile over raw latencies, in milliseconds.
fn percentile_ms(sorted_ns: &[u64], pct: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((pct / 100.0) * sorted_ns.len() as f64).ceil() as usize;
    let idx = rank.clamp(1, sorted_ns.len()) - 1;
    sorted_ns[idx] as f64 / 1e6
}

/// Exponential think-time sample with the configured mean.
fn exponential(rng: &mut StdRng, mean: Duration) -> Duration {
    if mean.is_zero() {
        return Duration::ZERO;
    }
    let u = rng.next_f64();
    // Inverse-CDF; 1-u is in (0, 1] so the log is finite.
    Duration::from_secs_f64(mean.as_secs_f64() * -(1.0 - u).ln())
}

/// Seed expansion for per-client RNGs (SplitMix64 step, same shape the
/// vendored `rand` uses internally).
fn client_seed(master: u64, client: usize) -> u64 {
    let mut z = master
        .wrapping_add(0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(client as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Drives the configured workload against a running server and tallies
/// the outcome. Blocks until every client finishes.
///
/// Feedback rounds, when they fire, go through
/// [`QueryServer::apply_feedback`] from the client threads themselves —
/// installs race the in-flight queries by design, which is exactly the
/// interleaving `--check` mode then audits for exactness.
///
/// # Errors
///
/// [`hmmm_core::CoreError`] if the built-in pattern pool fails to compile,
/// or if `check` is requested against a server that did not retain
/// snapshot history.
pub fn run_workload(
    server: &QueryServer,
    config: &WorkloadConfig,
) -> Result<LoadReport, hmmm_core::CoreError> {
    let pool = PatternPool::soccer(config.zipf_exponent)?;
    if config.check && server.snapshot_at(server.epoch()).is_none() {
        return Err(hmmm_core::CoreError::Inconsistent(
            "workload --check requires ServerConfig.retain_snapshot_history".into(),
        ));
    }
    let feedback_log = Mutex::new(FeedbackLog::new());
    let installs = AtomicU64::new(0);
    let next_query_session = AtomicU64::new(0);
    let started = Instant::now();

    let mut total = ClientTally::default();
    let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.clients)
            .map(|c| {
                let pool = &pool;
                let feedback_log = &feedback_log;
                let installs = &installs;
                let next_query_session = &next_query_session;
                scope.spawn(move || {
                    run_client(
                        server,
                        config,
                        pool,
                        client_seed(config.seed, c),
                        feedback_log,
                        installs,
                        next_query_session,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("workload client panicked"))
            .collect()
    });
    for tally in tallies {
        total.merge(tally);
    }
    let wall_ns = started.elapsed().as_nanos() as u64;

    total.latencies_ns.sort_unstable();
    let qps = if wall_ns == 0 {
        0.0
    } else {
        total.completed as f64 / (wall_ns as f64 / 1e9)
    };
    // ordering: Relaxed — the counter is read after every client thread
    // was joined, so all increments already happened-before this load.
    // `installs` is a pure counter, registered in RELAXED_ALLOWLIST.
    let feedback_installs = installs.load(Ordering::Relaxed) as usize;
    Ok(LoadReport {
        clients: config.clients,
        submitted: total.submitted,
        completed: total.completed,
        degraded: total.degraded,
        rejections: total.rejections,
        feedback_installs,
        max_epoch: total.max_epoch,
        wall_ns,
        qps,
        p50_ms: percentile_ms(&total.latencies_ns, 50.0),
        p95_ms: percentile_ms(&total.latencies_ns, 95.0),
        p99_ms: percentile_ms(&total.latencies_ns, 99.0),
        check_mismatches: total.check_mismatches,
        checked: total.checked,
    })
}

/// One client's closed loop: think → sample → submit → wait → (maybe)
/// feed back → (in `--check`) re-derive and compare.
fn run_client(
    server: &QueryServer,
    config: &WorkloadConfig,
    pool: &PatternPool,
    seed: u64,
    feedback_log: &Mutex<FeedbackLog>,
    installs: &AtomicU64,
    next_query_session: &AtomicU64,
) -> ClientTally {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tally = ClientTally::default();
    for _ in 0..config.requests_per_client {
        let think = exponential(&mut rng, config.mean_interarrival);
        if !think.is_zero() {
            std::thread::sleep(think);
        }
        let (_, compiled) = pool.get(pool.sample(&mut rng));
        let mut request = QueryRequest::new(compiled.clone(), config.limit);
        request.deadline = config.deadline;
        let submitted_at = Instant::now();
        let outcome = server.query(request);
        tally.latencies_ns.push(submitted_at.elapsed().as_nanos() as u64);
        tally.submitted += 1;
        match outcome {
            ServeOutcome::Completed(response) => {
                tally.completed += 1;
                tally.max_epoch = tally.max_epoch.max(response.epoch);
                if response.stats.degraded.is_some() {
                    tally.degraded += 1;
                }
                if config.check && check_eligible(&response) {
                    tally.checked += 1;
                    if !check_response(server, config, compiled, &response) {
                        tally.check_mismatches += 1;
                    }
                }
                let feed = config.feedback_probability > 0.0
                    && !response.results.is_empty()
                    && rng.gen_bool(config.feedback_probability);
                if feed {
                    maybe_feed_back(
                        server,
                        config,
                        &response.results[0],
                        feedback_log,
                        installs,
                        next_query_session,
                    );
                }
            }
            ServeOutcome::Rejected(reason) => {
                record_rejection(&mut tally, &reason);
            }
        }
    }
    tally
}

fn record_rejection(tally: &mut ClientTally, reason: &RejectReason) {
    let key = reason.as_str().to_string();
    assert!(!key.is_empty(), "rejection without a reason");
    *tally.rejections.entry(key).or_insert(0) += 1;
}

/// The serial re-derivation's fault handle: the live config's plan with
/// its timing-only components (latency stalls) stripped.
///
/// The check must re-derive under the *same* coarse mode and fault plan
/// the server ran with — a panic plan deterministically restricts the
/// ranking to the surviving videos, so dropping it would diff every
/// affected response. Latency is the one component that must NOT leak in:
/// it changes timing, never results, so keeping it could only stall the
/// rerun (or, combined with a deadline, spuriously flip its `degraded`
/// flag) without changing what a correct ranking looks like.
fn check_fault_handle(live: &FaultHandle) -> FaultHandle {
    match live.plan() {
        None => FaultHandle::noop(),
        Some(plan) => {
            let mut stripped = plan.clone();
            stripped.latency_step = None;
            stripped.latency_ns = 0;
            if stripped.is_empty() {
                FaultHandle::noop()
            } else {
                FaultHandle::from_plan(stripped)
            }
        }
    }
}

/// The serial reference configuration for `--check`: single-threaded, no
/// deadline, same coarse mode, latency-stripped fault plan (see
/// [`check_fault_handle`]).
fn check_retrieval_config(live: RetrievalConfig) -> RetrievalConfig {
    let mut serial = live;
    serial.threads = Some(1);
    serial.deadline = None;
    serial.fault = check_fault_handle(&serial.fault);
    serial
}

/// Whether a completed response is deterministic enough to re-derive: an
/// exact response always is; a degraded one only when the sole cause was
/// worker panics (deterministic per video under a seeded plan). Any
/// deadline involvement makes the restriction timing-dependent, so those
/// are checked as prefixes-of-no-lie only (skipped).
fn check_eligible(response: &crate::server::QueryResponse) -> bool {
    match &response.stats.degraded {
        None => true,
        Some(d) => d.reason == DegradedReason::WorkerPanic,
    }
}

/// Serially re-derives `response` on the snapshot generation that
/// produced it; `true` when the rankings are byte-identical.
fn check_response(
    server: &QueryServer,
    config: &WorkloadConfig,
    pattern: &CompiledPattern,
    response: &crate::server::QueryResponse,
) -> bool {
    let Some(snapshot) = server.snapshot_at(response.epoch) else {
        return false; // history gap: count as a mismatch, it is one
    };
    let serial = check_retrieval_config(server.retrieval_config());
    let Ok(retriever) = Retriever::new(&snapshot.model, &snapshot.catalog, serial) else {
        return false;
    };
    match retriever.retrieve(pattern, config.limit) {
        Ok((expected, _)) => expected == response.results,
        Err(_) => false,
    }
}

/// Records the top result as a confirmed positive pattern and, once the
/// threshold is pending, runs the full Eqs. 1–10 relearn + audit-gated
/// install through the server.
fn maybe_feed_back(
    server: &QueryServer,
    config: &WorkloadConfig,
    top: &hmmm_core::RankedPattern,
    feedback_log: &Mutex<FeedbackLog>,
    installs: &AtomicU64,
    next_query_session: &AtomicU64,
) {
    let mut log = feedback_log.lock().expect("feedback log poisoned");
    // ordering: Relaxed — the session id is a label grouping co-confirmed
    // videos; no memory is published through it. Registered in
    // RELAXED_ALLOWLIST (hmmm-analyze) as an id/ticket source.
    let query = next_query_session.fetch_add(1, Ordering::Relaxed);
    let recorded = log.record(PositivePattern {
        query,
        video: top.video,
        shots: top.shots.clone(),
        events: top.events.clone(),
        access: 1.0,
    });
    if recorded.is_err() {
        return; // a degenerate single-shot pattern the log refuses; skip
    }
    if log.should_update(&config.feedback)
        && server.apply_feedback(&mut log, &config.feedback).is_ok()
    {
        // ordering: Relaxed — install count is reported after join; pure
        // counter, registered in RELAXED_ALLOWLIST (hmmm-analyze).
        installs.fetch_add(1, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------- network

/// The serial reference for network `--check`: the generation the remote
/// server is serving (epoch 0 — the wire carries no feedback, so a remote
/// server's epoch only moves through its own REPL) plus a retrieval
/// configuration matching the server's `--coarse` mode and fault plan.
#[derive(Clone)]
pub struct NetCheck {
    /// The epoch-0 model generation, built locally from the same catalog.
    pub snapshot: Arc<ModelSnapshot>,
    /// The server's base retrieval configuration (coarse mode, fault
    /// plan); normalized through the same latency-stripping path as the
    /// in-process check.
    pub retrieval: RetrievalConfig,
}

/// Knobs for one load run against a remote [`crate::NetServer`].
#[derive(Clone)]
pub struct NetWorkloadConfig {
    /// Concurrent clients, each with its own connection and retry state.
    pub clients: usize,
    /// Requests per client.
    pub requests_per_client: usize,
    /// Zipf exponent for the query mix.
    pub zipf_exponent: f64,
    /// Mean think time between a client's requests (exponential).
    pub mean_interarrival: Duration,
    /// Per-request deadline carried on the wire (network time + queue
    /// wait + execution all draw from it).
    pub deadline: Option<Duration>,
    /// Top-k limit per query.
    pub limit: usize,
    /// Master seed (drives per-client RNGs and backoff jitter).
    pub seed: u64,
    /// Retry/backoff policy for every client.
    pub policy: RetryPolicy,
    /// Client-side network fault plane, shared by all clients so the
    /// plan's connection tickets are drawn globally.
    pub fault: FaultHandle,
    /// Observability sink for the client-side `net.*` counters.
    pub recorder: RecorderHandle,
    /// When set, every eligible response is re-derived locally and
    /// compared byte-for-byte.
    pub check: Option<NetCheck>,
}

impl Default for NetWorkloadConfig {
    fn default() -> Self {
        NetWorkloadConfig {
            clients: 4,
            requests_per_client: 64,
            zipf_exponent: 1.0,
            mean_interarrival: Duration::from_micros(200),
            deadline: None,
            limit: 10,
            seed: 0x5eed_f00d,
            policy: RetryPolicy::default(),
            fault: FaultHandle::noop(),
            recorder: RecorderHandle::noop(),
            check: None,
        }
    }
}

/// Aggregate result of one network load run ([`run_net_workload`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetLoadReport {
    /// Client count the run used.
    pub clients: usize,
    /// Logical requests issued (each may span several wire attempts).
    pub submitted: usize,
    /// Requests that produced a ranking.
    pub completed: usize,
    /// Completed-but-degraded responses.
    pub degraded: usize,
    /// Requests refused with a terminal status, keyed by
    /// [`status_name`]. Rejections + completions account for every
    /// request that did not give up.
    pub rejections: BTreeMap<String, usize>,
    /// Wire attempts beyond the first, across all requests.
    pub retries: u64,
    /// Requests whose outcome arrived on a retry attempt.
    pub retry_successes: u64,
    /// Requests that exhausted every attempt without an outcome.
    pub give_ups: u64,
    /// Replies that broke after their first byte (never auto-retried;
    /// each is followed by one fresh re-issued request).
    pub mid_response_errors: u64,
    /// Fresh requests issued after a mid-response failure (queries are
    /// idempotent reads, so the harness may safely re-ask).
    pub reissues: u64,
    /// Highest epoch observed in any response.
    pub max_epoch: u64,
    /// Wall-clock duration of the whole run, nanoseconds.
    pub wall_ns: u64,
    /// Completed queries per second of wall-clock.
    pub qps: f64,
    /// Median end-to-end latency (including retries), milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Checked responses whose ranking was not byte-identical to the
    /// local serial re-derivation. Always 0 on a healthy build.
    pub check_mismatches: usize,
    /// Responses actually re-derived in check mode.
    pub checked: usize,
}

impl NetLoadReport {
    /// `true` when every request reached a terminal outcome (response or
    /// reasoned rejection — possibly after retries), nothing gave up, and
    /// every checked ranking matched its local re-derivation.
    pub fn healthy(&self) -> bool {
        let rejected: usize = self.rejections.values().sum();
        self.completed + rejected == self.submitted
            && self.give_ups == 0
            && self.check_mismatches == 0
    }
}

/// Per-client network tally merged into the final report.
#[derive(Default)]
struct NetTally {
    submitted: usize,
    completed: usize,
    degraded: usize,
    rejections: BTreeMap<String, usize>,
    latencies_ns: Vec<u64>,
    max_epoch: u64,
    retries: u64,
    retry_successes: u64,
    give_ups: u64,
    mid_response_errors: u64,
    reissues: u64,
    check_mismatches: usize,
    checked: usize,
}

impl NetTally {
    fn merge(&mut self, other: NetTally) {
        self.submitted += other.submitted;
        self.completed += other.completed;
        self.degraded += other.degraded;
        for (reason, n) in other.rejections {
            *self.rejections.entry(reason).or_insert(0) += n;
        }
        self.latencies_ns.extend(other.latencies_ns);
        self.max_epoch = self.max_epoch.max(other.max_epoch);
        self.retries += other.retries;
        self.retry_successes += other.retry_successes;
        self.give_ups += other.give_ups;
        self.mid_response_errors += other.mid_response_errors;
        self.reissues += other.reissues;
        self.check_mismatches += other.check_mismatches;
        self.checked += other.checked;
    }
}

/// Cached local re-derivations for network check mode, one entry per
/// pattern-pool index (the reference is a pure function of pattern +
/// limit on the fixed epoch-0 snapshot, so clients share it).
struct NetCheckCache {
    check: NetCheck,
    limit: usize,
    reference: Mutex<BTreeMap<usize, Option<Vec<RankedPattern>>>>,
}

impl NetCheckCache {
    /// `true` when `results` matches the serial local re-derivation of
    /// pattern `index` byte-for-byte.
    fn matches(&self, index: usize, pattern: &CompiledPattern, results: &[RankedPattern]) -> bool {
        let mut cache = self.reference.lock().expect("net check cache poisoned");
        let expected = cache.entry(index).or_insert_with(|| {
            let serial = check_retrieval_config(self.check.retrieval.clone());
            let snapshot = &self.check.snapshot;
            Retriever::new(&snapshot.model, &snapshot.catalog, serial)
                .and_then(|r| r.retrieve(pattern, self.limit))
                .ok()
                .map(|(ranking, _)| ranking)
        });
        match expected {
            Some(expected) => expected.as_slice() == results,
            None => false, // the reference itself failed: count as mismatch
        }
    }
}

/// Drives the configured workload against a remote server over real
/// sockets and tallies the outcome. Blocks until every client finishes.
///
/// Mid-response failures (a reply torn after its first byte) are *not*
/// retried by the client — see [`crate::client`] — but queries are
/// idempotent reads, so the harness re-issues each one once as a fresh
/// request and counts it under `reissues`.
///
/// # Errors
///
/// [`hmmm_core::CoreError`] if the built-in pattern pool fails to
/// compile.
pub fn run_net_workload(
    addr: SocketAddr,
    config: &NetWorkloadConfig,
) -> Result<NetLoadReport, hmmm_core::CoreError> {
    let pool = PatternPool::soccer(config.zipf_exponent)?;
    let check_cache = config.check.clone().map(|check| NetCheckCache {
        check,
        limit: config.limit,
        reference: Mutex::new(BTreeMap::new()),
    });
    let started = Instant::now();

    let mut total = NetTally::default();
    let tallies: Vec<NetTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.clients)
            .map(|c| {
                let pool = &pool;
                let check_cache = check_cache.as_ref();
                scope.spawn(move || run_net_client(addr, config, pool, c, check_cache))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("net workload client panicked"))
            .collect()
    });
    for tally in tallies {
        total.merge(tally);
    }
    let wall_ns = started.elapsed().as_nanos() as u64;

    total.latencies_ns.sort_unstable();
    let qps = if wall_ns == 0 {
        0.0
    } else {
        total.completed as f64 / (wall_ns as f64 / 1e9)
    };
    Ok(NetLoadReport {
        clients: config.clients,
        submitted: total.submitted,
        completed: total.completed,
        degraded: total.degraded,
        rejections: total.rejections,
        retries: total.retries,
        retry_successes: total.retry_successes,
        give_ups: total.give_ups,
        mid_response_errors: total.mid_response_errors,
        reissues: total.reissues,
        max_epoch: total.max_epoch,
        wall_ns,
        qps,
        p50_ms: percentile_ms(&total.latencies_ns, 50.0),
        p95_ms: percentile_ms(&total.latencies_ns, 95.0),
        p99_ms: percentile_ms(&total.latencies_ns, 99.0),
        check_mismatches: total.check_mismatches,
        checked: total.checked,
    })
}

/// One network client's closed loop.
fn run_net_client(
    addr: SocketAddr,
    config: &NetWorkloadConfig,
    pool: &PatternPool,
    client_idx: usize,
    check_cache: Option<&NetCheckCache>,
) -> NetTally {
    let mut policy = config.policy.clone();
    // Distinct jitter stream per client, derived from the master seed.
    policy.seed = client_seed(config.seed ^ 0x6e65_745f_6a69_7474, client_idx);
    let mut client = NetClient::connect(
        addr,
        policy,
        config.fault.clone(),
        config.recorder.clone(),
    );
    let mut rng = StdRng::seed_from_u64(client_seed(config.seed, client_idx));
    let mut tally = NetTally::default();
    for _ in 0..config.requests_per_client {
        let think = exponential(&mut rng, config.mean_interarrival);
        if !think.is_zero() {
            std::thread::sleep(think);
        }
        let index = pool.sample(&mut rng);
        let (text, compiled) = pool.get(index);
        let submitted_at = Instant::now();
        let mut result = client.query(text, config.limit, config.deadline);
        if let Err(NetError::MidResponse(_)) = result {
            // The client refuses to auto-retry past a response byte; the
            // harness knows queries are idempotent reads and re-asks once.
            tally.mid_response_errors += 1;
            tally.reissues += 1;
            result = client.query(text, config.limit, config.deadline);
        }
        tally.latencies_ns.push(submitted_at.elapsed().as_nanos() as u64);
        tally.submitted += 1;
        match result {
            Ok(NetOutcome::Response(response)) => {
                tally.completed += 1;
                tally.max_epoch = tally.max_epoch.max(response.epoch);
                if response.degraded.is_some() {
                    tally.degraded += 1;
                }
                if let Some(cache) = check_cache {
                    // The local reference is the epoch-0 generation; a
                    // response is checkable when it came from that epoch
                    // and is deterministic (exact, or degraded by panics
                    // alone — the same eligibility as the in-process
                    // check).
                    let deterministic = match &response.degraded {
                        None => true,
                        Some(reason) => reason.as_str() == DegradedReason::WorkerPanic.as_str(),
                    };
                    if response.epoch == 0 && deterministic {
                        tally.checked += 1;
                        if !cache.matches(index, compiled, &response.results) {
                            tally.check_mismatches += 1;
                        }
                    }
                }
            }
            Ok(NetOutcome::Rejected(status)) => {
                let key = status_name(status.code).to_string();
                assert!(!key.is_empty(), "rejection without a reason");
                *tally.rejections.entry(key).or_insert(0) += 1;
            }
            Err(_) => {
                // Exhausted (or a reissue that failed again): the request
                // reached no outcome. healthy() demands this stays zero.
                tally.give_ups += 1;
            }
        }
    }
    let counters = client.counters();
    tally.retries = counters.retries;
    tally.retry_successes = counters.retry_successes;
    tally
}
