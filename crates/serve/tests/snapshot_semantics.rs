//! Deterministic semantics of the serving layer: admission states, QoS
//! rejections, audit-gated installs, drain-on-shutdown, and the serve
//! metric counters.

use hmmm_core::{build_hmmm, metrics as m, BuildConfig, FaultPlan, InMemoryRecorder, RetrievalConfig};
use hmmm_features::FeatureVector;
use hmmm_media::EventKind;
use hmmm_query::QueryTranslator;
use hmmm_serve::{
    ModelSnapshot, QueryRequest, QueryServer, RejectReason, ServeOutcome, ServerConfig,
    SnapshotCell,
};
use hmmm_storage::Catalog;
use std::time::Duration;

/// A small catalog with enough annotated events for every query to match.
fn fixture_catalog(videos: usize) -> Catalog {
    let mut catalog = Catalog::new();
    for v in 0..videos {
        let mut shots = Vec::new();
        for s in 0..6 {
            let events = match (v + s) % 3 {
                0 => vec![EventKind::FreeKick],
                1 => vec![EventKind::Goal],
                _ => vec![],
            };
            let mut fv = [0.1_f64; hmmm_features::FEATURE_COUNT];
            fv[0] = (v as f64 + 1.0) / (videos as f64 + 1.0);
            fv[1] = (s as f64 + 1.0) / 7.0;
            shots.push((events, FeatureVector::from_slice(&fv).unwrap()));
        }
        catalog.add_video(format!("v{v}"), shots);
    }
    catalog
}

fn fixture_pattern() -> hmmm_query::CompiledPattern {
    QueryTranslator::new(EventKind::ALL.iter().map(|k| k.name()))
        .compile("free_kick -> goal")
        .unwrap()
}

/// A server whose single worker stalls `latency` per video traversal (via
/// deterministic fault injection), so tests can reliably fill the queue.
fn stalled_server(
    catalog: Catalog,
    queue_capacity: usize,
    latency: Duration,
    recorder: hmmm_core::RecorderHandle,
) -> QueryServer {
    let snapshot = ModelSnapshot::build(catalog, &BuildConfig::default()).unwrap();
    // The step hook only fires from the second lattice step on, so the
    // two-step fixture pattern stalls exactly once per traversed video.
    let retrieval = RetrievalConfig::content_only().with_fault_plan(FaultPlan {
        latency_step: Some(1),
        latency_ns: latency.as_nanos() as u64,
        ..FaultPlan::default()
    });
    QueryServer::start(
        snapshot,
        ServerConfig {
            workers: 1,
            queue_capacity,
            retrieval,
            recorder,
            ..ServerConfig::default()
        },
    )
    .unwrap()
}

#[test]
fn queue_full_rejects_with_reason() {
    let recorder = InMemoryRecorder::shared();
    let server = stalled_server(
        fixture_catalog(3),
        1,
        Duration::from_millis(40),
        recorder.handle(),
    );
    let pattern = fixture_pattern();

    // Occupy the worker, then wait until it has actually dequeued the job
    // (epoch reads are cheap; the queue drains within the stall window).
    let busy = server.submit(QueryRequest::new(pattern.clone(), 5));
    std::thread::sleep(Duration::from_millis(20));
    // One job fits the capacity-1 queue; the next must be rejected.
    let queued = server.submit(QueryRequest::new(pattern.clone(), 5));
    let overflow = server.query(QueryRequest::new(pattern.clone(), 5));
    match overflow {
        ServeOutcome::Rejected(reason) => {
            assert_eq!(reason, RejectReason::QueueFull);
            assert!(!reason.as_str().is_empty());
        }
        ServeOutcome::Completed(_) => panic!("overflow submission must be rejected"),
    }
    assert!(busy.wait().response().is_some());
    assert!(queued.wait().response().is_some());
    server.join();
    let report = recorder.report();
    assert_eq!(report.counter(m::CTR_SERVE_REJECTED_QUEUE_FULL), 1);
    assert_eq!(report.counter(m::CTR_SERVE_COMPLETED), 2);
    assert_eq!(report.counter(m::CTR_SERVE_SUBMITTED), 2, "rejects are not submissions");
}

#[test]
fn deadline_consumed_in_queue_rejects_before_service() {
    let recorder = InMemoryRecorder::shared();
    let server = stalled_server(
        fixture_catalog(3),
        8,
        Duration::from_millis(60),
        recorder.handle(),
    );
    let pattern = fixture_pattern();

    let busy = server.submit(QueryRequest::new(pattern.clone(), 5));
    // This request's whole budget elapses while the worker stalls on the
    // first job, so it must be shed at dequeue time, not run late.
    let mut doomed = QueryRequest::new(pattern.clone(), 5);
    doomed.deadline = Some(Duration::from_millis(1));
    let outcome = server.query(doomed);
    match outcome {
        ServeOutcome::Rejected(reason) => {
            assert_eq!(reason, RejectReason::DeadlineBeforeService)
        }
        ServeOutcome::Completed(_) => panic!("budget was consumed by queueing"),
    }
    assert!(busy.wait().response().is_some());
    server.join();
    assert_eq!(recorder.report().counter(m::CTR_SERVE_REJECTED_DEADLINE), 1);
}

#[test]
fn shutdown_rejects_new_work_but_drains_queued() {
    let recorder = InMemoryRecorder::shared();
    let server = stalled_server(
        fixture_catalog(3),
        8,
        Duration::from_millis(30),
        recorder.handle(),
    );
    let pattern = fixture_pattern();
    let before: Vec<_> = (0..3)
        .map(|_| server.submit(QueryRequest::new(pattern.clone(), 5)))
        .collect();
    server.close();
    match server.query(QueryRequest::new(pattern.clone(), 5)) {
        ServeOutcome::Rejected(reason) => assert_eq!(reason, RejectReason::Shutdown),
        ServeOutcome::Completed(_) => panic!("admission is closed"),
    }
    // Everything admitted before close still completes (drain semantics).
    for ticket in before {
        assert!(ticket.wait().response().is_some());
    }
    server.join();
    let report = recorder.report();
    assert_eq!(report.counter(m::CTR_SERVE_REJECTED_SHUTDOWN), 1);
    assert_eq!(report.counter(m::CTR_SERVE_COMPLETED), 3);
}

#[test]
fn audit_gate_refuses_mismatched_model_and_keeps_serving() {
    let recorder = InMemoryRecorder::shared();
    let catalog = fixture_catalog(4);
    let snapshot = ModelSnapshot::build(catalog, &BuildConfig::default()).unwrap();
    let server = QueryServer::start(
        snapshot,
        ServerConfig {
            recorder: recorder.handle(),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    // A model built from a *different* archive cannot audit against the
    // live catalog; the install must fail and change nothing.
    let foreign = build_hmmm(&fixture_catalog(2), &BuildConfig::default()).unwrap();
    assert!(server.install_model(foreign).is_err());
    assert_eq!(server.epoch(), 0, "failed install must not publish");
    let outcome = server.query(QueryRequest::new(fixture_pattern(), 5));
    assert!(outcome.response().is_some(), "live snapshot keeps serving");
    server.join();
    let report = recorder.report();
    assert_eq!(report.counter(m::CTR_SERVE_AUDIT_REJECTIONS), 1);
    // Only the initial publication counts as an install.
    assert_eq!(report.counter(m::CTR_SERVE_SNAPSHOT_INSTALLS), 1);
}

#[test]
fn snapshot_cell_restamps_epochs_monotonically() {
    let catalog = fixture_catalog(3);
    let model = build_hmmm(&catalog, &BuildConfig::default()).unwrap();
    let cell = SnapshotCell::new(ModelSnapshot::from_model(model.clone(), catalog.clone()).unwrap());
    assert_eq!(cell.epoch(), 0);
    let mut cached = cell.load();
    assert!(!cell.refresh(&mut cached), "nothing published yet");
    for expected in 1..=3u64 {
        // Candidates always claim epoch 0; install re-stamps under the lock.
        let candidate = ModelSnapshot::from_model(model.clone(), catalog.clone()).unwrap();
        assert_eq!(cell.install(candidate).unwrap(), expected);
        assert_eq!(cell.epoch(), expected);
    }
    assert!(cell.refresh(&mut cached), "stale handle must refresh");
    assert_eq!(cached.epoch, 3);
}

#[test]
fn reject_reasons_all_have_nonempty_strings() {
    for reason in [
        RejectReason::QueueFull,
        RejectReason::DeadlineBeforeService,
        RejectReason::Shutdown,
        RejectReason::Invalid("boom".into()),
    ] {
        assert!(!reason.as_str().is_empty());
        assert!(!reason.to_string().is_empty());
    }
}

#[test]
fn zero_worker_and_zero_queue_configs_are_refused() {
    let catalog = fixture_catalog(2);
    for (workers, queue_capacity) in [(0usize, 8usize), (2, 0)] {
        let snapshot = ModelSnapshot::build(catalog.clone(), &BuildConfig::default()).unwrap();
        let config = ServerConfig {
            workers,
            queue_capacity,
            ..ServerConfig::default()
        };
        assert!(QueryServer::start(snapshot, config).is_err());
    }
}
