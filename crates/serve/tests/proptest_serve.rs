//! Property: the serving layer is invisible to the ranking contract.
//!
//! A `QueryServer` adds queues, worker threads, per-worker scratch reuse,
//! and (under feedback) RCU snapshot installs between a query and the
//! retrieval engine — and none of it may change a single byte of any
//! ranking. Every response here is re-derived serially against the exact
//! snapshot generation that answered it and compared with `==`
//! (`RankedPattern` is `PartialEq` down to the `f64` scores and weights).

use hmmm_core::{
    build_hmmm, BuildConfig, FeedbackConfig, FeedbackLog, PositivePattern, RetrievalConfig,
    Retriever,
};
use hmmm_features::{FeatureVector, FEATURE_COUNT};
use hmmm_media::EventKind;
use hmmm_query::{CompiledPattern, CompiledStep};
use hmmm_serve::{ModelSnapshot, QueryRequest, QueryServer, ServeOutcome, ServerConfig};
use hmmm_storage::Catalog;
use proptest::prelude::*;

fn feature_vector() -> impl Strategy<Value = FeatureVector> {
    proptest::collection::vec(0.0f64..1.0, FEATURE_COUNT)
        .prop_map(|v| FeatureVector::from_slice(&v).expect("exact length"))
}

fn events() -> impl Strategy<Value = Vec<EventKind>> {
    proptest::collection::vec(0usize..EventKind::COUNT, 0..3).prop_map(|idx| {
        let mut out: Vec<EventKind> = idx.into_iter().filter_map(EventKind::from_index).collect();
        out.dedup();
        out
    })
}

fn catalog() -> impl Strategy<Value = Catalog> {
    proptest::collection::vec(
        proptest::collection::vec((events(), feature_vector()), 1..10),
        2..8,
    )
    .prop_map(|videos| {
        let mut c = Catalog::new();
        for (i, shots) in videos.into_iter().enumerate() {
            c.add_video(format!("v{i}"), shots);
        }
        c
    })
}

fn pattern() -> impl Strategy<Value = CompiledPattern> {
    proptest::collection::vec(
        (
            proptest::collection::vec(0usize..EventKind::COUNT, 1..3),
            proptest::option::of(0usize..6),
        ),
        1..4,
    )
    .prop_map(|steps| CompiledPattern {
        steps: steps
            .into_iter()
            .map(|(mut alternatives, max_gap)| {
                alternatives.dedup();
                CompiledStep {
                    alternatives,
                    max_gap,
                }
            })
            .collect(),
    })
}

/// Serial reference ranking for `pattern` on `snapshot`, using the same
/// base retrieval configuration the server's workers use.
fn serial_reference(
    server: &QueryServer,
    snapshot: &ModelSnapshot,
    pattern: &CompiledPattern,
    limit: usize,
) -> Vec<hmmm_core::RankedPattern> {
    let mut config = server.retrieval_config();
    config.threads = Some(1);
    config.deadline = None;
    let (results, _) = Retriever::new(&snapshot.model, &snapshot.catalog, config)
        .expect("consistent")
        .retrieve(pattern, limit)
        .expect("valid");
    results
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// N clients hammering one server concurrently — across worker counts
    /// and the engine's cache × prune grid — receive exactly the rankings
    /// a serial `Retriever` produces on the same model. The queue, the
    /// worker pool, and the per-worker scratch reuse are byte-invisible.
    #[test]
    fn concurrent_rankings_match_serial(
        cat in catalog(),
        pats in proptest::collection::vec(pattern(), 1..4),
        workers in 1usize..4,
        clients in 1usize..4,
        use_cache in proptest::sample::select(vec![false, true]),
        prune in proptest::sample::select(vec![false, true]),
    ) {
        let snapshot = ModelSnapshot::build(cat, &BuildConfig::default()).unwrap();
        let config = ServerConfig {
            workers,
            queue_capacity: 256,
            retrieval: RetrievalConfig {
                use_sim_cache: use_cache,
                prune,
                ..RetrievalConfig::default()
            },
            retain_snapshot_history: true,
            ..ServerConfig::default()
        };
        let server = QueryServer::start(snapshot, config).unwrap();
        let outcomes: Vec<(usize, ServeOutcome)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let server = &server;
                    let pats = &pats;
                    scope.spawn(move || {
                        let mut got = Vec::new();
                        for i in 0..pats.len() {
                            // Different clients walk the pattern list in
                            // different orders so requests interleave.
                            let idx = (i + c) % pats.len();
                            got.push((
                                idx,
                                server.query(QueryRequest::new(pats[idx].clone(), 10)),
                            ));
                        }
                        got
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("client panicked"))
                .collect()
        });
        prop_assert_eq!(outcomes.len(), clients * pats.len());
        for (idx, outcome) in outcomes {
            let response = match outcome {
                ServeOutcome::Completed(r) => r,
                ServeOutcome::Rejected(reason) => {
                    return Err(TestCaseError::Fail(format!(
                        "request rejected under an uncontended queue: {reason}"
                    )));
                }
            };
            prop_assert_eq!(response.epoch, 0, "no installs ran");
            prop_assert!(response.stats.degraded.is_none(), "no deadline was set");
            let snapshot = server.snapshot_at(response.epoch).expect("history retained");
            let expected = serial_reference(&server, &snapshot, &pats[idx], 10);
            prop_assert_eq!(&expected, &response.results);
        }
        server.join();
    }

    /// Feedback installs racing live queries never tear a response: every
    /// response carries the epoch of one published generation, its ranking
    /// is byte-identical to a serial run on exactly that generation, and
    /// epochs only move forward. In-flight queries finish on the snapshot
    /// they started with; nothing blocks.
    #[test]
    fn installs_mid_flight_never_tear(
        cat in catalog(),
        pats in proptest::collection::vec(pattern(), 1..3),
        rounds in 1usize..4,
    ) {
        let model = build_hmmm(&cat, &BuildConfig::default()).unwrap();
        // Feedback material: confirm top results of a serial run so the
        // installed generations genuinely differ from epoch 0.
        let seed_cfg = RetrievalConfig { threads: Some(1), ..RetrievalConfig::default() };
        let (seed_results, _) = Retriever::new(&model, &cat, seed_cfg)
            .unwrap()
            .retrieve(&pats[0], 4)
            .unwrap();
        let snapshot = ModelSnapshot::from_model(model, cat).unwrap();
        let server = QueryServer::start(
            snapshot,
            ServerConfig {
                workers: 2,
                queue_capacity: 256,
                retain_snapshot_history: true,
                ..ServerConfig::default()
            },
        )
        .unwrap();

        let outcomes: Vec<(usize, ServeOutcome)> = std::thread::scope(|scope| {
            let reader = {
                let server = &server;
                let pats = &pats;
                scope.spawn(move || {
                    let mut got = Vec::new();
                    for round in 0..8 {
                        let idx = round % pats.len();
                        got.push((
                            idx,
                            server.query(QueryRequest::new(pats[idx].clone(), 10)),
                        ));
                    }
                    got
                })
            };
            // Writer: install `rounds` new generations while the reader
            // queries. Each round re-confirms the same positive patterns,
            // so every install is a real model change.
            let writer = {
                let server = &server;
                let seed_results = &seed_results;
                scope.spawn(move || {
                    let fb = FeedbackConfig::default();
                    for round in 0..rounds {
                        let mut log = FeedbackLog::new();
                        for r in seed_results {
                            log.record(PositivePattern {
                                query: round as u64,
                                video: r.video,
                                shots: r.shots.clone(),
                                events: r.events.clone(),
                                access: 1.0,
                            })
                            .expect("temporally ordered");
                        }
                        if log.pending() > 0 {
                            server
                                .apply_feedback(&mut log, &fb)
                                .expect("audited install");
                        }
                    }
                })
            };
            writer.join().expect("writer panicked");
            reader.join().expect("reader panicked")
        });

        let final_epoch = server.epoch();
        if !seed_results.is_empty() {
            prop_assert_eq!(final_epoch, rounds as u64, "every install published");
        }
        for (idx, outcome) in outcomes {
            let response = match outcome {
                ServeOutcome::Completed(r) => r,
                ServeOutcome::Rejected(reason) => {
                    return Err(TestCaseError::Fail(format!(
                        "request rejected during installs: {reason}"
                    )));
                }
            };
            prop_assert!(response.epoch <= final_epoch, "epoch from the future");
            let snapshot = server
                .snapshot_at(response.epoch)
                .expect("every answered epoch was published and retained");
            let expected = serial_reference(&server, &snapshot, &pats[idx], 10);
            prop_assert_eq!(&expected, &response.results);
        }
        server.join();
    }
}
