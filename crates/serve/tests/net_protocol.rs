//! Wire-format edge cases and fault-path semantics of the TCP front-end:
//! the frames a well-behaved client never sends (zero-length patterns,
//! over-cap lengths, truncated headers), the exact-cap frame that *is*
//! legal, byte-identical rankings across the wire, mid-response
//! disconnects (surfaced, never auto-retried, clean on re-issue), the
//! seeded client retry path, and the drain notice to idle connections.

use hmmm_core::{BuildConfig, FaultHandle, FaultPlan};
use hmmm_features::FeatureVector;
use hmmm_media::EventKind;
use hmmm_obs::RecorderHandle;
use hmmm_serve::client::{NetClient, NetError, NetOutcome, RetryPolicy};
use hmmm_serve::net::{
    read_frame, write_frame, Frame, FrameError, NetConfig, NetServer, WireRequest, WireResponse,
    WireStatus, FRAME_REQUEST, FRAME_RESPONSE, FRAME_STATUS, HEADER_LEN, MAX_FRAME_LEN,
    PROTO_VERSION, STATUS_BAD_FRAME, STATUS_DRAINING, STATUS_OK, STATUS_REJECTED_INVALID,
};
use hmmm_serve::{ModelSnapshot, QueryRequest, QueryServer, ServerConfig};
use hmmm_storage::Catalog;
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// A small catalog with enough annotated events for every query to match
/// (same shape as the snapshot_semantics fixture).
fn fixture_catalog(videos: usize) -> Catalog {
    let mut catalog = Catalog::new();
    for v in 0..videos {
        let mut shots = Vec::new();
        for s in 0..6 {
            let events = match (v + s) % 3 {
                0 => vec![EventKind::FreeKick],
                1 => vec![EventKind::Goal],
                _ => vec![],
            };
            let mut fv = [0.1_f64; hmmm_features::FEATURE_COUNT];
            fv[0] = (v as f64 + 1.0) / (videos as f64 + 1.0);
            fv[1] = (s as f64 + 1.0) / 7.0;
            shots.push((events, FeatureVector::from_slice(&fv).unwrap()));
        }
        catalog.add_video(format!("v{v}"), shots);
    }
    catalog
}

const PATTERN: &str = "free_kick -> goal";

/// A front-end over a fresh fixture server on an ephemeral port.
fn start_fixture(videos: usize, net: NetConfig) -> NetServer {
    let snapshot = ModelSnapshot::build(fixture_catalog(videos), &BuildConfig::default()).unwrap();
    let server = Arc::new(QueryServer::start(snapshot, ServerConfig::default()).unwrap());
    NetServer::start(server, "127.0.0.1:0", net).unwrap()
}

/// A raw protocol-level connection: poll-tick read timeout set so
/// [`read_frame`] can be used directly against the server.
fn raw_connect(net: &NetServer) -> TcpStream {
    let stream = TcpStream::connect(net.local_addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_millis(10)))
        .unwrap();
    stream
}

fn send_request(stream: &mut TcpStream, pattern: &str, limit: usize) {
    let payload = serde_json::to_vec(&WireRequest {
        pattern: pattern.to_string(),
        limit,
        deadline_ms: None,
    })
    .unwrap();
    write_frame(stream, FRAME_REQUEST, &payload).unwrap();
}

fn read_reply(stream: &mut TcpStream) -> Frame {
    read_frame(
        stream,
        || false,
        Duration::from_secs(5),
        Some(Duration::from_secs(5)),
    )
    .unwrap()
}

fn parse_status(frame: &Frame) -> WireStatus {
    assert_eq!(frame.kind, FRAME_STATUS, "expected a status frame");
    serde_json::from_slice(&frame.payload).unwrap()
}

fn parse_response(frame: &Frame) -> WireResponse {
    assert_eq!(frame.kind, FRAME_RESPONSE, "expected a response frame");
    serde_json::from_slice(&frame.payload).unwrap()
}

#[test]
fn wire_rankings_match_in_process_byte_for_byte() {
    let net = start_fixture(5, NetConfig::default());
    let mut client = NetClient::connect(
        net.local_addr(),
        RetryPolicy::default(),
        FaultHandle::noop(),
        RecorderHandle::noop(),
    );
    let outcome = client.query(PATTERN, 4, None).unwrap();
    let wire = outcome.response().expect("valid pattern completes").clone();
    assert_eq!(wire.status, STATUS_OK);
    assert_eq!(wire.degraded, None);

    // The same query through the in-process API, on the same snapshot:
    // the JSON round trip must not perturb a single score bit.
    let translator =
        hmmm_query::QueryTranslator::new(EventKind::ALL.iter().map(|k| k.name()));
    let pattern = translator.compile(PATTERN).unwrap();
    let local = net.server().query(QueryRequest::new(pattern, 4));
    let local = local.response().expect("in-process query completes");
    assert_eq!(wire.epoch, local.epoch);
    assert!(!local.results.is_empty(), "fixture must produce candidates");
    assert_eq!(wire.results, local.results, "wire ranking diverged");

    net.shutdown();
}

#[test]
fn zero_length_pattern_is_rejected_invalid_and_connection_survives() {
    let net = start_fixture(3, NetConfig::default());
    let mut stream = raw_connect(&net);

    send_request(&mut stream, "", 3);
    let status = parse_status(&read_reply(&mut stream));
    assert_eq!(status.code, STATUS_REJECTED_INVALID, "{}", status.reason);

    // An invalid *request* is not a framing violation: the same
    // connection must still serve the next (valid) query.
    send_request(&mut stream, PATTERN, 3);
    let response = parse_response(&read_reply(&mut stream));
    assert_eq!(response.status, STATUS_OK);
    assert!(!response.results.is_empty());

    net.shutdown();
}

#[test]
fn exact_cap_frame_is_accepted_over_cap_is_refused_and_closed() {
    let net = start_fixture(2, NetConfig::default());

    // A payload of exactly MAX_FRAME_LEN bytes is legal: pad the pattern
    // text until the serialized request hits the cap on the nose. The
    // pattern itself is garbage, so the *frame* is accepted and the
    // *request* is rejected — the distinction under test.
    let mut stream = raw_connect(&net);
    let empty = serde_json::to_vec(&WireRequest {
        pattern: String::new(),
        limit: 1,
        deadline_ms: None,
    })
    .unwrap();
    let pad = MAX_FRAME_LEN as usize - empty.len();
    let payload = serde_json::to_vec(&WireRequest {
        pattern: "a".repeat(pad),
        limit: 1,
        deadline_ms: None,
    })
    .unwrap();
    assert_eq!(payload.len(), MAX_FRAME_LEN as usize, "pad math drifted");
    write_frame(&mut stream, FRAME_REQUEST, &payload).unwrap();
    let status = parse_status(&read_reply(&mut stream));
    assert_eq!(status.code, STATUS_REJECTED_INVALID, "{}", status.reason);

    // One byte over the cap: refused from the length prefix alone (no
    // payload is ever buffered), and the connection closes — framing
    // cannot be trusted past a protocol violation.
    let mut stream = raw_connect(&net);
    let mut header = [0u8; HEADER_LEN];
    header[0] = PROTO_VERSION;
    header[1] = FRAME_REQUEST;
    header[2..].copy_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
    stream.write_all(&header).unwrap();
    stream.flush().unwrap();
    let status = parse_status(&read_reply(&mut stream));
    assert_eq!(status.code, STATUS_BAD_FRAME, "{}", status.reason);
    match read_frame(&mut stream, || false, Duration::from_secs(2), Some(Duration::from_secs(2))) {
        Err(FrameError::Closed) => {}
        other => panic!("connection must close after a bad frame, got {other:?}"),
    }

    net.shutdown();
}

#[test]
fn truncated_length_prefix_leaves_server_healthy() {
    let net = start_fixture(2, NetConfig::default());

    // Half a header, then vanish: the server sees a torn frame and drops
    // that connection only.
    {
        let mut stream = raw_connect(&net);
        stream
            .write_all(&[PROTO_VERSION, FRAME_REQUEST, 9])
            .unwrap();
        stream.flush().unwrap();
    } // dropped here, mid-header

    // The next connection is served normally — nothing leaked, nothing
    // wedged.
    let mut stream = raw_connect(&net);
    send_request(&mut stream, PATTERN, 3);
    let response = parse_response(&read_reply(&mut stream));
    assert_eq!(response.status, STATUS_OK);

    net.shutdown();
}

#[test]
fn mid_response_disconnect_surfaces_and_reissue_succeeds() {
    // The server tears its first connection's response write 3 bytes in
    // (inside the frame header): the client has response bytes in hand
    // when the stream dies, so the failure must surface as MidResponse —
    // never an automatic retry — and a fresh query (new connection, new
    // fault ticket) must succeed.
    let net = start_fixture(3, NetConfig {
        fault: FaultHandle::from_plan(FaultPlan {
            net_fault_connections: vec![0],
            net_tear_write_at: Some(3),
            ..FaultPlan::default()
        }),
        ..NetConfig::default()
    });
    let mut client = NetClient::connect(
        net.local_addr(),
        RetryPolicy::default(),
        FaultHandle::noop(),
        RecorderHandle::noop(),
    );

    match client.query(PATTERN, 3, None) {
        Err(NetError::MidResponse(detail)) => {
            assert!(detail.contains("torn"), "unexpected detail: {detail}")
        }
        other => panic!("expected MidResponse, got {other:?}"),
    }
    let counters = client.counters();
    assert_eq!(counters.retries, 0, "mid-response failures are never retried");

    // The caller knows retrieval is idempotent, so it re-issues: ticket 1
    // is off-plan and the query completes.
    match client.query(PATTERN, 3, None) {
        Ok(NetOutcome::Response(r)) => assert_eq!(r.status, STATUS_OK),
        other => panic!("re-issue must succeed, got {other:?}"),
    }

    net.shutdown();
}

#[test]
fn client_side_torn_request_is_retried_to_success() {
    // The *client's* fault plane tears its first connection's request
    // write at byte 0: the server saw nothing it can act on, so the
    // attempt is retryable by construction, and the retry's fresh
    // connection (ticket 1) is deterministically clean.
    let net = start_fixture(3, NetConfig::default());
    let mut client = NetClient::connect(
        net.local_addr(),
        RetryPolicy {
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(2),
            ..RetryPolicy::default()
        },
        FaultHandle::from_plan(FaultPlan {
            net_fault_connections: vec![0],
            net_tear_write_at: Some(0),
            ..FaultPlan::default()
        }),
        RecorderHandle::noop(),
    );

    let outcome = client.query(PATTERN, 3, None).unwrap();
    assert_eq!(outcome.response().expect("retry completes").status, STATUS_OK);
    let counters = client.counters();
    assert_eq!(counters.requests, 1);
    assert!(counters.retries >= 1, "the torn first attempt must retry");
    assert_eq!(counters.retry_successes, 1);
    assert_eq!(counters.give_ups, 0);

    net.shutdown();
}

#[test]
fn drain_sends_final_notice_to_idle_connections() {
    let net = start_fixture(2, NetConfig::default());

    // Establish the connection (one served request proves the handler
    // thread is up), then go idle.
    let mut stream = raw_connect(&net);
    send_request(&mut stream, PATTERN, 2);
    let response = parse_response(&read_reply(&mut stream));
    assert_eq!(response.status, STATUS_OK);

    // Graceful shutdown: when it returns, every connection thread has
    // been joined — the idle connection's farewell is already on the
    // wire.
    net.shutdown();

    let status = parse_status(&read_reply(&mut stream));
    assert_eq!(status.code, STATUS_DRAINING, "{}", status.reason);
    match read_frame(&mut stream, || false, Duration::from_secs(2), Some(Duration::from_secs(2))) {
        Err(FrameError::Closed) => {}
        other => panic!("drained connection must close, got {other:?}"),
    }
}
