//! The [`Recorder`] sink trait, the no-op sink, and the cheap
//! [`RecorderHandle`] instrumented code carries.

use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// A metrics/trace sink.
///
/// Implementations must be thread-safe: the retrieval fan-out calls every
/// method concurrently from scoped worker threads. All quantities are
/// commutative (sums, last-write gauges, order-free histograms and span
/// lists), so recorded totals do not depend on scheduling.
pub trait Recorder: Send + Sync + fmt::Debug {
    /// Adds `delta` to the named monotonic counter.
    fn counter_add(&self, name: &'static str, delta: u64);

    /// Sets the named gauge to `value` (last write wins).
    fn gauge_set(&self, name: &'static str, value: f64);

    /// Records one observation (in nanoseconds) into the named
    /// fixed-bucket latency histogram.
    fn observe_ns(&self, name: &'static str, nanos: u64);

    /// Records one completed span.
    ///
    /// `path` is a `/`-separated hierarchy ("retrieve/traverse"); `label`
    /// distinguishes repeated instances of the same path (e.g. a video
    /// index); `start` is the span's begin instant (the recorder converts
    /// it to an offset from its own epoch); `wall_ns` its duration.
    fn record_span(&self, path: &'static str, label: Option<u64>, start: Instant, wall_ns: u64);
}

/// A [`Recorder`] that discards everything.
///
/// Exists for call sites that want an explicit sink object; instrumented
/// code should normally use [`RecorderHandle::noop`], which skips the
/// virtual dispatch entirely.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn counter_add(&self, _name: &'static str, _delta: u64) {}
    fn gauge_set(&self, _name: &'static str, _value: f64) {}
    fn observe_ns(&self, _name: &'static str, _nanos: u64) {}
    fn record_span(&self, _path: &'static str, _label: Option<u64>, _start: Instant, _wall_ns: u64) {
    }
}

/// The handle instrumented code holds.
///
/// `Default` (and [`RecorderHandle::noop`]) is the disabled state: every
/// operation is an inlined `Option::None` check with no clock read, no
/// lock, and no allocation — cheap enough to live inside
/// `RetrievalConfig` unconditionally.
///
/// Cloning shares the underlying sink (it is an [`Arc`]).
#[derive(Clone, Default)]
pub struct RecorderHandle {
    inner: Option<Arc<dyn Recorder>>,
}

impl RecorderHandle {
    /// The disabled handle: records nothing, costs (almost) nothing.
    pub fn noop() -> Self {
        RecorderHandle { inner: None }
    }

    /// Wraps any recorder.
    pub fn from_arc(recorder: Arc<dyn Recorder>) -> Self {
        RecorderHandle {
            inner: Some(recorder),
        }
    }

    /// `true` when a real sink is attached. Use to gate work that is only
    /// worth doing when someone is listening (derived gauges, snapshots).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds `delta` to a counter.
    #[inline]
    pub fn counter(&self, name: &'static str, delta: u64) {
        if let Some(r) = &self.inner {
            r.counter_add(name, delta);
        }
    }

    /// Sets a gauge.
    #[inline]
    pub fn gauge(&self, name: &'static str, value: f64) {
        if let Some(r) = &self.inner {
            r.gauge_set(name, value);
        }
    }

    /// Records a histogram observation in nanoseconds.
    #[inline]
    pub fn observe_ns(&self, name: &'static str, nanos: u64) {
        if let Some(r) = &self.inner {
            r.observe_ns(name, nanos);
        }
    }

    /// Starts an unlabeled span; the returned guard records the span's
    /// wall time when dropped. Disabled handles return an inert guard
    /// without reading the clock.
    #[inline]
    pub fn span(&self, path: &'static str) -> SpanGuard<'_> {
        self.span_inner(path, None)
    }

    /// Starts a labeled span (e.g. `label` = video index) — see
    /// [`Recorder::record_span`].
    #[inline]
    pub fn span_labeled(&self, path: &'static str, label: u64) -> SpanGuard<'_> {
        self.span_inner(path, Some(label))
    }

    #[inline]
    fn span_inner(&self, path: &'static str, label: Option<u64>) -> SpanGuard<'_> {
        SpanGuard {
            active: self
                .inner
                .as_deref()
                .map(|recorder| (recorder, Instant::now())),
            path,
            label,
        }
    }
}

impl fmt::Debug for RecorderHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            None => f.write_str("RecorderHandle(noop)"),
            Some(r) => write!(f, "RecorderHandle({r:?})"),
        }
    }
}

/// Handles compare by sink identity: two noops are equal, two enabled
/// handles are equal only when they share the same underlying recorder.
/// (This keeps `PartialEq`/`Eq` derivable on configs that embed a handle.)
impl PartialEq for RecorderHandle {
    fn eq(&self, other: &Self) -> bool {
        match (&self.inner, &other.inner) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl Eq for RecorderHandle {}

/// RAII span timer: created by [`RecorderHandle::span`], records
/// `(path, label, start, wall)` into the recorder on drop. Inert (no
/// clock read, nothing recorded) when the handle is disabled.
#[must_use = "a span guard records its timing when dropped; binding it to `_` drops it immediately"]
pub struct SpanGuard<'r> {
    active: Option<(&'r dyn Recorder, Instant)>,
    path: &'static str,
    label: Option<u64>,
}

impl SpanGuard<'_> {
    /// Elapsed time since the span started (zero for inert guards) —
    /// for callers that also want the duration as a value.
    pub fn elapsed_ns(&self) -> u64 {
        self.active
            .as_ref()
            .map(|(_, start)| u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX))
            .unwrap_or(0)
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some((recorder, start)) = self.active.take() {
            let wall_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            recorder.record_span(self.path, self.label, start, wall_ns);
        }
    }
}

impl fmt::Debug for SpanGuard<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpanGuard")
            .field("path", &self.path)
            .field("label", &self.label)
            .field("enabled", &self.active.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_handle_is_disabled_and_inert() {
        let h = RecorderHandle::noop();
        assert!(!h.is_enabled());
        h.counter("x", 1);
        h.gauge("y", 2.0);
        h.observe_ns("z", 3);
        let guard = h.span("a/b");
        assert_eq!(guard.elapsed_ns(), 0);
        drop(guard);
    }

    #[test]
    fn default_is_noop() {
        assert_eq!(RecorderHandle::default(), RecorderHandle::noop());
    }

    #[test]
    fn equality_is_sink_identity() {
        let a = crate::InMemoryRecorder::shared();
        let h1 = RecorderHandle::from_arc(a.clone());
        let h2 = RecorderHandle::from_arc(a);
        let h3 = RecorderHandle::from_arc(crate::InMemoryRecorder::shared());
        assert_eq!(h1, h2);
        assert_ne!(h1, h3);
        assert_ne!(h1, RecorderHandle::noop());
    }
}
