//! # hmmm-obs
//!
//! The retrieval observability layer: metrics, hierarchical span timers,
//! and structured reports for every stage of the HMMM pipeline — model
//! construction, the §5 stochastic traversal, the query-scoped similarity
//! cache, feedback learning, and catalog persistence.
//!
//! Design constraints, in order:
//!
//! 1. **Near-zero cost when off.** Instrumented code holds a
//!    [`RecorderHandle`]; the default handle is a no-op whose every
//!    operation is an inlined `Option` check — no clock reads, no locks,
//!    no allocation. Hot loops additionally batch their counts locally and
//!    flush once per query, so even an *enabled* recorder never sits on a
//!    per-transition path.
//! 2. **Correct under worker threads.** Every [`Recorder`] is `Send +
//!    Sync`; the in-memory implementation serializes updates behind one
//!    [`std::sync::Mutex`] whose critical sections are a few arithmetic
//!    ops. Counters are commutative sums, so totals are independent of
//!    worker count and scheduling — the same contract the retrieval
//!    fan-out already relies on for its result merge.
//! 3. **Offline and zero-dependency.** Only `std` plus the workspace's
//!    vendored `serde`/`serde_json` for the report encoding. No clocks
//!    other than [`std::time::Instant`], no global state, no network.
//!
//! ## The pieces
//!
//! * [`Recorder`] — the pluggable sink trait (counters, gauges,
//!   fixed-bucket latency histograms, spans).
//! * [`RecorderHandle`] — the cheap clonable handle instrumented code
//!   carries; [`RecorderHandle::noop`] (default) or any `Arc<dyn
//!   Recorder>`.
//! * [`NoopRecorder`] — discards everything (useful as an explicit sink).
//! * [`InMemoryRecorder`] — accumulates everything; snapshot it into a
//!   [`MetricsReport`].
//! * [`MetricsReport`] — the serde-serializable report: counters, gauges,
//!   histogram summaries, per-stage aggregates, raw spans, and derived
//!   ratios. This is what `hmmm query --metrics-json` writes and what
//!   `bench_report` builds `BENCH_retrieval.json` from.
//!
//! ## Example
//!
//! ```
//! use hmmm_obs::{InMemoryRecorder, RecorderHandle};
//!
//! let recorder = InMemoryRecorder::shared();
//! let handle = RecorderHandle::from_arc(recorder.clone());
//!
//! {
//!     let _span = handle.span("work/phase_one");
//!     handle.counter("work.items", 3);
//! } // span records its wall time on drop
//!
//! let report = recorder.report();
//! assert_eq!(report.counter("work.items"), 3);
//! assert_eq!(report.stage("work/phase_one").unwrap().count, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod memory;
pub mod recorder;
pub mod report;

pub use memory::{Histogram, InMemoryRecorder};
pub use recorder::{NoopRecorder, Recorder, RecorderHandle, SpanGuard};
pub use report::{HistogramSummary, MetricsReport, SpanEntry, StageSummary};
