//! The accumulating [`InMemoryRecorder`] and its fixed-bucket
//! [`Histogram`].

use crate::recorder::{Recorder, RecorderHandle};
use crate::report::{HistogramSummary, MetricsReport, SpanEntry, StageSummary};
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Number of power-of-two latency buckets: bucket `i` counts observations
/// in `[2^i, 2^{i+1})` nanoseconds (bucket 0 additionally holds 0 ns).
/// 2^63 ns ≈ 292 years — the top bucket cannot overflow in practice.
pub const BUCKETS: usize = 64;

/// A fixed-bucket latency histogram over nanosecond observations.
///
/// Buckets are powers of two, so recording is a `leading_zeros` and an
/// increment — no allocation, no floating point. Quantiles are estimated
/// by linear interpolation within the winning bucket, which is exact to
/// within a factor of two (plenty for "where did the time go").
#[derive(Debug, Clone)]
pub struct Histogram {
    count: u64,
    sum_ns: u64,
    min_ns: u64,
    max_ns: u64,
    buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            buckets: [0; BUCKETS],
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&mut self, nanos: u64) {
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(nanos);
        self.min_ns = self.min_ns.min(nanos);
        self.max_ns = self.max_ns.max(nanos);
        self.buckets[bucket_index(nanos)] += 1;
    }

    /// Folds another histogram into this one (commutative, associative).
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating), in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// Smallest observation (`0` when empty).
    pub fn min_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// Largest observation (`0` when empty).
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Estimated `q`-quantile (`0.0 ≤ q ≤ 1.0`) in nanoseconds, by linear
    /// interpolation inside the bucket where the rank lands; exact to
    /// within the bucket's factor-of-two width. `0` when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let lo = if i == 0 { 0u64 } else { 1u64 << i };
                let hi = 1u64.checked_shl(i as u32 + 1).unwrap_or(u64::MAX);
                let frac = (rank - seen) as f64 / n as f64;
                let est = lo as f64 + frac * (hi - lo) as f64;
                // The estimate is bucket-local; clamp to observed extrema
                // so tiny histograms never report impossible values.
                return (est as u64).clamp(self.min_ns(), self.max_ns.max(self.min_ns()));
            }
            seen += n;
        }
        self.max_ns
    }

    /// Snapshot for reports.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum_ns: self.sum_ns,
            min_ns: self.min_ns(),
            max_ns: self.max_ns,
            p50_ns: self.quantile_ns(0.50),
            p90_ns: self.quantile_ns(0.90),
            p99_ns: self.quantile_ns(0.99),
            buckets: self.buckets.to_vec(),
        }
    }
}

/// Bucket for an observation: `floor(log2(ns))`, with 0 ns in bucket 0.
fn bucket_index(nanos: u64) -> usize {
    if nanos == 0 {
        0
    } else {
        (63 - nanos.leading_zeros()) as usize
    }
}

/// One completed span as stored by the recorder.
#[derive(Debug, Clone)]
struct RawSpan {
    path: &'static str,
    label: Option<u64>,
    start_ns: u64,
    wall_ns: u64,
    thread: u64,
}

#[derive(Debug, Default)]
struct State {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
    spans: Vec<RawSpan>,
}

/// A [`Recorder`] that accumulates everything in memory.
///
/// All updates serialize behind one mutex whose critical sections are a
/// handful of arithmetic operations; the instrumentation discipline (hot
/// loops batch locally, flush per query) keeps contention negligible.
/// Snapshot with [`InMemoryRecorder::report`] at any time — including
/// while other threads are still recording.
#[derive(Debug)]
pub struct InMemoryRecorder {
    epoch: Instant,
    state: Mutex<State>,
}

impl Default for InMemoryRecorder {
    fn default() -> Self {
        InMemoryRecorder {
            epoch: Instant::now(),
            state: Mutex::new(State::default()),
        }
    }
}

impl InMemoryRecorder {
    /// A fresh recorder with its epoch at "now".
    pub fn new() -> Self {
        InMemoryRecorder::default()
    }

    /// A fresh recorder behind an [`Arc`], ready for
    /// [`RecorderHandle::from_arc`] / [`InMemoryRecorder::handle`].
    pub fn shared() -> Arc<Self> {
        Arc::new(InMemoryRecorder::new())
    }

    /// A [`RecorderHandle`] feeding this recorder.
    pub fn handle(self: &Arc<Self>) -> RecorderHandle {
        RecorderHandle::from_arc(self.clone() as Arc<dyn Recorder>)
    }

    /// Clears every accumulated metric and span (the epoch is kept).
    pub fn reset(&self) {
        let mut s = self.state.lock().expect("recorder poisoned");
        *s = State::default();
    }

    /// Snapshots everything recorded so far into a [`MetricsReport`]:
    /// counters and gauges verbatim, histogram summaries, spans both raw
    /// (start-ordered) and aggregated per path into [`StageSummary`] rows
    /// (total-time-descending).
    pub fn report(&self) -> MetricsReport {
        let s = self.state.lock().expect("recorder poisoned");

        let mut stages: BTreeMap<&'static str, StageSummary> = BTreeMap::new();
        for span in &s.spans {
            let e = stages.entry(span.path).or_insert_with(|| StageSummary {
                path: span.path.to_string(),
                count: 0,
                total_ns: 0,
                min_ns: u64::MAX,
                max_ns: 0,
            });
            e.count += 1;
            e.total_ns = e.total_ns.saturating_add(span.wall_ns);
            e.min_ns = e.min_ns.min(span.wall_ns);
            e.max_ns = e.max_ns.max(span.wall_ns);
        }
        let mut stages: Vec<StageSummary> = stages.into_values().collect();
        for st in &mut stages {
            if st.count == 0 {
                st.min_ns = 0;
            }
        }
        stages.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then_with(|| a.path.cmp(&b.path)));

        let mut spans: Vec<SpanEntry> = s
            .spans
            .iter()
            .map(|r| SpanEntry {
                path: r.path.to_string(),
                label: r.label,
                start_ns: r.start_ns,
                wall_ns: r.wall_ns,
                thread: r.thread,
            })
            .collect();
        spans.sort_by(|a, b| {
            a.start_ns
                .cmp(&b.start_ns)
                .then_with(|| a.path.cmp(&b.path))
                .then_with(|| a.label.cmp(&b.label))
        });

        MetricsReport {
            counters: s
                .counters
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            gauges: s.gauges.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            histograms: s
                .histograms
                .iter()
                .map(|(k, h)| (k.to_string(), h.summary()))
                .collect(),
            stages,
            spans,
            derived: BTreeMap::new(),
        }
    }
}

impl Recorder for InMemoryRecorder {
    fn counter_add(&self, name: &'static str, delta: u64) {
        let mut s = self.state.lock().expect("recorder poisoned");
        *s.counters.entry(name).or_insert(0) += delta;
    }

    fn gauge_set(&self, name: &'static str, value: f64) {
        let mut s = self.state.lock().expect("recorder poisoned");
        s.gauges.insert(name, value);
    }

    fn observe_ns(&self, name: &'static str, nanos: u64) {
        let mut s = self.state.lock().expect("recorder poisoned");
        s.histograms.entry(name).or_default().observe(nanos);
    }

    fn record_span(&self, path: &'static str, label: Option<u64>, start: Instant, wall_ns: u64) {
        let start_ns = u64::try_from(
            start
                .saturating_duration_since(self.epoch)
                .as_nanos(),
        )
        .unwrap_or(u64::MAX);
        let mut hasher = DefaultHasher::new();
        std::thread::current().id().hash(&mut hasher);
        let thread = hasher.finish();
        let mut s = self.state.lock().expect("recorder poisoned");
        s.spans.push(RawSpan {
            path,
            label,
            start_ns,
            wall_ns,
            thread,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), 63);
    }

    #[test]
    fn histogram_tracks_extrema_and_sum() {
        let mut h = Histogram::default();
        for v in [10, 20, 30, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum_ns(), 1060);
        assert_eq!(h.min_ns(), 10);
        assert_eq!(h.max_ns(), 1000);
        // Quantiles stay inside the observed range.
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            let v = h.quantile_ns(q);
            assert!((10..=1000).contains(&v), "q{q} -> {v}");
        }
        assert!(h.quantile_ns(0.25) <= h.quantile_ns(0.99));
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.max_ns(), 0);
        assert_eq!(h.quantile_ns(0.5), 0);
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        for v in [5, 15, 25] {
            a.observe(v);
        }
        for v in [100, 200] {
            b.observe(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.count(), ba.count());
        assert_eq!(ab.sum_ns(), ba.sum_ns());
        assert_eq!(ab.min_ns(), ba.min_ns());
        assert_eq!(ab.max_ns(), ba.max_ns());
        assert_eq!(ab.summary(), ba.summary());
    }

    #[test]
    fn recorder_accumulates_and_resets() {
        let r = InMemoryRecorder::shared();
        let h = r.handle();
        h.counter("c", 2);
        h.counter("c", 3);
        h.gauge("g", 7.5);
        h.observe_ns("lat", 1_000);
        {
            let _s = h.span_labeled("stage/a", 4);
        }
        let report = r.report();
        assert_eq!(report.counter("c"), 5);
        assert_eq!(report.gauges.get("g"), Some(&7.5));
        assert_eq!(report.histograms["lat"].count, 1);
        let stage = report.stage("stage/a").expect("span recorded");
        assert_eq!(stage.count, 1);
        assert_eq!(report.spans.len(), 1);
        assert_eq!(report.spans[0].label, Some(4));

        r.reset();
        let empty = r.report();
        assert_eq!(empty.counter("c"), 0);
        assert!(empty.spans.is_empty());
    }
}
