//! The serializable [`MetricsReport`] — what `hmmm query --metrics-json`
//! writes and what `bench_report` builds `BENCH_retrieval.json` from.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Snapshot of one histogram (see [`crate::Histogram::summary`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Observations recorded.
    pub count: u64,
    /// Saturating sum of all observations, nanoseconds.
    pub sum_ns: u64,
    /// Smallest observation (0 when empty).
    pub min_ns: u64,
    /// Largest observation (0 when empty).
    pub max_ns: u64,
    /// Estimated median, nanoseconds.
    pub p50_ns: u64,
    /// Estimated 90th percentile, nanoseconds.
    pub p90_ns: u64,
    /// Estimated 99th percentile, nanoseconds.
    pub p99_ns: u64,
    /// Raw power-of-two bucket counts (bucket `i` ≈ `[2^i, 2^{i+1})` ns).
    pub buckets: Vec<u64>,
}

/// Per-path span aggregate: every span with the same path folded into one
/// row. This is the "where did this query spend its time?" table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageSummary {
    /// The span path, e.g. `retrieve/traverse`.
    pub path: String,
    /// Spans recorded under this path.
    pub count: u64,
    /// Total wall time, nanoseconds (spans on different threads overlap,
    /// so per-video totals can exceed the parent stage's wall time).
    pub total_ns: u64,
    /// Shortest single span.
    pub min_ns: u64,
    /// Longest single span.
    pub max_ns: u64,
}

impl StageSummary {
    /// Mean span duration in nanoseconds (0 when no spans).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// One raw span: an instrumented region's timing, with enough context to
/// reconstruct the trace (`hmmm query --trace` renders these as a tree).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanEntry {
    /// `/`-separated hierarchical path.
    pub path: String,
    /// Instance label (e.g. video index for `retrieve/video` spans).
    pub label: Option<u64>,
    /// Start offset from the recorder's epoch, nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub wall_ns: u64,
    /// Opaque per-thread tag (stable within a report, not across runs).
    pub thread: u64,
}

/// The full structured report.
///
/// Everything is plain serde data: the report round-trips through JSON,
/// so offline tooling (and the CI bench snapshot) consumes the same shape
/// a live `--metrics-json` run emits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct MetricsReport {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-written gauges by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Per-path span aggregates, total-time-descending.
    pub stages: Vec<StageSummary>,
    /// Raw spans, start-ordered.
    pub spans: Vec<SpanEntry>,
    /// Derived quantities (ratios etc.) added by the producer — see
    /// [`MetricsReport::derive_ratio`].
    pub derived: BTreeMap<String, f64>,
}

impl MetricsReport {
    /// A counter's value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The aggregate row for a span path, if any span was recorded there.
    pub fn stage(&self, path: &str) -> Option<&StageSummary> {
        self.stages.iter().find(|s| s.path == path)
    }

    /// Total wall time recorded under a span path, nanoseconds (0 when the
    /// path never ran) — the number bench tooling compares across configs.
    pub fn stage_total_ns(&self, path: &str) -> u64 {
        self.stage(path).map_or(0, |s| s.total_ns)
    }

    /// A gauge's last-written value, if the gauge was ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Computes `Σ numerators / (Σ numerators + Σ complements)` over
    /// counter names and stores it under `key` in [`MetricsReport::derived`].
    /// No-op (and no entry) when the denominator is zero — absent metrics
    /// stay absent instead of reporting a misleading `0.0`.
    pub fn derive_ratio(&mut self, key: &str, numerators: &[&str], complements: &[&str]) {
        let num: u64 = numerators.iter().map(|n| self.counter(n)).sum();
        let comp: u64 = complements.iter().map(|n| self.counter(n)).sum();
        let den = num + comp;
        if den > 0 {
            self.derived
                .insert(key.to_string(), num as f64 / den as f64);
        }
    }

    /// Pretty JSON encoding (the `--metrics-json` file format).
    ///
    /// # Errors
    ///
    /// Propagates `serde_json` encoding failures (practically unreachable
    /// for this plain-data shape).
    pub fn to_json_pretty(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Renders the raw spans as an indented text trace, start-ordered,
    /// with depth taken from the span path (one level per `/`):
    ///
    /// ```text
    /// retrieve                                   12.34ms
    ///   retrieve/sim_cache_build                  1.02ms
    ///   retrieve/video #3                         0.48ms
    /// ```
    pub fn render_trace(&self) -> String {
        let mut out = String::new();
        for span in &self.spans {
            let depth = span.path.matches('/').count();
            let label = match span.label {
                Some(l) => format!(" #{l}"),
                None => String::new(),
            };
            let name = format!("{:indent$}{}{label}", "", span.path, indent = depth * 2);
            out.push_str(&format!(
                "{name:<48} {:>12} @ {:>12}\n",
                format_ns(span.wall_ns),
                format_ns(span.start_ns),
            ));
        }
        out
    }
}

/// Human-scale duration formatting for the trace view.
fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsReport {
        let mut r = MetricsReport::default();
        r.counters.insert("hits".into(), 9);
        r.counters.insert("misses".into(), 1);
        r.spans.push(SpanEntry {
            path: "a".into(),
            label: None,
            start_ns: 0,
            wall_ns: 1_500,
            thread: 0,
        });
        r.spans.push(SpanEntry {
            path: "a/b".into(),
            label: Some(2),
            start_ns: 100,
            wall_ns: 900,
            thread: 0,
        });
        r
    }

    #[test]
    fn ratio_derivation() {
        let mut r = sample();
        r.derive_ratio("hit_ratio", &["hits"], &["misses"]);
        assert!((r.derived["hit_ratio"] - 0.9).abs() < 1e-12);
        r.derive_ratio("absent", &["nope"], &["nada"]);
        assert!(!r.derived.contains_key("absent"));
    }

    #[test]
    fn stage_total_and_gauge_accessors() {
        let mut r = sample();
        r.stages.push(StageSummary {
            path: "a/b".into(),
            count: 3,
            total_ns: 4_500,
            min_ns: 1_000,
            max_ns: 2_000,
        });
        r.gauges.insert("depth".into(), 2.5);
        assert_eq!(r.stage_total_ns("a/b"), 4_500);
        assert_eq!(r.stage_total_ns("never/ran"), 0);
        assert_eq!(r.gauge("depth"), Some(2.5));
        assert_eq!(r.gauge("absent"), None);
    }

    #[test]
    fn json_round_trip() {
        let r = sample();
        let json = r.to_json_pretty().unwrap();
        let back: MetricsReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn trace_renders_depth_and_labels() {
        let r = sample();
        let t = r.render_trace();
        assert!(t.contains("a/b #2"));
        assert!(t.contains("1.50µs"));
        assert!(t.lines().count() == 2);
    }

    #[test]
    fn format_ns_scales() {
        assert_eq!(format_ns(999), "999ns");
        assert_eq!(format_ns(1_500), "1.50µs");
        assert_eq!(format_ns(2_500_000), "2.500ms");
        assert_eq!(format_ns(3_000_000_000), "3.000s");
    }
}
