//! Shot-level feature extraction — every row of Table 1.

use crate::feature_id::FeatureId;
use crate::vector::FeatureVector;
use hmmm_media::{AudioBuf, PixelBuf};
use hmmm_signal::stats::{differences, low_rate, Stats};
use hmmm_signal::{spectrum_flux, SubBands};
use serde::{Deserialize, Serialize};

/// Tunable parameters of the extractor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExtractorConfig {
    /// Window (samples) for the short-time volume/energy series.
    pub volume_window: usize,
    /// FFT frame length for sub-band and spectrum-flux analysis.
    pub flux_frame: usize,
    /// Hop between FFT frames.
    pub flux_hop: usize,
    /// Squared RGB distance above which a pixel counts as "changed".
    pub pixel_change_threshold_sqr: u32,
    /// Bins of the per-frame luminance histogram.
    pub histogram_bins: usize,
    /// Number of spectral sub-bands (Table 1 references sub-bands 1 and 3,
    /// so at least 3).
    pub sub_bands: usize,
}

impl Default for ExtractorConfig {
    fn default() -> Self {
        ExtractorConfig {
            volume_window: 256,
            flux_frame: 256,
            flux_hop: 128,
            pixel_change_threshold_sqr: 900,
            histogram_bins: 32,
            sub_bands: 3,
        }
    }
}

/// Extracts the full 20-feature vector of one shot from its rendered media.
///
/// Degenerate inputs (no frames, empty audio) yield zero for the affected
/// features rather than NaN — extraction must never poison the `B_1` matrix.
pub fn extract_shot(frames: &[PixelBuf], audio: &AudioBuf, cfg: &ExtractorConfig) -> FeatureVector {
    let mut v = FeatureVector::zeros();
    extract_visual(frames, cfg, &mut v);
    extract_audio(audio, cfg, &mut v);
    debug_assert!(v.is_finite(), "extracted features must be finite");
    v
}

fn extract_visual(frames: &[PixelBuf], cfg: &ExtractorConfig, v: &mut FeatureVector) {
    if frames.is_empty() {
        return;
    }

    let mut grass = Stats::new();
    let mut bg_mean = Stats::new();
    let mut bg_var = Stats::new();
    for f in frames {
        grass.push(f.grass_ratio());
        let (m, var) = f.background_stats();
        bg_mean.push(m);
        bg_var.push(var);
    }
    v[FeatureId::GrassRatio] = grass.mean();
    v[FeatureId::BackgroundMean] = bg_mean.mean();
    v[FeatureId::BackgroundVar] = bg_var.mean();

    let mut change = Stats::new();
    let mut histo = Stats::new();
    for pair in frames.windows(2) {
        change.push(pair[0].changed_fraction(&pair[1], cfg.pixel_change_threshold_sqr));
        let h0 = pair[0].luminance_histogram(cfg.histogram_bins);
        let h1 = pair[1].luminance_histogram(cfg.histogram_bins);
        histo.push(h0.l1_distance(&h1));
    }
    v[FeatureId::PixelChangePercent] = change.mean();
    v[FeatureId::HistoChange] = histo.mean();
}

fn extract_audio(audio: &AudioBuf, cfg: &ExtractorConfig, v: &mut FeatureVector) {
    let samples = audio.samples();
    if samples.is_empty() || cfg.volume_window == 0 {
        return;
    }

    // --- Volume family: short-time RMS series.
    let volume = audio.volume_series(cfg.volume_window);
    if !volume.is_empty() {
        let vol_stats: Stats = volume.iter().copied().collect();
        v[FeatureId::VolumeMean] = vol_stats.mean();
        v[FeatureId::VolumeStd] = vol_stats.normalized_std();
        v[FeatureId::VolumeRange] = vol_stats.normalized_range();
        let diff_stats: Stats = differences(&volume).into_iter().collect();
        // Normalized by the maximum volume, like volume_std (the series
        // shares the same scale).
        let max_vol = vol_stats.max();
        v[FeatureId::VolumeStdd] = if max_vol > 0.0 {
            diff_stats.population_std() / max_vol
        } else {
            0.0
        };
    }

    // --- Energy family: short-time mean power (RMS²) series.
    let energy: Vec<f64> = samples
        .chunks_exact(cfg.volume_window)
        .map(|w| w.iter().map(|s| s * s).sum::<f64>() / w.len() as f64)
        .collect();
    if !energy.is_empty() {
        let e_stats: Stats = energy.iter().copied().collect();
        v[FeatureId::EnergyMean] = e_stats.mean();
        v[FeatureId::EnergyLowrate] = low_rate(&energy, 0.5);
    }

    // --- Sub-band family: per-FFT-frame band energies.
    let splitter = SubBands::new(cfg.sub_bands.max(3));
    let mut sub1 = Vec::new();
    let mut sub3 = Vec::new();
    for frame in hmmm_signal::window::frames(samples, cfg.flux_frame, cfg.flux_hop) {
        let power = hmmm_signal::fft::power_spectrum(frame);
        let bands = splitter.band_energies_from_power(&power);
        sub1.push(bands[0]);
        sub3.push(bands[2]);
    }
    if !sub1.is_empty() {
        let s1: Stats = sub1.iter().copied().collect();
        v[FeatureId::Sub1Mean] = s1.mean();
        v[FeatureId::Sub1Std] = s1.population_std();
        v[FeatureId::Sub1Lowrate] = low_rate(&sub1, 0.5);
        let s3: Stats = sub3.iter().copied().collect();
        v[FeatureId::Sub3Mean] = s3.mean();
        v[FeatureId::Sub3Lowrate] = low_rate(&sub3, 0.5);
    }

    // --- Spectrum-flux family.
    let flux = spectrum_flux(samples, cfg.flux_frame, cfg.flux_hop);
    if !flux.is_empty() {
        let f_stats: Stats = flux.iter().copied().collect();
        v[FeatureId::SfMean] = f_stats.mean();
        v[FeatureId::SfStd] = f_stats.normalized_std();
        v[FeatureId::SfRange] = f_stats.normalized_range();
        let fd_stats: Stats = differences(&flux).into_iter().collect();
        let max_f = f_stats.max();
        v[FeatureId::SfStdd] = if max_f > 0.0 {
            fd_stats.population_std() / max_f
        } else {
            0.0
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmmm_media::{CameraSetup, EventKind, EventScript, RenderConfig, ScriptedShot, SyntheticVideo};

    fn render(camera: CameraSetup, events: Vec<EventKind>, seed: u64) -> FeatureVector {
        let script = EventScript::from_shots(vec![ScriptedShot {
            camera,
            events,
            frames: 12,
        }]);
        let video = SyntheticVideo::new(script, RenderConfig::default(), seed);
        let shot = video.render_shot(0).unwrap();
        extract_shot(&shot.frames, &shot.audio, &ExtractorConfig::default())
    }

    #[test]
    fn empty_inputs_yield_zero_vector() {
        let audio = AudioBuf::silence(8000, 0);
        let v = extract_shot(&[], &audio, &ExtractorConfig::default());
        assert_eq!(v, FeatureVector::zeros());
    }

    #[test]
    fn all_features_are_finite_on_real_shots() {
        for (i, &camera) in CameraSetup::ALL.iter().enumerate() {
            let v = render(camera, vec![], 100 + i as u64);
            assert!(v.is_finite(), "{camera:?} produced non-finite features");
        }
    }

    #[test]
    fn grass_ratio_separates_wide_from_crowd() {
        let wide = render(CameraSetup::Wide, vec![], 1);
        let crowd = render(CameraSetup::Crowd, vec![], 2);
        assert!(wide[FeatureId::GrassRatio] > 0.5);
        assert!(crowd[FeatureId::GrassRatio] < 0.1);
    }

    #[test]
    fn goal_raises_motion_and_volume() {
        let goal = render(CameraSetup::Wide, vec![EventKind::Goal], 3);
        let plain = render(CameraSetup::Wide, vec![], 4);
        assert!(
            goal[FeatureId::PixelChangePercent] > plain[FeatureId::PixelChangePercent],
            "goal motion {} <= plain {}",
            goal[FeatureId::PixelChangePercent],
            plain[FeatureId::PixelChangePercent]
        );
        assert!(
            goal[FeatureId::VolumeMean] > 1.5 * plain[FeatureId::VolumeMean],
            "goal volume {} vs plain {}",
            goal[FeatureId::VolumeMean],
            plain[FeatureId::VolumeMean]
        );
    }

    #[test]
    fn whistle_raises_sub3_share() {
        let foul = render(CameraSetup::Medium, vec![EventKind::Foul], 5);
        let plain = render(CameraSetup::Medium, vec![], 6);
        let foul_share = foul[FeatureId::Sub3Mean] / (foul[FeatureId::Sub1Mean] + 1e-12);
        let plain_share = plain[FeatureId::Sub3Mean] / (plain[FeatureId::Sub1Mean] + 1e-12);
        assert!(
            foul_share > 2.0 * plain_share,
            "foul sub3/sub1 {foul_share} vs plain {plain_share}"
        );
    }

    #[test]
    fn applause_raises_volume_stdd() {
        let sub = render(CameraSetup::Medium, vec![EventKind::PlayerChange], 7);
        let plain = render(CameraSetup::Medium, vec![], 8);
        assert!(
            sub[FeatureId::VolumeStdd] > 1.5 * plain[FeatureId::VolumeStdd],
            "applause stdd {} vs plain {}",
            sub[FeatureId::VolumeStdd],
            plain[FeatureId::VolumeStdd]
        );
    }

    #[test]
    fn card_closeup_lowers_grass_and_motion() {
        let card = render(CameraSetup::Closeup, vec![EventKind::YellowCard], 9);
        let goal = render(CameraSetup::Wide, vec![EventKind::Goal], 10);
        assert!(card[FeatureId::GrassRatio] < goal[FeatureId::GrassRatio]);
        // Motion must be compared on the same camera (blob size dominates
        // the change percentage across setups).
        let card_wide = render(CameraSetup::Wide, vec![EventKind::YellowCard], 11);
        assert!(card_wide[FeatureId::PixelChangePercent] < goal[FeatureId::PixelChangePercent]);
    }

    #[test]
    fn ratio_features_are_fractions() {
        let v = render(CameraSetup::Wide, vec![EventKind::Goal], 11);
        for f in [
            FeatureId::GrassRatio,
            FeatureId::PixelChangePercent,
            FeatureId::EnergyLowrate,
            FeatureId::Sub1Lowrate,
            FeatureId::Sub3Lowrate,
            FeatureId::VolumeRange,
            FeatureId::SfRange,
        ] {
            assert!(
                (0.0..=1.0).contains(&v[f]),
                "{f} = {} out of [0,1]",
                v[f]
            );
        }
    }

    #[test]
    fn extraction_is_deterministic() {
        let a = render(CameraSetup::Wide, vec![EventKind::Goal], 12);
        let b = render(CameraSetup::Wide, vec![EventKind::Goal], 12);
        assert_eq!(a, b);
    }
}
