//! Feature-major (SoA) slab layout for a block of feature vectors.
//!
//! [`crate::FeatureVector`] is the array-of-structs source of truth: one
//! contiguous `[f64; FEATURE_COUNT]` per shot, which is the natural unit for
//! extraction, normalization, and serialization. The Eq.-14 similarity
//! kernel, however, walks *one feature across many shots*: for each
//! non-zero-centroid feature it reads `B_1(s, y)` for a whole block of
//! shots. In AoS layout those reads are strided by `FEATURE_COUNT`; the
//! [`FeatureSlab`] transposes the matrix so each feature's values sit in one
//! contiguous row and the kernel's inner loop becomes a unit-stride,
//! auto-vectorizable sweep.
//!
//! The slab is a derived cache, never mutated independently: it is rebuilt
//! whenever `B_1` changes and cross-checked bitwise against the AoS rows by
//! the model auditor ([`FeatureSlab::matches`]).

use crate::vector::{FeatureVector, FEATURE_COUNT};
use serde::{Deserialize, Serialize};

/// Feature-major transposed copy of a `B_1` block: `FEATURE_COUNT` rows of
/// `shots` values each, stored contiguously (`data[y * shots + s]`).
///
/// # Examples
///
/// ```
/// use hmmm_features::{FeatureSlab, FeatureVector, FEATURE_COUNT};
///
/// let rows = vec![
///     FeatureVector::from_array(std::array::from_fn(|y| y as f64)),
///     FeatureVector::from_array(std::array::from_fn(|y| y as f64 * 10.0)),
/// ];
/// let slab = FeatureSlab::from_rows(&rows);
/// assert_eq!(slab.shots(), 2);
/// assert_eq!(slab.feature_row(3), &[3.0, 30.0]);
/// assert!(slab.matches(&rows));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureSlab {
    shots: usize,
    data: Vec<f64>,
}

impl FeatureSlab {
    /// Empty slab over zero shots.
    pub fn empty() -> Self {
        FeatureSlab {
            shots: 0,
            data: Vec::new(),
        }
    }

    /// Transposes `rows` (shot-major) into the feature-major slab.
    pub fn from_rows(rows: &[FeatureVector]) -> Self {
        let shots = rows.len();
        let mut data = vec![0.0; shots * FEATURE_COUNT];
        for (s, v) in rows.iter().enumerate() {
            for (y, &x) in v.as_slice().iter().enumerate() {
                data[y * shots + s] = x;
            }
        }
        FeatureSlab { shots, data }
    }

    /// Number of shots (columns of the transposed matrix).
    #[inline]
    pub fn shots(&self) -> usize {
        self.shots
    }

    /// All values of feature `y`, one per shot, contiguous.
    ///
    /// # Panics
    ///
    /// Panics if `y >= FEATURE_COUNT`.
    #[inline]
    pub fn feature_row(&self, y: usize) -> &[f64] {
        assert!(y < FEATURE_COUNT, "feature index out of range");
        &self.data[y * self.shots..(y + 1) * self.shots]
    }

    /// Verifies — without allocating — that the slab is a bitwise-exact
    /// transpose of `rows`. NaN-safe (compares bit patterns, not values), so
    /// a poisoned-but-fresh slab is reported fresh and the numeric audits get
    /// to name the real problem.
    pub fn matches(&self, rows: &[FeatureVector]) -> bool {
        if self.shots != rows.len() || self.data.len() != rows.len() * FEATURE_COUNT {
            return false;
        }
        for (s, v) in rows.iter().enumerate() {
            for (y, &x) in v.as_slice().iter().enumerate() {
                if self.data[y * self.shots + s].to_bits() != x.to_bits() {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<FeatureVector> {
        (0..3)
            .map(|s| FeatureVector::from_array(std::array::from_fn(|y| (s * 100 + y) as f64)))
            .collect()
    }

    #[test]
    fn transpose_layout_is_feature_major() {
        let slab = FeatureSlab::from_rows(&rows());
        assert_eq!(slab.shots(), 3);
        assert_eq!(slab.feature_row(0), &[0.0, 100.0, 200.0]);
        assert_eq!(slab.feature_row(19), &[19.0, 119.0, 219.0]);
    }

    #[test]
    fn matches_detects_drift_and_shape_mismatch() {
        let r = rows();
        let slab = FeatureSlab::from_rows(&r);
        assert!(slab.matches(&r));
        let mut drifted = r.clone();
        drifted[1][4] = -1.0;
        assert!(!slab.matches(&drifted));
        assert!(!slab.matches(&r[..2]));
    }

    #[test]
    fn matches_is_nan_safe() {
        let mut r = rows();
        r[0][0] = f64::NAN;
        let slab = FeatureSlab::from_rows(&r);
        assert!(slab.matches(&r));
    }

    #[test]
    fn empty_slab() {
        let slab = FeatureSlab::empty();
        assert_eq!(slab.shots(), 0);
        assert!(slab.matches(&[]));
        assert_eq!(slab.feature_row(5), &[] as &[f64]);
    }

    #[test]
    fn serde_round_trip() {
        let slab = FeatureSlab::from_rows(&rows());
        let json = serde_json::to_string(&slab).unwrap();
        let back: FeatureSlab = serde_json::from_str(&json).unwrap();
        assert_eq!(slab, back);
    }
}
