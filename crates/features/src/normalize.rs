//! Eq. (3) min–max feature normalization.
//!
//! The paper normalizes every `B_1` column into `[0, 1]` with
//! `B₁(i,j) = (BB₁(i,j) − min_k BB₁(k,j)) / (max_k BB₁(k,j) − min_k BB₁(k,j))`.
//! The fitted per-column `(min, max)` pairs are first-class here
//! ([`NormalizationParams`]) because query-time vectors must be normalized
//! with the *training* parameters, not their own.

use crate::vector::{FeatureVector, FEATURE_COUNT};
use serde::{Deserialize, Serialize};

/// Per-column `(min, max)` fitted over a training corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NormalizationParams {
    mins: [f64; FEATURE_COUNT],
    maxs: [f64; FEATURE_COUNT],
}

impl NormalizationParams {
    /// Fits the parameters over a corpus of raw feature vectors (the
    /// paper's `BB_1` temporal matrix).
    ///
    /// Returns `None` for an empty corpus.
    pub fn fit(corpus: &[FeatureVector]) -> Option<Self> {
        if corpus.is_empty() {
            return None;
        }
        let mut mins = [f64::INFINITY; FEATURE_COUNT];
        let mut maxs = [f64::NEG_INFINITY; FEATURE_COUNT];
        for v in corpus {
            for (j, &x) in v.as_slice().iter().enumerate() {
                if x.is_finite() {
                    mins[j] = mins[j].min(x);
                    maxs[j] = maxs[j].max(x);
                }
            }
        }
        // Columns that never saw a finite value collapse to [0, 0].
        for j in 0..FEATURE_COUNT {
            if mins[j] > maxs[j] {
                mins[j] = 0.0;
                maxs[j] = 0.0;
            }
        }
        Some(NormalizationParams { mins, maxs })
    }

    /// Column minimum.
    pub fn min(&self, col: usize) -> f64 {
        self.mins[col]
    }

    /// Column maximum.
    pub fn max(&self, col: usize) -> f64 {
        self.maxs[col]
    }

    /// `true` if a column is degenerate (max == min), i.e. carried no
    /// information in the training corpus.
    pub fn is_degenerate(&self, col: usize) -> bool {
        self.maxs[col] <= self.mins[col]
    }
}

/// Applies fitted [`NormalizationParams`] to feature vectors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Normalizer {
    params: NormalizationParams,
}

impl Normalizer {
    /// Wraps fitted parameters.
    pub fn new(params: NormalizationParams) -> Self {
        Normalizer { params }
    }

    /// Fits and wraps in one step. `None` for an empty corpus.
    pub fn fit(corpus: &[FeatureVector]) -> Option<Self> {
        NormalizationParams::fit(corpus).map(Normalizer::new)
    }

    /// The fitted parameters.
    pub fn params(&self) -> &NormalizationParams {
        &self.params
    }

    /// Normalizes one vector per Eq. (3). Values are clamped into `[0, 1]`
    /// (query-time vectors may exceed the training range); degenerate
    /// columns map to `0.0`.
    pub fn normalize(&self, v: &FeatureVector) -> FeatureVector {
        let mut out = FeatureVector::zeros();
        for j in 0..FEATURE_COUNT {
            let (min, max) = (self.params.mins[j], self.params.maxs[j]);
            out[j] = if max > min {
                ((v[j] - min) / (max - min)).clamp(0.0, 1.0)
            } else {
                0.0
            };
        }
        out
    }

    /// Normalizes a whole corpus.
    pub fn normalize_all(&self, corpus: &[FeatureVector]) -> Vec<FeatureVector> {
        corpus.iter().map(|v| self.normalize(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature_id::FeatureId;

    fn vec_with(pairs: &[(FeatureId, f64)]) -> FeatureVector {
        let mut v = FeatureVector::zeros();
        for &(f, x) in pairs {
            v[f] = x;
        }
        v
    }

    #[test]
    fn fit_requires_data() {
        assert!(NormalizationParams::fit(&[]).is_none());
    }

    #[test]
    fn normalization_maps_to_unit_interval() {
        let corpus = vec![
            vec_with(&[(FeatureId::VolumeMean, 2.0)]),
            vec_with(&[(FeatureId::VolumeMean, 6.0)]),
            vec_with(&[(FeatureId::VolumeMean, 4.0)]),
        ];
        let n = Normalizer::fit(&corpus).unwrap();
        let out = n.normalize_all(&corpus);
        assert_eq!(out[0][FeatureId::VolumeMean], 0.0);
        assert_eq!(out[1][FeatureId::VolumeMean], 1.0);
        assert_eq!(out[2][FeatureId::VolumeMean], 0.5);
    }

    #[test]
    fn degenerate_columns_map_to_zero() {
        let corpus = vec![
            vec_with(&[(FeatureId::SfMean, 3.0)]),
            vec_with(&[(FeatureId::SfMean, 3.0)]),
        ];
        let n = Normalizer::fit(&corpus).unwrap();
        assert!(n.params().is_degenerate(FeatureId::SfMean.index()));
        assert_eq!(n.normalize(&corpus[0])[FeatureId::SfMean], 0.0);
    }

    #[test]
    fn out_of_range_queries_are_clamped() {
        let corpus = vec![
            vec_with(&[(FeatureId::EnergyMean, 1.0)]),
            vec_with(&[(FeatureId::EnergyMean, 2.0)]),
        ];
        let n = Normalizer::fit(&corpus).unwrap();
        let hot = n.normalize(&vec_with(&[(FeatureId::EnergyMean, 99.0)]));
        assert_eq!(hot[FeatureId::EnergyMean], 1.0);
        let cold = n.normalize(&vec_with(&[(FeatureId::EnergyMean, -99.0)]));
        assert_eq!(cold[FeatureId::EnergyMean], 0.0);
    }

    #[test]
    fn non_finite_training_values_are_skipped() {
        let mut bad = vec_with(&[(FeatureId::SfStd, 0.5)]);
        bad[FeatureId::GrassRatio] = f64::NAN;
        let corpus = vec![bad, vec_with(&[(FeatureId::SfStd, 1.0)])];
        let n = Normalizer::fit(&corpus).unwrap();
        // grass column saw one NaN and one 0.0 → min=max=0 → degenerate-safe.
        let out = n.normalize(&corpus[0]);
        assert!(out.is_finite());
    }

    #[test]
    fn serde_round_trip() {
        let corpus = vec![
            vec_with(&[(FeatureId::VolumeMean, 2.0)]),
            vec_with(&[(FeatureId::VolumeMean, 6.0)]),
        ];
        let n = Normalizer::fit(&corpus).unwrap();
        let json = serde_json::to_string(&n).unwrap();
        let back: Normalizer = serde_json::from_str(&json).unwrap();
        assert_eq!(n, back);
    }
}
