//! The fixed 20-dimensional feature vector.

use crate::feature_id::FeatureId;
use serde::{Deserialize, Serialize};
use std::ops::{Index, IndexMut};

/// Number of shot-level features (`K` in the paper; Table 1 has 20).
pub const FEATURE_COUNT: usize = 20;

/// One row of the `B_1` feature matrix: the 20 Table-1 features of a shot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeatureVector([f64; FEATURE_COUNT]);

impl Default for FeatureVector {
    fn default() -> Self {
        FeatureVector([0.0; FEATURE_COUNT])
    }
}

impl FeatureVector {
    /// Zero vector.
    pub fn zeros() -> Self {
        Self::default()
    }

    /// Wraps a raw array (column order = [`FeatureId::ALL`]).
    pub fn from_array(values: [f64; FEATURE_COUNT]) -> Self {
        FeatureVector(values)
    }

    /// Builds from a slice.
    ///
    /// Returns `None` unless exactly [`FEATURE_COUNT`] values are given.
    pub fn from_slice(values: &[f64]) -> Option<Self> {
        let arr: [f64; FEATURE_COUNT] = values.try_into().ok()?;
        Some(FeatureVector(arr))
    }

    /// Raw values in canonical column order.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }

    /// Mutable raw values.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.0
    }

    /// Iterates `(feature, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (FeatureId, f64)> + '_ {
        FeatureId::ALL.iter().map(move |&f| (f, self.0[f.index()]))
    }

    /// `true` if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.0.iter().all(|v| v.is_finite())
    }

    /// Euclidean distance to another vector.
    pub fn euclidean_distance(&self, other: &FeatureVector) -> f64 {
        self.0
            .iter()
            .zip(other.0.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    /// Element-wise mean of a set of vectors (the paper's Eq. 11 — the
    /// per-event feature centroid `B_1'`). Returns the zero vector for an
    /// empty set.
    pub fn mean_of(vectors: &[FeatureVector]) -> FeatureVector {
        if vectors.is_empty() {
            return FeatureVector::zeros();
        }
        let mut acc = [0.0; FEATURE_COUNT];
        for v in vectors {
            for (a, x) in acc.iter_mut().zip(v.0.iter()) {
                *a += x;
            }
        }
        let n = vectors.len() as f64;
        for a in &mut acc {
            *a /= n;
        }
        FeatureVector(acc)
    }

    /// Element-wise population standard deviation of a set of vectors (the
    /// input to the paper's Eqs. 8–10 — `Std_{i,j}` per event and feature).
    /// Returns the zero vector for fewer than two vectors.
    pub fn std_of(vectors: &[FeatureVector]) -> FeatureVector {
        if vectors.len() < 2 {
            return FeatureVector::zeros();
        }
        let mean = Self::mean_of(vectors);
        let mut acc = [0.0; FEATURE_COUNT];
        for v in vectors {
            for ((a, x), m) in acc.iter_mut().zip(v.0.iter()).zip(mean.0.iter()) {
                let d = x - m;
                *a += d * d;
            }
        }
        let n = vectors.len() as f64;
        for a in &mut acc {
            *a = (*a / n).sqrt();
        }
        FeatureVector(acc)
    }
}

impl Index<FeatureId> for FeatureVector {
    type Output = f64;

    #[inline]
    fn index(&self, f: FeatureId) -> &f64 {
        &self.0[f.index()]
    }
}

impl IndexMut<FeatureId> for FeatureVector {
    #[inline]
    fn index_mut(&mut self, f: FeatureId) -> &mut f64 {
        &mut self.0[f.index()]
    }
}

impl Index<usize> for FeatureVector {
    type Output = f64;

    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.0[i]
    }
}

impl IndexMut<usize> for FeatureVector {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.0[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_by_id_and_usize_agree() {
        let mut v = FeatureVector::zeros();
        v[FeatureId::SfMean] = 0.7;
        assert_eq!(v[FeatureId::SfMean.index()], 0.7);
        v[0] = 0.3;
        assert_eq!(v[FeatureId::GrassRatio], 0.3);
    }

    #[test]
    fn from_slice_validates_length() {
        assert!(FeatureVector::from_slice(&[0.0; 20]).is_some());
        assert!(FeatureVector::from_slice(&[0.0; 19]).is_none());
        assert!(FeatureVector::from_slice(&[0.0; 21]).is_none());
    }

    #[test]
    fn iter_covers_all_features() {
        let v = FeatureVector::from_array(std::array::from_fn(|i| i as f64));
        let pairs: Vec<(FeatureId, f64)> = v.iter().collect();
        assert_eq!(pairs.len(), 20);
        assert_eq!(pairs[3], (FeatureId::BackgroundVar, 3.0));
    }

    #[test]
    fn euclidean_distance_basics() {
        let a = FeatureVector::zeros();
        let mut b = FeatureVector::zeros();
        b[FeatureId::GrassRatio] = 3.0;
        b[FeatureId::SfRange] = 4.0;
        assert!((a.euclidean_distance(&b) - 5.0).abs() < 1e-12);
        assert_eq!(a.euclidean_distance(&a), 0.0);
    }

    #[test]
    fn mean_and_std_known_values() {
        let mut a = FeatureVector::zeros();
        let mut b = FeatureVector::zeros();
        a[FeatureId::VolumeMean] = 2.0;
        b[FeatureId::VolumeMean] = 4.0;
        let mean = FeatureVector::mean_of(&[a, b]);
        assert_eq!(mean[FeatureId::VolumeMean], 3.0);
        let std = FeatureVector::std_of(&[a, b]);
        assert_eq!(std[FeatureId::VolumeMean], 1.0);
        assert_eq!(std[FeatureId::GrassRatio], 0.0);
    }

    #[test]
    fn mean_std_degenerate_inputs() {
        assert_eq!(FeatureVector::mean_of(&[]), FeatureVector::zeros());
        let v = FeatureVector::from_array([1.0; 20]);
        assert_eq!(FeatureVector::std_of(&[v]), FeatureVector::zeros());
        assert_eq!(FeatureVector::mean_of(&[v]), v);
    }

    #[test]
    fn is_finite_detects_poison() {
        let mut v = FeatureVector::zeros();
        assert!(v.is_finite());
        v[FeatureId::SfStd] = f64::NAN;
        assert!(!v.is_finite());
    }

    #[test]
    fn serde_round_trip() {
        let v = FeatureVector::from_array(std::array::from_fn(|i| i as f64 * 0.1));
        let json = serde_json::to_string(&v).unwrap();
        let back: FeatureVector = serde_json::from_str(&json).unwrap();
        assert_eq!(v, back);
    }
}
