//! The canonical feature identifiers of Table 1.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// One of the 20 shot-level features (`F_1` in the paper's notation).
///
/// The enum order is the canonical column order of the `B_1` feature matrix;
/// [`FeatureId::index`] gives that column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)] // each variant documented by its Table-1 description string
pub enum FeatureId {
    GrassRatio,
    PixelChangePercent,
    HistoChange,
    BackgroundVar,
    BackgroundMean,
    VolumeMean,
    VolumeStd,
    VolumeStdd,
    VolumeRange,
    EnergyMean,
    Sub1Mean,
    Sub3Mean,
    EnergyLowrate,
    Sub1Lowrate,
    Sub3Lowrate,
    Sub1Std,
    SfMean,
    SfStd,
    SfStdd,
    SfRange,
}

impl FeatureId {
    /// All features in canonical column order.
    pub const ALL: [FeatureId; 20] = [
        FeatureId::GrassRatio,
        FeatureId::PixelChangePercent,
        FeatureId::HistoChange,
        FeatureId::BackgroundVar,
        FeatureId::BackgroundMean,
        FeatureId::VolumeMean,
        FeatureId::VolumeStd,
        FeatureId::VolumeStdd,
        FeatureId::VolumeRange,
        FeatureId::EnergyMean,
        FeatureId::Sub1Mean,
        FeatureId::Sub3Mean,
        FeatureId::EnergyLowrate,
        FeatureId::Sub1Lowrate,
        FeatureId::Sub3Lowrate,
        FeatureId::Sub1Std,
        FeatureId::SfMean,
        FeatureId::SfStd,
        FeatureId::SfStdd,
        FeatureId::SfRange,
    ];

    /// Column index in `B_1`.
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&f| f == self)
            .expect("every feature is in ALL")
    }

    /// Feature for a column index.
    pub fn from_index(i: usize) -> Option<FeatureId> {
        Self::ALL.get(i).copied()
    }

    /// `true` for the five visual features.
    pub fn is_visual(self) -> bool {
        matches!(
            self,
            FeatureId::GrassRatio
                | FeatureId::PixelChangePercent
                | FeatureId::HistoChange
                | FeatureId::BackgroundVar
                | FeatureId::BackgroundMean
        )
    }

    /// Table-1 feature name (snake_case).
    pub fn name(self) -> &'static str {
        match self {
            FeatureId::GrassRatio => "grass_ratio",
            FeatureId::PixelChangePercent => "pixel_change_percent",
            FeatureId::HistoChange => "histo_change",
            FeatureId::BackgroundVar => "background_var",
            FeatureId::BackgroundMean => "background_mean",
            FeatureId::VolumeMean => "volume_mean",
            FeatureId::VolumeStd => "volume_std",
            FeatureId::VolumeStdd => "volume_stdd",
            FeatureId::VolumeRange => "volume_range",
            FeatureId::EnergyMean => "energy_mean",
            FeatureId::Sub1Mean => "sub1_mean",
            FeatureId::Sub3Mean => "sub3_mean",
            FeatureId::EnergyLowrate => "energy_lowrate",
            FeatureId::Sub1Lowrate => "sub1_lowrate",
            FeatureId::Sub3Lowrate => "sub3_lowrate",
            FeatureId::Sub1Std => "sub1_std",
            FeatureId::SfMean => "sf_mean",
            FeatureId::SfStd => "sf_std",
            FeatureId::SfStdd => "sf_stdd",
            FeatureId::SfRange => "sf_range",
        }
    }

    /// Table-1 description of the feature.
    pub fn description(self) -> &'static str {
        match self {
            FeatureId::GrassRatio => "Average percent of grass areas in a shot",
            FeatureId::PixelChangePercent => {
                "Average percent of the changed pixels between frames within a shot"
            }
            FeatureId::HistoChange => {
                "Mean value of the histogram difference between frames within a shot"
            }
            FeatureId::BackgroundVar => "Mean value of the variance of background pixels",
            FeatureId::BackgroundMean => "Mean value of the background pixels",
            FeatureId::VolumeMean => "Mean value of the volume",
            FeatureId::VolumeStd => {
                "Standard deviation of the volume, normalized by the maximum volume"
            }
            FeatureId::VolumeStdd => "Standard deviation of the difference of the volume",
            FeatureId::VolumeRange => {
                "Dynamic range of the volume, defined as (max(v)-min(v))/max(v)"
            }
            FeatureId::EnergyMean => "Average RMS energy",
            FeatureId::Sub1Mean => "Average RMS energy of the first sub-band",
            FeatureId::Sub3Mean => "Average RMS energy of the third sub-band",
            FeatureId::EnergyLowrate => {
                "Percentage of samples with RMS power less than 0.5 times the mean RMS power"
            }
            FeatureId::Sub1Lowrate => {
                "Percentage of samples with RMS power less than 0.5 times the mean RMS power of the first sub-band"
            }
            FeatureId::Sub3Lowrate => {
                "Percentage of samples with RMS power less than 0.5 times the mean RMS power of the third sub-band"
            }
            FeatureId::Sub1Std => {
                "Standard deviation of the mean RMS power of the first sub-band energy"
            }
            FeatureId::SfMean => "Mean value of the Spectrum Flux",
            FeatureId::SfStd => {
                "Standard deviation of the Spectrum Flux, normalized by the maximum Spectrum Flux"
            }
            FeatureId::SfStdd => {
                "Standard deviation of the difference of the Spectrum Flux, normalized"
            }
            FeatureId::SfRange => "Dynamic range of the Spectrum Flux",
        }
    }
}

impl fmt::Display for FeatureId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error for unknown feature names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownFeature(pub String);

impl fmt::Display for UnknownFeature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown feature name: {:?}", self.0)
    }
}

impl std::error::Error for UnknownFeature {}

impl FromStr for FeatureId {
    type Err = UnknownFeature;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let normalized = s.trim().to_ascii_lowercase();
        FeatureId::ALL
            .iter()
            .copied()
            .find(|f| f.name() == normalized)
            .ok_or_else(|| UnknownFeature(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_features_five_visual() {
        assert_eq!(FeatureId::ALL.len(), 20);
        assert_eq!(FeatureId::ALL.iter().filter(|f| f.is_visual()).count(), 5);
    }

    #[test]
    fn indices_round_trip() {
        for (i, &f) in FeatureId::ALL.iter().enumerate() {
            assert_eq!(f.index(), i);
            assert_eq!(FeatureId::from_index(i), Some(f));
        }
        assert_eq!(FeatureId::from_index(20), None);
    }

    #[test]
    fn names_round_trip_and_are_unique() {
        let mut names = std::collections::HashSet::new();
        for &f in &FeatureId::ALL {
            assert!(names.insert(f.name()), "duplicate name {}", f.name());
            assert_eq!(f.name().parse::<FeatureId>().unwrap(), f);
        }
        assert!("bogus".parse::<FeatureId>().is_err());
    }

    #[test]
    fn descriptions_are_non_empty() {
        for &f in &FeatureId::ALL {
            assert!(!f.description().is_empty());
        }
    }
}
