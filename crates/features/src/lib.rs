//! # hmmm-features
//!
//! Table-1 feature extraction for the HMMM video-database suite.
//!
//! The ICDE 2006 HMMM paper builds its shot-level MMM feature matrix `B_1`
//! from **5 visual and 15 audio features** (Table 1). This crate implements
//! every one of them over the synthetic media substrate:
//!
//! | Category | Features |
//! |---|---|
//! | Visual | `grass_ratio`, `pixel_change_percent`, `histo_change`, `background_var`, `background_mean` |
//! | Volume | `volume_mean`*, `volume_std`, `volume_stdd`, `volume_range` |
//! | Energy | `energy_mean`, `sub1_mean`, `sub3_mean`, `energy_lowrate`, `sub1_lowrate`, `sub3_lowrate`, `sub1_std` |
//! | Spectrum flux | `sf_mean`, `sf_std`, `sf_stdd`, `sf_range` |
//!
//! *The scanned Table 1 is partially garbled and lists 14 legible audio
//! rows; the paper states 15 audio features. `volume_mean` (the standard
//! companion of `volume_std` in the audio-classification literature the
//! feature set descends from) fills the gap; the substitution is recorded
//! in DESIGN.md.
//!
//! [`FeatureVector`] is a fixed 20-dimensional vector indexed by
//! [`FeatureId`]; [`extract::extract_shot`] computes it from rendered media;
//! [`normalize`] implements the paper's Eq. (3) min–max normalization.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod extract;
pub mod feature_id;
pub mod normalize;
pub mod slab;
pub mod vector;

pub use extract::{extract_shot, ExtractorConfig};
pub use feature_id::FeatureId;
pub use normalize::{NormalizationParams, Normalizer};
pub use slab::FeatureSlab;
pub use vector::{FeatureVector, FEATURE_COUNT};
