//! Property tests for feature extraction and normalization.

use hmmm_features::{
    extract_shot, ExtractorConfig, FeatureId, FeatureVector, Normalizer, FEATURE_COUNT,
};
use hmmm_media::{AudioBuf, CameraSetup, EventScript, RenderConfig, ScriptedShot, SyntheticVideo};
use proptest::prelude::*;

fn feature_vector() -> impl Strategy<Value = FeatureVector> {
    proptest::collection::vec(-100.0f64..100.0, FEATURE_COUNT)
        .prop_map(|v| FeatureVector::from_slice(&v).expect("exact length"))
}

proptest! {
    /// Normalization always lands in [0, 1] for training vectors AND any
    /// other vector (clamped).
    #[test]
    fn normalization_into_unit_cube(
        corpus in proptest::collection::vec(feature_vector(), 1..32),
        probe in feature_vector(),
    ) {
        let n = Normalizer::fit(&corpus).unwrap();
        for v in n.normalize_all(&corpus) {
            for j in 0..FEATURE_COUNT {
                prop_assert!((0.0..=1.0).contains(&v[j]), "train col {j} -> {}", v[j]);
            }
        }
        let p = n.normalize(&probe);
        for j in 0..FEATURE_COUNT {
            prop_assert!((0.0..=1.0).contains(&p[j]));
        }
    }

    /// Normalization is monotone per column: a larger raw value never maps
    /// to a smaller normalized value.
    #[test]
    fn normalization_is_monotone(
        corpus in proptest::collection::vec(feature_vector(), 2..16),
        a in feature_vector(),
        b in feature_vector(),
    ) {
        let n = Normalizer::fit(&corpus).unwrap();
        let na = n.normalize(&a);
        let nb = n.normalize(&b);
        for j in 0..FEATURE_COUNT {
            if a[j] <= b[j] {
                prop_assert!(na[j] <= nb[j] + 1e-12);
            }
        }
    }

    /// mean_of stays inside the element-wise min/max envelope, std_of is
    /// non-negative.
    #[test]
    fn mean_std_envelopes(vectors in proptest::collection::vec(feature_vector(), 1..16)) {
        let mean = FeatureVector::mean_of(&vectors);
        let std = FeatureVector::std_of(&vectors);
        for j in 0..FEATURE_COUNT {
            let lo = vectors.iter().map(|v| v[j]).fold(f64::INFINITY, f64::min);
            let hi = vectors.iter().map(|v| v[j]).fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(mean[j] >= lo - 1e-9 && mean[j] <= hi + 1e-9);
            prop_assert!(std[j] >= 0.0);
            // Population std is bounded by half the range… no: bounded by
            // the full range.
            prop_assert!(std[j] <= (hi - lo) + 1e-9);
        }
    }

    /// Extraction over arbitrary rendered shots is finite and fraction
    /// features stay in [0, 1] — no matter the camera, events, or length.
    #[test]
    fn extraction_always_finite(
        camera_idx in 0usize..4,
        frames in 1usize..8,
        seed in 0u64..1000,
    ) {
        let camera = CameraSetup::ALL[camera_idx];
        let script = EventScript::from_shots(vec![ScriptedShot {
            camera,
            events: vec![],
            frames,
        }]);
        let video = SyntheticVideo::new(script, RenderConfig::small(), seed);
        let shot = video.render_shot(0).unwrap();
        let v = extract_shot(&shot.frames, &shot.audio, &ExtractorConfig::default());
        prop_assert!(v.is_finite());
        for f in [
            FeatureId::GrassRatio,
            FeatureId::PixelChangePercent,
            FeatureId::EnergyLowrate,
            FeatureId::Sub1Lowrate,
            FeatureId::Sub3Lowrate,
            FeatureId::VolumeRange,
            FeatureId::SfRange,
        ] {
            prop_assert!((0.0..=1.0).contains(&v[f]), "{f} = {}", v[f]);
        }
    }

    /// Extraction with degenerate audio (silence of arbitrary length) never
    /// produces NaN.
    #[test]
    fn silent_audio_is_safe(len in 0usize..5000) {
        let audio = AudioBuf::silence(8000, len);
        let frames = vec![hmmm_media::PixelBuf::filled(16, 12, hmmm_media::Rgb::new(100, 100, 100))];
        let v = extract_shot(&frames, &audio, &ExtractorConfig::default());
        prop_assert!(v.is_finite());
    }
}
