//! # hmmm-bench
//!
//! Experiment harness for the HMMM reproduction: the `exp_*` binaries
//! regenerate every table/figure-level artifact of the paper (see the
//! experiment index in DESIGN.md and the results in EXPERIMENTS.md), and
//! the Criterion benches cover the hot paths.
//!
//! The library part holds what every experiment shares: dataset
//! construction, retrieval-quality metrics, and a tiny text-table printer
//! so the binaries emit the same row/series shapes the paper reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod data;
pub mod metrics;
pub mod table;

pub use data::{skewed_catalog, standard_catalog, DataConfig};
pub use metrics::{mean_reciprocal_rank, precision_at_k, QualityReport};
pub use table::Table;
