//! E2 — the §4.2.1.1 worked example of the `A_1` initialization.
//!
//! The paper's only fully worked numeric artifact: a three-shot video
//! annotated [Free Kick], [Free Kick, Goal], [Corner Kick] must produce
//! `A1(1,2)=2/3, A1(1,3)=1/3, A1(2,2)=1/2, A1(2,3)=1/2, A1(3,3)=1`.

use hmmm_core::construct::a1_initial_from_counts;

fn main() {
    println!("E2 / §4.2.1.1 worked example — A1 initialization\n");
    println!("shots: s1=[free_kick]  s2=[free_kick, goal]  s3=[corner_kick]");
    println!("NE:    NE(s1)=1, NE(s2)=2, NE(s3)=1\n");

    let a1 = a1_initial_from_counts(&[1.0, 2.0, 1.0]).expect("non-empty");

    println!("computed A1 (rows/cols are s1..s3):");
    for i in 0..3 {
        let row: Vec<String> = (0..3).map(|j| format!("{:.4}", a1.get(i, j))).collect();
        println!("  [{}]", row.join(", "));
    }

    let expectations = [
        ((0usize, 1usize), 2.0 / 3.0, "A1(1,2) = 2/3"),
        ((0, 2), 1.0 / 3.0, "A1(1,3) = 1/3"),
        ((1, 1), 0.5, "A1(2,2) = 1/2"),
        ((1, 2), 0.5, "A1(2,3) = 1/2"),
        ((2, 2), 1.0, "A1(3,3) = 1"),
    ];
    println!("\npaper value            computed     match");
    println!("------------------------------------------");
    let mut all_ok = true;
    for ((i, j), expected, label) in expectations {
        let got = a1.get(i, j);
        let ok = (got - expected).abs() < 1e-12;
        all_ok &= ok;
        println!("{label:<22} {got:<12.6} {}", if ok { "✓" } else { "✗" });
    }
    println!(
        "\nresult: {}",
        if all_ok {
            "EXACT reproduction of the paper's example"
        } else {
            "MISMATCH — investigate"
        }
    );
    assert!(all_ok);
}
