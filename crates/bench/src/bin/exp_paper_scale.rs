//! E3 — the paper's archive scale (§5 / Figure 5): 54 videos, ~11.5k
//! shots, ~500 annotated events. Builds the full model at that scale and
//! reports counts, timings, and memory proxies.

use hmmm_bench::{standard_catalog, DataConfig, Table};
use hmmm_core::{build_hmmm, BuildConfig, RetrievalConfig, Retriever};
use hmmm_media::EventKind;
use hmmm_query::QueryTranslator;
use std::time::Instant;

fn main() {
    println!("E3 / §5 system scale — paper: 54 videos, 11,567 shots, 506 events\n");

    let t0 = Instant::now();
    let (archive, catalog) = standard_catalog(DataConfig::paper_scale());
    let ingest = t0.elapsed();

    let t1 = Instant::now();
    let model = build_hmmm(&catalog, &BuildConfig::default()).expect("non-empty");
    let build = t1.elapsed();

    // Memory proxy: dominant allocations.
    let a1_entries: usize = model.locals.iter().map(|l| l.len() * l.len()).sum();
    let b1_bytes = model.b1.len() * hmmm_features::FEATURE_COUNT * 8;
    let a1_bytes = a1_entries * 8;
    let a2_bytes = model.video_count() * model.video_count() * 8;

    let mut t = Table::new(&["quantity", "paper", "this run"]);
    t.row_owned(vec![
        "videos".into(),
        "54".into(),
        archive.video_count().to_string(),
    ]);
    t.row_owned(vec![
        "video shots".into(),
        "11,567".into(),
        catalog.shot_count().to_string(),
    ]);
    t.row_owned(vec![
        "annotated events".into(),
        "506".into(),
        catalog.total_events().to_string(),
    ]);
    t.row_owned(vec![
        "ingest (render+features)".into(),
        "n/a".into(),
        format!("{ingest:.2?}"),
    ]);
    t.row_owned(vec![
        "HMMM construction".into(),
        "n/a".into(),
        format!("{build:.2?}"),
    ]);
    t.row_owned(vec![
        "A1 storage".into(),
        "n/a".into(),
        format!("{:.1} MiB ({} local blocks)", a1_bytes as f64 / (1 << 20) as f64, model.video_count()),
    ]);
    t.row_owned(vec![
        "B1 storage".into(),
        "n/a".into(),
        format!("{:.1} MiB", b1_bytes as f64 / (1 << 20) as f64),
    ]);
    t.row_owned(vec![
        "A2 storage".into(),
        "n/a".into(),
        format!("{:.1} KiB", a2_bytes as f64 / 1024.0),
    ]);
    println!("{t}");

    // A retrieval pass at full scale, for the record — serial and parallel
    // (`--threads N` overrides the parallel worker count; 0 = all cores).
    let args: Vec<String> = std::env::args().collect();
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .and_then(|t| if t == 0 { None } else { Some(t) });

    let translator = QueryTranslator::new(EventKind::ALL.iter().map(|k| k.name()));
    let pattern = translator.compile("goal -> free_kick").expect("valid");
    // Pruning off for the serial/parallel comparison: the fan-out is a pure
    // scheduling change only then, so *stats* compare equal too. With the
    // prune on the counters race the shared threshold across workers
    // (rankings never do — asserted separately below).
    let serial_cfg = RetrievalConfig {
        threads: Some(1),
        prune: false,
        ..RetrievalConfig::default()
    };
    let retriever = Retriever::new(&model, &catalog, serial_cfg).expect("consistent");
    let t2 = Instant::now();
    let (results, stats) = retriever.retrieve(&pattern, 8).expect("valid");
    let q = t2.elapsed();
    println!(
        "query 'goal -> free_kick' at paper scale: {} candidates in {q:.2?} (serial)",
        results.len()
    );
    println!(
        "work: {} videos visited, {} skipped by B2, {} sim evals, {} transitions",
        stats.videos_visited,
        stats.videos_skipped,
        stats.total_sim_evaluations(),
        stats.transitions_examined
    );

    let parallel_cfg = RetrievalConfig {
        threads,
        prune: false,
        ..RetrievalConfig::default()
    };
    let retriever = Retriever::new(&model, &catalog, parallel_cfg).expect("consistent");
    let t3 = Instant::now();
    let (p_results, p_stats) = retriever.retrieve(&pattern, 8).expect("valid");
    let pq = t3.elapsed();
    println!(
        "same query with threads={}: {} candidates in {pq:.2?} ({:.2}x)",
        threads.map_or("auto".into(), |n| n.to_string()),
        p_results.len(),
        q.as_secs_f64() / pq.as_secs_f64().max(1e-9)
    );
    assert_eq!(p_results, results, "parallel ranking must match serial");
    assert_eq!(p_stats, stats, "parallel stats must match serial");

    // Assert the fan-out actually helps — but only where it *can*: on a
    // single-core host (or an explicit --threads 1) the workers time-slice
    // one core and the "speedup" measures scheduling overhead, so the
    // assertion would test the scheduler, not the engine.
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let effective_workers = threads.unwrap_or(host_cpus);
    if host_cpus > 1 && effective_workers > 1 {
        let speedup = q.as_secs_f64() / pq.as_secs_f64().max(1e-9);
        assert!(
            speedup > 1.0,
            "parallel fan-out ({effective_workers} workers on {host_cpus} cores) \
             did not beat serial at paper scale ({speedup:.2}x)"
        );
    } else {
        println!(
            "parallel speedup not asserted: {host_cpus} host core(s), \
             {effective_workers} worker(s) — parallelism unmeasurable here"
        );
    }

    // And the production default (exact top-k pruning on) returns the same
    // ranking at paper scale — the prune only moves work counters.
    let pruned_cfg = RetrievalConfig {
        threads,
        ..RetrievalConfig::default()
    };
    let retriever = Retriever::new(&model, &catalog, pruned_cfg).expect("consistent");
    let (pr_results, pr_stats) = retriever.retrieve(&pattern, 8).expect("valid");
    assert_eq!(pr_results, results, "pruned ranking must match unpruned");
    println!(
        "pruned default run: {} bound-skipped videos, {} entries pruned",
        pr_stats.videos_skipped_by_bound, pr_stats.entries_pruned
    );
}
