//! E11 — hot-path layout sweep: what the blocked SoA kernel and the sparse
//! `A_1` rows buy, and where.
//!
//! Three sweeps, all serial (this measures memory layout, not the machine):
//!
//! 1. **Block size** — Eq.-14 throughput (shot-evaluations/sec) of
//!    `sim::similarity_block` over contiguous blocks of B shots, against
//!    the scalar per-shot reference. Small blocks pay per-call overhead;
//!    large blocks stream the feature-major slab at unit stride.
//! 2. **Annotation density** — forward row-max refresh (rows/sec) through
//!    the dense fold vs the CSR view across event rates: the sparser the
//!    archive's `A_1` support, the more structural zeros the CSR skips.
//! 3. **Archive size** — end-to-end content-driven retrieval (shots/sec)
//!    at growing archive sizes, the number the ISSUE acceptance gate
//!    tracks.
//!
//! Every timed variant is cross-checked bitwise against its reference
//! inside the loop — a layout bug can never ship inside a perf table.
//!
//! ```text
//! cargo run --release -p hmmm-bench --bin exp_kernel_sweep [-- --quick]
//! ```
//!
//! `--quick` shrinks the fixtures and repeats for the CI smoke row.

use hmmm_bench::{skewed_catalog, DataConfig, Table};
use hmmm_core::{build_hmmm, sim, BuildConfig, Hmmm, RetrievalConfig, Retriever};
use hmmm_matrix::ForwardCsr;
use hmmm_media::EventKind;
use hmmm_query::QueryTranslator;
use std::time::Instant;

fn best_secs(rounds: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Sums every Eq.-14 score through the blocked kernel at block size `b`,
/// folding per-block partials in block order (the same sequence the scalar
/// reference below uses, so the sinks compare bitwise).
fn blocked_pass(model: &Hmmm, b: usize, scratch: &mut Vec<f64>) -> f64 {
    let shots = model.shot_count();
    let mut acc = 0.0;
    for e in 0..EventKind::COUNT {
        let mut lo = 0usize;
        while lo < shots {
            let hi = (lo + b).min(shots);
            let row = sim::similarity_block(model, lo..hi, e, scratch);
            acc += row.iter().sum::<f64>();
            lo = hi;
        }
    }
    acc
}

fn scalar_pass(model: &Hmmm, b: usize) -> f64 {
    let shots = model.shot_count();
    let mut acc = 0.0;
    for e in 0..EventKind::COUNT {
        let mut lo = 0usize;
        while lo < shots {
            let hi = (lo + b).min(shots);
            let mut part = 0.0;
            for s in lo..hi {
                part += sim::similarity(model, s, e);
            }
            acc += part;
            lo = hi;
        }
    }
    acc
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let rounds = if quick { 1 } else { 3 };
    println!(
        "E11 — blocked SoA kernel + sparse A1 sweep{}\n",
        if quick { " (quick)" } else { "" }
    );

    // --- Sweep 1: block size.
    let (videos, shots_per) = if quick { (16, 60) } else { (80, 250) };
    let catalog = skewed_catalog(
        DataConfig {
            videos,
            shots_per_video: shots_per,
            event_rate: 0.08,
            seed: 0xE11,
        },
        0.005,
    );
    let model = build_hmmm(&catalog, &BuildConfig::default()).expect("non-empty");
    let shots = model.shot_count();
    let evals = (shots * EventKind::COUNT) as f64;

    println!("## Eq.-14 throughput vs block size ({videos} videos × {shots_per} shots)\n");
    let mut t = Table::new(&["variant", "block", "best", "evals/sec"]);
    let reference = scalar_pass(&model, shots.max(1));
    let scalar_secs = best_secs(rounds, || {
        std::hint::black_box(scalar_pass(&model, shots.max(1)));
    });
    t.row_owned(vec![
        "scalar".into(),
        "1".into(),
        format!("{:.3} ms", scalar_secs * 1e3),
        format!("{:.2e}", evals / scalar_secs),
    ]);
    let mut scratch = Vec::new();
    let mut seen = 0usize;
    for &b in &[16usize, 64, 256, 2048, usize::MAX] {
        let b = b.min(shots.max(1));
        if b == seen {
            continue; // clamped onto the previous row — nothing new to say
        }
        seen = b;
        let sink = blocked_pass(&model, b, &mut scratch);
        assert_eq!(
            sink.to_bits(),
            scalar_pass(&model, b).to_bits(),
            "blocked kernel diverged at block size {b}"
        );
        let secs = best_secs(rounds, || {
            std::hint::black_box(blocked_pass(&model, b, &mut scratch));
        });
        t.row_owned(vec![
            "blocked".into(),
            if b == shots { "all".into() } else { b.to_string() },
            format!("{:.3} ms", secs * 1e3),
            format!("{:.2e}", evals / secs),
        ]);
    }
    println!("{t}");
    std::hint::black_box(reference);

    // --- Sweep 2: A1 forward density vs row-max refresh cost.
    println!("\n## forward row-max refresh: dense fold vs CSR view\n");
    let mut t = Table::new(&["event rate", "fwd density", "dense", "csr", "dense/csr"]);
    for &rate in &[0.02f64, 0.08, 0.30] {
        let catalog = skewed_catalog(
            DataConfig {
                videos: if quick { 8 } else { 40 },
                shots_per_video: if quick { 40 } else { 150 },
                event_rate: rate,
                seed: 0xE11 + 7,
            },
            0.005,
        );
        let model = build_hmmm(&catalog, &BuildConfig::default()).expect("non-empty");
        let csrs: Vec<ForwardCsr> = model
            .locals
            .iter()
            .map(|l| ForwardCsr::from_forward(l.a1.as_matrix()))
            .collect();
        let nnz: usize = csrs.iter().map(|c| c.nnz()).sum();
        let slots: usize = model
            .locals
            .iter()
            .map(|l| l.a1.rows() * (l.a1.rows() + 1) / 2)
            .sum();
        let max_rows = model.locals.iter().map(|l| l.a1.rows()).max().unwrap_or(0);
        let mut maxima = vec![0.0f64; max_rows];
        let dense_sink: f64 = model
            .locals
            .iter()
            .map(|l| {
                let m = l.a1.as_matrix();
                (0..m.rows())
                    .map(|s| (s..m.cols()).map(|c| m[(s, c)]).fold(0.0, f64::max))
                    .sum::<f64>()
            })
            .sum();
        let dense_secs = best_secs(rounds, || {
            let mut acc = 0.0;
            for local in &model.locals {
                let m = local.a1.as_matrix();
                for s in 0..m.rows() {
                    acc += (s..m.cols()).map(|c| m[(s, c)]).fold(0.0, f64::max);
                }
            }
            std::hint::black_box(acc);
        });
        let mut csr_sink = 0.0f64;
        let csr_secs = best_secs(rounds, || {
            let mut acc = 0.0;
            for csr in &csrs {
                let out = &mut maxima[..csr.rows()];
                csr.row_maxima_into(out);
                acc += out.iter().sum::<f64>();
            }
            csr_sink = std::hint::black_box(acc);
        });
        assert_eq!(
            dense_sink.to_bits(),
            csr_sink.to_bits(),
            "CSR row maxima diverged at event rate {rate}"
        );
        t.row_owned(vec![
            format!("{rate:.2}"),
            format!("{:.3}", nnz as f64 / slots.max(1) as f64),
            format!("{:.3} ms", dense_secs * 1e3),
            format!("{:.3} ms", csr_secs * 1e3),
            format!("{:.2}x", dense_secs / csr_secs),
        ]);
    }
    println!("{t}");

    // --- Sweep 3: end-to-end serial retrieval throughput vs archive size.
    println!("\n## content-driven retrieval (serial): shots/sec vs archive size\n");
    let translator = QueryTranslator::new(EventKind::ALL.iter().map(|k| k.name()));
    let pattern = translator.compile("goal -> goal").expect("valid");
    let sizes: &[(usize, usize)] = if quick {
        &[(8, 40), (16, 60)]
    } else {
        &[(20, 100), (40, 150), (80, 250)]
    };
    let mut t = Table::new(&["archive", "latency", "shots/sec", "csr videos"]);
    for &(videos, shots_per) in sizes {
        let catalog = skewed_catalog(
            DataConfig {
                videos,
                shots_per_video: shots_per,
                event_rate: 0.08,
                seed: 0xE11 + 11,
            },
            0.005,
        );
        let model = build_hmmm(&catalog, &BuildConfig::default()).expect("non-empty");
        let sparse = model.locals.iter().filter(|l| l.a1_sparse.is_some()).count();
        let cfg = RetrievalConfig {
            threads: Some(1),
            ..RetrievalConfig::content_only()
        };
        let retriever = Retriever::new(&model, &catalog, cfg).expect("consistent");
        let secs = best_secs(rounds, || {
            let (results, _) = retriever.retrieve(&pattern, 10).expect("valid");
            std::hint::black_box(results);
        });
        t.row_owned(vec![
            format!("{videos}×{shots_per}"),
            format!("{:.2} ms", secs * 1e3),
            format!("{:.0}", catalog.shot_count() as f64 / secs),
            format!("{sparse}/{videos}"),
        ]);
    }
    println!("{t}");
}
