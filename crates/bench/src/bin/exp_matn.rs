//! E9 — the MATN query model (Figure 4 top): parse, translate, and render
//! a corpus of temporal pattern queries, including the paper's §3
//! narrative query.

use hmmm_bench::Table;
use hmmm_media::EventKind;
use hmmm_query::{parse_pattern, Matn, QueryTranslator};

const CORPUS: [&str; 8] = [
    "goal",
    "goal -> free_kick",
    // The paper's §3 narrative pattern.
    "free_kick -> goal -> corner_kick -> player_change -> goal",
    "foul ->[3] yellow_card",
    "corner_kick|free_kick -> goal",
    "foul ->[2] yellow_card|red_card ->[5] player_change",
    "goal_kick -> corner_kick ->[4] goal",
    "red_card -> player_change",
];

fn main() {
    println!("E9 / Figure 4 — MATN query models\n");
    let translator = QueryTranslator::new(EventKind::ALL.iter().map(|k| k.name()));

    let mut t = Table::new(&["query", "steps", "states", "arcs", "round-trip"]);
    for text in CORPUS {
        let ast = parse_pattern(text).expect("valid corpus");
        let compiled = translator.translate(&ast).expect("known events");
        let matn = Matn::from_pattern(&ast);
        let round = parse_pattern(&ast.to_string()).expect("canonical form parses");
        t.row_owned(vec![
            text.to_string(),
            compiled.len().to_string(),
            matn.state_count().to_string(),
            matn.arcs().len().to_string(),
            if round == ast { "✓" } else { "✗" }.to_string(),
        ]);
    }
    println!("{t}");

    let narrative = parse_pattern(CORPUS[2]).expect("valid");
    let matn = Matn::from_pattern(&narrative);
    println!("\nthe §3 narrative query as an MATN chain:\n  {matn}\n");
    println!("Graphviz (dot):\n{}", matn.to_dot());

    // Acceptance demonstration.
    println!("acceptance checks:");
    for walk in [
        vec!["free_kick", "goal", "corner_kick", "player_change", "goal"],
        vec!["free_kick", "goal"],
        vec!["goal", "free_kick", "corner_kick", "player_change", "goal"],
    ] {
        println!(
            "  {:?} -> {}",
            walk,
            if matn.accepts(&walk) { "accepted" } else { "rejected" }
        );
    }
}
