//! E13 — the coarse-to-fine frontier: approx candidate cut `C` vs
//! recall@k and cold-query latency on the skewed catalog (PR-8).
//!
//! The two-stage retrieval's `CoarseMode::Approx` traverses only the `C`
//! candidate videos with the highest admissible coarse bounds. Because the
//! candidate order is total, cuts are nested prefixes: recall@k against
//! the exact top-k is deterministically monotone non-decreasing in `C`,
//! and this experiment charts the recall-vs-latency frontier that buys.
//! The `exact` row (no cut) and the single-stage `off` row anchor both
//! ends: `exact` must reach recall 1.00 at a fraction of `off`'s cold
//! latency (the archive-wide bound scan replaced by index lookups).
//!
//! All rows run the cold path — serial, similarity cache off — because
//! that is where the ingest-time index changes the cost model; the cached
//! path already had per-video bounds for free.
//!
//! ```text
//! cargo run --release -p hmmm-bench --bin exp_coarse_sweep
//!     [-- --videos N --shots N --top K --repeats R --quick]
//! ```
//!
//! `--quick` shrinks the fixture and repeats for the CI smoke row.

use hmmm_bench::{skewed_catalog, DataConfig, Table};
use hmmm_core::{
    build_hmmm, BuildConfig, CoarseMode, RankedPattern, RetrievalConfig, Retriever,
};
use hmmm_media::EventKind;
use hmmm_query::QueryTranslator;
use std::time::Instant;

fn arg(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Identity of a ranked pattern for recall accounting.
fn key(p: &RankedPattern) -> (usize, Vec<usize>) {
    (p.video.index(), p.shots.iter().map(|s| s.0).collect())
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let videos: usize = arg("--videos")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 24 } else { 80 });
    let shots: usize = arg("--shots")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 60 } else { 250 });
    let top: usize = arg("--top").and_then(|v| v.parse().ok()).unwrap_or(10);
    let repeats: u32 = arg("--repeats")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 2 } else { 5 });

    println!(
        "E13 — coarse candidate cut vs recall@{top} and cold latency \
         (skewed catalog{})\n",
        if quick { ", quick" } else { "" }
    );
    eprintln!("building {videos} videos × {shots} shots (half weak)…");
    let catalog = skewed_catalog(
        DataConfig {
            videos,
            shots_per_video: shots,
            event_rate: 0.08,
            seed: 0xC0A5,
        },
        0.005,
    );
    let model = build_hmmm(&catalog, &BuildConfig::default()).expect("non-empty");
    let translator = QueryTranslator::new(EventKind::ALL.iter().map(|k| k.name()));
    let pattern = translator.compile("goal -> goal").expect("valid");

    // Cold path: serial, cache off — where the archive-wide bound scan
    // used to live and where the index summaries replace it.
    let base = RetrievalConfig {
        threads: Some(1),
        use_sim_cache: false,
        ..RetrievalConfig::content_only()
    };

    // One measured row: best-of-N latency, averaged work counters, recall
    // against `truth` (empty truth = trivially recall 1).
    let measure = |cfg: RetrievalConfig, truth: &[(usize, Vec<usize>)]| {
        let r = Retriever::new(&model, &catalog, cfg).expect("consistent");
        let mut best_secs = f64::INFINITY;
        let mut results = Vec::new();
        let mut candidates = 0usize;
        let mut bound_evals = 0u64;
        for _ in 0..repeats {
            let start = Instant::now();
            let (res, stats) = r.retrieve(&pattern, top).expect("valid");
            best_secs = best_secs.min(start.elapsed().as_secs_f64());
            candidates = stats.coarse_candidates;
            bound_evals = stats.bound_evaluations;
            results = res;
        }
        let recall = if truth.is_empty() {
            1.0
        } else {
            let hit = results.iter().filter(|p| truth.contains(&key(p))).count();
            hit as f64 / truth.len() as f64
        };
        (best_secs, recall, candidates, bound_evals, results)
    };

    // Reference: the single-stage exact top-k (coarse off).
    let (off_secs, _, _, off_bound_evals, off_results) = measure(base.clone(), &[]);
    let truth: Vec<_> = off_results.iter().map(key).collect();
    println!(
        "single-stage reference: {:.2} ms best-of-{repeats}, {} of top-{top} \
         filled, {off_bound_evals} archive bound evals/query\n",
        off_secs * 1e3,
        truth.len()
    );

    let mut t = Table::new(&[
        "mode",
        "C",
        "recall@k",
        "candidates",
        "bound evals",
        "latency",
        "speedup vs off",
    ]);
    t.row_owned(vec![
        "off".into(),
        "—".into(),
        "1.00".into(),
        "—".into(),
        format!("{off_bound_evals}"),
        format!("{:.3} ms", off_secs * 1e3),
        "1.00x".into(),
    ]);
    let (exact_secs, exact_recall, exact_cands, exact_evals, _) =
        measure(base.clone().with_coarse(CoarseMode::Exact), &truth);
    t.row_owned(vec![
        "exact".into(),
        "∞".into(),
        format!("{exact_recall:.2}"),
        format!("{exact_cands}"),
        format!("{exact_evals}"),
        format!("{:.3} ms", exact_secs * 1e3),
        format!("{:.2}x", off_secs / exact_secs),
    ]);
    assert!(
        (exact_recall - 1.0).abs() < f64::EPSILON,
        "CoarseMode::Exact must reproduce the single-stage ranking exactly"
    );
    let mut prev_recall = 0.0f64;
    for &c in &[4usize, 8, 16, 32] {
        let cfg = RetrievalConfig {
            coarse: CoarseMode::Approx,
            coarse_candidates: c,
            ..base.clone()
        };
        let (secs, recall, cands, evals, _) = measure(cfg, &truth);
        assert!(
            recall >= prev_recall,
            "recall must be monotone in C (dropped {prev_recall} -> {recall} at C={c})"
        );
        prev_recall = recall;
        t.row_owned(vec![
            "approx".into(),
            format!("{c}"),
            format!("{recall:.2}"),
            format!("{cands}"),
            format!("{evals}"),
            format!("{:.3} ms", secs * 1e3),
            format!("{:.2}x", off_secs / secs),
        ]);
    }
    println!("{t}");
    println!(
        "reading: recall@{top} is monotone in C (cuts are nested prefixes of \
         one totally-ordered candidate list); `exact` reaches recall 1.00 with \
         the archive-wide bound scan replaced by index lookups, and small C \
         trades bounded recall for the steepest latency win."
    );
}
