//! Emits `BENCH_retrieval.json` — the machine-readable retrieval perf
//! snapshot tracked across PRs: shots/sec per thread count, speedup vs one
//! thread, and the similarity cache's serial win.
//!
//! Timings come from the same observability layer a live `hmmm query
//! --metrics-json` run uses: each measured configuration attaches an
//! [`InMemoryRecorder`], and the best-of-N wall clock is the minimum of the
//! `retrieve.latency_ns` histogram — so the bench snapshot and production
//! metrics can never disagree about what was measured.
//!
//! ```text
//! cargo run --release -p hmmm-bench --bin bench_report [-- --videos N --shots N --out FILE]
//! ```
//!
//! `--check` additionally runs the exactness smoke for CI: pruned rankings
//! must match unpruned rankings across threads × cache configurations, and
//! the pruned serial run on the skewed fixture must actually prune
//! (nonzero `entries_pruned + videos_skipped_by_bound`) — a silent no-op
//! prune is as much a regression as a wrong one. Exits nonzero on failure.

use hmmm_bench::{skewed_catalog, DataConfig};
use hmmm_core::metrics as m;
use hmmm_core::{
    build_hmmm, BuildConfig, CoarseMode, InMemoryRecorder, MetricsReport, RetrievalConfig,
    Retriever,
};
use hmmm_media::EventKind;
use hmmm_query::QueryTranslator;
use serde::Serialize;

/// One measured configuration.
#[derive(Debug, Serialize)]
struct Sample {
    threads: usize,
    sim_cache: bool,
    /// Exact top-k threshold pruning on (`RetrievalConfig::prune`).
    prune: bool,
    /// Best-of-N wall clock, seconds (min of the latency histogram).
    seconds: f64,
    /// Archive shots scanned per second at that wall clock.
    shots_per_sec: f64,
    /// Wall-clock speedup vs the serial cached run.
    speedup_vs_serial: f64,
    /// Worker busy-time / (fan-out wall × workers) from the last repeat
    /// (1.0 for serial runs).
    thread_utilization: f64,
    /// Cache-served share of hot-path scoring lookups across the repeats
    /// (absent when no scoring lookups happened).
    cache_hit_ratio: Option<f64>,
    /// Per-stage wall time across all repeats, nanoseconds, keyed by span
    /// path (`retrieve/sim_cache_build`, `retrieve/traverse`, …).
    stage_total_ns: Vec<(String, u64)>,
    /// Videos skipped whole by the admissible bound, total across repeats.
    videos_skipped_by_bound: u64,
    /// Beam entries / candidates cut by the threshold, total across repeats.
    entries_pruned: u64,
    /// k-th-best threshold raises, total across repeats.
    threshold_raises: u64,
    /// Panic-isolated videos across repeats — must be 0 in a healthy
    /// bench (no fault plan attached); nonzero flags a real traversal bug.
    videos_failed: u64,
    /// Queries whose deadline expired across repeats — likewise 0 here.
    deadline_expired: u64,
    /// `true` when this sample fanned out over more than one worker on a
    /// single-core host: the wall clock then measures scheduling overhead,
    /// not parallelism, and `speedup_vs_serial` must not be read as one.
    parallelism_unmeasurable: bool,
}

/// One similarity-kernel / bound-refresh micro-measurement: the same work
/// through two layouts, so the snapshot records what the SoA/CSR hot-path
/// representations actually buy on this host.
#[derive(Debug, Serialize)]
struct KernelSample {
    /// What ran: `similarity_scalar`, `similarity_blocked`,
    /// `row_max_dense`, `row_max_csr`.
    variant: &'static str,
    /// Best-of-N wall clock, seconds.
    seconds: f64,
    /// Shot-evaluations (similarity) or matrix rows (row-max) per second.
    units_per_sec: f64,
}

/// One concurrency level of the serving sweep: the full workload
/// generator (Zipf mix, closed loop) against an in-process
/// [`hmmm_serve::QueryServer`], so the snapshot tracks end-to-end serving
/// throughput and tail latency alongside single-query wall clock.
#[derive(Debug, Serialize)]
struct ServeSample {
    /// Concurrent closed-loop clients.
    clients: usize,
    /// Completed queries per wall-clock second.
    qps: f64,
    /// Median end-to-end latency (submit → outcome), milliseconds.
    p50_ms: f64,
    /// 95th-percentile latency, milliseconds.
    p95_ms: f64,
    /// 99th-percentile latency, milliseconds.
    p99_ms: f64,
    /// Requests that produced a ranking.
    completed: usize,
    /// Requests rejected at admission (queue full under this load).
    rejected: usize,
    /// Completed-but-degraded responses (none here: no deadline is set).
    degraded: usize,
}

/// One concurrency level of the network sweep: the same workload shape as
/// [`ServeSample`], but through the TCP front-end over a real loopback
/// socket — so the snapshot separates the wire's cost (framing, JSON,
/// syscalls, connection handling) from the in-process serving numbers.
#[derive(Debug, Serialize)]
struct NetSample {
    /// Concurrent closed-loop clients (one connection each).
    clients: usize,
    /// Completed queries per wall-clock second.
    qps: f64,
    /// Median end-to-end latency (including the wire), milliseconds.
    p50_ms: f64,
    /// 95th-percentile latency, milliseconds.
    p95_ms: f64,
    /// 99th-percentile latency, milliseconds.
    p99_ms: f64,
    /// Requests that produced a ranking.
    completed: usize,
    /// Requests refused with a terminal status.
    rejected: usize,
    /// Wire attempts beyond the first (0 on a clean loopback run).
    retries: u64,
    /// Requests whose outcome arrived on a retry attempt.
    retry_successes: u64,
    /// Requests that exhausted every attempt — must be 0 on a healthy
    /// bench (no fault plan attached).
    give_ups: u64,
}

/// One cold-path (cache-off, serial) measurement of a coarse retrieval
/// mode (`--coarse`): how the two-stage candidate index changes the query
/// whose bound derivation used to be an archive-wide Eq.-14 scan.
#[derive(Debug, Serialize)]
struct CoarseSample {
    /// `off`, `exact`, or `approx` (`RetrievalConfig::coarse`).
    mode: &'static str,
    /// Approx candidate cut `C` (0 for `off`/`exact` — no cut).
    candidate_cut: usize,
    /// Candidate videos the coarse stage admitted, per query.
    candidates_per_query: u64,
    /// Wall time inside the coarse stage (`retrieve/coarse` span), total
    /// nanoseconds across the repeats (0 for `off` — no stage runs).
    coarse_stage_ns: u64,
    /// Summary-table reads spent deriving coarse bounds, per query.
    bound_lookups_per_query: u64,
    /// Archive-wide Eq.-14 bound-scan evaluations, per query — the work
    /// the index replaces (0 whenever a coarse mode is on).
    bound_evaluations_per_query: u64,
    /// Best-of-N wall clock, seconds.
    seconds: f64,
    /// Cold-query speedup vs the `off` row (archive-wide scan baseline).
    speedup_vs_off: f64,
}

/// Crash-safe persistence counters from one save+load round trip of the
/// bench catalog, so `BENCH_retrieval.json` tracks the storage path's
/// health alongside retrieval.
#[derive(Debug, Serialize)]
struct PersistenceSample {
    /// Atomic-writer transient-error retries (0 on a healthy filesystem).
    atomic_write_retries: u64,
    /// `.bak`-generation load fallbacks (nonzero means the freshly written
    /// primary was unreadable — a red flag, not a perf number).
    bak_fallbacks: u64,
    /// Wall clock of the save+load round trip, seconds.
    seconds: f64,
}

/// The whole report.
#[derive(Debug, Serialize)]
struct Report {
    videos: usize,
    shots: usize,
    query: &'static str,
    /// Retrieval mode: content-driven ("similarity-bound") traversal.
    regime: &'static str,
    /// Cores the host reported — `speedup_vs_serial` cannot exceed this.
    host_cpus: usize,
    repeats: u32,
    samples: Vec<Sample>,
    /// Serial speedup from the sim cache alone (uncached / cached seconds).
    cache_speedup_serial: f64,
    /// Serial speedup from the exact top-k prune alone
    /// (unpruned / pruned seconds, both cached).
    prune_speedup_serial: f64,
    /// Crash-safe persistence round trip of the bench catalog.
    persistence: PersistenceSample,
    /// Blocked-vs-scalar similarity and CSR-vs-dense row-max micro-benches.
    kernel: Vec<KernelSample>,
    /// QueryServer throughput/tail-latency sweep across client counts.
    serve: Vec<ServeSample>,
    /// The same sweep through the TCP front-end over loopback.
    net: Vec<NetSample>,
    /// Cold-path coarse-mode measurements (`--coarse`; empty otherwise).
    coarse: Vec<CoarseSample>,
    /// Serial cold-query speedup from the coarse index alone (`off`
    /// seconds / `exact` seconds; absent without `--coarse`).
    coarse_cold_speedup_serial: Option<f64>,
}

fn arg(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Best-of-N wall clock in seconds, read from the latency histogram.
fn best_seconds(report: &MetricsReport) -> f64 {
    report
        .histograms
        .get(m::HIST_RETRIEVE_LATENCY)
        .map(|h| h.min_ns as f64 / 1e9)
        .unwrap_or(f64::INFINITY)
}

fn main() {
    let videos: usize = arg("--videos").and_then(|v| v.parse().ok()).unwrap_or(80);
    let shots: usize = arg("--shots").and_then(|v| v.parse().ok()).unwrap_or(250);
    let out = arg("--out").unwrap_or_else(|| "BENCH_retrieval.json".into());
    // Content-driven traversal ("or similar to e_j", §5 Step 3) is the
    // similarity-bound regime: every video is traversed and every reachable
    // shot is scored by the model, so Eq.-(14) work dominates. That is the
    // path the cache and the fan-out optimize (annotation-first queries are
    // annotation-bound and skip the cache entirely, see DESIGN.md §4). The
    // query is a goal followed by its replay — steps that reuse an event
    // share one cache row, which is where the dense build pays best.
    const QUERY: &str = "goal -> goal";
    const REPEATS: u32 = 5;

    // Skewed archive (half the videos rich in events, half nearly bare):
    // the realistic shape for top-k retrieval, and the one where the
    // whole-video bound skip has something to skip — on a uniform archive
    // every video's upper bound clears the threshold by construction.
    eprintln!("building {videos} videos × {shots} shots (half weak)…");
    let catalog = skewed_catalog(
        DataConfig {
            videos,
            shots_per_video: shots,
            event_rate: 0.08,
            seed: 0xBE7C,
        },
        0.005,
    );
    let model = build_hmmm(&catalog, &BuildConfig::default()).expect("non-empty");
    let translator = QueryTranslator::new(EventKind::ALL.iter().map(|k| k.name()));
    let pattern = translator.compile(QUERY).expect("valid");
    let total_shots = catalog.shot_count();

    let time = |cfg: RetrievalConfig| -> MetricsReport {
        let recorder = InMemoryRecorder::shared();
        let cfg = cfg.with_recorder(recorder.handle());
        let r = Retriever::new(&model, &catalog, cfg).expect("consistent");
        for _ in 0..REPEATS {
            let (results, _) = r.retrieve(&pattern, 10).expect("valid");
            std::hint::black_box(results);
        }
        let mut report = recorder.report();
        hmmm_core::metrics::derive_retrieval_metrics(&mut report);
        report
    };

    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    let sample = |threads: usize,
                  sim_cache: bool,
                  prune: bool,
                  metrics: &MetricsReport,
                  serial_secs: f64| {
        let secs = best_seconds(metrics);
        Sample {
            threads,
            sim_cache,
            prune,
            seconds: secs,
            shots_per_sec: total_shots as f64 / secs,
            speedup_vs_serial: serial_secs / secs,
            thread_utilization: metrics
                .gauges
                .get(m::GAUGE_THREAD_UTILIZATION)
                .copied()
                .unwrap_or(1.0),
            cache_hit_ratio: metrics.derived.get("cache_hit_ratio").copied(),
            stage_total_ns: metrics
                .stages
                .iter()
                .map(|s| (s.path.clone(), s.total_ns))
                .collect(),
            videos_skipped_by_bound: metrics.counter(m::CTR_VIDEOS_SKIPPED_BY_BOUND),
            entries_pruned: metrics.counter(m::CTR_ENTRIES_PRUNED),
            threshold_raises: metrics.counter(m::CTR_THRESHOLD_RAISES),
            videos_failed: metrics.counter(m::CTR_VIDEOS_FAILED),
            deadline_expired: metrics.counter(m::CTR_DEADLINE_EXPIRED),
            parallelism_unmeasurable: threads > 1 && host_cpus == 1,
        }
    };

    let run_coarse = std::env::args().any(|a| a == "--coarse");
    if std::env::args().any(|a| a == "--check") {
        check_pruning_exactness(&model, &catalog, &pattern);
        if run_coarse {
            check_coarse_exactness(&model, &catalog, &pattern);
        }
    }

    // Serial cached runs, pruned (the default) and unpruned, anchor the two
    // single-knob speedups; the thread sweep runs with pruning on because
    // that is the production configuration.
    let serial_cfg = RetrievalConfig {
        threads: Some(1),
        ..RetrievalConfig::content_only()
    };
    let serial_metrics = time(serial_cfg.clone());
    let serial_secs = best_seconds(&serial_metrics);
    let uncached_metrics = time(RetrievalConfig {
        use_sim_cache: false,
        ..serial_cfg.clone()
    });
    let uncached_secs = best_seconds(&uncached_metrics);
    let unpruned_metrics = time(RetrievalConfig {
        prune: false,
        ..serial_cfg
    });
    let unpruned_secs = best_seconds(&unpruned_metrics);

    let mut samples = vec![
        sample(1, false, true, &uncached_metrics, serial_secs),
        sample(1, true, false, &unpruned_metrics, serial_secs),
    ];
    for threads in [1usize, 2, 4, 8] {
        let metrics = if threads == 1 {
            serial_metrics.clone()
        } else {
            time(RetrievalConfig {
                threads: Some(threads),
                ..RetrievalConfig::content_only()
            })
        };
        samples.push(sample(threads, true, true, &metrics, serial_secs));
    }

    // One observed save+load round trip through the crash-safe path: the
    // retry/fallback counters belong in the snapshot so a flaky disk or a
    // storage regression shows up next to the retrieval numbers.
    let persistence = {
        let rec = InMemoryRecorder::shared();
        let opts = hmmm_storage::PersistOptions {
            recorder: rec.handle(),
            ..hmmm_storage::PersistOptions::default()
        };
        let dir = hmmm_storage::TestDir::new("hmmm_bench_persist");
        let path = dir.file("catalog.bin");
        let start = std::time::Instant::now();
        hmmm_storage::save_binary_with(&catalog, &path, &opts).expect("save catalog");
        let back = hmmm_storage::load_binary_with(&path, &opts).expect("load catalog");
        let seconds = start.elapsed().as_secs_f64();
        assert_eq!(back, catalog, "persistence round trip changed the catalog");
        let metrics = rec.report();
        PersistenceSample {
            atomic_write_retries: metrics.counter(m::CTR_ATOMIC_WRITE_RETRIES),
            bak_fallbacks: metrics.counter(m::CTR_BAK_FALLBACKS),
            seconds,
        }
    };

    // Coarse-mode cold-path rows (`--coarse`): the uncached serial query
    // is where the archive-wide bound scan lives, so it is the row the
    // ingest-time index must beat. `off` reuses the uncached measurement
    // above; `exact` and `approx` re-run it with the two-stage path on.
    let mut coarse_cold_speedup_serial = None;
    let coarse = if run_coarse {
        let cold_cfg = RetrievalConfig {
            use_sim_cache: false,
            threads: Some(1),
            ..RetrievalConfig::content_only()
        };
        let coarse_row = |mode: CoarseMode, cut: usize, metrics: &MetricsReport| {
            let secs = best_seconds(metrics);
            CoarseSample {
                mode: mode.as_str(),
                candidate_cut: cut,
                candidates_per_query: metrics.counter(m::CTR_COARSE_CANDIDATES)
                    / u64::from(REPEATS),
                coarse_stage_ns: metrics
                    .stages
                    .iter()
                    .find(|s| s.path == m::SPAN_COARSE)
                    .map(|s| s.total_ns)
                    .unwrap_or(0),
                bound_lookups_per_query: metrics.counter(m::CTR_COARSE_LOOKUPS)
                    / u64::from(REPEATS),
                bound_evaluations_per_query: metrics.counter(m::CTR_BOUND_EVALS)
                    / u64::from(REPEATS),
                seconds: secs,
                speedup_vs_off: uncached_secs / secs,
            }
        };
        eprintln!("coarse cold-path rows…");
        let exact_metrics = time(cold_cfg.clone().with_coarse(CoarseMode::Exact));
        let approx_metrics = time(RetrievalConfig {
            coarse: CoarseMode::Approx,
            coarse_candidates: 16,
            ..cold_cfg
        });
        let exact_row = coarse_row(CoarseMode::Exact, 0, &exact_metrics);
        coarse_cold_speedup_serial = Some(exact_row.speedup_vs_off);
        vec![
            coarse_row(CoarseMode::Off, 0, &uncached_metrics),
            exact_row,
            coarse_row(CoarseMode::Approx, 16, &approx_metrics),
        ]
    } else {
        Vec::new()
    };

    let kernel = kernel_microbench(&model);
    let serve = serve_sweep(&model, &catalog);
    let net = net_sweep(&model, &catalog);
    let report = Report {
        videos,
        shots: total_shots,
        query: QUERY,
        regime: "content_only",
        host_cpus,
        repeats: REPEATS,
        cache_speedup_serial: uncached_secs / serial_secs,
        prune_speedup_serial: unpruned_secs / serial_secs,
        persistence,
        kernel,
        serve,
        net,
        samples,
        coarse,
        coarse_cold_speedup_serial,
    };

    for s in &report.samples {
        println!(
            "threads {} cache {:<3} prune {:<3}: {:>8.2} ms, {:>12.0} shots/s, {:.2}x vs serial, \
             util {:.2}, {} bound-skips, {} pruned",
            s.threads,
            if s.sim_cache { "on" } else { "off" },
            if s.prune { "on" } else { "off" },
            s.seconds * 1e3,
            s.shots_per_sec,
            s.speedup_vs_serial,
            s.thread_utilization,
            s.videos_skipped_by_bound,
            s.entries_pruned,
        );
    }
    for k in &report.kernel {
        println!(
            "kernel {:<20}: {:>8.3} ms, {:>14.0} units/s",
            k.variant,
            k.seconds * 1e3,
            k.units_per_sec
        );
    }
    for s in &report.serve {
        println!(
            "serve {:>2} clients: {:>8.1} qps, p50 {:>7.3} ms, p95 {:>7.3} ms, \
             p99 {:>7.3} ms ({} completed, {} rejected)",
            s.clients, s.qps, s.p50_ms, s.p95_ms, s.p99_ms, s.completed, s.rejected,
        );
    }
    for s in &report.net {
        println!(
            "net   {:>2} clients: {:>8.1} qps, p50 {:>7.3} ms, p95 {:>7.3} ms, \
             p99 {:>7.3} ms ({} completed, {} rejected, {} retries, {} give-ups)",
            s.clients, s.qps, s.p50_ms, s.p95_ms, s.p99_ms, s.completed, s.rejected, s.retries,
            s.give_ups,
        );
    }
    println!(
        "sim cache alone (serial): {:.2}x",
        report.cache_speedup_serial
    );
    println!(
        "top-k prune alone (serial): {:.2}x",
        report.prune_speedup_serial
    );
    for s in &report.coarse {
        println!(
            "coarse {:<6}: {:>8.2} ms, {:>5} candidates/query, stage {:>8} ns, \
             {:>6} lookups/query, {:>8} bound-evals/query, {:.2}x vs off",
            s.mode,
            s.seconds * 1e3,
            s.candidates_per_query,
            s.coarse_stage_ns,
            s.bound_lookups_per_query,
            s.bound_evaluations_per_query,
            s.speedup_vs_off,
        );
    }
    if let Some(speedup) = report.coarse_cold_speedup_serial {
        println!("coarse index alone (cold serial): {speedup:.2}x");
    }
    println!(
        "persistence round trip: {:.2} ms, {} retries, {} bak fallbacks",
        report.persistence.seconds * 1e3,
        report.persistence.atomic_write_retries,
        report.persistence.bak_fallbacks,
    );
    println!(
        "host cpus: {host_cpus}{}",
        if host_cpus == 1 {
            " — single-core host: thread fan-out cannot speed up here; \
             speedups reflect scheduling overhead only"
        } else {
            ""
        }
    );

    let json = serde_json::to_string_pretty(&report).expect("serializable");
    std::fs::write(&out, json + "\n").expect("write report");
    println!("wrote {out}");
}

/// Serving throughput sweep: the same model behind an in-process
/// `QueryServer` (4 workers, bounded queue), loaded by 1/2/4/8 closed-loop
/// clients running the seeded Zipf workload with zero think time and no
/// feedback — pure read throughput, so QPS and the latency tail are
/// attributable to the serving layer and host parallelism alone.
fn serve_sweep(model: &hmmm_core::Hmmm, catalog: &hmmm_storage::Catalog) -> Vec<ServeSample> {
    use hmmm_serve::{ModelSnapshot, QueryServer, ServerConfig, WorkloadConfig};
    const REQUESTS_PER_CLIENT: usize = 24;
    let mut out = Vec::new();
    for clients in [1usize, 2, 4, 8] {
        eprintln!("serving sweep: {clients} clients…");
        let snapshot = ModelSnapshot::from_model(model.clone(), catalog.clone())
            .expect("bench model audits clean");
        let server = QueryServer::start(
            snapshot,
            ServerConfig {
                workers: 4,
                queue_capacity: 128,
                ..ServerConfig::default()
            },
        )
        .expect("valid server config");
        let report = hmmm_serve::run_workload(
            &server,
            &WorkloadConfig {
                clients,
                requests_per_client: REQUESTS_PER_CLIENT,
                mean_interarrival: std::time::Duration::ZERO,
                feedback_probability: 0.0,
                seed: 0xBE7C,
                ..WorkloadConfig::default()
            },
        )
        .expect("workload runs");
        server.join();
        let rejected: usize = report.rejections.values().sum();
        out.push(ServeSample {
            clients,
            qps: report.qps,
            p50_ms: report.p50_ms,
            p95_ms: report.p95_ms,
            p99_ms: report.p99_ms,
            completed: report.completed,
            rejected,
            degraded: report.degraded,
        });
    }
    out
}

/// The serving sweep again, but through the TCP front-end on a loopback
/// socket: same model, same Zipf workload, real framing + JSON + syscalls
/// in the path. Retries and give-ups must stay 0 — no fault plan is
/// attached, so any nonzero value flags a front-end bug, not load.
fn net_sweep(model: &hmmm_core::Hmmm, catalog: &hmmm_storage::Catalog) -> Vec<NetSample> {
    use hmmm_serve::{
        ModelSnapshot, NetConfig, NetServer, NetWorkloadConfig, QueryServer, ServerConfig,
    };
    const REQUESTS_PER_CLIENT: usize = 24;
    let mut out = Vec::new();
    for clients in [1usize, 4] {
        eprintln!("network sweep: {clients} clients…");
        let snapshot = ModelSnapshot::from_model(model.clone(), catalog.clone())
            .expect("bench model audits clean");
        let server = QueryServer::start(
            snapshot,
            ServerConfig {
                workers: 4,
                queue_capacity: 128,
                ..ServerConfig::default()
            },
        )
        .expect("valid server config");
        let net = NetServer::start(
            std::sync::Arc::new(server),
            "127.0.0.1:0",
            NetConfig::default(),
        )
        .expect("front-end binds loopback");
        let report = hmmm_serve::run_net_workload(
            net.local_addr(),
            &NetWorkloadConfig {
                clients,
                requests_per_client: REQUESTS_PER_CLIENT,
                mean_interarrival: std::time::Duration::ZERO,
                seed: 0xBE7C,
                ..NetWorkloadConfig::default()
            },
        )
        .expect("network workload runs");
        net.shutdown();
        let rejected: usize = report.rejections.values().sum();
        out.push(NetSample {
            clients,
            qps: report.qps,
            p50_ms: report.p50_ms,
            p95_ms: report.p95_ms,
            p99_ms: report.p99_ms,
            completed: report.completed,
            rejected,
            retries: report.retries,
            retry_successes: report.retry_successes,
            give_ups: report.give_ups,
        });
    }
    out
}

/// Times the Eq.-14 similarity of every event against every archive shot
/// through the scalar reference and the blocked SoA kernel, and the
/// forward row-max refresh through the dense fold and the CSR view —
/// best-of-3, with a bitwise cross-check so a layout bug can never ship
/// inside a perf snapshot.
fn kernel_microbench(model: &hmmm_core::Hmmm) -> Vec<KernelSample> {
    use hmmm_core::sim;
    const ROUNDS: usize = 3;
    let shots = model.shot_count();
    let events = hmmm_media::EventKind::COUNT;
    let evals = (shots * events) as f64;

    let best = |f: &mut dyn FnMut()| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..ROUNDS {
            let start = std::time::Instant::now();
            f();
            best = best.min(start.elapsed().as_secs_f64());
        }
        best
    };

    let mut scalar_sink = 0.0f64;
    let scalar_secs = best(&mut || {
        let mut acc = 0.0;
        for e in 0..events {
            // Per-event partial, folded in shot order — the exact
            // accumulation sequence of the blocked run's row sum, so the
            // two sinks can be compared bitwise below.
            let mut part = 0.0;
            for s in 0..shots {
                part += sim::similarity(model, s, e);
            }
            acc += part;
        }
        scalar_sink = std::hint::black_box(acc);
    });

    let mut block = Vec::new();
    let mut blocked_sink = 0.0f64;
    let blocked_secs = best(&mut || {
        let mut acc = 0.0;
        for e in 0..events {
            let row = sim::similarity_block(model, 0..shots, e, &mut block);
            acc += row.iter().sum::<f64>();
        }
        blocked_sink = std::hint::black_box(acc);
    });
    assert_eq!(
        scalar_sink.to_bits(),
        blocked_sink.to_bits(),
        "blocked kernel diverged from the scalar reference"
    );

    let rows: usize = model.locals.iter().map(|l| l.a1.rows()).sum();
    let mut maxima = vec![0.0f64; model.locals.iter().map(|l| l.a1.rows()).max().unwrap_or(0)];
    let mut dense_sink = 0.0f64;
    let dense_secs = best(&mut || {
        let mut acc = 0.0;
        for local in &model.locals {
            let m = local.a1.as_matrix();
            // Per-video partial, folded in row order — the same
            // accumulation sequence as the CSR run's per-view row-maxima
            // sum, so the two sinks compare bitwise below.
            let mut part = 0.0;
            for s in 0..m.rows() {
                part += (s..m.cols()).map(|t| m[(s, t)]).fold(0.0, f64::max);
            }
            acc += part;
        }
        dense_sink = std::hint::black_box(acc);
    });
    let csrs: Vec<hmmm_matrix::ForwardCsr> = model
        .locals
        .iter()
        .map(|l| hmmm_matrix::ForwardCsr::from_forward(l.a1.as_matrix()))
        .collect();
    let mut csr_sink = 0.0f64;
    let csr_secs = best(&mut || {
        let mut acc = 0.0;
        for csr in &csrs {
            let out = &mut maxima[..csr.rows()];
            csr.row_maxima_into(out);
            acc += out.iter().sum::<f64>();
        }
        csr_sink = std::hint::black_box(acc);
    });
    assert_eq!(
        dense_sink.to_bits(),
        csr_sink.to_bits(),
        "CSR row maxima diverged from the dense fold"
    );

    vec![
        KernelSample {
            variant: "similarity_scalar",
            seconds: scalar_secs,
            units_per_sec: evals / scalar_secs,
        },
        KernelSample {
            variant: "similarity_blocked",
            seconds: blocked_secs,
            units_per_sec: evals / blocked_secs,
        },
        KernelSample {
            variant: "row_max_dense",
            seconds: dense_secs,
            units_per_sec: rows as f64 / dense_secs,
        },
        KernelSample {
            variant: "row_max_csr",
            seconds: csr_secs,
            units_per_sec: rows as f64 / csr_secs,
        },
    ]
}

/// CI smoke for the exact top-k prune: pruned rankings must equal unpruned
/// rankings on this fixture across threads × cache × regime, and the
/// serial pruned run must show nonzero pruning work. Aborts the process
/// with exit code 1 on any violation.
fn check_pruning_exactness(
    model: &hmmm_core::Hmmm,
    catalog: &hmmm_storage::Catalog,
    pattern: &hmmm_query::CompiledPattern,
) {
    eprintln!("checking pruned vs unpruned rankings…");
    let mut failures = 0usize;
    for content_only in [true, false] {
        for (threads, cache) in [(1usize, true), (1, false), (4, true)] {
            let base = if content_only {
                RetrievalConfig::content_only()
            } else {
                RetrievalConfig::default()
            };
            let pruned_cfg = RetrievalConfig {
                threads: Some(threads),
                use_sim_cache: cache,
                prune: true,
                ..base
            };
            let unpruned_cfg = RetrievalConfig {
                prune: false,
                ..pruned_cfg.clone()
            };
            let (pruned, p_stats) = Retriever::new(model, catalog, pruned_cfg)
                .expect("consistent")
                .retrieve(pattern, 10)
                .expect("valid");
            let (unpruned, _) = Retriever::new(model, catalog, unpruned_cfg)
                .expect("consistent")
                .retrieve(pattern, 10)
                .expect("valid");
            if pruned != unpruned {
                eprintln!(
                    "FAIL: pruned ranking differs (content_only={content_only} \
                     threads={threads} cache={cache})"
                );
                failures += 1;
            }
            // The skewed fixture is adversarial by construction: far more
            // candidates than k and half the videos nearly bare of events,
            // so a healthy prune must fire somewhere.
            if content_only && threads == 1 && cache {
                let work = p_stats.entries_pruned + p_stats.videos_skipped_by_bound as u64;
                if work == 0 {
                    eprintln!("FAIL: serial pruned run pruned nothing (prune is a no-op?)");
                    failures += 1;
                } else {
                    eprintln!(
                        "  serial prune work: {} entries, {} video skips, {} raises",
                        p_stats.entries_pruned,
                        p_stats.videos_skipped_by_bound,
                        p_stats.threshold_raises
                    );
                }
            }
        }
    }
    if failures > 0 {
        eprintln!("pruning exactness check FAILED ({failures} violations)");
        std::process::exit(1);
    }
    eprintln!("pruning exactness check passed");
}

/// CI smoke for the two-stage path (`--coarse --check`): `CoarseMode::
/// Exact` rankings must be byte-identical to single-stage rankings on this
/// fixture across threads × cache × prune × regime, and the exact cold run
/// must show the archive-wide bound scan gone (zero `bound_evaluations`,
/// nonzero coarse lookups). Aborts the process with exit code 1 on any
/// violation.
fn check_coarse_exactness(
    model: &hmmm_core::Hmmm,
    catalog: &hmmm_storage::Catalog,
    pattern: &hmmm_query::CompiledPattern,
) {
    eprintln!("checking coarse-exact vs single-stage rankings…");
    let mut failures = 0usize;
    for content_only in [true, false] {
        for (threads, cache, prune) in
            [(1usize, true, true), (1, false, true), (1, false, false), (4, true, true)]
        {
            let base = if content_only {
                RetrievalConfig::content_only()
            } else {
                RetrievalConfig::default()
            };
            let off_cfg = RetrievalConfig {
                threads: Some(threads),
                use_sim_cache: cache,
                prune,
                ..base
            };
            let exact_cfg = off_cfg.clone().with_coarse(CoarseMode::Exact);
            let (off, _) = Retriever::new(model, catalog, off_cfg)
                .expect("consistent")
                .retrieve(pattern, 10)
                .expect("valid");
            let (exact, x_stats) = Retriever::new(model, catalog, exact_cfg)
                .expect("consistent")
                .retrieve(pattern, 10)
                .expect("valid");
            if off != exact {
                eprintln!(
                    "FAIL: coarse-exact ranking differs (content_only={content_only} \
                     threads={threads} cache={cache} prune={prune})"
                );
                failures += 1;
            }
            if x_stats.bound_evaluations != 0 {
                eprintln!(
                    "FAIL: coarse run still paid {} archive bound evaluations \
                     (content_only={content_only} threads={threads} cache={cache} \
                     prune={prune})",
                    x_stats.bound_evaluations
                );
                failures += 1;
            }
            if content_only && threads == 1 && !cache && prune {
                if x_stats.coarse_bound_lookups == 0 {
                    eprintln!("FAIL: cold coarse run did zero bound lookups (stage off?)");
                    failures += 1;
                } else {
                    eprintln!(
                        "  cold coarse work: {} candidates, {} lookups, {} zero-ub skips",
                        x_stats.coarse_candidates,
                        x_stats.coarse_bound_lookups,
                        x_stats.coarse_skipped_zero_ub
                    );
                }
            }
        }
    }
    if failures > 0 {
        eprintln!("coarse exactness check FAILED ({failures} violations)");
        std::process::exit(1);
    }
    eprintln!("coarse exactness check passed");
}
