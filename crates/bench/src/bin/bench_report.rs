//! Emits `BENCH_retrieval.json` — the machine-readable retrieval perf
//! snapshot tracked across PRs: shots/sec per thread count, speedup vs one
//! thread, and the similarity cache's serial win.
//!
//! Timings come from the same observability layer a live `hmmm query
//! --metrics-json` run uses: each measured configuration attaches an
//! [`InMemoryRecorder`], and the best-of-N wall clock is the minimum of the
//! `retrieve.latency_ns` histogram — so the bench snapshot and production
//! metrics can never disagree about what was measured.
//!
//! ```text
//! cargo run --release -p hmmm-bench --bin bench_report [-- --videos N --shots N --out FILE]
//! ```

use hmmm_bench::{standard_catalog, DataConfig};
use hmmm_core::metrics as m;
use hmmm_core::{
    build_hmmm, BuildConfig, InMemoryRecorder, MetricsReport, RetrievalConfig, Retriever,
};
use hmmm_media::EventKind;
use hmmm_query::QueryTranslator;
use serde::Serialize;

/// One measured configuration.
#[derive(Debug, Serialize)]
struct Sample {
    threads: usize,
    sim_cache: bool,
    /// Best-of-N wall clock, seconds (min of the latency histogram).
    seconds: f64,
    /// Archive shots scanned per second at that wall clock.
    shots_per_sec: f64,
    /// Wall-clock speedup vs the serial cached run.
    speedup_vs_serial: f64,
    /// Worker busy-time / (fan-out wall × workers) from the last repeat
    /// (1.0 for serial runs).
    thread_utilization: f64,
    /// Cache-served share of hot-path scoring lookups across the repeats
    /// (absent when no scoring lookups happened).
    cache_hit_ratio: Option<f64>,
    /// Per-stage wall time across all repeats, nanoseconds, keyed by span
    /// path (`retrieve/sim_cache_build`, `retrieve/traverse`, …).
    stage_total_ns: Vec<(String, u64)>,
}

/// The whole report.
#[derive(Debug, Serialize)]
struct Report {
    videos: usize,
    shots: usize,
    query: &'static str,
    /// Retrieval mode: content-driven ("similarity-bound") traversal.
    regime: &'static str,
    /// Cores the host reported — `speedup_vs_serial` cannot exceed this.
    host_cpus: usize,
    repeats: u32,
    samples: Vec<Sample>,
    /// Serial speedup from the sim cache alone (uncached / cached seconds).
    cache_speedup_serial: f64,
}

fn arg(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Best-of-N wall clock in seconds, read from the latency histogram.
fn best_seconds(report: &MetricsReport) -> f64 {
    report
        .histograms
        .get(m::HIST_RETRIEVE_LATENCY)
        .map(|h| h.min_ns as f64 / 1e9)
        .unwrap_or(f64::INFINITY)
}

fn main() {
    let videos: usize = arg("--videos").and_then(|v| v.parse().ok()).unwrap_or(80);
    let shots: usize = arg("--shots").and_then(|v| v.parse().ok()).unwrap_or(250);
    let out = arg("--out").unwrap_or_else(|| "BENCH_retrieval.json".into());
    // Content-driven traversal ("or similar to e_j", §5 Step 3) is the
    // similarity-bound regime: every video is traversed and every reachable
    // shot is scored by the model, so Eq.-(14) work dominates. That is the
    // path the cache and the fan-out optimize (annotation-first queries are
    // annotation-bound and skip the cache entirely, see DESIGN.md §4). The
    // query is a goal followed by its replay — steps that reuse an event
    // share one cache row, which is where the dense build pays best.
    const QUERY: &str = "goal -> goal";
    const REPEATS: u32 = 5;

    eprintln!("building {videos} videos × {shots} shots…");
    let (_, catalog) = standard_catalog(DataConfig {
        videos,
        shots_per_video: shots,
        event_rate: 0.08,
        seed: 0xBE7C,
    });
    let model = build_hmmm(&catalog, &BuildConfig::default()).expect("non-empty");
    let translator = QueryTranslator::new(EventKind::ALL.iter().map(|k| k.name()));
    let pattern = translator.compile(QUERY).expect("valid");
    let total_shots = catalog.shot_count();

    let time = |cfg: RetrievalConfig| -> MetricsReport {
        let recorder = InMemoryRecorder::shared();
        let cfg = cfg.with_recorder(recorder.handle());
        let r = Retriever::new(&model, &catalog, cfg).expect("consistent");
        for _ in 0..REPEATS {
            let (results, _) = r.retrieve(&pattern, 10).expect("valid");
            std::hint::black_box(results);
        }
        let mut report = recorder.report();
        hmmm_core::metrics::derive_retrieval_metrics(&mut report);
        report
    };

    let sample = |threads: usize, sim_cache: bool, metrics: &MetricsReport, serial_secs: f64| {
        let secs = best_seconds(metrics);
        Sample {
            threads,
            sim_cache,
            seconds: secs,
            shots_per_sec: total_shots as f64 / secs,
            speedup_vs_serial: serial_secs / secs,
            thread_utilization: metrics
                .gauges
                .get(m::GAUGE_THREAD_UTILIZATION)
                .copied()
                .unwrap_or(1.0),
            cache_hit_ratio: metrics.derived.get("cache_hit_ratio").copied(),
            stage_total_ns: metrics
                .stages
                .iter()
                .map(|s| (s.path.clone(), s.total_ns))
                .collect(),
        }
    };

    let serial_cfg = RetrievalConfig {
        threads: Some(1),
        ..RetrievalConfig::content_only()
    };
    let serial_metrics = time(serial_cfg.clone());
    let serial_secs = best_seconds(&serial_metrics);
    let uncached_metrics = time(RetrievalConfig {
        use_sim_cache: false,
        ..serial_cfg
    });
    let uncached_secs = best_seconds(&uncached_metrics);

    let mut samples = vec![sample(1, false, &uncached_metrics, serial_secs)];
    for threads in [1usize, 2, 4, 8] {
        let metrics = if threads == 1 {
            serial_metrics.clone()
        } else {
            time(RetrievalConfig {
                threads: Some(threads),
                ..RetrievalConfig::content_only()
            })
        };
        samples.push(sample(threads, true, &metrics, serial_secs));
    }

    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let report = Report {
        videos,
        shots: total_shots,
        query: QUERY,
        regime: "content_only",
        host_cpus,
        repeats: REPEATS,
        cache_speedup_serial: uncached_secs / serial_secs,
        samples,
    };

    for s in &report.samples {
        println!(
            "threads {} cache {:<3}: {:>8.2} ms, {:>12.0} shots/s, {:.2}x vs serial, util {:.2}",
            s.threads,
            if s.sim_cache { "on" } else { "off" },
            s.seconds * 1e3,
            s.shots_per_sec,
            s.speedup_vs_serial,
            s.thread_utilization,
        );
    }
    println!(
        "sim cache alone (serial): {:.2}x",
        report.cache_speedup_serial
    );
    println!(
        "host cpus: {host_cpus}{}",
        if host_cpus == 1 {
            " — single-core host: thread fan-out cannot speed up here; \
             speedups reflect scheduling overhead only"
        } else {
            ""
        }
    );

    let json = serde_json::to_string_pretty(&report).expect("serializable");
    std::fs::write(&out, json + "\n").expect("write report");
    println!("wrote {out}");
}
