//! E4 — the Figure-4/5 showcase query: "a goal shot followed by a free
//! kick", on the paper-scale archive. The paper displays 8 ranked patterns
//! (16 shots); this run reports the same artifact shape for our archive.

use hmmm_bench::{mean_reciprocal_rank, precision_at_k, standard_catalog, DataConfig, Table};
use hmmm_core::{build_hmmm, BuildConfig, RetrievalConfig, Retriever};
use hmmm_media::EventKind;
use hmmm_query::{parse_pattern, Matn, QueryTranslator};
use std::time::Instant;

fn main() {
    println!("E4 / Figure 4 — temporal pattern query 'goal -> free_kick'\n");

    // `--threads N`: 0 = all cores (default), 1 = serial, n = n workers.
    let args: Vec<String> = std::env::args().collect();
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .and_then(|t| if t == 0 { None } else { Some(t) });

    let (_, catalog) = standard_catalog(DataConfig::paper_scale());
    let model = build_hmmm(&catalog, &BuildConfig::default()).expect("non-empty");
    let translator = QueryTranslator::new(EventKind::ALL.iter().map(|k| k.name()));

    // The MATN view (Figure 4 top).
    let ast = parse_pattern("goal -> free_kick").expect("valid");
    println!("MATN query model: {}\n", Matn::from_pattern(&ast));

    let pattern = translator.translate(&ast).expect("known events");
    let config = RetrievalConfig {
        threads,
        ..RetrievalConfig::default()
    };
    let retriever = Retriever::new(&model, &catalog, config).expect("consistent");
    let t = Instant::now();
    let (results, stats) = retriever.retrieve(&pattern, 8).expect("valid");
    let elapsed = t.elapsed();

    let mut table = Table::new(&["rank", "video", "shots", "events (truth)", "score"]);
    for (rank, r) in results.iter().enumerate() {
        let shots: Vec<String> = r.shots.iter().map(|s| s.to_string()).collect();
        let truth: Vec<String> = r
            .shots
            .iter()
            .map(|&id| {
                let evs: Vec<&str> = catalog
                    .shot(id)
                    .expect("valid")
                    .events
                    .iter()
                    .map(|e| e.name())
                    .collect();
                evs.join("+")
            })
            .collect();
        table.row_owned(vec![
            rank.to_string(),
            format!("v{}", r.video.index()),
            shots.join("→"),
            truth.join(" → "),
            format!("{:.5}", r.score),
        ]);
    }
    println!("{table}");

    let distinct_shots: std::collections::HashSet<_> =
        results.iter().flat_map(|r| r.shots.iter().copied()).collect();
    let p = precision_at_k(&catalog, &pattern, &results, 8).unwrap_or(0.0);
    let mrr = mean_reciprocal_rank(&catalog, &pattern, &results);

    println!("paper:    8 patterns retrieved (16 shots displayed)");
    println!(
        "measured: {} patterns retrieved ({} distinct shots), precision@8 {:.2}, MRR {:.2}",
        results.len(),
        distinct_shots.len(),
        p,
        mrr
    );
    println!(
        "          retrieval in {elapsed:.2?}; {} sim evals; {}/{} videos visited ({} skipped by B2 check)",
        stats.total_sim_evaluations(),
        stats.videos_visited,
        catalog.video_count(),
        stats.videos_skipped
    );
}
