//! E12 (network half) — the seeded fault-matrix sweep of the TCP
//! front-end: each scenario runs the closed-loop network workload against
//! a live loopback server with one fault plan armed (client-side or
//! server-side), then asserts the robustness contract end to end:
//!
//! * the server never panics and never leaks a connection past drain
//!   (`NetServer::shutdown` joins every handler thread — a panicked or
//!   wedged connection fails the run right there);
//! * every client request ends in exactly one of: a response, a mapped
//!   terminal rejection status, or a connection error followed by a
//!   successful retry / re-issue (`give_ups == 0`, and completions plus
//!   rejections account for every submitted request);
//! * after the plan has fired, a fresh probe connection is served
//!   normally — faults are scoped to their target connections.
//!
//! ```text
//! cargo run --release -p hmmm-bench --bin exp_net_faults [-- --quick]
//! ```

use hmmm_bench::{skewed_catalog, DataConfig, Table};
use hmmm_core::{build_hmmm, BuildConfig, FaultHandle, FaultPlan, RecorderHandle};
use hmmm_serve::client::{NetClient, RetryPolicy};
use hmmm_serve::{
    ModelSnapshot, NetConfig, NetLoadReport, NetServer, NetWorkloadConfig, QueryServer,
    ServerConfig,
};
use std::sync::Arc;
use std::time::Duration;

/// One cell of the fault matrix.
struct Scenario {
    name: &'static str,
    /// Plan armed on the server's accepted streams.
    server_plan: Option<FaultPlan>,
    /// Plan armed on the clients' outbound connections.
    client_plan: Option<FaultPlan>,
    /// Retry successes the plan must force (0 = none expected).
    min_retry_successes: u64,
    /// Mid-response failures the plan must force (each implies one
    /// re-issued request).
    min_mid_response: u64,
    /// Terminal rejections the plan must force (e.g. a corrupted length
    /// prefix surfacing as one `bad frame` status).
    min_rejections: usize,
}

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "clean",
            server_plan: None,
            client_plan: None,
            min_retry_successes: 0,
            min_mid_response: 0,
            min_rejections: 0,
        },
        Scenario {
            // The first client connection's request write tears at byte 0:
            // the server saw nothing, so the retry (fresh connection, next
            // ticket, off-plan) must recover the request.
            name: "torn-request (client)",
            server_plan: None,
            client_plan: Some(FaultPlan {
                net_fault_connections: vec![0],
                net_tear_write_at: Some(0),
                ..FaultPlan::default()
            }),
            min_retry_successes: 1,
            min_mid_response: 0,
            min_rejections: 0,
        },
        Scenario {
            // Byte 5 is the length prefix's high byte: XOR'd, the frame
            // claims an over-cap length and the server must refuse with
            // `bad frame` and close — one terminal rejection, no retry.
            name: "corrupt length prefix (client)",
            server_plan: None,
            client_plan: Some(FaultPlan {
                net_fault_connections: vec![0],
                net_corrupt_byte_at: Some(5),
                ..FaultPlan::default()
            }),
            min_retry_successes: 0,
            min_mid_response: 0,
            min_rejections: 1,
        },
        Scenario {
            // The server's reads on two connections stall briefly — slow
            // clients below the shed threshold. Pure latency: every
            // request must still complete with no retries.
            name: "stalled reads (server)",
            server_plan: Some(FaultPlan {
                net_fault_connections: vec![0, 1],
                net_stall_reads: vec![0, 1, 2],
                net_stall_ns: Duration::from_millis(20).as_nanos() as u64,
                ..FaultPlan::default()
            }),
            client_plan: None,
            min_retry_successes: 0,
            min_mid_response: 0,
            min_rejections: 0,
        },
        Scenario {
            // The first served connection's response write tears inside
            // the frame header: the client holds response bytes, so the
            // failure surfaces as a mid-response error (never auto-retried)
            // and the workload re-issues the idempotent query once.
            name: "torn response (server)",
            server_plan: Some(FaultPlan {
                net_fault_connections: vec![0],
                net_tear_write_at: Some(3),
                ..FaultPlan::default()
            }),
            client_plan: None,
            min_retry_successes: 0,
            min_mid_response: 1,
            min_rejections: 0,
        },
    ]
}

fn arg_present(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn run_scenario(
    scenario: &Scenario,
    snapshot: ModelSnapshot,
    clients: usize,
    requests: usize,
) -> NetLoadReport {
    let server = QueryServer::start(
        snapshot,
        ServerConfig {
            workers: 2,
            queue_capacity: 64,
            ..ServerConfig::default()
        },
    )
    .expect("valid server config");
    let net = NetServer::start(
        Arc::new(server),
        "127.0.0.1:0",
        NetConfig {
            frame_timeout: Duration::from_millis(500),
            fault: scenario
                .server_plan
                .clone()
                .map_or_else(FaultHandle::noop, FaultHandle::from_plan),
            ..NetConfig::default()
        },
    )
    .expect("front-end binds loopback");

    let report = hmmm_serve::run_net_workload(
        net.local_addr(),
        &NetWorkloadConfig {
            clients,
            requests_per_client: requests,
            mean_interarrival: Duration::ZERO,
            seed: 0xFA17,
            fault: scenario
                .client_plan
                .clone()
                .map_or_else(FaultHandle::noop, FaultHandle::from_plan),
            ..NetWorkloadConfig::default()
        },
    )
    .expect("network workload runs");

    // Post-plan probe: a fresh connection must be served normally — the
    // plan's target tickets have long since been drawn.
    let mut probe = NetClient::connect(
        net.local_addr(),
        RetryPolicy::default(),
        FaultHandle::noop(),
        RecorderHandle::noop(),
    );
    let outcome = probe
        .query("free_kick -> goal", 3, None)
        .unwrap_or_else(|e| panic!("[{}] post-plan probe failed: {e}", scenario.name));
    assert!(
        outcome.response().is_some(),
        "[{}] post-plan probe was refused",
        scenario.name
    );

    // Drain accounting: shutdown joins the acceptor and every connection
    // thread — a panicked handler or leaked connection fails here, which
    // is exactly the no-panic / no-leak half of the contract.
    net.shutdown();
    report
}

fn main() {
    let quick = arg_present("--quick");
    let (videos, shots, clients, requests) = if quick { (10, 30, 2, 6) } else { (24, 60, 4, 12) };

    println!("E12 — network fault-matrix sweep ({clients} clients × {requests} requests)\n");
    eprintln!("building {videos} videos × {shots} shots…");
    let catalog = skewed_catalog(
        DataConfig {
            videos,
            shots_per_video: shots,
            event_rate: 0.08,
            seed: 0xDEAD,
        },
        0.005,
    );
    let model = build_hmmm(&catalog, &BuildConfig::default()).expect("non-empty");

    let mut t = Table::new(&[
        "plan",
        "submitted",
        "completed",
        "rejected",
        "retries",
        "retry ok",
        "mid-resp",
        "reissues",
        "give-ups",
    ]);
    for scenario in scenarios() {
        eprintln!("plan: {}…", scenario.name);
        let snapshot = ModelSnapshot::from_model(model.clone(), catalog.clone())
            .expect("model audits clean");
        let report = run_scenario(&scenario, snapshot, clients, requests);

        let rejected: usize = report.rejections.values().sum();
        // Exactly-one-ending accounting: every request completed or was
        // rejected with a mapped status; nothing gave up, nothing
        // vanished. (Mid-response errors are inside `submitted` twice —
        // once failed, once re-issued — and both ends are counted.)
        assert!(
            report.healthy(),
            "[{}] unhealthy run: {} submitted, {} completed, {rejected} rejected, {} give-ups",
            scenario.name,
            report.submitted,
            report.completed,
            report.give_ups,
        );
        assert!(
            report.retry_successes >= scenario.min_retry_successes,
            "[{}] expected ≥{} retry successes, saw {}",
            scenario.name,
            scenario.min_retry_successes,
            report.retry_successes,
        );
        assert!(
            report.mid_response_errors >= scenario.min_mid_response,
            "[{}] expected ≥{} mid-response errors, saw {}",
            scenario.name,
            scenario.min_mid_response,
            report.mid_response_errors,
        );
        assert_eq!(
            report.reissues, report.mid_response_errors,
            "[{}] every mid-response error is re-issued exactly once",
            scenario.name,
        );
        assert!(
            rejected >= scenario.min_rejections,
            "[{}] expected ≥{} rejections, saw {rejected} ({:?})",
            scenario.name,
            scenario.min_rejections,
            report.rejections,
        );

        t.row_owned(vec![
            scenario.name.to_string(),
            report.submitted.to_string(),
            report.completed.to_string(),
            rejected.to_string(),
            report.retries.to_string(),
            report.retry_successes.to_string(),
            report.mid_response_errors.to_string(),
            report.reissues.to_string(),
            report.give_ups.to_string(),
        ]);
    }
    println!("{t}");
    println!(
        "reading: under every plan the server stayed up (post-plan probes \
         served, drains left nothing behind) and every request ended in a \
         response, a mapped rejection, or a recovered retry — zero give-ups."
    );
}
