//! E5 — the computational-cost claim (Figures 2–3): HMMM's guided
//! traversal vs exhaustive scan vs event-index join vs greedy matching,
//! across database sizes and pattern lengths; plus the beam-width ablation.

use hmmm_baselines::{EventIndexRetriever, ExhaustiveConfig, ExhaustiveRetriever, GreedyRetriever};
use hmmm_bench::{standard_catalog, DataConfig, Table};
use hmmm_core::{build_hmmm, BuildConfig, CategoryLevel, RetrievalConfig, Retriever};
use hmmm_media::EventKind;
use hmmm_query::{CompiledPattern, QueryTranslator};
use std::time::Instant;

const QUERIES: [&str; 4] = [
    "goal",
    "goal -> free_kick",
    "free_kick -> goal -> corner_kick",
    "foul -> free_kick -> goal -> player_change",
];

/// `--threads N` from the command line: 0 = all cores, 1 = serial (the
/// default here, so sweeps measure algorithmic cost, not the machine).
fn threads_arg() -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    let t: usize = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    if t == 0 {
        None
    } else {
        Some(t)
    }
}

fn main() {
    println!("E5 / Figures 2–3 — retrieval cost: HMMM vs baselines\n");
    let translator = QueryTranslator::new(EventKind::ALL.iter().map(|k| k.name()));
    let base = RetrievalConfig {
        threads: threads_arg(),
        ..RetrievalConfig::default()
    };

    // --- Sweep 1: database size (shots), fixed 2-event query.
    println!("## cost vs database size (query: 'goal -> free_kick')\n");
    let mut t = Table::new(&[
        "shots", "engine", "latency", "sim evals", "transitions", "candidates",
    ]);
    for &videos in &[5usize, 10, 25, 50, 100] {
        let (_, catalog) = standard_catalog(DataConfig {
            videos,
            shots_per_video: 200,
            event_rate: 0.06,
            seed: 0xE5,
        });
        let model = build_hmmm(&catalog, &BuildConfig::default()).expect("non-empty");
        let pattern = translator.compile("goal -> free_kick").expect("valid");
        run_all(&mut t, &model, &catalog, &pattern, catalog.shot_count(), &base);
    }
    println!("{t}");

    // --- Sweep 2: pattern length, fixed database.
    println!("\n## cost vs pattern length (20 videos × 200 shots)\n");
    let (_, catalog) = standard_catalog(DataConfig {
        videos: 20,
        shots_per_video: 200,
        event_rate: 0.08,
        seed: 0xE5 + 1,
    });
    let model = build_hmmm(&catalog, &BuildConfig::default()).expect("non-empty");
    let mut t = Table::new(&[
        "pattern C", "engine", "latency", "sim evals", "transitions", "candidates",
    ]);
    for q in QUERIES {
        let pattern = translator.compile(q).expect("valid");
        run_all(&mut t, &model, &catalog, &pattern, pattern.len(), &base);
    }
    println!("{t}");

    // --- Sweep 3: worker threads and the similarity cache, fixed database
    // and query — the two knobs of the parallel/cached retrieval path.
    // Content-driven traversal is the similarity-bound regime the cache
    // targets (annotation-first queries never build it).
    println!("\n## cost vs threads / sim cache (20 videos × 200 shots, content-only 'goal -> free_kick')\n");
    let two_step = translator.compile("goal -> free_kick").expect("valid");
    let mut t = Table::new(&["threads", "sim cache", "latency", "sim evals", "top score"]);
    for (threads, cached) in [
        (Some(1), false),
        (Some(1), true),
        (Some(2), true),
        (Some(4), true),
        (None, true),
    ] {
        let cfg = RetrievalConfig {
            threads,
            use_sim_cache: cached,
            ..RetrievalConfig::content_only()
        };
        let r = Retriever::new(&model, &catalog, cfg).expect("consistent");
        let t0 = Instant::now();
        let (results, stats) = r.retrieve(&two_step, 10).expect("valid");
        let dt = t0.elapsed();
        t.row_owned(vec![
            threads.map_or("auto".into(), |n| n.to_string()),
            if cached { "on" } else { "off" }.to_string(),
            format!("{dt:.2?}"),
            stats.total_sim_evaluations().to_string(),
            results
                .first()
                .map_or("—".into(), |r| format!("{:.5}", r.score)),
        ]);
    }
    println!("{t}");

    // --- Sweep 4: exact top-k pruning on/off across threads and the sim
    // cache. Rankings are identical by construction (the prune is exact);
    // the table shows what the admissible bounds buy in raw work.
    println!("\n## cost vs top-k pruning (20 videos × 200 shots, content-only 'goal -> free_kick', top-10)\n");
    let mut t = Table::new(&[
        "prune",
        "threads",
        "sim cache",
        "latency",
        "sim evals",
        "transitions",
        "bound skips",
        "pruned",
        "top score",
    ]);
    for (prune, threads, cached) in [
        (false, Some(1), true),
        (true, Some(1), true),
        (false, Some(1), false),
        (true, Some(1), false),
        (false, Some(4), true),
        (true, Some(4), true),
    ] {
        let cfg = RetrievalConfig {
            threads,
            use_sim_cache: cached,
            prune,
            ..RetrievalConfig::content_only()
        };
        let r = Retriever::new(&model, &catalog, cfg).expect("consistent");
        let t0 = Instant::now();
        let (results, stats) = r.retrieve(&two_step, 10).expect("valid");
        let dt = t0.elapsed();
        t.row_owned(vec![
            if prune { "on" } else { "off" }.to_string(),
            threads.map_or("auto".into(), |n| n.to_string()),
            if cached { "on" } else { "off" }.to_string(),
            format!("{dt:.2?}"),
            stats.total_sim_evaluations().to_string(),
            stats.transitions_examined.to_string(),
            stats.videos_skipped_by_bound.to_string(),
            stats.entries_pruned.to_string(),
            results
                .first()
                .map_or("—".into(), |r| format!("{:.5}", r.score)),
        ]);
    }
    println!("{t}");

    // --- Ablation: beam width.
    println!("\n## beam-width ablation (query: 'free_kick -> goal -> corner_kick')\n");
    let pattern = translator
        .compile("free_kick -> goal -> corner_kick")
        .expect("valid");
    let mut t = Table::new(&["beam", "latency", "sim evals", "top score"]);
    for beam in [1usize, 2, 3, 5, 8, 16] {
        let cfg = RetrievalConfig {
            beam_width: beam,
            ..base.clone()
        };
        let r = Retriever::new(&model, &catalog, cfg).expect("consistent");
        let t0 = Instant::now();
        let (results, stats) = r.retrieve(&pattern, 10).expect("valid");
        let dt = t0.elapsed();
        t.row_owned(vec![
            beam.to_string(),
            format!("{dt:.2?}"),
            stats.total_sim_evaluations().to_string(),
            results
                .first()
                .map_or("—".into(), |r| format!("{:.5}", r.score)),
        ]);
    }
    println!("{t}");
    println!("expected shape: HMMM sims/latency grow mildly with DB size and C;");
    println!("exhaustive grows fastest; index join is cheap but blind to unannotated shots;");
    println!("beam=1 is the paper's greedy walk, wider beams trade work for score.");
}

fn run_all(
    t: &mut Table,
    model: &hmmm_core::Hmmm,
    catalog: &hmmm_storage::Catalog,
    pattern: &CompiledPattern,
    key: usize,
    base: &RetrievalConfig,
) {
    // HMMM traversal.
    {
        let r = Retriever::new(model, catalog, base.clone()).expect("consistent");
        let t0 = Instant::now();
        let (results, stats) = r.retrieve(pattern, 10).expect("valid");
        push(t, key, "hmmm", t0.elapsed(), &stats, results.len());
    }
    // HMMM with the d=3 category pre-filter.
    {
        let cats = CategoryLevel::build(model, (model.video_count() / 4).max(2))
            .expect("videos exist");
        let r = Retriever::new(model, catalog, base.clone()).expect("consistent");
        let t0 = Instant::now();
        let eligible = cats.eligible_videos(&pattern.steps[0].alternatives);
        let (results, stats) = r
            .retrieve_within(pattern, 10, Some(&eligible))
            .expect("valid");
        push(t, key, "hmmm+categories", t0.elapsed(), &stats, results.len());
    }
    // Exhaustive.
    {
        let r = ExhaustiveRetriever::new(model, catalog, ExhaustiveConfig::default())
            .expect("consistent");
        let t0 = Instant::now();
        let (results, stats) = r.retrieve(pattern, 10).expect("valid");
        push(t, key, "exhaustive", t0.elapsed(), &stats, results.len());
    }
    // Event-index join.
    {
        let r = EventIndexRetriever::new(model, catalog).expect("consistent");
        let t0 = Instant::now();
        let (results, stats) = r.retrieve(pattern, 10).expect("valid");
        push(t, key, "event-index", t0.elapsed(), &stats, results.len());
    }
    // Greedy.
    {
        let r = GreedyRetriever::new(model, catalog).expect("consistent");
        let t0 = Instant::now();
        let (results, stats) = r.retrieve(pattern, 10).expect("valid");
        push(t, key, "greedy", t0.elapsed(), &stats, results.len());
    }
}

fn push(
    t: &mut Table,
    key: usize,
    engine: &str,
    dt: std::time::Duration,
    stats: &hmmm_core::RetrievalStats,
    found: usize,
) {
    t.row_owned(vec![
        key.to_string(),
        engine.to_string(),
        format!("{dt:.2?}"),
        stats.total_sim_evaluations().to_string(),
        stats.transitions_examined.to_string(),
        found.to_string(),
    ]);
}
