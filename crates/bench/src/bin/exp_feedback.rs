//! E7 — feedback learning (Eqs. 1–10).
//!
//! Setting: the model is built over *mined* annotations (the decision-tree
//! pipeline, which makes mistakes), while the simulated user judges
//! retrieved patterns against the *ground truth* — exactly the paper's
//! situation, where imperfect automatic annotation is corrected by
//! relevance feedback. Reported per round:
//!
//! * precision@k against ground truth (should climb / stay up),
//! * the mean rank of ground-truth-relevant results (should fall),
//! * `A_1` / `P_{1,2}` drift (the offline updates at work),
//! * plus the uniform-P12 ablation and a noisy-user variant.

use hmmm_bench::Table;
use hmmm_core::{
    build_hmmm, BuildConfig, FeedbackConfig, FeedbackLog, FeedbackSimulator, Hmmm, OracleConfig,
    PositivePattern, RetrievalConfig, Retriever,
};
use hmmm_media::{ArchiveConfig, EventKind, RenderConfig, SyntheticArchive};
use hmmm_query::QueryTranslator;
use hmmm_storage::Catalog;
use hmmm_suite::{ingest_archive, AnnotationSource};

const ROUNDS: usize = 10;
const TOP_K: usize = 8;
const QUERIES: [&str; 3] = ["free_kick -> goal", "goal -> player_change", "foul -> free_kick"];

struct RoundStats {
    precision: f64,
    mean_relevant_rank: f64,
    a1_drift: f64,
    p12_drift: f64,
}

fn main() {
    println!("E7 — relevance feedback over a *mined* (imperfect) annotation base\n");
    let archive = SyntheticArchive::generate(ArchiveConfig {
        videos: 12,
        shots_per_video: 100,
        event_rate: 0.18,
        double_event_rate: 0.15,
        render: RenderConfig::small(),
        seed: 0xE7,
    });
    // The model sees mined annotations; the user knows the truth.
    let mined = ingest_archive(
        &archive,
        AnnotationSource::Mined {
            train_fraction: 0.25,
        },
    );
    let truth = ingest_archive(&archive, AnnotationSource::GroundTruth);
    println!(
        "mined annotations: {} events vs {} ground-truth events\n",
        mined.total_events(),
        truth.total_events()
    );

    // Variants: (label, oracle noise, relearn P12, content-only retrieval).
    // Content-only mode is where learning has real headroom: candidates are
    // chosen by the model (Π1/A1 × Eq.-14 sim with the learned P12/B1'),
    // not by the mined annotation gate.
    let variants: [(&str, f64, bool, bool); 4] = [
        ("annotated-first", 0.0, true, false),
        ("content-only learner", 0.0, true, true),
        ("content-only, noisy user", 0.2, true, true),
        ("content-only, uniform P12", 0.0, false, true),
    ];
    let mut series: Vec<Vec<RoundStats>> = Vec::new();
    for &(_, noise, relearn, content_only) in &variants {
        series.push(run_loop(&mined, &truth, noise, relearn, content_only));
    }

    println!("## precision@{TOP_K} vs ground truth, per round\n");
    let mut t = Table::new(&[
        "round", variants[0].0, variants[1].0, variants[2].0, variants[3].0,
    ]);
    for (r, first) in series[0].iter().enumerate() {
        t.row_owned(vec![
            r.to_string(),
            format!("{:.3}", first.precision),
            format!("{:.3}", series[1][r].precision),
            format!("{:.3}", series[2][r].precision),
            format!("{:.3}", series[3][r].precision),
        ]);
    }
    println!("{t}");

    println!("\n## mean rank of ground-truth-relevant results (lower = better)\n");
    let mut t = Table::new(&[
        "round", variants[0].0, variants[1].0, variants[2].0, variants[3].0,
    ]);
    for (r, first) in series[0].iter().enumerate() {
        t.row_owned(vec![
            r.to_string(),
            format!("{:.2}", first.mean_relevant_rank),
            format!("{:.2}", series[1][r].mean_relevant_rank),
            format!("{:.2}", series[2][r].mean_relevant_rank),
            format!("{:.2}", series[3][r].mean_relevant_rank),
        ]);
    }
    println!("{t}");

    println!("\n## model drift per round (content-only learner)\n");
    let mut t = Table::new(&["round", "A1 drift", "P12 drift"]);
    for (r, s) in series[1].iter().enumerate() {
        t.row_owned(vec![
            r.to_string(),
            format!("{:.4}", s.a1_drift),
            format!("{:.4}", s.p12_drift),
        ]);
    }
    println!("{t}");
    println!("expected shape: precision climbs from the mined baseline toward the");
    println!("ground truth as confirmed patterns reshape A1/Π1 and P12; the noisy");
    println!("user learns slower; the uniform-P12 ablation trails the full learner.");
}

fn run_loop(
    mined: &Catalog,
    truth: &Catalog,
    noise: f64,
    relearn_p12: bool,
    content_only: bool,
) -> Vec<RoundStats> {
    // Content-only traversal needs chain support beyond annotated shots.
    let build = BuildConfig {
        unannotated_weight: if content_only { 0.25 } else { 0.0 },
        ..BuildConfig::default()
    };
    let mut model: Hmmm = build_hmmm(mined, &build).expect("non-empty");
    let translator = QueryTranslator::new(EventKind::ALL.iter().map(|k| k.name()));
    let patterns: Vec<_> = QUERIES
        .iter()
        .map(|q| translator.compile(q).expect("valid"))
        .collect();
    let mut log = FeedbackLog::new();
    let cfg = FeedbackConfig {
        relearn_p12,
        ..FeedbackConfig::default()
    };
    let mut oracle = FeedbackSimulator::new(OracleConfig { noise, seed: 0x07 });

    let mut out = Vec::with_capacity(ROUNDS);
    for round in 0..ROUNDS {
        let retrieval = if content_only {
            RetrievalConfig::content_only()
        } else {
            RetrievalConfig::default()
        };
        let retriever = Retriever::new(&model, mined, retrieval).expect("consistent");

        let mut hits = 0usize;
        let mut total = 0usize;
        let mut relevant_rank_sum = 0.0;
        let mut relevant_count = 0usize;
        for pattern in &patterns {
            let (results, _) = retriever.retrieve(pattern, TOP_K).expect("valid");
            for (rank, r) in results.iter().enumerate() {
                total += 1;
                // Judged against GROUND TRUTH, not the mined annotations.
                if FeedbackSimulator::is_relevant(truth, pattern, r) {
                    hits += 1;
                    relevant_rank_sum += (rank + 1) as f64;
                    relevant_count += 1;
                }
                if oracle.judge(truth, pattern, r) {
                    log.record(PositivePattern {
                        query: (round * QUERIES.len()) as u64,
                        video: r.video,
                        shots: r.shots.clone(),
                        events: r.events.clone(),
                        access: 1.0,
                    })
                    .expect("ordered");
                }
            }
        }
        let report = log.apply(&mut model, mined, &cfg).expect("consistent");
        out.push(RoundStats {
            precision: if total == 0 { 0.0 } else { hits as f64 / total as f64 },
            mean_relevant_rank: if relevant_count == 0 {
                TOP_K as f64 + 1.0
            } else {
                relevant_rank_sum / relevant_count as f64
            },
            a1_drift: report.a1_drift,
            p12_drift: report.p12_drift,
        });
    }
    out
}
