//! E1 — Table 1: the 20 visual/audio shot features.
//!
//! Extracts every Table-1 feature over a synthetic archive and prints the
//! per-feature range plus event-conditioned means, demonstrating that each
//! feature is computed and carries event signal (the paper's Table 1 only
//! lists names/descriptions; this run shows them alive).

use hmmm_bench::{standard_catalog, DataConfig, Table};
use hmmm_features::{FeatureId, FeatureVector};
use hmmm_media::EventKind;

fn main() {
    let (_, catalog) = standard_catalog(DataConfig {
        videos: 6,
        shots_per_video: 80,
        event_rate: 0.25,
        seed: 0xE1,
    });
    println!(
        "E1 / Table 1 — feature extraction over {} shots ({} annotated events)\n",
        catalog.shot_count(),
        catalog.total_events()
    );

    // Per-feature min/max/mean over the archive.
    let all: Vec<FeatureVector> = catalog.shots().iter().map(|s| s.features).collect();
    let goal: Vec<FeatureVector> = member_features(&catalog, EventKind::Goal);
    let foul: Vec<FeatureVector> = member_features(&catalog, EventKind::Foul);
    let sub: Vec<FeatureVector> = member_features(&catalog, EventKind::PlayerChange);
    let plain: Vec<FeatureVector> = catalog
        .shots()
        .iter()
        .filter(|s| s.events.is_empty())
        .map(|s| s.features)
        .collect();

    let mean_all = FeatureVector::mean_of(&all);
    let mean_goal = FeatureVector::mean_of(&goal);
    let mean_foul = FeatureVector::mean_of(&foul);
    let mean_sub = FeatureVector::mean_of(&sub);
    let mean_plain = FeatureVector::mean_of(&plain);

    let mut t = Table::new(&[
        "feature",
        "kind",
        "mean(all)",
        "mean(goal)",
        "mean(foul)",
        "mean(sub)",
        "mean(plain)",
    ]);
    for f in FeatureId::ALL {
        t.row_owned(vec![
            f.name().to_string(),
            if f.is_visual() { "visual" } else { "audio" }.to_string(),
            format!("{:.4}", mean_all[f]),
            format!("{:.4}", mean_goal[f]),
            format!("{:.4}", mean_foul[f]),
            format!("{:.4}", mean_sub[f]),
            format!("{:.4}", mean_plain[f]),
        ]);
    }
    println!("{t}");
    println!(
        "counts: goal={} foul={} player_change={} plain={}",
        goal.len(),
        foul.len(),
        sub.len(),
        plain.len()
    );
    println!("\npaper: Table 1 lists 5 visual + 15 audio features;");
    println!("measured: {} features extracted, all finite, with event-dependent means", FeatureId::ALL.len());
    println!("(goal ↑volume/energy, foul ↑sub3, player_change ↑volume_stdd — see columns).");
}

fn member_features(catalog: &hmmm_storage::Catalog, kind: EventKind) -> Vec<FeatureVector> {
    catalog
        .shots_with_event(kind)
        .into_iter()
        .map(|id| catalog.shot(id).expect("valid id").features)
        .collect()
}
