//! E10 — the anytime-retrieval curve: deadline budget vs recall of the
//! exact top-k on the skewed catalog (PR-5).
//!
//! The deadline contract is *anytime, exact-so-far*: what a
//! deadline-bounded run returns is always a correctly-ordered prefix of
//! the work it completed, so the only quality axis is **recall** against
//! the unbounded exact top-k. This experiment sweeps the budget as
//! fractions of the measured unbounded latency — machine-independent by
//! construction — and reports, per budget, how much of the archive was
//! covered and how much of the true top-k survived.
//!
//! ```text
//! cargo run --release -p hmmm-bench --bin exp_deadline_sweep
//!     [-- --videos N --shots N --top K --repeats R]
//! ```

use hmmm_bench::{skewed_catalog, DataConfig, Table};
use hmmm_core::{
    build_hmmm, BuildConfig, DeadlineConfig, RankedPattern, RetrievalConfig, Retriever,
};
use hmmm_media::EventKind;
use hmmm_query::QueryTranslator;
use std::time::{Duration, Instant};

fn arg(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Identity of a ranked pattern for recall accounting.
fn key(p: &RankedPattern) -> (usize, Vec<usize>) {
    (p.video.index(), p.shots.iter().map(|s| s.0).collect())
}

fn main() {
    let videos: usize = arg("--videos").and_then(|v| v.parse().ok()).unwrap_or(60);
    let shots: usize = arg("--shots").and_then(|v| v.parse().ok()).unwrap_or(200);
    let top: usize = arg("--top").and_then(|v| v.parse().ok()).unwrap_or(10);
    let repeats: u32 = arg("--repeats").and_then(|v| v.parse().ok()).unwrap_or(5);

    println!("E10 — deadline budget vs exact-top-{top} recall (skewed catalog)\n");
    eprintln!("building {videos} videos × {shots} shots (half weak)…");
    let catalog = skewed_catalog(
        DataConfig {
            videos,
            shots_per_video: shots,
            event_rate: 0.08,
            seed: 0xDEAD,
        },
        0.005,
    );
    let model = build_hmmm(&catalog, &BuildConfig::default()).expect("non-empty");
    let translator = QueryTranslator::new(EventKind::ALL.iter().map(|k| k.name()));
    let pattern = translator.compile("goal -> goal").expect("valid");

    // Serial keeps the visit order (and so the recall curve's shape)
    // deterministic; parallel runs only shift the curve left.
    let base = RetrievalConfig {
        threads: Some(1),
        ..RetrievalConfig::content_only()
    };

    // Reference: the unbounded exact top-k, and its best-of-N latency.
    let reference = Retriever::new(&model, &catalog, base.clone()).expect("consistent");
    let mut full_secs = f64::INFINITY;
    let mut full_results = Vec::new();
    for _ in 0..repeats {
        let start = Instant::now();
        let (results, _) = reference.retrieve(&pattern, top).expect("valid");
        full_secs = full_secs.min(start.elapsed().as_secs_f64());
        full_results = results;
    }
    let truth: Vec<_> = full_results.iter().map(key).collect();
    println!(
        "unbounded run: {:.2} ms best-of-{repeats}, {} of top-{top} filled\n",
        full_secs * 1e3,
        truth.len()
    );

    let mut t = Table::new(&[
        "budget (% of full)",
        "budget",
        "recall@k",
        "visited",
        "unvisited",
        "expired runs",
    ]);
    for &fraction in &[0.01, 0.05, 0.10, 0.25, 0.50, 0.75, 1.0, 2.0, 10.0] {
        let budget = Duration::from_secs_f64((full_secs * fraction).max(1e-6));
        let cfg = base
            .clone()
            .with_deadline(DeadlineConfig::new(budget));
        let r = Retriever::new(&model, &catalog, cfg).expect("consistent");
        // Recall is timing-dependent by design — average it over repeats.
        let mut recall_sum = 0.0;
        let mut visited = 0usize;
        let mut unvisited = 0usize;
        let mut expired = 0u32;
        for _ in 0..repeats {
            let (results, stats) = r.retrieve(&pattern, top).expect("valid");
            let hit = results
                .iter()
                .filter(|p| truth.contains(&key(p)))
                .count();
            recall_sum += if truth.is_empty() {
                1.0
            } else {
                hit as f64 / truth.len() as f64
            };
            visited += stats.videos_visited;
            unvisited += stats.videos_unvisited;
            expired += u32::from(stats.deadline_expired);
        }
        let n = repeats as f64;
        t.row_owned(vec![
            format!("{:.0}%", fraction * 100.0),
            format!("{:.3} ms", budget.as_secs_f64() * 1e3),
            format!("{:.2}", recall_sum / n),
            format!("{:.1}", visited as f64 / n),
            format!("{:.1}", unvisited as f64 / n),
            format!("{expired}/{repeats}"),
        ]);
    }
    println!("{t}");
    println!(
        "reading: recall climbs monotonically-in-expectation with the budget; \
         at ≥100% of the unbounded latency the deadline never fires and the \
         ranking is the exact top-{top} (bit-identical to the reference)."
    );
}
