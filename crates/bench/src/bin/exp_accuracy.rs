//! E6 — the accuracy claim ("retrieving more accurate patterns"):
//! precision@k and MRR of HMMM vs the three baselines over a query suite,
//! judged by the ground-truth oracle.

use hmmm_baselines::{EventIndexRetriever, ExhaustiveConfig, ExhaustiveRetriever, GreedyRetriever};
use hmmm_bench::{mean_reciprocal_rank, precision_at_k, standard_catalog, DataConfig, QualityReport, Table};
use hmmm_core::{build_hmmm, BuildConfig, RetrievalConfig, Retriever};
use hmmm_media::EventKind;
use hmmm_query::QueryTranslator;

const TOP_K: usize = 5;
const QUERIES: [&str; 7] = [
    "goal",
    "corner_kick",
    "goal -> free_kick",
    "free_kick -> goal",
    "foul ->[10] yellow_card",
    "corner_kick|free_kick -> goal",
    "foul -> free_kick -> goal",
];

fn main() {
    println!("E6 — retrieval accuracy: precision@{TOP_K} and MRR vs baselines\n");
    let (_, catalog) = standard_catalog(DataConfig {
        videos: 30,
        shots_per_video: 150,
        event_rate: 0.1,
        seed: 0xE6,
    });
    let model = build_hmmm(&catalog, &BuildConfig::default()).expect("non-empty");
    let translator = QueryTranslator::new(EventKind::ALL.iter().map(|k| k.name()));

    let engines: [&str; 4] = ["hmmm", "exhaustive", "event-index", "greedy"];
    let mut per_engine: Vec<Vec<(Option<f64>, f64)>> = vec![Vec::new(); engines.len()];

    let mut t = Table::new(&["query", "engine", "p@5", "MRR", "found"]);
    for q in QUERIES {
        let pattern = translator.compile(q).expect("valid");
        for (e, engine) in engines.iter().enumerate() {
            let results = match *engine {
                "hmmm" => {
                    let r = Retriever::new(&model, &catalog, RetrievalConfig::default())
                        .expect("consistent");
                    r.retrieve(&pattern, TOP_K).expect("valid").0
                }
                "exhaustive" => {
                    let r =
                        ExhaustiveRetriever::new(&model, &catalog, ExhaustiveConfig::default())
                            .expect("consistent");
                    r.retrieve(&pattern, TOP_K).expect("valid").0
                }
                "event-index" => {
                    let r = EventIndexRetriever::new(&model, &catalog).expect("consistent");
                    r.retrieve(&pattern, TOP_K).expect("valid").0
                }
                _ => {
                    let r = GreedyRetriever::new(&model, &catalog).expect("consistent");
                    r.retrieve(&pattern, TOP_K).expect("valid").0
                }
            };
            let p = precision_at_k(&catalog, &pattern, &results, TOP_K);
            let mrr = mean_reciprocal_rank(&catalog, &pattern, &results);
            per_engine[e].push((p, mrr));
            t.row_owned(vec![
                q.to_string(),
                engine.to_string(),
                p.map_or("—".into(), |v| format!("{v:.2}")),
                format!("{mrr:.2}"),
                results.len().to_string(),
            ]);
        }
    }
    println!("{t}");

    println!("\n## aggregate over {} queries\n", QUERIES.len());
    let mut agg = Table::new(&["engine", "mean p@5", "mean MRR", "empty queries"]);
    for (e, engine) in engines.iter().enumerate() {
        let q: QualityReport = QualityReport::aggregate(&per_engine[e]);
        agg.row_owned(vec![
            engine.to_string(),
            format!("{:.3}", q.precision),
            format!("{:.3}", q.mrr),
            q.empty_queries.to_string(),
        ]);
    }
    println!("{agg}");
    println!("expected shape: hmmm ≈ event-index ≥ exhaustive ≫ greedy on precision;");
    println!("hmmm does it at a fraction of exhaustive's work (see E5).");
}
