//! E8 — the Figure-1 pipeline end-to-end, with per-stage timings and
//! accuracies: synthesize → detect shot boundaries from pixels → extract
//! features → mine events with the decision tree → build HMMM → query.

use hmmm_annotate::evaluate::micro_f1;
use hmmm_annotate::{evaluate_annotations, AnnotatorConfig, EventAnnotator};
use hmmm_bench::{precision_at_k, Table};
use hmmm_core::{build_hmmm, BuildConfig, RetrievalConfig, Retriever};
use hmmm_features::{extract_shot, ExtractorConfig, FeatureVector};
use hmmm_media::{
    ArchiveConfig, AudioBuf, EventKind, PixelBuf, RenderConfig, SyntheticArchive,
};
use hmmm_query::QueryTranslator;
use hmmm_shot::{evaluate_cuts, segment_frames, ShotBoundaryDetector, ShotDetectorConfig};
use hmmm_storage::Catalog;
use std::time::Instant;

fn main() {
    println!("E8 / Figure 1 — full pipeline, stage timings and accuracy\n");
    let archive = SyntheticArchive::generate(ArchiveConfig {
        videos: 8,
        shots_per_video: 60,
        event_rate: 0.25,
        double_event_rate: 0.1,
        render: RenderConfig::default(),
        seed: 0xE8,
    });

    let mut stage_table = Table::new(&["stage", "time", "accuracy"]);

    // Stage 1: shot-boundary detection.
    let t = Instant::now();
    let mut f1_sum = 0.0;
    let mut videos: Vec<Vec<(Vec<EventKind>, FeatureVector)>> = Vec::new();
    let extractor = ExtractorConfig::default();
    for video in archive.videos() {
        let frames: Vec<PixelBuf> = video.frame_stream().collect();
        let mut det = ShotBoundaryDetector::new(ShotDetectorConfig::default());
        for f in &frames {
            det.push(f);
        }
        let cuts = det.finish();
        f1_sum += evaluate_cuts(&cuts, &video.true_cuts(), 1).f1();

        let segments = segment_frames(&cuts, frames.len());
        let audio: Vec<f64> = video
            .rendered_shots()
            .flat_map(|rs| rs.audio.samples().to_vec())
            .collect();
        let spf = video.config().samples_per_frame;
        let mut shots = Vec::with_capacity(segments.len());
        for seg in &segments {
            let a0 = seg.start * spf;
            let a1 = (seg.end * spf).min(audio.len());
            let seg_audio = AudioBuf::new(video.config().sample_rate, audio[a0..a1].to_vec());
            let features = extract_shot(&frames[seg.range()], &seg_audio, &extractor);
            let events = overlap_events(video, seg.start, seg.end);
            shots.push((events, features));
        }
        videos.push(shots);
    }
    let detect_time = t.elapsed();
    stage_table.row_owned(vec![
        "shot detection + features".into(),
        format!("{detect_time:.2?}"),
        format!("cut F1 {:.3}", f1_sum / archive.video_count() as f64),
    ]);

    // Stage 2: decision-tree event mining (train half, test half).
    let t = Instant::now();
    let half = archive.video_count() / 2;
    let train: Vec<(FeatureVector, Vec<EventKind>)> = videos[..half]
        .iter()
        .flatten()
        .map(|(e, f)| (*f, e.clone()))
        .collect();
    let annotator =
        EventAnnotator::train(&train, AnnotatorConfig::default()).expect("non-empty train");
    let test: Vec<(FeatureVector, Vec<EventKind>)> = videos[half..]
        .iter()
        .flatten()
        .map(|(e, f)| (*f, e.clone()))
        .collect();
    let predicted: Vec<Vec<EventKind>> = test.iter().map(|(f, _)| annotator.annotate(f)).collect();
    let truth: Vec<Vec<EventKind>> = test.iter().map(|(_, e)| e.clone()).collect();
    let mining_f1 = micro_f1(&evaluate_annotations(&predicted, &truth));
    stage_table.row_owned(vec![
        "event mining (train+test)".into(),
        format!("{:.2?}", t.elapsed()),
        format!("micro-F1 {mining_f1:.3}"),
    ]);

    // Stage 3: catalog + HMMM (mined annotations on the held-out half).
    let t = Instant::now();
    let mut catalog = Catalog::new();
    for (vi, shots) in videos.into_iter().enumerate() {
        let shots = if vi < half {
            shots
        } else {
            shots
                .into_iter()
                .map(|(_, f)| (annotator.annotate(&f), f))
                .collect()
        };
        catalog.add_video(format!("video-{vi:03}"), shots);
    }
    catalog.validate().expect("consistent");
    let model = build_hmmm(&catalog, &BuildConfig::default()).expect("non-empty");
    stage_table.row_owned(vec![
        "catalog + HMMM build".into(),
        format!("{:.2?}", t.elapsed()),
        format!("{} shots modeled", model.shot_count()),
    ]);

    // Stage 4: the query.
    let translator = QueryTranslator::new(EventKind::ALL.iter().map(|k| k.name()));
    let pattern = translator.compile("free_kick -> goal").expect("valid");
    let retriever =
        Retriever::new(&model, &catalog, RetrievalConfig::default()).expect("consistent");
    let t = Instant::now();
    let (results, _) = retriever.retrieve(&pattern, 8).expect("valid");
    let p = precision_at_k(&catalog, &pattern, &results, 8).unwrap_or(0.0);
    stage_table.row_owned(vec![
        "query 'free_kick -> goal'".into(),
        format!("{:.2?}", t.elapsed()),
        format!("{} candidates, p@8 {p:.2} (vs catalog annotations)", results.len()),
    ]);

    println!("{stage_table}");
    println!("note: p@8 here judges against the *mined* annotations the model saw,");
    println!("matching the paper's setting where the system retrieves what its");
    println!("annotation pipeline produced.");
}

fn overlap_events(
    video: &hmmm_media::SyntheticVideo,
    start: usize,
    end: usize,
) -> Vec<EventKind> {
    let mut events = Vec::new();
    let mut pos = 0usize;
    for i in 0..video.shot_count() {
        let shot = video.shot(i).expect("in range");
        let (s0, s1) = (pos, pos + shot.frames);
        pos = s1;
        let overlap = s1.min(end).saturating_sub(s0.max(start));
        if overlap * 2 > shot.frames {
            events.extend(shot.events.iter().copied());
        }
    }
    events
}
