//! Retrieval-quality metrics against the ground-truth oracle.

use hmmm_core::simulate::FeedbackSimulator;
use hmmm_core::RankedPattern;
use hmmm_query::CompiledPattern;
use hmmm_storage::Catalog;

/// Fraction of the top-`k` results that are truly relevant.
/// Returns `None` when there are no results to judge.
pub fn precision_at_k(
    catalog: &Catalog,
    pattern: &CompiledPattern,
    results: &[RankedPattern],
    k: usize,
) -> Option<f64> {
    let top = &results[..results.len().min(k)];
    if top.is_empty() {
        return None;
    }
    let relevant = top
        .iter()
        .filter(|r| FeedbackSimulator::is_relevant(catalog, pattern, r))
        .count();
    Some(relevant as f64 / top.len() as f64)
}

/// `1 / rank` of the first relevant result (`0.0` when none is relevant).
pub fn mean_reciprocal_rank(
    catalog: &Catalog,
    pattern: &CompiledPattern,
    results: &[RankedPattern],
) -> f64 {
    results
        .iter()
        .position(|r| FeedbackSimulator::is_relevant(catalog, pattern, r))
        .map_or(0.0, |pos| 1.0 / (pos + 1) as f64)
}

/// Aggregated quality over a query set.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QualityReport {
    /// Mean precision@k over queries with at least one result.
    pub precision: f64,
    /// Mean reciprocal rank over all queries.
    pub mrr: f64,
    /// Queries that returned no result at all.
    pub empty_queries: usize,
    /// Queries evaluated.
    pub queries: usize,
}

impl QualityReport {
    /// Aggregates per-query `(precision_at_k, mrr)` observations.
    pub fn aggregate(observations: &[(Option<f64>, f64)]) -> Self {
        let queries = observations.len();
        let empty_queries = observations.iter().filter(|(p, _)| p.is_none()).count();
        let scored = queries - empty_queries;
        let precision = if scored == 0 {
            0.0
        } else {
            observations.iter().filter_map(|(p, _)| *p).sum::<f64>() / scored as f64
        };
        let mrr = if queries == 0 {
            0.0
        } else {
            observations.iter().map(|(_, m)| m).sum::<f64>() / queries as f64
        };
        QualityReport {
            precision,
            mrr,
            empty_queries,
            queries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_handles_empty_queries() {
        let obs = vec![(Some(1.0), 1.0), (None, 0.0), (Some(0.5), 0.5)];
        let q = QualityReport::aggregate(&obs);
        assert_eq!(q.queries, 3);
        assert_eq!(q.empty_queries, 1);
        assert!((q.precision - 0.75).abs() < 1e-12);
        assert!((q.mrr - 0.5).abs() < 1e-12);
    }

    #[test]
    fn aggregate_of_nothing() {
        let q = QualityReport::aggregate(&[]);
        assert_eq!(q.queries, 0);
        assert_eq!(q.precision, 0.0);
    }
}
