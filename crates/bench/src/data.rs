//! Shared dataset construction for experiments and benches.

use hmmm_media::{ArchiveConfig, RenderConfig, SyntheticArchive};
use hmmm_storage::Catalog;
use hmmm_suite::{ingest_archive, AnnotationSource};

/// Dataset parameters shared across experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataConfig {
    /// Number of videos.
    pub videos: usize,
    /// Shots per video.
    pub shots_per_video: usize,
    /// Per-shot event probability.
    pub event_rate: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for DataConfig {
    fn default() -> Self {
        DataConfig {
            videos: 8,
            shots_per_video: 100,
            event_rate: 0.08,
            seed: 0xBEEF,
        }
    }
}

impl DataConfig {
    /// The paper's archive dimensions (54 videos, ≈11.5k shots, ≈4.4%
    /// annotation rate).
    pub fn paper_scale() -> Self {
        DataConfig {
            videos: 54,
            shots_per_video: 214,
            event_rate: 0.044,
            seed: 2006,
        }
    }
}

/// Generates the archive and ingests it with ground-truth annotations
/// (render → Table-1 features → catalog).
pub fn standard_catalog(config: DataConfig) -> (SyntheticArchive, Catalog) {
    let archive = SyntheticArchive::generate(ArchiveConfig {
        videos: config.videos,
        shots_per_video: config.shots_per_video,
        event_rate: config.event_rate,
        double_event_rate: 0.15,
        render: RenderConfig::small(),
        seed: config.seed,
    });
    let catalog = ingest_archive(&archive, AnnotationSource::GroundTruth);
    (archive, catalog)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_catalog_is_consistent() {
        let (archive, catalog) = standard_catalog(DataConfig {
            videos: 2,
            shots_per_video: 10,
            ..DataConfig::default()
        });
        assert_eq!(catalog.shot_count(), archive.total_shots());
        assert!(catalog.validate().is_ok());
    }

    #[test]
    fn paper_scale_dimensions() {
        let cfg = DataConfig::paper_scale();
        assert_eq!(cfg.videos * cfg.shots_per_video, 11_556);
    }
}
