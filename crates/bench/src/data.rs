//! Shared dataset construction for experiments and benches.

use hmmm_media::{ArchiveConfig, RenderConfig, SyntheticArchive};
use hmmm_storage::Catalog;
use hmmm_suite::{ingest_archive, AnnotationSource};

/// Dataset parameters shared across experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataConfig {
    /// Number of videos.
    pub videos: usize,
    /// Shots per video.
    pub shots_per_video: usize,
    /// Per-shot event probability.
    pub event_rate: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for DataConfig {
    fn default() -> Self {
        DataConfig {
            videos: 8,
            shots_per_video: 100,
            event_rate: 0.08,
            seed: 0xBEEF,
        }
    }
}

impl DataConfig {
    /// The paper's archive dimensions (54 videos, ≈11.5k shots, ≈4.4%
    /// annotation rate).
    pub fn paper_scale() -> Self {
        DataConfig {
            videos: 54,
            shots_per_video: 214,
            event_rate: 0.044,
            seed: 2006,
        }
    }
}

/// Generates the archive and ingests it with ground-truth annotations
/// (render → Table-1 features → catalog).
pub fn standard_catalog(config: DataConfig) -> (SyntheticArchive, Catalog) {
    let archive = SyntheticArchive::generate(ArchiveConfig {
        videos: config.videos,
        shots_per_video: config.shots_per_video,
        event_rate: config.event_rate,
        double_event_rate: 0.15,
        render: RenderConfig::small(),
        seed: config.seed,
    });
    let catalog = ingest_archive(&archive, AnnotationSource::GroundTruth);
    (archive, catalog)
}

/// A *skewed* archive: half the videos at the configured event rate, half
/// at `weak_rate` (interleaved, so visit order carries no information).
///
/// `standard_catalog` gives every video the same event density, which makes
/// whole-video retrieval bounds structurally unprunable — each video's best
/// start candidate is about as good as every other's, so no admissible
/// upper bound can dip below the running top-k threshold. Real archives are
/// skewed: most videos barely exhibit any given queried event. This is the
/// fixture for measuring (and smoke-testing) the whole-video bound skip.
pub fn skewed_catalog(config: DataConfig, weak_rate: f64) -> Catalog {
    let weak_videos = config.videos / 2;
    let (_, strong) = standard_catalog(DataConfig {
        videos: config.videos - weak_videos,
        ..config
    });
    let (_, weak) = standard_catalog(DataConfig {
        videos: weak_videos,
        event_rate: weak_rate,
        seed: config.seed ^ 0x5EED_CAFE,
        ..config
    });
    let mut merged = Catalog::new();
    for i in 0..config.videos.div_ceil(2) {
        for (tag, part) in [("strong", &strong), ("weak", &weak)] {
            if let Some(video) = part.videos().get(i) {
                let shots = part
                    .shots_of_video(video.id)
                    .iter()
                    .map(|s| (s.events.clone(), s.features))
                    .collect();
                merged.add_video(format!("{tag}{i}"), shots);
            }
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_catalog_is_consistent() {
        let (archive, catalog) = standard_catalog(DataConfig {
            videos: 2,
            shots_per_video: 10,
            ..DataConfig::default()
        });
        assert_eq!(catalog.shot_count(), archive.total_shots());
        assert!(catalog.validate().is_ok());
    }

    #[test]
    fn skewed_catalog_interleaves_strong_and_weak() {
        let c = skewed_catalog(
            DataConfig {
                videos: 6,
                shots_per_video: 12,
                ..DataConfig::default()
            },
            0.0,
        );
        assert_eq!(c.videos().len(), 6);
        assert!(c.validate().is_ok());
        assert!(c.videos()[0].name.starts_with("strong"));
        assert!(c.videos()[1].name.starts_with("weak"));
        // At weak_rate 0 the weak half carries no annotations at all.
        let weak_events: usize = c
            .videos()
            .iter()
            .filter(|v| v.name.starts_with("weak"))
            .map(|v| {
                c.shots_of_video(v.id)
                    .iter()
                    .map(|s| s.events.len())
                    .sum::<usize>()
            })
            .sum();
        assert_eq!(weak_events, 0);
    }

    #[test]
    fn paper_scale_dimensions() {
        let cfg = DataConfig::paper_scale();
        assert_eq!(cfg.videos * cfg.shots_per_video, 11_556);
    }
}
