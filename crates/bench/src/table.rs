//! A tiny fixed-width text-table printer for experiment output.

/// Column-aligned text table.
///
/// # Examples
///
/// ```
/// use hmmm_bench::Table;
///
/// let mut t = Table::new(&["engine", "latency", "p@5"]);
/// t.row(&["hmmm", "12.3µs", "0.80"]);
/// t.row(&["exhaustive", "1.2ms", "0.85"]);
/// let s = t.to_string();
/// assert!(s.contains("engine"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (short rows are padded with empty cells).
    pub fn row(&mut self, cells: &[&str]) {
        let mut row: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Appends a row of already-owned cells.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        let mut row = cells;
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let print_row = |f: &mut std::fmt::Formatter<'_>, cells: &[String]| -> std::fmt::Result {
            for (i, cell) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        print_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(&["xxxxx", "y"]);
        t.row(&["z"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a    "));
        assert!(lines[1].starts_with("---"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }
}
