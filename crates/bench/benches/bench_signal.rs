//! Criterion: DSP substrate (FFT, spectrum flux, histograms).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hmmm_signal::complex::Complex;
use hmmm_signal::fft::fft_in_place;
use hmmm_signal::{spectrum_flux, Histogram};
use std::hint::black_box;

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    for pow in [8u32, 10, 12] {
        let n = 1usize << pow;
        let signal: Vec<Complex> = (0..n)
            .map(|i| Complex::from_real((i as f64 * 0.37).sin()))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &signal, |b, s| {
            b.iter(|| {
                let mut buf = s.clone();
                fft_in_place(&mut buf).unwrap();
                black_box(buf)
            })
        });
    }
    group.finish();
}

fn bench_flux(c: &mut Criterion) {
    let signal: Vec<f64> = (0..16_384).map(|i| (i as f64 * 0.11).sin()).collect();
    c.bench_function("spectrum_flux_16k", |b| {
        b.iter(|| black_box(spectrum_flux(black_box(&signal), 256, 128)))
    });
}

fn bench_histogram(c: &mut Criterion) {
    let samples: Vec<f64> = (0..4096).map(|i| (i % 256) as f64).collect();
    c.bench_function("histogram_build_4k", |b| {
        b.iter(|| {
            black_box(Histogram::from_samples(
                black_box(samples.iter().copied()),
                32,
                0.0,
                256.0,
            ))
        })
    });
    let h1 = Histogram::from_samples(samples.iter().copied(), 32, 0.0, 256.0);
    let h2 = Histogram::from_samples(samples.iter().map(|x| x * 0.9), 32, 0.0, 256.0);
    c.bench_function("histogram_chi_square", |b| {
        b.iter(|| black_box(h1.chi_square_distance(black_box(&h2))))
    });
}

criterion_group!(benches, bench_fft, bench_flux, bench_histogram);
criterion_main!(benches);
