//! Criterion: retrieval engines head-to-head (E5's micro view).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hmmm_baselines::{EventIndexRetriever, ExhaustiveConfig, ExhaustiveRetriever, GreedyRetriever};
use hmmm_bench::{standard_catalog, DataConfig};
use hmmm_core::{build_hmmm, BuildConfig, RetrievalConfig, Retriever};
use hmmm_media::EventKind;
use hmmm_query::QueryTranslator;
use std::hint::black_box;

fn bench_engines(c: &mut Criterion) {
    let (_, catalog) = standard_catalog(DataConfig {
        videos: 10,
        shots_per_video: 150,
        event_rate: 0.08,
        seed: 0xB1,
    });
    let model = build_hmmm(&catalog, &BuildConfig::default()).expect("non-empty");
    let translator = QueryTranslator::new(EventKind::ALL.iter().map(|k| k.name()));
    let pattern = translator.compile("goal -> free_kick").expect("valid");

    let mut group = c.benchmark_group("retrieval_engines");
    group.bench_function("hmmm_beam3", |b| {
        let r = Retriever::new(&model, &catalog, RetrievalConfig::default()).unwrap();
        b.iter(|| black_box(r.retrieve(black_box(&pattern), 10).unwrap()))
    });
    group.bench_function("hmmm_greedy_beam1", |b| {
        let r = Retriever::new(&model, &catalog, RetrievalConfig::paper_greedy()).unwrap();
        b.iter(|| black_box(r.retrieve(black_box(&pattern), 10).unwrap()))
    });
    group.bench_function("exhaustive", |b| {
        let r = ExhaustiveRetriever::new(&model, &catalog, ExhaustiveConfig::default()).unwrap();
        b.iter(|| black_box(r.retrieve(black_box(&pattern), 10).unwrap()))
    });
    group.bench_function("event_index", |b| {
        let r = EventIndexRetriever::new(&model, &catalog).unwrap();
        b.iter(|| black_box(r.retrieve(black_box(&pattern), 10).unwrap()))
    });
    group.bench_function("greedy", |b| {
        let r = GreedyRetriever::new(&model, &catalog).unwrap();
        b.iter(|| black_box(r.retrieve(black_box(&pattern), 10).unwrap()))
    });
    group.finish();
}

fn bench_pattern_length(c: &mut Criterion) {
    let (_, catalog) = standard_catalog(DataConfig {
        videos: 10,
        shots_per_video: 150,
        event_rate: 0.1,
        seed: 0xB2,
    });
    let model = build_hmmm(&catalog, &BuildConfig::default()).expect("non-empty");
    let translator = QueryTranslator::new(EventKind::ALL.iter().map(|k| k.name()));
    let retriever = Retriever::new(&model, &catalog, RetrievalConfig::default()).unwrap();

    let mut group = c.benchmark_group("hmmm_pattern_length");
    for (c_len, q) in [
        (1usize, "goal"),
        (2, "goal -> free_kick"),
        (3, "free_kick -> goal -> corner_kick"),
        (4, "foul -> free_kick -> goal -> player_change"),
    ] {
        let pattern = translator.compile(q).expect("valid");
        group.bench_with_input(BenchmarkId::from_parameter(c_len), &pattern, |b, p| {
            b.iter(|| black_box(retriever.retrieve(black_box(p), 10).unwrap()))
        });
    }
    group.finish();
}

fn bench_threads(c: &mut Criterion) {
    // Large enough that per-video traversal dominates thread setup.
    let (_, catalog) = standard_catalog(DataConfig {
        videos: 40,
        shots_per_video: 250,
        event_rate: 0.08,
        seed: 0xB3,
    });
    let model = build_hmmm(&catalog, &BuildConfig::default()).expect("non-empty");
    let translator = QueryTranslator::new(EventKind::ALL.iter().map(|k| k.name()));
    let pattern = translator.compile("goal -> free_kick").expect("valid");

    let mut group = c.benchmark_group("retrieval_threads");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        let cfg = RetrievalConfig {
            threads: Some(threads),
            ..RetrievalConfig::default()
        };
        let r = Retriever::new(&model, &catalog, cfg).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(threads), &pattern, |b, p| {
            b.iter(|| black_box(r.retrieve(black_box(p), 10).unwrap()))
        });
    }
    group.finish();
}

fn bench_sim_cache(c: &mut Criterion) {
    let (_, catalog) = standard_catalog(DataConfig {
        videos: 20,
        shots_per_video: 200,
        event_rate: 0.08,
        seed: 0xB4,
    });
    let model = build_hmmm(&catalog, &BuildConfig::default()).expect("non-empty");
    let translator = QueryTranslator::new(EventKind::ALL.iter().map(|k| k.name()));
    let pattern = translator.compile("goal -> free_kick").expect("valid");

    // Serial on both sides so the cache's effect is isolated from the
    // thread fan-out; content-driven traversal is the similarity-bound
    // regime where the cache is built at all.
    let mut group = c.benchmark_group("retrieval_sim_cache");
    for (label, cached) in [("cached", true), ("uncached", false)] {
        let cfg = RetrievalConfig {
            threads: Some(1),
            use_sim_cache: cached,
            ..RetrievalConfig::content_only()
        };
        let r = Retriever::new(&model, &catalog, cfg).unwrap();
        group.bench_function(label, |b| {
            b.iter(|| black_box(r.retrieve(black_box(&pattern), 10).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_engines,
    bench_pattern_length,
    bench_threads,
    bench_sim_cache
);
criterion_main!(benches);
