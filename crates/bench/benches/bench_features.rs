//! Criterion: Table-1 feature extraction cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hmmm_features::{extract_shot, ExtractorConfig, FeatureVector, Normalizer};
use hmmm_media::{
    CameraSetup, EventKind, EventScript, RenderConfig, ScriptedShot, SyntheticVideo,
};
use std::hint::black_box;

fn rendered(config: RenderConfig, frames: usize) -> hmmm_media::RenderedShot {
    let script = EventScript::from_shots(vec![ScriptedShot {
        camera: CameraSetup::Wide,
        events: vec![EventKind::Goal],
        frames,
    }]);
    SyntheticVideo::new(script, config, 7).render_shot(0).expect("in range")
}

fn bench_extract(c: &mut Criterion) {
    let cfg = ExtractorConfig::default();
    let mut group = c.benchmark_group("extract_shot");
    for (label, render) in [
        ("small_32x24", RenderConfig::small()),
        ("default_64x48", RenderConfig::default()),
    ] {
        let shot = rendered(render, 12);
        group.bench_with_input(BenchmarkId::from_parameter(label), &shot, |b, s| {
            b.iter(|| black_box(extract_shot(black_box(&s.frames), black_box(&s.audio), &cfg)))
        });
    }
    group.finish();
}

fn bench_render(c: &mut Criterion) {
    let mut group = c.benchmark_group("render_shot");
    group.sample_size(40);
    for (label, render) in [
        ("small_32x24", RenderConfig::small()),
        ("default_64x48", RenderConfig::default()),
    ] {
        let script = EventScript::from_shots(vec![ScriptedShot {
            camera: CameraSetup::Wide,
            events: vec![EventKind::Goal],
            frames: 12,
        }]);
        let video = SyntheticVideo::new(script, render, 7);
        group.bench_with_input(BenchmarkId::from_parameter(label), &video, |b, v| {
            b.iter(|| black_box(v.render_shot(0).unwrap()))
        });
    }
    group.finish();
}

fn bench_normalize(c: &mut Criterion) {
    let corpus: Vec<FeatureVector> = (0..10_000)
        .map(|i| {
            let mut v = FeatureVector::zeros();
            for j in 0..20 {
                v[j] = ((i * 31 + j * 17) % 100) as f64 / 100.0;
            }
            v
        })
        .collect();
    c.bench_function("normalizer_fit_10k", |b| {
        b.iter(|| black_box(Normalizer::fit(black_box(&corpus)).unwrap()))
    });
    let norm = Normalizer::fit(&corpus).unwrap();
    c.bench_function("normalize_one", |b| {
        b.iter(|| black_box(norm.normalize(black_box(&corpus[5]))))
    });
}

criterion_group!(benches, bench_extract, bench_render, bench_normalize);
criterion_main!(benches);
