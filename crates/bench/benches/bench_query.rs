//! Criterion: query parsing, translation, and similarity scoring.

use criterion::{criterion_group, criterion_main, Criterion};
use hmmm_bench::{standard_catalog, DataConfig};
use hmmm_core::sim::{calibrated_similarity, similarity};
use hmmm_core::{build_hmmm, BuildConfig};
use hmmm_media::EventKind;
use hmmm_query::{parse_pattern, QueryTranslator};
use std::hint::black_box;

const QUERY: &str = "foul ->[2] yellow_card|red_card ->[5] player_change -> goal";

fn bench_parse(c: &mut Criterion) {
    c.bench_function("parse_pattern", |b| {
        b.iter(|| black_box(parse_pattern(black_box(QUERY)).unwrap()))
    });
    let translator = QueryTranslator::new(EventKind::ALL.iter().map(|k| k.name()));
    c.bench_function("compile_pattern", |b| {
        b.iter(|| black_box(translator.compile(black_box(QUERY)).unwrap()))
    });
}

fn bench_similarity(c: &mut Criterion) {
    let (_, catalog) = standard_catalog(DataConfig {
        videos: 4,
        shots_per_video: 100,
        event_rate: 0.15,
        seed: 0xD1,
    });
    let model = build_hmmm(&catalog, &BuildConfig::default()).expect("non-empty");
    let goal = EventKind::Goal.index();
    c.bench_function("similarity_eq14", |b| {
        b.iter(|| black_box(similarity(black_box(&model), black_box(7), goal)))
    });
    c.bench_function("calibrated_similarity", |b| {
        b.iter(|| black_box(calibrated_similarity(black_box(&model), black_box(7), goal)))
    });
}

criterion_group!(benches, bench_parse, bench_similarity);
criterion_main!(benches);
