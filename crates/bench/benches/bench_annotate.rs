//! Criterion: decision-tree training and prediction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hmmm_annotate::{DecisionTree, TreeConfig};
use hmmm_features::{FeatureId, FeatureVector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn dataset(n: usize, seed: u64) -> Vec<(FeatureVector, bool)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut v = FeatureVector::zeros();
            for j in 0..20 {
                v[j] = rng.gen_range(0.0..1.0);
            }
            let label = v[FeatureId::VolumeMean] > 0.6 && v[FeatureId::GrassRatio] > 0.4;
            (v, label)
        })
        .collect()
}

fn bench_train(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_train");
    group.sample_size(20);
    for n in [200usize, 1000, 4000] {
        let data = dataset(n, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, d| {
            b.iter(|| black_box(DecisionTree::train(black_box(d), 1.0, TreeConfig::default()).unwrap()))
        });
    }
    group.finish();
}

fn bench_predict(c: &mut Criterion) {
    let data = dataset(2000, 2);
    let tree = DecisionTree::train(&data, 1.0, TreeConfig::default()).unwrap();
    let probe = data[17].0;
    c.bench_function("tree_predict", |b| {
        b.iter(|| black_box(tree.predict_proba(black_box(&probe))))
    });
}

criterion_group!(benches, bench_train, bench_predict);
criterion_main!(benches);
