//! Criterion: model construction and feedback-update costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hmmm_bench::{standard_catalog, DataConfig};
use hmmm_core::construct::a1_initial_from_counts;
use hmmm_core::{
    build_hmmm, BuildConfig, FeedbackConfig, FeedbackLog, PositivePattern,
};
use hmmm_media::EventKind;
use hmmm_storage::{ShotId, VideoId};
use std::hint::black_box;

fn bench_a1_init(c: &mut Criterion) {
    let mut group = c.benchmark_group("a1_initial_from_counts");
    for n in [50usize, 200, 1000] {
        let ne: Vec<f64> = (0..n).map(|i| if i % 20 == 0 { 2.0 } else { 0.0 }).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &ne, |b, ne| {
            b.iter(|| black_box(a1_initial_from_counts(black_box(ne)).unwrap()))
        });
    }
    group.finish();
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_hmmm");
    group.sample_size(20);
    for videos in [5usize, 20] {
        let (_, catalog) = standard_catalog(DataConfig {
            videos,
            shots_per_video: 200,
            event_rate: 0.06,
            seed: 0xC0,
        });
        group.bench_with_input(
            BenchmarkId::from_parameter(videos * 200),
            &catalog,
            |b, cat| b.iter(|| black_box(build_hmmm(black_box(cat), &BuildConfig::default()).unwrap())),
        );
    }
    group.finish();
}

fn bench_feedback_apply(c: &mut Criterion) {
    let (_, catalog) = standard_catalog(DataConfig {
        videos: 10,
        shots_per_video: 200,
        event_rate: 0.08,
        seed: 0xC1,
    });
    let model = build_hmmm(&catalog, &BuildConfig::default()).expect("non-empty");
    // 50 synthetic positive patterns over annotated shots.
    let goal_shots = catalog.shots_with_event(EventKind::Goal);
    let patterns: Vec<PositivePattern> = goal_shots
        .iter()
        .take(50)
        .enumerate()
        .map(|(q, &shot)| PositivePattern {
            query: q as u64,
            video: catalog.video_of_shot(shot).unwrap_or(VideoId(0)),
            shots: vec![ShotId(shot.index())],
            events: vec![EventKind::Goal.index()],
            access: 1.0,
        })
        .collect();

    c.bench_function("feedback_apply_50_patterns", |b| {
        b.iter(|| {
            let mut m = model.clone();
            let mut log = FeedbackLog::new();
            for p in &patterns {
                log.record(p.clone()).unwrap();
            }
            black_box(log.apply(&mut m, &catalog, &FeedbackConfig::default()).unwrap())
        })
    });
}

criterion_group!(benches, bench_a1_init, bench_build, bench_feedback_apply);
criterion_main!(benches);
