//! # hmmm-media
//!
//! Synthetic media substrate for the HMMM video-database suite.
//!
//! The ICDE 2006 HMMM paper evaluates on 54 real soccer broadcast videos
//! (11,567 shots, 506 annotated events). Real footage is not available to
//! this reproduction, so this crate synthesizes the closest equivalent that
//! exercises the same downstream code paths:
//!
//! * **Real pixels** — [`pixel::PixelBuf`] frames rendered from a soccer
//!   scene model (grass field, stands, player blobs, camera setups), so the
//!   visual feature extractors of Table 1 (`grass_ratio`,
//!   `pixel_change_percent`, `histo_change`, `background_var`,
//!   `background_mean`) operate on actual image data.
//! * **Real PCM audio** — [`audio::AudioBuf`] sample vectors mixing a crowd
//!   noise floor, goal cheers, referee whistles and substitution applause,
//!   so the fifteen audio features (volume, sub-band energies, spectrum
//!   flux) measure genuine signals.
//! * **Event scripts** — [`script::EventScript`] drives both renderers: a
//!   domain Markov chain generates realistic soccer event sequences
//!   (free kick → goal, corner kick → goal, foul → yellow card, …), which
//!   double as retrieval ground truth.
//! * **Deterministic lazy rendering** — [`video::SyntheticVideo`] renders
//!   any shot on demand from `(video_seed, shot_index)`, so paper-scale
//!   archives (tens of thousands of shots) never hold pixels for more than
//!   one shot at a time.
//!
//! The event taxonomy ([`event::EventKind`]) is exactly the paper's §3 list:
//! goal, corner kick, free kick, foul, goal kick, yellow card, red card,
//! plus the "player change" used in the paper's example query.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audio;
pub mod camera;
pub mod dataset;
pub mod event;
pub mod pixel;
pub mod script;
pub mod synth;
pub mod video;

pub use audio::AudioBuf;
pub use camera::CameraSetup;
pub use dataset::{ArchiveConfig, SyntheticArchive};
pub use event::EventKind;
pub use pixel::{PixelBuf, Rgb};
pub use script::{EventScript, ScriptConfig, ScriptedShot};
pub use synth::RenderConfig;
pub use video::{RenderedShot, SyntheticVideo};
