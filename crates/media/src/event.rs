//! The soccer event taxonomy of the paper (§3).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Semantic soccer events, exactly the paper's §3 list plus the
/// "player change" used in its example temporal query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EventKind {
    /// A goal is scored.
    Goal,
    /// Corner kick.
    CornerKick,
    /// Free kick.
    FreeKick,
    /// Foul.
    Foul,
    /// Goal kick.
    GoalKick,
    /// Yellow card shown.
    YellowCard,
    /// Red card shown.
    RedCard,
    /// Player substitution ("player change" in the paper's query example).
    PlayerChange,
}

impl EventKind {
    /// All event kinds, in a stable canonical order. The position of a kind
    /// in this slice is its canonical event index (`e_j` in the paper).
    pub const ALL: [EventKind; 8] = [
        EventKind::Goal,
        EventKind::CornerKick,
        EventKind::FreeKick,
        EventKind::Foul,
        EventKind::GoalKick,
        EventKind::YellowCard,
        EventKind::RedCard,
        EventKind::PlayerChange,
    ];

    /// Number of event kinds (`C` in the paper).
    pub const COUNT: usize = Self::ALL.len();

    /// Canonical index of this kind within [`EventKind::ALL`].
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&k| k == self)
            .expect("every kind is in ALL")
    }

    /// Kind for a canonical index.
    pub fn from_index(i: usize) -> Option<EventKind> {
        Self::ALL.get(i).copied()
    }

    /// Canonical snake_case name, used by the query language
    /// (e.g. `"corner_kick"`).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Goal => "goal",
            EventKind::CornerKick => "corner_kick",
            EventKind::FreeKick => "free_kick",
            EventKind::Foul => "foul",
            EventKind::GoalKick => "goal_kick",
            EventKind::YellowCard => "yellow_card",
            EventKind::RedCard => "red_card",
            EventKind::PlayerChange => "player_change",
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown event name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownEvent(pub String);

impl fmt::Display for UnknownEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown event name: {:?}", self.0)
    }
}

impl std::error::Error for UnknownEvent {}

impl FromStr for EventKind {
    type Err = UnknownEvent;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let normalized = s.trim().to_ascii_lowercase().replace([' ', '-'], "_");
        EventKind::ALL
            .iter()
            .copied()
            .find(|k| k.name() == normalized)
            .ok_or_else(|| UnknownEvent(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_round_trip() {
        for (i, &k) in EventKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
            assert_eq!(EventKind::from_index(i), Some(k));
        }
        assert_eq!(EventKind::from_index(99), None);
        assert_eq!(EventKind::COUNT, 8);
    }

    #[test]
    fn names_round_trip() {
        for &k in &EventKind::ALL {
            assert_eq!(k.name().parse::<EventKind>().unwrap(), k);
        }
    }

    #[test]
    fn parse_is_forgiving() {
        assert_eq!("Corner Kick".parse::<EventKind>().unwrap(), EventKind::CornerKick);
        assert_eq!("free-kick".parse::<EventKind>().unwrap(), EventKind::FreeKick);
        assert_eq!(" GOAL ".parse::<EventKind>().unwrap(), EventKind::Goal);
        assert!("throw_in".parse::<EventKind>().is_err());
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(EventKind::YellowCard.to_string(), "yellow_card");
    }
}
