//! Archive-level dataset generation — the paper's 54-video soccer corpus.

use crate::script::{EventScript, ScriptConfig};
use crate::synth::RenderConfig;
use crate::video::SyntheticVideo;
use serde::{Deserialize, Serialize};

/// Configuration for a whole synthetic archive.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchiveConfig {
    /// Number of videos (`M` in the paper; 54 in its evaluation).
    pub videos: usize,
    /// Shots per video (the paper's archive averages 11,567 / 54 ≈ 214).
    pub shots_per_video: usize,
    /// Event rate per shot (paper: 506 / 11,567 ≈ 0.044).
    pub event_rate: f64,
    /// Probability of a second event on an annotated shot.
    pub double_event_rate: f64,
    /// Rendering parameters for every video.
    pub render: RenderConfig,
    /// Master seed; video `i` derives its own stream from it.
    pub seed: u64,
}

impl Default for ArchiveConfig {
    fn default() -> Self {
        ArchiveConfig {
            videos: 8,
            shots_per_video: 100,
            event_rate: 0.08,
            double_event_rate: 0.15,
            render: RenderConfig::default(),
            seed: 0xDB,
        }
    }
}

impl ArchiveConfig {
    /// The paper's evaluation scale: 54 videos × ~214 shots ≈ 11,556 shots,
    /// with the paper's ~4.4% annotation rate, rendered at the reduced
    /// profile so feature extraction stays laptop-friendly.
    pub fn paper_scale() -> Self {
        ArchiveConfig {
            videos: 54,
            shots_per_video: 214,
            event_rate: 0.044,
            double_event_rate: 0.15,
            render: RenderConfig::small(),
            seed: 2006, // ICDE 2006
        }
    }

    /// Total shot count the config will generate.
    pub fn total_shots(&self) -> usize {
        self.videos * self.shots_per_video
    }
}

/// A generated archive: `M` synthetic videos with ground-truth scripts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticArchive {
    videos: Vec<SyntheticVideo>,
    config: ArchiveConfig,
}

impl SyntheticArchive {
    /// Generates the archive described by `config`.
    pub fn generate(config: ArchiveConfig) -> Self {
        let videos = (0..config.videos)
            .map(|i| {
                let seed = config
                    .seed
                    .wrapping_mul(0x100_0000_01B3)
                    .wrapping_add(i as u64);
                let script = EventScript::generate(&ScriptConfig {
                    shots: config.shots_per_video,
                    event_rate: config.event_rate,
                    double_event_rate: config.double_event_rate,
                    min_frames: 8,
                    max_frames: 16,
                    seed,
                });
                SyntheticVideo::new(script, config.render, seed)
            })
            .collect();
        SyntheticArchive { videos, config }
    }

    /// The archive's videos.
    #[inline]
    pub fn videos(&self) -> &[SyntheticVideo] {
        &self.videos
    }

    /// The generating configuration.
    #[inline]
    pub fn config(&self) -> &ArchiveConfig {
        &self.config
    }

    /// Number of videos.
    #[inline]
    pub fn video_count(&self) -> usize {
        self.videos.len()
    }

    /// Total shots across all videos.
    pub fn total_shots(&self) -> usize {
        self.videos.iter().map(|v| v.shot_count()).sum()
    }

    /// Total event annotations across all videos.
    pub fn total_events(&self) -> usize {
        self.videos.iter().map(|v| v.script().event_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_matches_config() {
        let cfg = ArchiveConfig {
            videos: 3,
            shots_per_video: 20,
            ..ArchiveConfig::default()
        };
        let a = SyntheticArchive::generate(cfg.clone());
        assert_eq!(a.video_count(), 3);
        assert_eq!(a.total_shots(), 60);
        assert_eq!(cfg.total_shots(), 60);
    }

    #[test]
    fn videos_have_distinct_scripts() {
        let a = SyntheticArchive::generate(ArchiveConfig {
            videos: 2,
            shots_per_video: 50,
            event_rate: 0.3,
            ..ArchiveConfig::default()
        });
        assert_ne!(a.videos()[0].script(), a.videos()[1].script());
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = ArchiveConfig {
            videos: 2,
            shots_per_video: 10,
            ..ArchiveConfig::default()
        };
        assert_eq!(
            SyntheticArchive::generate(cfg.clone()),
            SyntheticArchive::generate(cfg)
        );
    }

    #[test]
    fn paper_scale_dimensions() {
        let cfg = ArchiveConfig::paper_scale();
        assert_eq!(cfg.videos, 54);
        assert!((11_000..12_000).contains(&cfg.total_shots()));
    }

    #[test]
    fn paper_scale_event_count_near_506() {
        // Generating scripts only (no rendering) is cheap even at scale.
        let a = SyntheticArchive::generate(ArchiveConfig {
            render: RenderConfig::small(),
            ..ArchiveConfig::paper_scale()
        });
        let events = a.total_events();
        // 11,556 shots × 4.4% × (1 + 15% doubles) ≈ 585; accept a wide band
        // around the paper's 506.
        assert!(
            (400..750).contains(&events),
            "event count {events} far from paper's 506"
        );
    }
}
