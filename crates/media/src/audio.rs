//! PCM audio buffers — the synthetic "audio tracks".

use serde::{Deserialize, Serialize};

/// A mono PCM audio clip with `f64` samples in `[-1, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AudioBuf {
    sample_rate: u32,
    samples: Vec<f64>,
}

impl AudioBuf {
    /// Wraps raw samples at the given rate.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate == 0`.
    pub fn new(sample_rate: u32, samples: Vec<f64>) -> Self {
        assert!(sample_rate > 0, "sample rate must be positive");
        AudioBuf {
            sample_rate,
            samples,
        }
    }

    /// Silence of the given length.
    pub fn silence(sample_rate: u32, len: usize) -> Self {
        AudioBuf::new(sample_rate, vec![0.0; len])
    }

    /// Samples per second.
    #[inline]
    pub fn sample_rate(&self) -> u32 {
        self.sample_rate
    }

    /// Raw samples.
    #[inline]
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Mutable raw samples (the synthesizer mixes layers in place).
    #[inline]
    pub fn samples_mut(&mut self) -> &mut [f64] {
        &mut self.samples
    }

    /// Number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if the clip holds no samples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Duration in seconds.
    pub fn duration_secs(&self) -> f64 {
        self.samples.len() as f64 / self.sample_rate as f64
    }

    /// Hard-clips all samples into `[-1, 1]` (after mixing layers).
    pub fn clamp(&mut self) {
        for s in &mut self.samples {
            *s = s.clamp(-1.0, 1.0);
        }
    }

    /// Short-time volume series: RMS of consecutive non-overlapping windows
    /// of `window` samples. This is the "volume" the paper's `volume_*`
    /// features summarize.
    pub fn volume_series(&self, window: usize) -> Vec<f64> {
        if window == 0 {
            return Vec::new();
        }
        self.samples
            .chunks_exact(window)
            .map(hmmm_signal::rms)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_duration() {
        let a = AudioBuf::silence(8000, 16000);
        assert_eq!(a.sample_rate(), 8000);
        assert_eq!(a.len(), 16000);
        assert!((a.duration_secs() - 2.0).abs() < 1e-12);
        assert!(!a.is_empty());
    }

    #[test]
    #[should_panic(expected = "sample rate")]
    fn zero_sample_rate_panics() {
        AudioBuf::new(0, vec![]);
    }

    #[test]
    fn clamp_limits_samples() {
        let mut a = AudioBuf::new(8000, vec![2.0, -3.0, 0.5]);
        a.clamp();
        assert_eq!(a.samples(), &[1.0, -1.0, 0.5]);
    }

    #[test]
    fn volume_series_windows() {
        // 4 samples of amplitude 1, then 4 of amplitude 0.
        let mut s = vec![1.0; 4];
        s.extend(vec![0.0; 4]);
        let a = AudioBuf::new(8000, s);
        let v = a.volume_series(4);
        assert_eq!(v.len(), 2);
        assert!((v[0] - 1.0).abs() < 1e-12);
        assert_eq!(v[1], 0.0);
        assert!(a.volume_series(0).is_empty());
    }
}
