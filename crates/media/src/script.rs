//! Event scripts — ground-truth shot/event sequences for a synthetic video.
//!
//! A script is the "reality" a synthetic video renders: a sequence of shots,
//! each with a camera setup, a duration, and zero or more semantic events.
//! Scripts are produced by a small domain Markov chain that mimics soccer
//! causality (free kicks lead to goals, fouls draw cards, goals are followed
//! by substitutions and goal kicks), so archives contain genuine temporal
//! patterns for the retrieval engine to find — and the script doubles as
//! ground truth when scoring retrieval accuracy.

use crate::camera::CameraSetup;
use crate::event::EventKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One scripted shot: the atomic unit of the level-1 MMM.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScriptedShot {
    /// Camera configuration for the whole shot (a shot *is* one camera
    /// operation, per the paper's §4.2.1 definition).
    pub camera: CameraSetup,
    /// Events annotated on this shot (0, 1 or 2 — the paper's worked example
    /// has a shot annotated "Free Kick" + "Goal").
    pub events: Vec<EventKind>,
    /// Number of frames this shot spans.
    pub frames: usize,
}

impl ScriptedShot {
    /// `true` if the shot carries at least one event annotation.
    pub fn is_annotated(&self) -> bool {
        !self.events.is_empty()
    }
}

/// Configuration for script generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScriptConfig {
    /// Number of shots to generate.
    pub shots: usize,
    /// Probability that a shot carries an event (paper's archive:
    /// 506 events / 11,567 shots ≈ 0.044).
    pub event_rate: f64,
    /// Probability that an event shot carries a *second* event
    /// (e.g. "free kick" + "goal" on the same shot).
    pub double_event_rate: f64,
    /// Inclusive range of frames per shot.
    pub min_frames: usize,
    /// See [`ScriptConfig::min_frames`].
    pub max_frames: usize,
    /// RNG seed — same seed, same script.
    pub seed: u64,
}

impl Default for ScriptConfig {
    fn default() -> Self {
        ScriptConfig {
            shots: 200,
            event_rate: 0.044,
            double_event_rate: 0.15,
            min_frames: 8,
            max_frames: 16,
            seed: 0x5eed,
        }
    }
}

/// A complete per-video script.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventScript {
    shots: Vec<ScriptedShot>,
}

impl EventScript {
    /// Wraps an explicit shot list (used by tests and hand-built fixtures).
    pub fn from_shots(shots: Vec<ScriptedShot>) -> Self {
        EventScript { shots }
    }

    /// Generates a script from the domain Markov chain.
    pub fn generate(config: &ScriptConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut shots = Vec::with_capacity(config.shots);
        let mut last_event: Option<EventKind> = None;

        for _ in 0..config.shots {
            let frames = if config.max_frames > config.min_frames {
                rng.gen_range(config.min_frames..=config.max_frames)
            } else {
                config.min_frames
            };

            let mut events = Vec::new();
            if rng.gen_bool(config.event_rate.clamp(0.0, 1.0)) {
                let first = sample_event(&mut rng, last_event);
                events.push(first);
                if rng.gen_bool(config.double_event_rate.clamp(0.0, 1.0)) {
                    if let Some(second) = companion_event(&mut rng, first) {
                        events.push(second);
                    }
                }
                last_event = Some(*events.last().expect("just pushed"));
            } else if rng.gen_bool(0.3) {
                // Long stretches of plain play gradually wash out causality.
                last_event = None;
            }

            let camera = camera_for(&mut rng, events.last().copied());
            shots.push(ScriptedShot {
                camera,
                events,
                frames,
            });
        }
        EventScript { shots }
    }

    /// The scripted shots, in temporal order.
    #[inline]
    pub fn shots(&self) -> &[ScriptedShot] {
        &self.shots
    }

    /// Number of shots.
    #[inline]
    pub fn len(&self) -> usize {
        self.shots.len()
    }

    /// `true` if the script has no shots.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.shots.is_empty()
    }

    /// Total number of event annotations across all shots.
    pub fn event_count(&self) -> usize {
        self.shots.iter().map(|s| s.events.len()).sum()
    }

    /// Number of shots carrying at least one annotation.
    pub fn annotated_shot_count(&self) -> usize {
        self.shots.iter().filter(|s| s.is_annotated()).count()
    }

    /// Count of each event kind, indexed by [`EventKind::index`]. This is
    /// one row of the paper's `B_2` event-number matrix.
    pub fn event_histogram(&self) -> [usize; EventKind::COUNT] {
        let mut counts = [0usize; EventKind::COUNT];
        for shot in &self.shots {
            for &e in &shot.events {
                counts[e.index()] += 1;
            }
        }
        counts
    }

    /// Ground-truth occurrences of a temporal pattern: ordered shot-index
    /// sequences `i_1 ≤ i_2 ≤ … ≤ i_C` where shot `i_j` carries event
    /// `pattern[j]`, consecutive steps are at most `max_gap` shots apart,
    /// and equal indices are allowed only for multi-event shots (the
    /// paper's `T_{e_j} ≤ T_{e_{j+1}}`).
    ///
    /// Matches are enumerated left-to-right without reusing a shot for two
    /// *identical* consecutive events.
    pub fn pattern_occurrences(&self, pattern: &[EventKind], max_gap: usize) -> Vec<Vec<usize>> {
        if pattern.is_empty() {
            return Vec::new();
        }
        let mut results = Vec::new();
        let mut partial: Vec<usize> = Vec::with_capacity(pattern.len());
        self.search_pattern(pattern, max_gap, 0, &mut partial, &mut results);
        results
    }

    fn search_pattern(
        &self,
        pattern: &[EventKind],
        max_gap: usize,
        step: usize,
        partial: &mut Vec<usize>,
        results: &mut Vec<Vec<usize>>,
    ) {
        if step == pattern.len() {
            results.push(partial.clone());
            return;
        }
        let (start, end) = if step == 0 {
            (0, self.shots.len())
        } else {
            let prev = partial[step - 1];
            (prev, (prev + max_gap + 1).min(self.shots.len()))
        };
        for i in start..end {
            // Same-shot reuse is allowed only when the shot carries both
            // events (distinct annotation slots).
            if step > 0 && i == partial[step - 1] {
                let prev_event = pattern[step - 1];
                let this_event = pattern[step];
                let shot = &self.shots[i];
                let has_both = shot.events.iter().filter(|&&e| e == prev_event).count()
                    + shot.events.iter().filter(|&&e| e == this_event).count()
                    >= 2
                    && shot.events.contains(&this_event);
                if !(has_both && prev_event != this_event) {
                    continue;
                }
            } else if !self.shots[i].events.contains(&pattern[step]) {
                continue;
            }
            partial.push(i);
            self.search_pattern(pattern, max_gap, step + 1, partial, results);
            partial.pop();
        }
    }
}

/// Samples the next event from the domain Markov chain.
fn sample_event(rng: &mut StdRng, last: Option<EventKind>) -> EventKind {
    use EventKind::*;
    // (event, weight) — conditioned on the previous event.
    let table: &[(EventKind, f64)] = match last {
        Some(FreeKick) => &[
            (Goal, 3.0),
            (CornerKick, 1.5),
            (GoalKick, 1.5),
            (Foul, 1.0),
            (FreeKick, 0.5),
        ],
        Some(CornerKick) => &[
            (Goal, 2.5),
            (GoalKick, 2.0),
            (CornerKick, 1.0),
            (Foul, 1.0),
        ],
        Some(Foul) => &[
            (FreeKick, 3.5),
            (YellowCard, 2.0),
            (RedCard, 0.4),
            (Foul, 0.6),
        ],
        Some(Goal) => &[
            (PlayerChange, 2.5),
            (GoalKick, 2.0),
            (Foul, 1.0),
            (CornerKick, 0.8),
        ],
        Some(YellowCard) => &[(FreeKick, 3.0), (Foul, 1.0), (PlayerChange, 1.0)],
        Some(RedCard) => &[(FreeKick, 2.5), (PlayerChange, 2.0)],
        Some(GoalKick) => &[(Foul, 1.5), (CornerKick, 1.2), (FreeKick, 1.2), (Goal, 0.6)],
        Some(PlayerChange) => &[(Foul, 1.5), (CornerKick, 1.0), (FreeKick, 1.0), (Goal, 0.8)],
        None => &[
            (Foul, 2.5),
            (FreeKick, 2.0),
            (CornerKick, 1.8),
            (GoalKick, 1.6),
            (Goal, 1.0),
            (PlayerChange, 0.8),
            (YellowCard, 0.7),
            (RedCard, 0.1),
        ],
    };
    weighted_choice(rng, table)
}

/// Possible second event on the same shot (e.g. the kick that scores).
fn companion_event(rng: &mut StdRng, first: EventKind) -> Option<EventKind> {
    use EventKind::*;
    let table: &[(EventKind, f64)] = match first {
        FreeKick => &[(Goal, 3.0), (Foul, 0.5)],
        CornerKick => &[(Goal, 2.0)],
        Foul => &[(YellowCard, 2.0), (RedCard, 0.3), (FreeKick, 1.0)],
        Goal => &[(PlayerChange, 1.0)],
        _ => return None,
    };
    Some(weighted_choice(rng, table))
}

/// Camera selection given the shot's (last) event.
fn camera_for(rng: &mut StdRng, event: Option<EventKind>) -> CameraSetup {
    use CameraSetup::*;
    use EventKind::*;
    let table: &[(CameraSetup, f64)] = match event {
        Some(Goal) => &[(Wide, 2.0), (Crowd, 1.5), (Medium, 1.0)],
        Some(CornerKick) | Some(GoalKick) | Some(FreeKick) => {
            &[(Wide, 3.0), (Medium, 1.5), (Closeup, 0.3)]
        }
        Some(Foul) => &[(Medium, 2.0), (Closeup, 1.5), (Wide, 1.0)],
        Some(YellowCard) | Some(RedCard) => &[(Closeup, 3.0), (Medium, 1.0)],
        Some(PlayerChange) => &[(Medium, 2.0), (Closeup, 1.5), (Crowd, 0.5)],
        None => &[(Wide, 3.0), (Medium, 2.0), (Closeup, 0.6), (Crowd, 0.4)],
    };
    weighted_choice(rng, table)
}

fn weighted_choice<T: Copy>(rng: &mut StdRng, table: &[(T, f64)]) -> T {
    let total: f64 = table.iter().map(|&(_, w)| w).sum();
    let mut pick = rng.gen_range(0.0..total);
    for &(item, w) in table {
        if pick < w {
            return item;
        }
        pick -= w;
    }
    table.last().expect("weighted tables are non-empty").0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shot(events: Vec<EventKind>) -> ScriptedShot {
        ScriptedShot {
            camera: CameraSetup::Wide,
            events,
            frames: 10,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = ScriptConfig::default();
        let a = EventScript::generate(&cfg);
        let b = EventScript::generate(&cfg);
        assert_eq!(a, b);
        let mut cfg2 = cfg.clone();
        cfg2.seed += 1;
        assert_ne!(a, EventScript::generate(&cfg2));
    }

    #[test]
    fn event_rate_is_respected() {
        let cfg = ScriptConfig {
            shots: 5000,
            event_rate: 0.05,
            ..ScriptConfig::default()
        };
        let script = EventScript::generate(&cfg);
        assert_eq!(script.len(), 5000);
        let rate = script.annotated_shot_count() as f64 / script.len() as f64;
        assert!((0.03..0.07).contains(&rate), "rate {rate} out of range");
    }

    #[test]
    fn frames_within_bounds() {
        let cfg = ScriptConfig {
            shots: 500,
            min_frames: 6,
            max_frames: 9,
            ..ScriptConfig::default()
        };
        let script = EventScript::generate(&cfg);
        assert!(script
            .shots()
            .iter()
            .all(|s| (6..=9).contains(&s.frames)));
    }

    #[test]
    fn event_histogram_sums_to_event_count() {
        let cfg = ScriptConfig {
            shots: 2000,
            event_rate: 0.2,
            ..ScriptConfig::default()
        };
        let script = EventScript::generate(&cfg);
        let hist = script.event_histogram();
        assert_eq!(hist.iter().sum::<usize>(), script.event_count());
        assert!(script.event_count() >= script.annotated_shot_count());
    }

    #[test]
    fn free_kick_goal_causality_present() {
        // With a high event rate the domain chain must show its structure:
        // goals follow free kicks disproportionately.
        let cfg = ScriptConfig {
            shots: 20_000,
            event_rate: 0.5,
            double_event_rate: 0.0,
            seed: 42,
            ..ScriptConfig::default()
        };
        let script = EventScript::generate(&cfg);
        let occurrences = script.pattern_occurrences(&[EventKind::FreeKick, EventKind::Goal], 3);
        assert!(
            occurrences.len() > 20,
            "expected many free_kick→goal patterns, got {}",
            occurrences.len()
        );
    }

    #[test]
    fn pattern_occurrences_simple() {
        let script = EventScript::from_shots(vec![
            shot(vec![EventKind::FreeKick]),
            shot(vec![]),
            shot(vec![EventKind::Goal]),
            shot(vec![EventKind::Goal]),
        ]);
        let hits = script.pattern_occurrences(&[EventKind::FreeKick, EventKind::Goal], 3);
        assert_eq!(hits, vec![vec![0, 2], vec![0, 3]]);
        // Gap limit prunes the distant goal.
        let hits = script.pattern_occurrences(&[EventKind::FreeKick, EventKind::Goal], 2);
        assert_eq!(hits, vec![vec![0, 2]]);
    }

    #[test]
    fn pattern_occurrences_same_shot_double_event() {
        // A shot annotated free_kick+goal matches the 2-step pattern at a
        // single index, per the paper's T_{e1} ≤ T_{e2}.
        let script = EventScript::from_shots(vec![shot(vec![
            EventKind::FreeKick,
            EventKind::Goal,
        ])]);
        let hits = script.pattern_occurrences(&[EventKind::FreeKick, EventKind::Goal], 2);
        assert_eq!(hits, vec![vec![0, 0]]);
        // But an identical repeated event cannot reuse the same annotation.
        let script = EventScript::from_shots(vec![shot(vec![EventKind::Goal])]);
        let hits = script.pattern_occurrences(&[EventKind::Goal, EventKind::Goal], 2);
        assert!(hits.is_empty());
    }

    #[test]
    fn empty_pattern_matches_nothing() {
        let script = EventScript::from_shots(vec![shot(vec![EventKind::Goal])]);
        assert!(script.pattern_occurrences(&[], 5).is_empty());
    }

    #[test]
    fn serde_round_trip() {
        let cfg = ScriptConfig {
            shots: 50,
            ..ScriptConfig::default()
        };
        let script = EventScript::generate(&cfg);
        let json = serde_json::to_string(&script).unwrap();
        let back: EventScript = serde_json::from_str(&json).unwrap();
        assert_eq!(script, back);
    }
}
