//! RGB pixel buffers — the synthetic "video frames".

use serde::{Deserialize, Serialize};

/// An 8-bit RGB pixel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rgb {
    /// Red channel.
    pub r: u8,
    /// Green channel.
    pub g: u8,
    /// Blue channel.
    pub b: u8,
}

impl Rgb {
    /// Creates a pixel.
    #[inline]
    pub const fn new(r: u8, g: u8, b: u8) -> Self {
        Rgb { r, g, b }
    }

    /// Rec. 601 luminance in `[0, 255]`.
    #[inline]
    pub fn luminance(self) -> f64 {
        0.299 * self.r as f64 + 0.587 * self.g as f64 + 0.114 * self.b as f64
    }

    /// Whether the pixel reads as "grass": green clearly dominates red and
    /// blue. This is the pixel classifier behind the `grass_ratio` feature
    /// (the paper's soccer-video pipeline does the same green-dominance
    /// test on real frames).
    #[inline]
    pub fn is_grass(self) -> bool {
        let (r, g, b) = (self.r as i16, self.g as i16, self.b as i16);
        g > 60 && g - r > 20 && g - b > 20
    }

    /// Squared per-channel distance to another pixel.
    #[inline]
    pub fn dist_sqr(self, other: Rgb) -> u32 {
        let dr = self.r as i32 - other.r as i32;
        let dg = self.g as i32 - other.g as i32;
        let db = self.b as i32 - other.b as i32;
        (dr * dr + dg * dg + db * db) as u32
    }
}

/// A width × height frame of RGB pixels, row-major.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PixelBuf {
    width: usize,
    height: usize,
    pixels: Vec<Rgb>,
}

impl PixelBuf {
    /// Creates a frame filled with `fill`.
    pub fn filled(width: usize, height: usize, fill: Rgb) -> Self {
        PixelBuf {
            width,
            height,
            pixels: vec![fill; width * height],
        }
    }

    /// Frame width in pixels.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Frame height in pixels.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total pixel count.
    #[inline]
    pub fn len(&self) -> usize {
        self.pixels.len()
    }

    /// `true` for a zero-area frame.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pixels.is_empty()
    }

    /// Pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> Rgb {
        debug_assert!(x < self.width && y < self.height);
        self.pixels[y * self.width + x]
    }

    /// Sets the pixel at `(x, y)`; out-of-bounds writes are ignored (the
    /// renderer draws blobs that may straddle frame edges).
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, p: Rgb) {
        if x < self.width && y < self.height {
            self.pixels[y * self.width + x] = p;
        }
    }

    /// All pixels, row-major.
    #[inline]
    pub fn pixels(&self) -> &[Rgb] {
        &self.pixels
    }

    /// Fraction of pixels classified as grass (see [`Rgb::is_grass`]).
    pub fn grass_ratio(&self) -> f64 {
        if self.pixels.is_empty() {
            return 0.0;
        }
        let grass = self.pixels.iter().filter(|p| p.is_grass()).count();
        grass as f64 / self.pixels.len() as f64
    }

    /// Fraction of pixels whose squared RGB distance to the corresponding
    /// pixel of `other` exceeds `threshold_sqr`.
    ///
    /// This is the `pixel_change_percent` primitive: percent of changed
    /// pixels between frames within a shot.
    ///
    /// # Panics
    ///
    /// Panics if frame dimensions differ.
    pub fn changed_fraction(&self, other: &PixelBuf, threshold_sqr: u32) -> f64 {
        assert_eq!(
            (self.width, self.height),
            (other.width, other.height),
            "frames must have equal dimensions"
        );
        if self.pixels.is_empty() {
            return 0.0;
        }
        let changed = self
            .pixels
            .iter()
            .zip(other.pixels.iter())
            .filter(|(a, b)| a.dist_sqr(**b) > threshold_sqr)
            .count();
        changed as f64 / self.pixels.len() as f64
    }

    /// Luminance histogram with `bins` bins over `[0, 256)`.
    pub fn luminance_histogram(&self, bins: usize) -> hmmm_signal::Histogram {
        hmmm_signal::Histogram::from_samples(
            self.pixels.iter().map(|p| p.luminance()),
            bins,
            0.0,
            256.0,
        )
    }

    /// Mean and population variance of the luminance of *non-grass*
    /// ("background") pixels — the primitives behind `background_mean` and
    /// `background_var`. Returns `(0.0, 0.0)` if every pixel is grass.
    pub fn background_stats(&self) -> (f64, f64) {
        let stats: hmmm_signal::Stats = self
            .pixels
            .iter()
            .filter(|p| !p.is_grass())
            .map(|p| p.luminance())
            .collect();
        (stats.mean(), stats.population_variance())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GRASS: Rgb = Rgb::new(40, 150, 45);
    const SKY: Rgb = Rgb::new(120, 130, 200);

    #[test]
    fn luminance_extremes() {
        assert_eq!(Rgb::new(0, 0, 0).luminance(), 0.0);
        assert!((Rgb::new(255, 255, 255).luminance() - 255.0).abs() < 1e-9);
        // Green weighs most.
        assert!(Rgb::new(0, 200, 0).luminance() > Rgb::new(200, 0, 0).luminance());
    }

    #[test]
    fn grass_classifier() {
        assert!(GRASS.is_grass());
        assert!(!SKY.is_grass());
        assert!(!Rgb::new(200, 210, 190).is_grass()); // washed out, no dominance
        assert!(!Rgb::new(10, 50, 10).is_grass()); // too dark
    }

    #[test]
    fn grass_ratio_counts() {
        let mut f = PixelBuf::filled(4, 2, SKY);
        f.set(0, 0, GRASS);
        f.set(1, 0, GRASS);
        assert!((f.grass_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(PixelBuf::filled(0, 0, SKY).grass_ratio(), 0.0);
    }

    #[test]
    fn set_out_of_bounds_is_ignored() {
        let mut f = PixelBuf::filled(2, 2, SKY);
        f.set(5, 5, GRASS);
        assert_eq!(f.grass_ratio(), 0.0);
    }

    #[test]
    fn changed_fraction_identical_frames() {
        let f = PixelBuf::filled(8, 8, GRASS);
        assert_eq!(f.changed_fraction(&f.clone(), 25), 0.0);
    }

    #[test]
    fn changed_fraction_detects_changes() {
        let a = PixelBuf::filled(2, 2, Rgb::new(0, 0, 0));
        let mut b = a.clone();
        b.set(0, 0, Rgb::new(255, 255, 255));
        assert!((a.changed_fraction(&b, 25) - 0.25).abs() < 1e-12);
        // Below-threshold noise does not count.
        let mut c = a.clone();
        c.set(0, 0, Rgb::new(2, 2, 2));
        assert_eq!(a.changed_fraction(&c, 25), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal dimensions")]
    fn changed_fraction_dimension_mismatch() {
        let a = PixelBuf::filled(2, 2, GRASS);
        let b = PixelBuf::filled(3, 2, GRASS);
        let _ = a.changed_fraction(&b, 25);
    }

    #[test]
    fn luminance_histogram_mass() {
        let f = PixelBuf::filled(4, 4, SKY);
        let h = f.luminance_histogram(8);
        assert_eq!(h.total(), 16.0);
    }

    #[test]
    fn background_stats_exclude_grass() {
        let mut f = PixelBuf::filled(2, 1, GRASS);
        f.set(1, 0, Rgb::new(100, 100, 100));
        let (mean, var) = f.background_stats();
        assert!((mean - Rgb::new(100, 100, 100).luminance()).abs() < 1e-9);
        assert_eq!(var, 0.0);
        let all_grass = PixelBuf::filled(2, 2, GRASS);
        assert_eq!(all_grass.background_stats(), (0.0, 0.0));
    }
}
