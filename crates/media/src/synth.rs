//! The soccer scene renderer: event scripts → pixels + PCM audio.
//!
//! The renderer's job is not to look pretty — it is to make the *statistics*
//! of each shot depend on its camera setup and events the way real broadcast
//! footage does, so that the Table-1 feature extractors and the decision-tree
//! event miner operate on signals with genuine structure:
//!
//! * grass coverage tracks the camera setup (`grass_ratio`);
//! * player motion and camera pans change pixels between frames
//!   (`pixel_change_percent`, `histo_change`);
//! * the stands/crowd region sets background brightness statistics
//!   (`background_mean`, `background_var`);
//! * goals trigger loud low-frequency crowd cheers (volume + `sub1` energy),
//!   whistles are high-frequency tones (`sub3` energy), substitutions get
//!   broadband applause (spectrum flux).

use crate::audio::AudioBuf;
use crate::event::EventKind;
use crate::pixel::{PixelBuf, Rgb};
use crate::script::ScriptedShot;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Rendering parameters shared by a whole archive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RenderConfig {
    /// Frame width in pixels.
    pub frame_width: usize,
    /// Frame height in pixels.
    pub frame_height: usize,
    /// Audio sample rate in Hz.
    pub sample_rate: u32,
    /// Audio samples generated per video frame.
    pub samples_per_frame: usize,
}

impl Default for RenderConfig {
    fn default() -> Self {
        RenderConfig {
            frame_width: 64,
            frame_height: 48,
            sample_rate: 8000,
            samples_per_frame: 640,
        }
    }
}

impl RenderConfig {
    /// A reduced-cost profile for very large archives (paper-scale sweeps).
    pub fn small() -> Self {
        RenderConfig {
            frame_width: 32,
            frame_height: 24,
            sample_rate: 8000,
            samples_per_frame: 320,
        }
    }
}

/// Audio/visual intensity profile implied by a shot's events.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct ShotProfile {
    /// Player speed multiplier (pixels per frame).
    pub motion: f64,
    /// Camera pan speed (pixels per frame).
    pub pan: f64,
    /// Crowd noise floor amplitude, `[0, 1]`.
    pub crowd: f64,
    /// Goal-cheer amplitude (loud, low-frequency-weighted).
    pub cheer: f64,
    /// Referee whistle amplitude (high-frequency tone bursts).
    pub whistle: f64,
    /// Applause amplitude (broadband bursts → high spectrum flux).
    pub applause: f64,
}

impl ShotProfile {
    fn neutral() -> Self {
        ShotProfile {
            motion: 1.0,
            pan: 0.6,
            crowd: 0.12,
            cheer: 0.0,
            whistle: 0.0,
            applause: 0.0,
        }
    }

    fn for_event(event: EventKind) -> Self {
        use EventKind::*;
        match event {
            Goal => ShotProfile {
                motion: 2.5,
                pan: 2.0,
                crowd: 0.25,
                cheer: 0.8,
                whistle: 0.15,
                applause: 0.3,
            },
            CornerKick => ShotProfile {
                motion: 1.2,
                pan: 0.8,
                crowd: 0.18,
                cheer: 0.1,
                whistle: 0.5,
                applause: 0.0,
            },
            FreeKick => ShotProfile {
                motion: 0.8,
                pan: 0.4,
                crowd: 0.15,
                cheer: 0.05,
                whistle: 0.6,
                applause: 0.0,
            },
            Foul => ShotProfile {
                motion: 1.5,
                pan: 0.8,
                crowd: 0.2,
                cheer: 0.0,
                whistle: 0.7,
                applause: 0.0,
            },
            GoalKick => ShotProfile {
                motion: 0.6,
                pan: 1.0,
                crowd: 0.12,
                cheer: 0.0,
                whistle: 0.3,
                applause: 0.0,
            },
            YellowCard => ShotProfile {
                motion: 0.5,
                pan: 0.2,
                crowd: 0.22,
                cheer: 0.0,
                whistle: 0.4,
                applause: 0.1,
            },
            RedCard => ShotProfile {
                motion: 0.6,
                pan: 0.2,
                crowd: 0.3,
                cheer: 0.0,
                whistle: 0.5,
                applause: 0.2,
            },
            PlayerChange => ShotProfile {
                motion: 0.4,
                pan: 0.3,
                crowd: 0.15,
                cheer: 0.0,
                whistle: 0.05,
                applause: 0.6,
            },
        }
    }

    /// Combines the profiles of all events on a shot (component-wise max on
    /// bursts, max on motion — a goal-from-free-kick shot both whistles and
    /// erupts).
    pub(crate) fn for_shot(shot: &ScriptedShot) -> Self {
        let mut p = ShotProfile::neutral();
        for &e in &shot.events {
            let q = ShotProfile::for_event(e);
            p.motion = p.motion.max(q.motion);
            p.pan = p.pan.max(q.pan);
            p.crowd = p.crowd.max(q.crowd);
            p.cheer = p.cheer.max(q.cheer);
            p.whistle = p.whistle.max(q.whistle);
            p.applause = p.applause.max(q.applause);
        }
        p
    }
}

/// Renders all frames of one shot.
pub(crate) fn render_frames(
    cfg: &RenderConfig,
    shot: &ScriptedShot,
    rng: &mut StdRng,
) -> Vec<PixelBuf> {
    let profile = ShotProfile::for_shot(shot);
    let w = cfg.frame_width;
    let h = cfg.frame_height;
    let camera = shot.camera;

    // Player blobs: fixed count for the camera, random start + velocity.
    let n_players = camera.player_count();
    let mut px: Vec<f64> = (0..n_players).map(|_| rng.gen_range(0.0..w as f64)).collect();
    let mut py: Vec<f64> = (0..n_players)
        .map(|_| rng.gen_range(h as f64 * (1.0 - camera.grass_fraction())..h as f64))
        .collect();
    let vels: Vec<(f64, f64)> = (0..n_players)
        .map(|_| {
            (
                rng.gen_range(-1.0..1.0) * profile.motion,
                rng.gen_range(-0.4..0.4) * profile.motion,
            )
        })
        .collect();
    let team_colors = [Rgb::new(210, 40, 40), Rgb::new(40, 60, 200)];

    // Per-shot scene identity: each camera operation frames a slightly
    // different slice of the stadium (lighting, pitch section, stripe
    // width), so even cuts between two same-setup shots carry a visual
    // signature a boundary detector can find — as they do in real footage.
    let scene_grass_shift = rng.gen_range(-18.0..18.0);
    let scene_bg_shift = rng.gen_range(-25.0..25.0);
    let scene_stripe_w = rng.gen_range(4.0..9.0);
    let scene_grass_frac =
        (camera.grass_fraction() + rng.gen_range(-0.06..0.06)).clamp(0.0, 1.0);

    let mut pan_offset = 0.0f64;
    let mut frames = Vec::with_capacity(shot.frames);

    for _ in 0..shot.frames {
        let mut frame = PixelBuf::filled(w, h, Rgb::new(0, 0, 0));
        let grass_rows = (scene_grass_frac * h as f64).round() as usize;
        let horizon = h.saturating_sub(grass_rows);

        // Stands / background above the horizon.
        let bg_mean = camera.background_brightness() + scene_bg_shift;
        let bg_noise = camera.background_noise();
        for y in 0..horizon {
            for x in 0..w {
                let n = (rng.gen::<f64>() - 0.5) * 2.0 * bg_noise;
                let v = (bg_mean + n).clamp(0.0, 255.0) as u8;
                // Slight blue/red tint so the crowd is not pure gray.
                let tint = ((x * 7 + y * 13) % 3) as u8 * 6;
                frame.set(x, y, Rgb::new(v.saturating_add(tint), v, v.saturating_sub(tint / 2)));
            }
        }

        // Grass with mowing stripes that pan horizontally.
        for y in horizon..h {
            for x in 0..w {
                let stripe =
                    (((x as f64 + pan_offset) / scene_stripe_w).floor() as i64).rem_euclid(2);
                let base_g = scene_grass_shift + if stripe == 0 { 150.0 } else { 130.0 };
                let n = (rng.gen::<f64>() - 0.5) * 14.0;
                let g = (base_g + n).clamp(0.0, 255.0) as u8;
                frame.set(x, y, Rgb::new(40, g, 45));
            }
        }

        // Players.
        let radius = camera.player_radius() as i64;
        for (i, (&x, &y)) in px.iter().zip(py.iter()).enumerate() {
            let color = team_colors[i % 2];
            let (cx, cy) = (x as i64, y as i64);
            for dy in -radius..=radius {
                for dx in -radius..=radius {
                    if dx * dx + dy * dy <= radius * radius {
                        let (fx, fy) = (cx + dx, cy + dy);
                        if fx >= 0 && fy >= 0 {
                            frame.set(fx as usize, fy as usize, color);
                        }
                    }
                }
            }
        }

        // Advance motion state.
        pan_offset += profile.pan;
        for i in 0..n_players {
            px[i] = (px[i] + vels[i].0).rem_euclid(w as f64);
            py[i] = (py[i] + vels[i].1)
                .clamp(h as f64 * (1.0 - camera.grass_fraction()), h as f64 - 1.0);
        }

        frames.push(frame);
    }
    frames
}

/// Renders the audio track of one shot.
pub(crate) fn render_audio(cfg: &RenderConfig, shot: &ScriptedShot, rng: &mut StdRng) -> AudioBuf {
    let profile = ShotProfile::for_shot(shot);
    let len = shot.frames * cfg.samples_per_frame;
    let fs = cfg.sample_rate as f64;
    let mut audio = AudioBuf::silence(cfg.sample_rate, len);
    if len == 0 {
        return audio;
    }
    let samples = audio.samples_mut();

    // 1. Crowd noise floor: low-pass filtered white noise (one-pole).
    let mut lp = 0.0f64;
    let alpha = 0.12; // heavy smoothing → low-frequency rumble
    for s in samples.iter_mut() {
        let white: f64 = rng.gen_range(-1.0..1.0);
        lp += alpha * (white - lp);
        *s += lp * profile.crowd * 3.0;
    }

    // 2. Goal cheer: a swelling, even deeper rumble over the middle half.
    if profile.cheer > 0.0 {
        let start = len / 4;
        let end = len.min(start + len / 2);
        let mut lp2 = 0.0f64;
        for (i, s) in samples[start..end].iter_mut().enumerate() {
            let t = i as f64 / (end - start) as f64;
            let envelope = (std::f64::consts::PI * t).sin(); // swell and fade
            let white: f64 = rng.gen_range(-1.0..1.0);
            lp2 += 0.05 * (white - lp2);
            *s += lp2 * profile.cheer * 8.0 * envelope;
        }
    }

    // 3. Referee whistle: two high-frequency tone bursts.
    if profile.whistle > 0.0 {
        let tone_hz = 0.8 * fs / 2.0; // well inside the top third of the spectrum
        let burst = (fs * 0.25) as usize; // 250 ms
        for &burst_start in &[len / 8, len / 2] {
            let end = len.min(burst_start + burst);
            for (i, s) in samples[burst_start..end].iter_mut().enumerate() {
                let t = i as f64 / fs;
                *s += profile.whistle * 0.7 * (2.0 * std::f64::consts::PI * tone_hz * t).sin();
            }
        }
    }

    // 4. Applause: gated white noise. Alternating between flat white-noise
    // bursts and the low-passed crowd floor swings the normalized spectrum
    // shape back and forth → high spectrum flux.
    if profile.applause > 0.0 {
        let gate = (fs * 0.1) as usize; // 100 ms gates
        let mut i = 0;
        while i < len {
            let end = len.min(i + gate);
            if rng.gen_bool(0.5) {
                for s in samples[i..end].iter_mut() {
                    *s += profile.applause * 1.2 * rng.gen_range(-1.0..1.0);
                }
            }
            i = end;
        }
    }

    audio.clamp();
    audio
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::camera::CameraSetup;
    use crate::script::ScriptedShot;
    use hmmm_signal::{band_energies, rms};
    use rand::SeedableRng;

    fn shot(camera: CameraSetup, events: Vec<EventKind>, frames: usize) -> ScriptedShot {
        ScriptedShot {
            camera,
            events,
            frames,
        }
    }

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn frame_count_and_shape() {
        let cfg = RenderConfig::default();
        let frames = render_frames(&cfg, &shot(CameraSetup::Wide, vec![], 5), &mut rng(1));
        assert_eq!(frames.len(), 5);
        assert_eq!(frames[0].width(), cfg.frame_width);
        assert_eq!(frames[0].height(), cfg.frame_height);
    }

    #[test]
    fn grass_ratio_tracks_camera() {
        let cfg = RenderConfig::default();
        let wide = render_frames(&cfg, &shot(CameraSetup::Wide, vec![], 3), &mut rng(2));
        let crowd = render_frames(&cfg, &shot(CameraSetup::Crowd, vec![], 3), &mut rng(3));
        let wide_ratio = wide[0].grass_ratio();
        let crowd_ratio = crowd[0].grass_ratio();
        assert!(
            wide_ratio > 0.5,
            "wide camera grass ratio too low: {wide_ratio}"
        );
        assert!(
            crowd_ratio < 0.1,
            "crowd camera grass ratio too high: {crowd_ratio}"
        );
    }

    #[test]
    fn goal_shots_move_more_than_card_shots() {
        let cfg = RenderConfig::default();
        let goal = render_frames(
            &cfg,
            &shot(CameraSetup::Wide, vec![EventKind::Goal], 8),
            &mut rng(4),
        );
        let card = render_frames(
            &cfg,
            &shot(CameraSetup::Wide, vec![EventKind::YellowCard], 8),
            &mut rng(5),
        );
        let change = |frames: &[PixelBuf]| {
            frames
                .windows(2)
                .map(|w| w[0].changed_fraction(&w[1], 900))
                .sum::<f64>()
                / (frames.len() - 1) as f64
        };
        let goal_motion = change(&goal);
        let card_motion = change(&card);
        assert!(
            goal_motion > card_motion,
            "goal {goal_motion} vs card {card_motion}"
        );
    }

    #[test]
    fn audio_length_matches_frames() {
        let cfg = RenderConfig::default();
        let a = render_audio(&cfg, &shot(CameraSetup::Wide, vec![], 10), &mut rng(6));
        assert_eq!(a.len(), 10 * cfg.samples_per_frame);
        assert_eq!(a.sample_rate(), cfg.sample_rate);
        assert!(a.samples().iter().all(|s| (-1.0..=1.0).contains(s)));
    }

    #[test]
    fn goal_audio_is_louder() {
        let cfg = RenderConfig::default();
        let goal = render_audio(
            &cfg,
            &shot(CameraSetup::Wide, vec![EventKind::Goal], 12),
            &mut rng(7),
        );
        let quiet = render_audio(&cfg, &shot(CameraSetup::Wide, vec![], 12), &mut rng(8));
        assert!(
            rms(goal.samples()) > 1.5 * rms(quiet.samples()),
            "goal rms {} vs plain rms {}",
            rms(goal.samples()),
            rms(quiet.samples())
        );
    }

    #[test]
    fn whistle_energy_lands_in_top_band() {
        let cfg = RenderConfig::default();
        let foul = render_audio(
            &cfg,
            &shot(CameraSetup::Medium, vec![EventKind::Foul], 12),
            &mut rng(9),
        );
        let plain = render_audio(&cfg, &shot(CameraSetup::Medium, vec![], 12), &mut rng(10));
        let foul_bands = band_energies(foul.samples(), 3);
        let plain_bands = band_energies(plain.samples(), 3);
        // Whistle is a high-frequency tone: top-band share must rise sharply.
        let foul_share = foul_bands[2] / (foul_bands.iter().sum::<f64>() + 1e-12);
        let plain_share = plain_bands[2] / (plain_bands.iter().sum::<f64>() + 1e-12);
        assert!(
            foul_share > 2.0 * plain_share,
            "foul top-band share {foul_share} vs plain {plain_share}"
        );
    }

    #[test]
    fn applause_has_higher_volume_variability_than_plain_play() {
        // Gated applause alternates loud/quiet every ~100 ms; the volume
        // *difference* variability (Table 1's volume_stdd) must rise.
        let cfg = RenderConfig::default();
        let sub = render_audio(
            &cfg,
            &shot(CameraSetup::Medium, vec![EventKind::PlayerChange], 12),
            &mut rng(11),
        );
        let plain = render_audio(&cfg, &shot(CameraSetup::Medium, vec![], 12), &mut rng(12));
        let stdd = |a: &AudioBuf| {
            let vols = a.volume_series(256);
            let diffs = hmmm_signal::stats::differences(&vols);
            diffs.iter().copied().collect::<hmmm_signal::Stats>().population_std()
        };
        let sub_stdd = stdd(&sub);
        let plain_stdd = stdd(&plain);
        assert!(
            sub_stdd > 2.0 * plain_stdd,
            "applause volume_stdd {sub_stdd} vs plain {plain_stdd}"
        );
    }

    #[test]
    fn rendering_is_deterministic_per_seed() {
        let cfg = RenderConfig::default();
        let s = shot(CameraSetup::Wide, vec![EventKind::Goal], 4);
        let a = render_frames(&cfg, &s, &mut rng(42));
        let b = render_frames(&cfg, &s, &mut rng(42));
        assert_eq!(a, b);
    }

    #[test]
    fn zero_frame_shot_renders_empty() {
        let cfg = RenderConfig::default();
        let s = shot(CameraSetup::Wide, vec![], 0);
        assert!(render_frames(&cfg, &s, &mut rng(1)).is_empty());
        assert!(render_audio(&cfg, &s, &mut rng(1)).is_empty());
    }
}
