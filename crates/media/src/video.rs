//! Synthetic videos with deterministic, lazy shot rendering.

use crate::audio::AudioBuf;
use crate::pixel::PixelBuf;
use crate::script::{EventScript, ScriptedShot};
use crate::synth::{render_audio, render_frames, RenderConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// The rendered media of a single shot.
#[derive(Debug, Clone, PartialEq)]
pub struct RenderedShot {
    /// Video frames, in order.
    pub frames: Vec<PixelBuf>,
    /// The shot's audio track.
    pub audio: AudioBuf,
}

/// A synthetic video: an event script plus a deterministic renderer.
///
/// Media is **never stored** — any shot can be re-rendered on demand from
/// `(video_seed, shot_index)`, so a paper-scale archive (tens of thousands
/// of shots) holds pixels for at most one shot at a time while features are
/// extracted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticVideo {
    script: EventScript,
    config: RenderConfig,
    seed: u64,
}

impl SyntheticVideo {
    /// Wraps a script with rendering parameters and a seed.
    pub fn new(script: EventScript, config: RenderConfig, seed: u64) -> Self {
        SyntheticVideo {
            script,
            config,
            seed,
        }
    }

    /// The underlying ground-truth script.
    #[inline]
    pub fn script(&self) -> &EventScript {
        &self.script
    }

    /// Rendering parameters.
    #[inline]
    pub fn config(&self) -> &RenderConfig {
        &self.config
    }

    /// The video's render seed.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of shots.
    #[inline]
    pub fn shot_count(&self) -> usize {
        self.script.len()
    }

    /// The scripted shot at `index`.
    pub fn shot(&self, index: usize) -> Option<&ScriptedShot> {
        self.script.shots().get(index)
    }

    /// Renders the media for shot `index`.
    ///
    /// Deterministic: the same `(seed, index)` always yields identical
    /// frames and audio, independent of rendering order.
    ///
    /// Returns `None` for an out-of-range index.
    pub fn render_shot(&self, index: usize) -> Option<RenderedShot> {
        let shot = self.script.shots().get(index)?;
        // Derive a per-shot RNG stream: mix the video seed and shot index
        // through SplitMix64 so neighbouring shots decorrelate.
        let shot_seed = splitmix64(self.seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut vid_rng = StdRng::seed_from_u64(shot_seed);
        let frames = render_frames(&self.config, shot, &mut vid_rng);
        let mut aud_rng = StdRng::seed_from_u64(splitmix64(shot_seed ^ 0xA5A5_A5A5_A5A5_A5A5));
        let audio = render_audio(&self.config, shot, &mut aud_rng);
        Some(RenderedShot { frames, audio })
    }

    /// Iterates over all rendered shots (lazily, one at a time).
    pub fn rendered_shots(&self) -> impl Iterator<Item = RenderedShot> + '_ {
        (0..self.shot_count()).map(move |i| self.render_shot(i).expect("index in range"))
    }

    /// Renders the video as one continuous frame stream (all shots
    /// concatenated) — the input the shot-boundary detector sees, with the
    /// ground-truth cut positions recoverable from the script.
    pub fn frame_stream(&self) -> impl Iterator<Item = PixelBuf> + '_ {
        self.rendered_shots().flat_map(|s| s.frames.into_iter())
    }

    /// Ground-truth cut positions: frame indices at which a new shot starts
    /// (excluding frame 0).
    pub fn true_cuts(&self) -> Vec<usize> {
        let mut cuts = Vec::new();
        let mut pos = 0;
        for (i, shot) in self.script.shots().iter().enumerate() {
            if i > 0 {
                cuts.push(pos);
            }
            pos += shot.frames;
        }
        cuts
    }

    /// Total frame count across all shots.
    pub fn total_frames(&self) -> usize {
        self.script.shots().iter().map(|s| s.frames).sum()
    }
}

/// SplitMix64 — tiny, high-quality seed mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::camera::CameraSetup;
    use crate::event::EventKind;
    use crate::script::{ScriptConfig, ScriptedShot};

    fn small_video(seed: u64) -> SyntheticVideo {
        let script = EventScript::generate(&ScriptConfig {
            shots: 6,
            event_rate: 0.5,
            seed,
            ..ScriptConfig::default()
        });
        SyntheticVideo::new(script, RenderConfig::small(), seed)
    }

    #[test]
    fn render_shot_deterministic_and_order_independent() {
        let v = small_video(7);
        let a = v.render_shot(3).unwrap();
        let _ = v.render_shot(0);
        let b = v.render_shot(3).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_shots_differ() {
        let v = small_video(8);
        let a = v.render_shot(0).unwrap();
        let b = v.render_shot(1).unwrap();
        assert_ne!(a.frames, b.frames);
    }

    #[test]
    fn out_of_range_shot_is_none() {
        let v = small_video(9);
        assert!(v.render_shot(999).is_none());
    }

    #[test]
    fn frame_stream_concatenates_all_shots() {
        let v = small_video(10);
        let n: usize = v.frame_stream().count();
        assert_eq!(n, v.total_frames());
    }

    #[test]
    fn true_cuts_match_script() {
        let script = EventScript::from_shots(vec![
            ScriptedShot {
                camera: CameraSetup::Wide,
                events: vec![],
                frames: 4,
            },
            ScriptedShot {
                camera: CameraSetup::Crowd,
                events: vec![EventKind::Goal],
                frames: 3,
            },
            ScriptedShot {
                camera: CameraSetup::Medium,
                events: vec![],
                frames: 5,
            },
        ]);
        let v = SyntheticVideo::new(script, RenderConfig::small(), 1);
        assert_eq!(v.true_cuts(), vec![4, 7]);
        assert_eq!(v.total_frames(), 12);
    }

    #[test]
    fn rendered_audio_and_frames_align() {
        let v = small_video(11);
        for (i, rs) in v.rendered_shots().enumerate() {
            let expected = v.shot(i).unwrap().frames;
            assert_eq!(rs.frames.len(), expected);
            assert_eq!(rs.audio.len(), expected * v.config().samples_per_frame);
        }
    }
}
