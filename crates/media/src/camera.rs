//! Camera setups — the scene geometry behind each shot.
//!
//! A broadcast soccer feed cuts between a handful of camera configurations;
//! shot boundaries are precisely those cuts. Each setup determines the gross
//! visual statistics of its frames (how much grass is visible, how bright
//! and busy the background is), which is what the visual features of
//! Table 1 measure.

use serde::{Deserialize, Serialize};

/// A camera configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CameraSetup {
    /// Main wide field camera: mostly grass.
    Wide,
    /// Midfield tracking camera: field plus stands.
    Medium,
    /// Player close-up: little grass, bright background.
    Closeup,
    /// Crowd / bench shot: almost no grass.
    Crowd,
}

impl CameraSetup {
    /// All setups in canonical order.
    pub const ALL: [CameraSetup; 4] = [
        CameraSetup::Wide,
        CameraSetup::Medium,
        CameraSetup::Closeup,
        CameraSetup::Crowd,
    ];

    /// Nominal fraction of the frame covered by grass.
    pub fn grass_fraction(self) -> f64 {
        match self {
            CameraSetup::Wide => 0.72,
            CameraSetup::Medium => 0.45,
            CameraSetup::Closeup => 0.18,
            CameraSetup::Crowd => 0.03,
        }
    }

    /// Nominal background (non-grass) brightness, `[0, 255]`.
    pub fn background_brightness(self) -> f64 {
        match self {
            CameraSetup::Wide => 150.0,
            CameraSetup::Medium => 130.0,
            CameraSetup::Closeup => 180.0,
            CameraSetup::Crowd => 95.0,
        }
    }

    /// Nominal background texture noisiness (std dev of brightness).
    pub fn background_noise(self) -> f64 {
        match self {
            CameraSetup::Wide => 12.0,
            CameraSetup::Medium => 22.0,
            CameraSetup::Closeup => 18.0,
            CameraSetup::Crowd => 45.0,
        }
    }

    /// Number of player blobs typically visible.
    pub fn player_count(self) -> usize {
        match self {
            CameraSetup::Wide => 8,
            CameraSetup::Medium => 4,
            CameraSetup::Closeup => 1,
            CameraSetup::Crowd => 0,
        }
    }

    /// Player blob radius in pixels (for a 64-wide frame).
    pub fn player_radius(self) -> usize {
        match self {
            CameraSetup::Wide => 1,
            CameraSetup::Medium => 3,
            CameraSetup::Closeup => 10,
            CameraSetup::Crowd => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grass_fractions_are_ordered() {
        assert!(CameraSetup::Wide.grass_fraction() > CameraSetup::Medium.grass_fraction());
        assert!(CameraSetup::Medium.grass_fraction() > CameraSetup::Closeup.grass_fraction());
        assert!(CameraSetup::Closeup.grass_fraction() > CameraSetup::Crowd.grass_fraction());
    }

    #[test]
    fn fractions_are_valid() {
        for &c in &CameraSetup::ALL {
            assert!((0.0..=1.0).contains(&c.grass_fraction()));
            assert!(c.background_brightness() >= 0.0 && c.background_brightness() <= 255.0);
            assert!(c.background_noise() >= 0.0);
        }
    }

    #[test]
    fn crowd_has_no_players() {
        assert_eq!(CameraSetup::Crowd.player_count(), 0);
        assert!(CameraSetup::Wide.player_count() > 0);
    }
}
