//! Property tests: the pattern language round-trips and the MATN agrees
//! with the AST.

use hmmm_query::{parse_pattern, Matn, QueryStep, TemporalPattern};
use proptest::prelude::*;

fn event_name() -> impl Strategy<Value = String> {
    proptest::sample::select(vec![
        "goal",
        "corner_kick",
        "free_kick",
        "foul",
        "goal_kick",
        "yellow_card",
        "red_card",
        "player_change",
    ])
    .prop_map(str::to_string)
}

fn step() -> impl Strategy<Value = QueryStep> {
    (
        proptest::collection::vec(event_name(), 1..4),
        proptest::option::of(0usize..20),
    )
        .prop_map(|(alternatives, max_gap)| QueryStep {
            alternatives,
            max_gap,
        })
}

fn pattern() -> impl Strategy<Value = TemporalPattern> {
    proptest::collection::vec(step(), 1..6).prop_map(|mut steps| {
        steps[0].max_gap = None; // gap on the first step is never printed
        TemporalPattern::new(steps)
    })
}

proptest! {
    /// Display → parse is the identity on canonical patterns.
    #[test]
    fn display_parse_round_trip(p in pattern()) {
        let text = p.to_string();
        let parsed = parse_pattern(&text).unwrap();
        prop_assert_eq!(p, parsed);
    }

    /// The MATN has C+1 states and one arc per alternative.
    #[test]
    fn matn_shape_matches_ast(p in pattern()) {
        let m = Matn::from_pattern(&p);
        prop_assert_eq!(m.state_count(), p.len() + 1);
        let alt_count: usize = p.steps.iter().map(|s| s.alternatives.len()).sum();
        prop_assert_eq!(m.arcs().len(), alt_count);
    }

    /// Any "first alternative" walk of the pattern is accepted by its MATN.
    #[test]
    fn matn_accepts_pattern_walks(p in pattern()) {
        let m = Matn::from_pattern(&p);
        let walk: Vec<&str> = p.steps.iter().map(|s| s.alternatives[0].as_str()).collect();
        prop_assert!(m.accepts(&walk));
    }

    /// Truncated walks are never accepted (accept state not reached).
    #[test]
    fn matn_rejects_truncated_walks(p in pattern()) {
        prop_assume!(p.len() >= 2);
        let m = Matn::from_pattern(&p);
        let walk: Vec<&str> = p
            .steps
            .iter()
            .take(p.len() - 1)
            .map(|s| s.alternatives[0].as_str())
            .collect();
        prop_assert!(!m.accepts(&walk));
    }
}
