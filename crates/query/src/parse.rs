//! Lexer and recursive-descent parser for the pattern language.

use crate::ast::{QueryStep, TemporalPattern};
use std::fmt;

/// A parse failure with byte position and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where the error was noticed.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Arrow,
    Pipe,
    LBracket,
    RBracket,
    Number(usize),
}

struct Lexer<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(input: &'a str) -> Self {
        Lexer { input, pos: 0 }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            position: self.pos,
            message: message.into(),
        }
    }

    fn tokenize(mut self) -> Result<Vec<(usize, Token)>, ParseError> {
        let bytes = self.input.as_bytes();
        let mut tokens = Vec::new();
        while self.pos < bytes.len() {
            let c = bytes[self.pos];
            match c {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                b'-' => {
                    if bytes.get(self.pos + 1) == Some(&b'>') {
                        tokens.push((self.pos, Token::Arrow));
                        self.pos += 2;
                    } else {
                        return Err(self.err("expected '->'"));
                    }
                }
                b'|' => {
                    tokens.push((self.pos, Token::Pipe));
                    self.pos += 1;
                }
                b'[' => {
                    tokens.push((self.pos, Token::LBracket));
                    self.pos += 1;
                }
                b']' => {
                    tokens.push((self.pos, Token::RBracket));
                    self.pos += 1;
                }
                b'0'..=b'9' => {
                    let start = self.pos;
                    while self.pos < bytes.len() && bytes[self.pos].is_ascii_digit() {
                        self.pos += 1;
                    }
                    let text = &self.input[start..self.pos];
                    let n: usize = text
                        .parse()
                        .map_err(|_| self.err(format!("number {text} out of range")))?;
                    tokens.push((start, Token::Number(n)));
                }
                c if c.is_ascii_alphabetic() || c == b'_' => {
                    let start = self.pos;
                    while self.pos < bytes.len()
                        && (bytes[self.pos].is_ascii_alphanumeric() || bytes[self.pos] == b'_')
                    {
                        self.pos += 1;
                    }
                    tokens.push((start, Token::Ident(self.input[start..self.pos].to_string())));
                }
                other => {
                    return Err(self.err(format!("unexpected character {:?}", other as char)));
                }
            }
        }
        Ok(tokens)
    }
}

struct Parser {
    tokens: Vec<(usize, Token)>,
    cursor: usize,
    input_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.cursor).map(|(_, t)| t)
    }

    fn pos(&self) -> usize {
        self.tokens
            .get(self.cursor)
            .map_or(self.input_len, |(p, _)| *p)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.cursor).map(|(_, t)| t.clone());
        self.cursor += 1;
        t
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            position: self.pos(),
            message: message.into(),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(ParseError {
                position: self.pos(),
                message: format!("expected event name, found {other:?}"),
            }),
        }
    }

    /// step := ident ('|' ident)*
    fn step(&mut self, max_gap: Option<usize>) -> Result<QueryStep, ParseError> {
        let mut alternatives = vec![self.expect_ident()?];
        while self.peek() == Some(&Token::Pipe) {
            self.bump();
            alternatives.push(self.expect_ident()?);
        }
        Ok(QueryStep {
            alternatives,
            max_gap,
        })
    }

    /// arrow := '->' ('[' number ']')?
    fn arrow_gap(&mut self) -> Result<Option<usize>, ParseError> {
        match self.bump() {
            Some(Token::Arrow) => {}
            other => {
                return Err(self.err(format!("expected '->', found {other:?}")));
            }
        }
        if self.peek() == Some(&Token::LBracket) {
            self.bump();
            let gap = match self.bump() {
                Some(Token::Number(n)) => n,
                other => return Err(self.err(format!("expected gap number, found {other:?}"))),
            };
            match self.bump() {
                Some(Token::RBracket) => {}
                other => return Err(self.err(format!("expected ']', found {other:?}"))),
            }
            Ok(Some(gap))
        } else {
            Ok(None)
        }
    }

    fn pattern(&mut self) -> Result<TemporalPattern, ParseError> {
        let mut steps = vec![self.step(None)?];
        while self.peek().is_some() {
            let gap = self.arrow_gap()?;
            steps.push(self.step(gap)?);
        }
        Ok(TemporalPattern::new(steps))
    }
}

/// Parses a temporal pattern query.
///
/// # Errors
///
/// [`ParseError`] with the byte position of the first problem.
///
/// # Examples
///
/// ```
/// use hmmm_query::parse_pattern;
///
/// let p = parse_pattern("free_kick -> goal ->[2] corner_kick").unwrap();
/// assert_eq!(p.len(), 3);
/// assert_eq!(p.steps[2].max_gap, Some(2));
/// ```
pub fn parse_pattern(input: &str) -> Result<TemporalPattern, ParseError> {
    let tokens = Lexer::new(input).tokenize()?;
    if tokens.is_empty() {
        return Err(ParseError {
            position: 0,
            message: "empty query".into(),
        });
    }
    let mut parser = Parser {
        tokens,
        cursor: 0,
        input_len: input.len(),
    };
    parser.pattern()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_event() {
        let p = parse_pattern("goal").unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.steps[0].alternatives, vec!["goal"]);
        assert_eq!(p.steps[0].max_gap, None);
    }

    #[test]
    fn the_papers_narrative_query() {
        // §3: free kick → goal, then corner kick, then player change, goal.
        let p = parse_pattern("free_kick -> goal -> corner_kick -> player_change -> goal")
            .unwrap();
        assert_eq!(p.len(), 5);
        assert_eq!(p.steps[4].alternatives, vec!["goal"]);
    }

    #[test]
    fn gap_annotations() {
        let p = parse_pattern("goal ->[3] free_kick ->[0] foul").unwrap();
        assert_eq!(p.steps[1].max_gap, Some(3));
        assert_eq!(p.steps[2].max_gap, Some(0));
    }

    #[test]
    fn alternatives() {
        let p = parse_pattern("corner_kick|free_kick|goal_kick -> goal").unwrap();
        assert_eq!(
            p.steps[0].alternatives,
            vec!["corner_kick", "free_kick", "goal_kick"]
        );
    }

    #[test]
    fn whitespace_insensitive() {
        let a = parse_pattern("goal->free_kick").unwrap();
        let b = parse_pattern("  goal  ->\n  free_kick ").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn error_positions() {
        let e = parse_pattern("").unwrap_err();
        assert_eq!(e.position, 0);

        let e = parse_pattern("goal -> ").unwrap_err();
        assert!(e.message.contains("expected event name"));

        let e = parse_pattern("goal ->[x] foul").unwrap_err();
        assert!(e.message.contains("gap number"));

        let e = parse_pattern("goal @ foul").unwrap_err();
        assert!(e.message.contains("unexpected character"));
        assert_eq!(e.position, 5);

        let e = parse_pattern("goal - foul").unwrap_err();
        assert!(e.message.contains("'->'"));

        let e = parse_pattern("goal ->[3 foul").unwrap_err();
        assert!(e.message.contains("']'"));

        let e = parse_pattern("goal | -> foul").unwrap_err();
        assert!(e.message.contains("expected event name"));
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_pattern("goal foul").is_err());
        assert!(parse_pattern("goal -> foul ]").is_err());
    }

    #[test]
    fn huge_number_rejected() {
        assert!(parse_pattern("goal ->[99999999999999999999999] foul").is_err());
    }

    #[test]
    fn display_parse_round_trip() {
        for text in [
            "goal",
            "goal -> free_kick",
            "goal ->[4] free_kick|corner_kick -> foul",
            "free_kick -> goal -> corner_kick -> player_change -> goal",
        ] {
            let p = parse_pattern(text).unwrap();
            let round = parse_pattern(&p.to_string()).unwrap();
            assert_eq!(p, round, "round-trip failed for {text}");
        }
    }
}
