//! # hmmm-query
//!
//! The temporal pattern query language — the paper's "graphical retrieval
//! interface" and "query translator" components (§3, Figure 1), in textual
//! form.
//!
//! A temporal pattern query is a sequence of event steps ordered by time
//! (`T_{e_1} ≤ T_{e_2} ≤ … ≤ T_{e_C}`, §5). The language:
//!
//! ```text
//! pattern  := step ( arrow step )*
//! arrow    := '->' ( '[' number ']' )?      // optional max shot gap
//! step     := event ( '|' event )*          // alternatives (MATN branch)
//! event    := identifier                     // e.g. goal, corner_kick
//! ```
//!
//! Examples (the second is the paper's §3 narrative query):
//!
//! ```text
//! goal ->[3] free_kick
//! free_kick -> goal -> corner_kick -> player_change -> goal
//! corner_kick|free_kick -> goal
//! ```
//!
//! * [`ast`] — the parsed [`ast::TemporalPattern`].
//! * [`parse`] — hand-rolled lexer + recursive-descent parser with
//!   position-carrying errors.
//! * [`matn`] — the Multimedia Augmented Transition Network view of a
//!   pattern (Figure 4's query model; ref \[5\]), with Graphviz export.
//! * [`translate`] — the query translator: resolves event names against a
//!   vocabulary into the dense indices the retrieval engine consumes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod matn;
pub mod parse;
pub mod translate;

pub use ast::{QueryStep, TemporalPattern};
pub use matn::Matn;
pub use parse::{parse_pattern, ParseError};
pub use translate::{CompiledPattern, CompiledStep, QueryTranslator, TranslateError};
